#![warn(missing_docs)]

//! # rae — Random Access and random-order Enumeration for (U)CQs
//!
//! A from-scratch Rust reproduction of
//! *"Answering (Unions of) Conjunctive Queries using Random Access and
//! Random-Order Enumeration"* (Carmeli, Zeevi, Berkholz, Kimelfeld,
//! Schweikardt — PODS 2020).
//!
//! ## Quick start
//!
//! ```
//! use rae::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A tiny database.
//! let mut db = Database::new();
//! db.add_relation(
//!     "follows",
//!     Relation::from_rows(
//!         Schema::new(["src", "dst"]).unwrap(),
//!         vec![
//!             vec![Value::Int(1), Value::Int(2)],
//!             vec![Value::Int(2), Value::Int(3)],
//!             vec![Value::Int(1), Value::Int(3)],
//!         ],
//!     )
//!     .unwrap(),
//! )
//! .unwrap();
//!
//! // A free-connex CQ: two-hop follows, both endpoints and the middle kept.
//! let q: ConjunctiveQuery = "Q(x, y, z) :- follows(x, y), follows(y, z)"
//!     .parse()
//!     .unwrap();
//!
//! // Theorem 4.3: linear preprocessing, O(1) count, O(log n) access.
//! let index = CqIndex::build(&q, &db).unwrap();
//! assert_eq!(index.count(), 1); // the only two-hop path is 1→2→3
//! let first = index.access(0).unwrap();
//! assert_eq!(first, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
//! assert_eq!(index.inverted_access(&first), Some(0));
//!
//! // Theorem 3.7: uniformly random order with O(log n) delay.
//! let answers: Vec<_> = index
//!     .random_permutation(StdRng::seed_from_u64(42))
//!     .collect();
//! assert_eq!(answers.len(), 1);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`rae_data`] | values, relations, databases, hash indexes |
//! | [`rae_query`] | CQ/UCQ AST + parser, GYO, join trees, free-connexity, naive eval |
//! | [`rae_yannakakis`] | semijoin reduction + Proposition 4.2 |
//! | [`rae_core`] | Algorithms 1–8: `CqIndex`, `LazyShuffle`, `DeletableSet`, `UcqShuffle`, `McUcqIndex` |
//! | [`rae_sampler`] | Zhao-et-al-style baselines (EW/EO/OE/RS) + dedup adaptor |
//! | [`rae_serve`] | snapshot-swapped concurrent serving with delta maintenance |
//! | [`rae_tpch`] | synthetic TPC-H generator + the paper's benchmark queries |
//! | [`rae_faults`] | deterministic failpoints, budgets, transient-error retry |
//!
//! ## Robustness
//!
//! Every build entry point is transactional (a panic or injected fault
//! leaves the `Database` and dictionary observably unchanged), budgets
//! ([`rae_faults::Budget`]) bound preprocessing and long enumerations with
//! structured errors and graceful degradation, and the whole stack is
//! exercised under seeded fault schedules by the chaos lifecycle harness
//! (`tests/chaos_lifecycle.rs`, `--features failpoints`). See DESIGN.md §13.

pub use rae_core;
pub use rae_data;
pub use rae_faults;
pub use rae_query;
pub use rae_sampler;
pub use rae_serve;
pub use rae_tpch;
pub use rae_yannakakis;

/// One-stop imports for applications.
pub mod prelude {
    pub use rae_core::Budgeted;
    pub use rae_core::{
        AccessScratch, CqIndex, CqSequential, CqShuffle, DeletableSet, LazyShuffle, McUcqIndex,
        McUcqShuffle, OrderStyle, OrderedCqIndex, OrderedEnumeration, OrderedMcUcqIndex,
        OrderedUcq, OrderedUnionEnumeration, RankStrategy, RankWindow, RankedScratch, RankedUcq,
        RankedUnionWindow, UcqEvent, UcqShuffle, Weight, WeightedCqIndex,
    };
    pub use rae_data::{Database, Relation, Schema, Symbol, Value, VarWeights};
    pub use rae_faults::{Budget, Transient};
    pub use rae_query::classify_weighted_order;
    pub use rae_query::{
        classify, naive_eval, naive_eval_union, Atom, ConjunctiveQuery, CqClass, Term, UnionQuery,
    };
    pub use rae_sampler::{
        EoSampler, EwSampler, JoinSampler, OeSampler, OrderedWindowSampler, RsSampler,
        WeightedWindowSampler, WithoutReplacement,
    };
    pub use rae_serve::{
        enumeration_digest, AdmissionPolicy, Batch, Op, ServeError, ServeWriter, ServingIndex,
        ServingReader, Snapshot,
    };
    pub use rae_yannakakis::reduce_to_full_acyclic;
}
