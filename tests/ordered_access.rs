//! Acceptance suite for lexicographic direct access (DESIGN.md §11).
//!
//! For **every** TPC-H free-connex benchmark CQ and **every** permutation
//! of its head variables, the permutation is either realizable — and then
//! `ordered_access(k)` must equal the naive materialize-then-sort answer
//! list at every rank, `ordered_inverted_access` must round-trip, and
//! `range_count` must match a naive filter — or it is rejected with the
//! structured [`rae_query::QueryError::UnrealizableOrder`] error, never a
//! panic. A proptest run repeats the differential on random databases and
//! random orders over the portfolio query shapes.

use proptest::prelude::*;
use rae::prelude::*;
use rae_tpch::{generate, TpchScale};
use std::cmp::Ordering;

/// All permutations of `0..n` (Heap's algorithm, deterministic order).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    fn heap(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut items, &mut out);
    out
}

fn sort_rows_by(rows: &mut [Vec<Value>], positions: &[usize]) {
    rows.sort_by(|a, b| {
        positions
            .iter()
            .map(|&p| a[p].cmp(&b[p]))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or(Ordering::Equal)
    });
}

/// Differential check of one realizable order: every rank, every inverted
/// rank, and range counts on the first answer's prefixes.
fn check_realized_order(idx: &OrderedCqIndex, sorted_rows: &[Vec<Value>], label: &str) {
    assert_eq!(idx.count() as usize, sorted_rows.len(), "{label}: count");
    let mut scratch = AccessScratch::new();
    for (k, expected) in sorted_rows.iter().enumerate() {
        let got = idx
            .ordered_access_into(k as Weight, &mut scratch)
            .unwrap_or_else(|| panic!("{label}: missing rank {k}"));
        assert_eq!(got, expected.as_slice(), "{label}: rank {k}");
        assert_eq!(
            idx.ordered_inverted_access(expected),
            Some(k as Weight),
            "{label}: inverted rank {k}"
        );
    }
    assert!(idx.ordered_access(idx.count()).is_none(), "{label}: oob");

    // Range counts: for a handful of answers, every prefix length.
    let stride = (sorted_rows.len() / 5).max(1);
    for answer in sorted_rows.iter().step_by(stride) {
        for p in 0..=idx.order().len() {
            let prefix: Vec<Value> = idx.order_to_head()[..p]
                .iter()
                .map(|&h| answer[h].clone())
                .collect();
            let expected = sorted_rows
                .iter()
                .filter(|r| {
                    idx.order_to_head()[..p]
                        .iter()
                        .zip(prefix.iter())
                        .all(|(&h, v)| &r[h] == v)
                })
                .count() as Weight;
            assert_eq!(
                idx.range_count(&prefix).unwrap(),
                expected,
                "{label}: range_count p={p}"
            );
        }
    }
}

#[test]
fn every_tpch_cq_and_every_realizable_lex_order_matches_naive() {
    let db = generate(&TpchScale::tiny(), 0xA11CE);
    for (name, cq) in rae_tpch::queries::all_cqs() {
        let naive = naive_eval(&cq, &db).expect("naive evaluation");
        let head = cq.head().to_vec();
        let base_rows: Vec<Vec<Value>> = naive.rows().map(<[Value]>::to_vec).collect();
        let mut realizable = 0usize;
        let mut rejected = 0usize;
        for perm in permutations(head.len()) {
            let order: Vec<Symbol> = perm.iter().map(|&i| head[i].clone()).collect();
            let label = format!(
                "{name} ORDER BY {:?}",
                order.iter().map(Symbol::as_str).collect::<Vec<_>>()
            );
            match OrderedCqIndex::build(&cq, &db, &order) {
                Ok(idx) => {
                    realizable += 1;
                    let mut rows = base_rows.clone();
                    sort_rows_by(&mut rows, &perm);
                    check_realized_order(&idx, &rows, &label);
                }
                Err(rae_core::CoreError::Query(rae_query::QueryError::UnrealizableOrder {
                    earlier,
                    later,
                    ..
                })) => {
                    rejected += 1;
                    assert_ne!(earlier, later, "{label}: degenerate error pair");
                }
                Err(other) => panic!("{label}: unexpected error {other:?}"),
            }
        }
        // The identity-ish orders realized by the default layout guarantee
        // at least one realizable permutation per query; the chain shapes
        // guarantee rejections too.
        assert!(realizable > 0, "{name}: no realizable order");
        assert!(rejected > 0, "{name}: no rejected order (suspicious)");
    }
}

#[test]
fn tpch_ordered_union_random_access_matches_naive() {
    let mut db = generate(&TpchScale::tiny(), 0xBEEF);
    rae_tpch::prepare_selections(&mut db).unwrap();
    for (name, ucq) in rae_tpch::queries::all_ucqs() {
        let head = ucq.head().to_vec();
        // One realizable order per union suffices here (the per-CQ
        // permutation sweep above covers order classification; this guards
        // the inclusion–exclusion rank algebra). The shared template's DFS
        // attribute sequence is realizable by construction — it is the
        // order the default layout already emits.
        let fj = reduce_to_full_acyclic(&ucq.disjuncts()[0], &db).unwrap();
        let order: Vec<Symbol> = fj.plan.attrs_dfs();
        let perm: Vec<usize> = order
            .iter()
            .map(|v| head.iter().position(|h| h == v).unwrap())
            .collect();
        let mc = match OrderedMcUcqIndex::build(&ucq, &db, &order) {
            Ok(mc) => mc,
            Err(e) => panic!("{name}: DFS order should be realizable, got {e:?}"),
        };
        let naive = naive_eval_union(&ucq, &db).unwrap();
        let mut rows: Vec<Vec<Value>> = naive.rows().map(<[Value]>::to_vec).collect();
        sort_rows_by(&mut rows, &perm);
        assert_eq!(mc.count() as usize, rows.len(), "{name}: union count");
        let stride = (rows.len() / 64).max(1);
        for (k, expected) in rows.iter().enumerate().step_by(stride) {
            assert_eq!(
                mc.ordered_access(k as Weight).as_ref(),
                Some(expected),
                "{name}: union rank {k}"
            );
            assert_eq!(
                mc.ordered_inverted_access(expected),
                Some(k as Weight),
                "{name}: union inverted rank {k}"
            );
        }
        // The k-way merge enumerates the same sequence.
        let merged: Vec<Vec<Value>> = mc.enumerate().collect();
        assert_eq!(merged, rows, "{name}: merge vs naive sorted");
        // Ordered enumeration over the general-union merge agrees as well.
        let general = OrderedUcq::build(&ucq, &db, &order).unwrap();
        let merged2: Vec<Vec<Value>> = general.enumerate().unwrap().collect();
        assert_eq!(merged2, rows, "{name}: OrderedUcq merge");
    }
}

#[test]
fn tpch_general_union_ranked_access_agrees_with_mcucq() {
    // RankedUcq serves the same unions WITHOUT the shared-template
    // restriction; on the (shared-template) benchmark unions it must agree
    // with the inclusion–exclusion structure answer-for-answer.
    let mut db = generate(&TpchScale::tiny(), 0xBEEF);
    rae_tpch::prepare_selections(&mut db).unwrap();
    for (name, ucq) in rae_tpch::queries::all_ucqs() {
        let fj = reduce_to_full_acyclic(&ucq.disjuncts()[0], &db).unwrap();
        let order: Vec<Symbol> = fj.plan.attrs_dfs();
        let mc = OrderedMcUcqIndex::build(&ucq, &db, &order).unwrap();
        let ranked = RankedUcq::build(&ucq, &db, &order).unwrap();
        assert_eq!(ranked.count(), mc.count(), "{name}: union count");
        let stride = (ranked.count() / 48).max(1);
        let mut k: Weight = 0;
        while k < ranked.count() {
            let a = ranked.ordered_access(k).unwrap();
            assert_eq!(Some(&a), mc.ordered_access(k).as_ref(), "{name}: rank {k}");
            assert_eq!(
                ranked.ordered_inverted_access(&a),
                Some(k),
                "{name}: inverted rank {k}"
            );
            k += stride;
        }
        assert!(ranked.ordered_access(ranked.count()).is_none());
        // Range counting agrees on every first-order-variable prefix value.
        let first_head = ranked.members()[0].order_to_head()[0];
        let merged: Vec<Vec<Value>> = ranked.enumerate().collect();
        assert_eq!(merged.len() as Weight, ranked.count(), "{name}: merge len");
        let mut prefix_values: Vec<Value> = merged.iter().map(|r| r[first_head].clone()).collect();
        prefix_values.dedup();
        for v in prefix_values {
            assert_eq!(
                ranked.range_count(std::slice::from_ref(&v)).unwrap(),
                mc.range_count(std::slice::from_ref(&v)).unwrap(),
                "{name}: range_count {v:?}"
            );
        }
    }
}

#[test]
fn near_identical_union_switches_to_shared_backend_and_agrees() {
    // Two near-identical single-atom members (2900 of 3000 rows shared) —
    // the ROADMAP's pairwise-discovery blowup case. The build-time cost
    // model must switch `RankedUcq::build` to the shared-template mc-UCQ
    // backend, while `from_members` (pre-built members carry no query to
    // re-plan from) keeps pairwise ownership — and the two backends must
    // agree rank-by-rank with each other and with naive
    // materialize-sort-dedup.
    let rows_r: Edges = (0..3000).map(|i| (i, i % 13)).collect();
    let rows_s: Edges = (100..3100).map(|i| (i, i % 13)).collect();
    let mut db = Database::new();
    db.add_relation("R", edge_relation(&rows_r)).unwrap();
    db.add_relation("S", edge_relation(&rows_s)).unwrap();
    let u: UnionQuery = "Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y).".parse().unwrap();
    let order: Vec<Symbol> = ["y", "x"].iter().map(Symbol::new).collect();

    let switched = RankedUcq::build(&u, &db, &order).unwrap();
    assert!(
        switched.uses_shared_backend(),
        "cost model must pick the mc-UCQ backend for near-identical members"
    );
    let members: Vec<OrderedCqIndex> = u
        .disjuncts()
        .iter()
        .map(|d| OrderedCqIndex::build(d, &db, &order).unwrap())
        .collect();
    let pairwise = RankedUcq::from_members(members).unwrap();
    assert!(
        !pairwise.uses_shared_backend(),
        "pre-built members cannot re-plan into the shared backend"
    );

    let naive = naive_eval_union(&u, &db).unwrap();
    let head = u.head().to_vec();
    let perm: Vec<usize> = order
        .iter()
        .map(|v| head.iter().position(|h| h == v).unwrap())
        .collect();
    let mut rows: Vec<Vec<Value>> = naive.rows().map(<[Value]>::to_vec).collect();
    sort_rows_by(&mut rows, &perm);
    assert_eq!(switched.count() as usize, rows.len(), "switched count");
    assert_eq!(pairwise.count(), switched.count(), "backend counts");

    let stride = (rows.len() / 97).max(1);
    for (k, expected) in rows.iter().enumerate().step_by(stride) {
        let k = k as Weight;
        assert_eq!(
            switched.ordered_access(k).as_ref(),
            Some(expected),
            "switched rank {k}"
        );
        assert_eq!(
            pairwise.ordered_access(k).as_ref(),
            Some(expected),
            "pairwise rank {k}"
        );
        assert_eq!(switched.ordered_inverted_access(expected), Some(k));
        assert_eq!(pairwise.ordered_inverted_access(expected), Some(k));
    }
    // Range counts agree on every distinct first-order value.
    let mut firsts: Vec<Value> = rows.iter().map(|r| r[perm[0]].clone()).collect();
    firsts.dedup();
    assert!(firsts.len() > 1);
    for v in firsts {
        assert_eq!(
            switched.range_count(std::slice::from_ref(&v)).unwrap(),
            pairwise.range_count(std::slice::from_ref(&v)).unwrap(),
            "range_count {v:?}"
        );
    }
    // Windows paginate the switched backend's merge identically to naive.
    let mut paged: Vec<Vec<Value>> = Vec::new();
    let mut at: Weight = 0;
    while at < switched.count() {
        paged.extend(switched.range(at..at + 512));
        at += 512;
    }
    assert_eq!(paged, rows, "switched pagination");
}

#[test]
fn mixed_template_union_ranked_access_matches_naive() {
    // A union the mc-UCQ structure REFUSES (one single-bag member, one
    // cross-product member, one member with an existential tail): RankedUcq
    // must serve ordered access/inverted access/range counts differentially
    // equal to naive materialize-sort-dedup.
    let mut db = Database::new();
    db.add_relation(
        "R",
        edge_relation(&vec![(1, 1), (1, 2), (2, 1), (3, 3), (4, 0)]),
    )
    .unwrap();
    db.add_relation(
        "S",
        Relation::from_rows(
            Schema::new(["a"]).unwrap(),
            [1i64, 2, 3].iter().map(|&v| vec![Value::Int(v)]),
        )
        .unwrap(),
    )
    .unwrap();
    db.add_relation(
        "T",
        Relation::from_rows(
            Schema::new(["a"]).unwrap(),
            [0i64, 1, 2].iter().map(|&v| vec![Value::Int(v)]),
        )
        .unwrap(),
    )
    .unwrap();
    db.add_relation("U", edge_relation(&vec![(0, 0), (1, 2), (2, 9), (3, 3)]))
        .unwrap();
    let u: UnionQuery =
        "Q1(x, y) :- R(x, y). Q2(x, y) :- S(x), T(y). Q3(x, y) :- U(x, y), R(y, z)."
            .parse()
            .unwrap();
    // Not an mc-UCQ: the templates differ.
    let order: Vec<Symbol> = ["y", "x"].iter().map(Symbol::new).collect();
    assert!(matches!(
        OrderedMcUcqIndex::build(&u, &db, &order),
        Err(rae_core::CoreError::IncompatibleTemplates { .. })
    ));

    for ord in [&["x", "y"], &["y", "x"]] {
        let order: Vec<Symbol> = ord.iter().map(Symbol::new).collect();
        let ranked = RankedUcq::build(&u, &db, &order).unwrap();
        let head = u.head().to_vec();
        let perm: Vec<usize> = order
            .iter()
            .map(|v| head.iter().position(|h| h == v).unwrap())
            .collect();
        let naive = naive_eval_union(&u, &db).unwrap();
        let mut rows: Vec<Vec<Value>> = naive.rows().map(<[Value]>::to_vec).collect();
        sort_rows_by(&mut rows, &perm);
        assert_eq!(ranked.count() as usize, rows.len(), "count under {ord:?}");
        for (k, expected) in rows.iter().enumerate() {
            assert_eq!(
                ranked.ordered_access(k as Weight).as_ref(),
                Some(expected),
                "rank {k} under {ord:?}"
            );
            assert_eq!(
                ranked.ordered_inverted_access(expected),
                Some(k as Weight),
                "inverted rank {k} under {ord:?}"
            );
        }
        // Range counts: every prefix of every answer, plus misses.
        for answer in &rows {
            for p in 0..=order.len() {
                let prefix: Vec<Value> = perm[..p].iter().map(|&h| answer[h].clone()).collect();
                let expected = rows
                    .iter()
                    .filter(|r| perm[..p].iter().zip(&prefix).all(|(&h, v)| &r[h] == v))
                    .count() as Weight;
                assert_eq!(
                    ranked.range_count(&prefix).unwrap(),
                    expected,
                    "prefix {prefix:?}"
                );
            }
        }
        assert_eq!(ranked.range_count(&[Value::Int(-7)]).unwrap(), 0);
        // Windows paginate the merged stream consistently.
        let all: Vec<Vec<Value>> = ranked.enumerate().collect();
        assert_eq!(all, rows, "merge under {ord:?}");
        let mut paged: Vec<Vec<Value>> = Vec::new();
        let mut at: Weight = 0;
        while at < ranked.count() {
            paged.extend(ranked.range(at..at + 2));
            at += 2;
        }
        assert_eq!(paged, rows, "pagination under {ord:?}");
    }
}

#[test]
fn union_structures_serve_projection_node_orders() {
    // The riskiest composition in the union builders is node-wise
    // intersection / rank correction over relations *derived* for a
    // synthesized projection-node layout (LexPlan::derive_relations), which
    // the shared-template and mixed-template suites above never force: their
    // orders are all realizable by re-rooting alone. Bags {x,y,z}–{z,w}
    // under ORDER BY ⟨x,z,w,y⟩ require the projection root {x,z} (y splits
    // off its bag around w, DESIGN.md §11), so this drives both union structures through
    // projection-node member layouts and checks them against naive
    // materialize-sort-dedup.
    let tri = |rows: &[(i64, i64, i64)]| {
        Relation::from_rows(
            Schema::new(["x", "y", "z"]).unwrap(),
            rows.iter()
                .map(|&(x, y, z)| vec![Value::Int(x), Value::Int(y), Value::Int(z)]),
        )
        .unwrap()
    };
    let duo = |rows: &[(i64, i64)]| {
        Relation::from_rows(
            Schema::new(["z", "w"]).unwrap(),
            rows.iter()
                .map(|&(z, w)| vec![Value::Int(z), Value::Int(w)]),
        )
        .unwrap()
    };
    let mut db = Database::new();
    db.add_relation("R", tri(&[(1, 1, 1), (1, 2, 1), (2, 1, 2), (3, 1, 1)]))
        .unwrap();
    db.add_relation("S", duo(&[(1, 1), (1, 2), (2, 1)]))
        .unwrap();
    db.add_relation("R2", tri(&[(1, 1, 1), (2, 2, 2), (4, 1, 1)]))
        .unwrap();
    db.add_relation("S2", duo(&[(1, 2), (2, 3)])).unwrap();
    // Same template (both reduce to bags {x,y,z}–{z,w}), overlapping
    // answers, so both union structures accept and dedup matters.
    let u: UnionQuery = "Q1(x, y, z, w) :- R(x, y, z), S(z, w). \
                         Q2(x, y, z, w) :- R2(x, y, z), S2(z, w)."
        .parse()
        .unwrap();
    let order: Vec<Symbol> = ["x", "z", "w", "y"].iter().map(Symbol::new).collect();

    // The order genuinely needs a projection node in the member layouts.
    let fj = reduce_to_full_acyclic(&u.disjuncts()[0], &db).unwrap();
    let lex = rae_query::order::realize_order(&fj.plan, &order).unwrap();
    assert!(
        (0..lex.plan.node_count())
            .any(|i| lex.plan.bag(i).len() < fj.plan.bag(lex.source_node[i]).len()),
        "⟨x,z,w,y⟩ must require a projection node"
    );

    let naive = naive_eval_union(&u, &db).unwrap();
    let head = u.head().to_vec();
    let perm: Vec<usize> = order
        .iter()
        .map(|v| head.iter().position(|h| h == v).unwrap())
        .collect();
    let mut rows: Vec<Vec<Value>> = naive.rows().map(<[Value]>::to_vec).collect();
    sort_rows_by(&mut rows, &perm);

    let mc = OrderedMcUcqIndex::build(&u, &db, &order).unwrap();
    let ranked = RankedUcq::build(&u, &db, &order).unwrap();
    assert_eq!(mc.count() as usize, rows.len(), "mc count");
    assert_eq!(ranked.count() as usize, rows.len(), "ranked count");
    for (k, expected) in rows.iter().enumerate() {
        let k = k as Weight;
        assert_eq!(mc.ordered_access(k).as_ref(), Some(expected), "mc rank {k}");
        assert_eq!(
            ranked.ordered_access(k).as_ref(),
            Some(expected),
            "ranked rank {k}"
        );
        assert_eq!(mc.ordered_inverted_access(expected), Some(k));
        assert_eq!(ranked.ordered_inverted_access(expected), Some(k));
    }
    // Range counts on every prefix of every answer.
    for answer in &rows {
        for p in 0..=order.len() {
            let prefix: Vec<Value> = perm[..p].iter().map(|&h| answer[h].clone()).collect();
            let expected = rows
                .iter()
                .filter(|r| perm[..p].iter().zip(&prefix).all(|(&h, v)| &r[h] == v))
                .count() as Weight;
            assert_eq!(
                mc.range_count(&prefix).unwrap(),
                expected,
                "mc prefix {prefix:?}"
            );
            assert_eq!(
                ranked.range_count(&prefix).unwrap(),
                expected,
                "ranked prefix {prefix:?}"
            );
        }
    }
}

#[test]
fn ordered_pagination_is_stable_under_window_size() {
    let db = generate(&TpchScale::tiny(), 0xA11CE);
    let (_, cq) = &rae_tpch::queries::all_cqs()[1]; // Q2
    let head = cq.head().to_vec();
    let idx = OrderedCqIndex::build(cq, &db, &head).unwrap();
    let all: Vec<Vec<Value>> = idx.enumerate().collect();
    for window in [1u128, 3, 7, 64] {
        let mut paged: Vec<Vec<Value>> = Vec::new();
        let mut at: Weight = 0;
        while at < idx.count() {
            paged.extend(idx.range(at..at + window));
            at += window;
        }
        assert_eq!(paged, all, "window {window}");
    }
}

// ---------------------------------------------------------------------
// Randomized differential (proptest): random databases, random orders.
// ---------------------------------------------------------------------

type Edges = Vec<(i64, i64)>;

fn edge_relation(edges: &Edges) -> Relation {
    Relation::from_rows(
        Schema::new(["a", "b"]).unwrap(),
        edges
            .iter()
            .map(|&(u, v)| vec![Value::Int(u), Value::Int(v)]),
    )
    .unwrap()
}

fn ordered_portfolio() -> Vec<ConjunctiveQuery> {
    [
        "Q(x, y, z) :- R(x, y), S(y, z)",
        "Q(x, y) :- R(x, y), S(y, z)",
        "Q(x, y, w) :- R(x, y), S(y, z), T(y, w)",
        "Q(x, u, v) :- R(x, y), T(u, v)",
        "Q(x, y, z) :- R(x, y), R(y, z)",
    ]
    .into_iter()
    .map(|text| text.parse().expect("portfolio query parses"))
    .collect()
}

fn edges_strategy() -> impl Strategy<Value = Edges> {
    prop::collection::vec((0..5i64, 0..5i64), 0..15)
}

proptest! {
    #[test]
    fn random_databases_random_orders_match_naive(
        r in edges_strategy(),
        s in edges_strategy(),
        t in edges_strategy(),
        perm_seed in 0usize..720,
    ) {
        let mut db = Database::new();
        db.add_relation("R", edge_relation(&r)).unwrap();
        db.add_relation("S", edge_relation(&s)).unwrap();
        db.add_relation("T", edge_relation(&t)).unwrap();
        for cq in ordered_portfolio() {
            let head = cq.head().to_vec();
            let perms = permutations(head.len());
            let perm = &perms[perm_seed % perms.len()];
            let order: Vec<Symbol> = perm.iter().map(|&i| head[i].clone()).collect();
            match OrderedCqIndex::build(&cq, &db, &order) {
                Ok(idx) => {
                    let naive = naive_eval(&cq, &db).unwrap();
                    let mut rows: Vec<Vec<Value>> =
                        naive.rows().map(<[Value]>::to_vec).collect();
                    sort_rows_by(&mut rows, perm);
                    prop_assert_eq!(idx.count() as usize, rows.len());
                    let mut scratch = AccessScratch::new();
                    for (k, expected) in rows.iter().enumerate() {
                        let got = idx
                            .ordered_access_into(k as Weight, &mut scratch)
                            .expect("rank in range");
                        prop_assert_eq!(got, expected.as_slice());
                    }
                    for (k, expected) in rows.iter().enumerate() {
                        prop_assert_eq!(
                            idx.ordered_inverted_access(expected),
                            Some(k as Weight)
                        );
                    }
                }
                Err(rae_core::CoreError::Query(
                    rae_query::QueryError::UnrealizableOrder { .. },
                )) => {}
                Err(other) => {
                    prop_assert!(false, "unexpected error {:?}", other);
                }
            }
        }
    }

    // General-union differential: random mixed-template unions (single-bag,
    // cross-product, and existential-tail members over one head) served by
    // RankedUcq must match naive materialize-sort-dedup at every rank,
    // round-trip inverted access, and agree on range counts.
    #[test]
    fn random_mixed_template_unions_match_naive(
        r in edges_strategy(),
        u in edges_strategy(),
        s in prop::collection::vec(0..5i64, 0..6),
        t in prop::collection::vec(0..5i64, 0..6),
        flip in 0usize..2,
    ) {
        let mut db = Database::new();
        db.add_relation("R", edge_relation(&r)).unwrap();
        db.add_relation("U", edge_relation(&u)).unwrap();
        for (name, vals) in [("S", &s), ("T", &t)] {
            db.add_relation(
                name,
                Relation::from_rows(
                    Schema::new(["a"]).unwrap(),
                    vals.iter().map(|&v| vec![Value::Int(v)]),
                )
                .unwrap(),
            )
            .unwrap();
        }
        let union: UnionQuery =
            "Q1(x, y) :- R(x, y). Q2(x, y) :- S(x), T(y). Q3(x, y) :- U(x, y), R(y, z)."
                .parse()
                .unwrap();
        let ords = [["x", "y"], ["y", "x"]];
        let order: Vec<Symbol> = ords[flip].iter().map(Symbol::new).collect();
        let ranked = RankedUcq::build(&union, &db, &order).unwrap();
        let head = union.head().to_vec();
        let perm: Vec<usize> = order
            .iter()
            .map(|v| head.iter().position(|h| h == v).unwrap())
            .collect();
        let naive = naive_eval_union(&union, &db).unwrap();
        let mut rows: Vec<Vec<Value>> = naive.rows().map(<[Value]>::to_vec).collect();
        sort_rows_by(&mut rows, &perm);
        prop_assert_eq!(ranked.count() as usize, rows.len());
        for (k, expected) in rows.iter().enumerate() {
            prop_assert_eq!(
                ranked.ordered_access(k as Weight).as_ref(),
                Some(expected)
            );
            prop_assert_eq!(
                ranked.ordered_inverted_access(expected),
                Some(k as Weight)
            );
        }
        prop_assert!(ranked.ordered_access(ranked.count()).is_none());
        // Range counts on every single-variable prefix value in range.
        for v in -1..6i64 {
            let prefix = [Value::Int(v)];
            let expected = rows
                .iter()
                .filter(|row| row[perm[0]] == prefix[0])
                .count() as Weight;
            prop_assert_eq!(ranked.range_count(&prefix).unwrap(), expected);
        }
        // Absent answers have no rank.
        prop_assert_eq!(
            ranked.ordered_inverted_access(&[Value::Int(99), Value::Int(99)]),
            None
        );
    }
}
