//! The scratch-threaded sampler paths must be observationally identical to
//! the allocating wrappers: same RNG seed ⇒ byte-identical answer streams,
//! for all four samplers, with one scratch reused across samplers and
//! across differently-shaped queries.

use rae::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn db() -> Database {
    let mut db = Database::new();
    let mut r = Vec::new();
    let mut s = Vec::new();
    for i in 0..40i64 {
        r.push(vec![Value::Int(i), Value::Int(i % 7)]);
        for j in 0..(i % 7 + 1) {
            s.push(vec![Value::Int(i % 7), Value::str(format!("v{i}_{j}"))]);
        }
    }
    db.add_relation(
        "R",
        Relation::from_rows(Schema::new(["a", "b"]).unwrap(), r).unwrap(),
    )
    .unwrap();
    db.add_relation(
        "S",
        Relation::from_rows(Schema::new(["b", "c"]).unwrap(), s).unwrap(),
    )
    .unwrap();
    db
}

fn check_equivalence<S: JoinSampler>(sampler: &S, scratch: &mut AccessScratch, seed: u64) {
    let mut rng_a = StdRng::seed_from_u64(seed);
    let mut rng_b = StdRng::seed_from_u64(seed);
    for step in 0..200 {
        let owned = sampler.sample(&mut rng_a);
        let borrowed = sampler
            .sample_into(&mut rng_b, scratch)
            .map(<[Value]>::to_vec);
        assert_eq!(
            owned,
            borrowed,
            "{} diverged at step {step}",
            sampler.name()
        );
    }
}

#[test]
fn scratch_and_allocating_sampler_paths_agree() {
    let db = db();
    let queries = [
        "Q(x, y, z) :- R(x, y), S(y, z)",
        "Q(x, y) :- R(x, y), S(y, z)",
        "Q(y, z) :- S(y, z)",
    ];
    // One scratch across all samplers and all query shapes.
    let mut scratch = AccessScratch::new();
    for (qi, q) in queries.iter().enumerate() {
        let cq: ConjunctiveQuery = q.parse().unwrap();
        let idx = CqIndex::build(&cq, &db).unwrap();
        assert!(idx.count() > 0);
        let seed = 1000 + qi as u64;
        check_equivalence(&EwSampler::new(&idx), &mut scratch, seed);
        check_equivalence(&EoSampler::new(&idx), &mut scratch, seed);
        check_equivalence(&OeSampler::new(&idx), &mut scratch, seed);
        check_equivalence(&RsSampler::new(&idx), &mut scratch, seed);
    }
}

#[test]
fn without_replacement_still_covers_everything() {
    let db = db();
    let cq: ConjunctiveQuery = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let idx = CqIndex::build(&cq, &db).unwrap();
    let total = idx.count() as usize;
    let mut wr = WithoutReplacement::new(EoSampler::new(&idx));
    let mut rng = StdRng::seed_from_u64(5);
    let mut got = Vec::new();
    while let Some(a) = wr.next_distinct(&mut rng) {
        got.push(a);
    }
    got.sort();
    got.dedup();
    assert_eq!(got.len(), total, "dedup stream must cover the answer set");
}
