//! Property-based tests: for random small databases, the Theorem 4.3 index
//! must agree exactly with naive evaluation on a portfolio of free-connex
//! query shapes (paths, stars, projections, cross products, self-joins).

use proptest::prelude::*;
use rae::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

type Edges = Vec<(i64, i64)>;

fn edge_relation(edges: &Edges) -> Relation {
    Relation::from_rows(
        Schema::new(["a", "b"]).unwrap(),
        edges
            .iter()
            .map(|&(u, v)| vec![Value::Int(u), Value::Int(v)]),
    )
    .unwrap()
}

fn db_from(r: &Edges, s: &Edges, t: &Edges) -> Database {
    let mut db = Database::new();
    db.add_relation("R", edge_relation(r)).unwrap();
    db.add_relation("S", edge_relation(s)).unwrap();
    db.add_relation("T", edge_relation(t)).unwrap();
    db
}

/// The free-connex query portfolio exercised against every random database.
fn portfolio() -> Vec<ConjunctiveQuery> {
    [
        // Full path join.
        "Q(x, y, z) :- R(x, y), S(y, z)",
        // Projection keeping a connected prefix (free-connex).
        "Q(x, y) :- R(x, y), S(y, z)",
        // Single-atom projection.
        "Q(x) :- R(x, y)",
        // Star with the center kept.
        "Q(x, y, w) :- R(x, y), S(y, z), T(y, w)",
        // Cross product of disconnected components.
        "Q(x, u, v) :- R(x, y), T(u, v)",
        // Self-join (two-step paths).
        "Q(x, y, z) :- R(x, y), R(y, z)",
        // Constant selection plus join.
        "Q(x, z) :- R(x, 1), S(x, z)",
        // Repeated variable (loops) joined further.
        "Q(x, z) :- R(x, x), S(x, z)",
        // Deeper existential chain hanging off a kept variable.
        "Q(x, y) :- R(x, y), S(y, z), T(z, w)",
    ]
    .into_iter()
    .map(|text| text.parse().expect("portfolio query parses"))
    .collect()
}

fn edges_strategy() -> impl Strategy<Value = Edges> {
    prop::collection::vec((0..5i64, 0..5i64), 0..18)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn index_agrees_with_naive_evaluation(
        r in edges_strategy(),
        s in edges_strategy(),
        t in edges_strategy(),
    ) {
        let db = db_from(&r, &s, &t);
        for cq in portfolio() {
            prop_assert_eq!(classify(&cq), CqClass::FreeConnex);
            let idx = CqIndex::build(&cq, &db).expect("portfolio builds");
            let expected = naive_eval(&cq, &db).expect("naive evaluates");

            // Counting (Theorem 4.3).
            prop_assert_eq!(
                idx.count() as usize,
                expected.len(),
                "count mismatch for {}", cq
            );

            // Access hits exactly the answer set, in a duplicate-free order,
            // and inverted access is its inverse (Algorithms 3 + 4).
            let mut seen = Vec::with_capacity(expected.len());
            for j in 0..idx.count() {
                let ans = idx.access(j).expect("in range");
                prop_assert!(
                    expected.contains_row(&ans),
                    "access({}) produced non-answer {:?} for {}", j, ans, cq
                );
                prop_assert_eq!(idx.inverted_access(&ans), Some(j));
                seen.push(ans);
            }
            seen.sort();
            seen.dedup();
            prop_assert_eq!(seen.len(), expected.len(), "duplicates for {}", cq);

            // Out-of-bounds access errors out.
            prop_assert!(idx.access(idx.count()).is_none());
        }
    }

    #[test]
    fn inverted_access_rejects_non_answers(
        r in edges_strategy(),
        s in edges_strategy(),
        probe in (0..5i64, 0..5i64, 0..5i64),
    ) {
        let db = db_from(&r, &s, &Vec::new());
        let cq: ConjunctiveQuery = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
        let idx = CqIndex::build(&cq, &db).unwrap();
        let expected = naive_eval(&cq, &db).unwrap();
        let answer = vec![Value::Int(probe.0), Value::Int(probe.1), Value::Int(probe.2)];
        let position = idx.inverted_access(&answer);
        prop_assert_eq!(
            position.is_some(),
            expected.contains_row(&answer),
            "membership disagreement on {:?}", answer
        );
        if let Some(j) = position {
            prop_assert_eq!(idx.access(j), Some(answer));
        }
    }

    #[test]
    fn random_permutation_is_complete_and_duplicate_free(
        r in edges_strategy(),
        s in edges_strategy(),
        seed in 0u64..1000,
    ) {
        let db = db_from(&r, &s, &Vec::new());
        let cq: ConjunctiveQuery = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
        let idx = CqIndex::build(&cq, &db).unwrap();
        let mut got: Vec<Vec<Value>> = idx
            .random_permutation(StdRng::seed_from_u64(seed))
            .collect();
        prop_assert_eq!(got.len() as u128, idx.count());
        got.sort();
        got.dedup();
        prop_assert_eq!(got.len() as u128, idx.count());
    }

    #[test]
    fn full_reduction_preserves_answers(
        r in edges_strategy(),
        s in edges_strategy(),
        t in edges_strategy(),
    ) {
        // The Proposition 4.2 full acyclic join materializes to exactly the
        // naive answers (the projection-based reduction is lossless).
        let db = db_from(&r, &s, &t);
        for cq in portfolio() {
            let fj = reduce_to_full_acyclic(&cq, &db).expect("reduces");
            let materialized = fj.materialize().expect("materializes");
            let expected = naive_eval(&cq, &db).expect("naive evaluates");
            prop_assert_eq!(
                materialized, expected,
                "Proposition 4.2 mismatch for {}", cq
            );
        }
    }
}
