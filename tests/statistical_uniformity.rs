//! Statistical uniformity subsystem: chi-squared goodness-of-fit checks
//! that the four samplers and the random-order enumerators stay
//! (near-)uniform over the answer set — **including across a dictionary
//! generation advance**, where recycled codes would turn any code/weight
//! confusion into a visibly skewed distribution.
//!
//! All tests use fixed seeds (deterministic: a passing seed always passes)
//! and a Wilson–Hilferty chi-squared critical value at α = 10⁻⁴, so false
//! alarms are essentially impossible while real bias — e.g. a sampler
//! weighting buckets by stale totals, or a Fisher–Yates slot bug — blows
//! the statistic up by orders of magnitude.
//!
//! Tests in this file advance the process-wide dictionary generation and
//! therefore serialize behind one mutex (this binary is its own process).

use rae::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

fn serialized() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Upper chi-squared quantile via the Wilson–Hilferty cube approximation.
/// `z` is the standard-normal quantile; 3.719 ≈ the 1 − 10⁻⁴ point.
fn chi2_critical(df: usize, z: f64) -> f64 {
    let df = df as f64;
    let t = 1.0 - 2.0 / (9.0 * df) + z * (2.0 / (9.0 * df)).sqrt();
    df * t * t * t
}

/// Asserts a chi-squared goodness-of-fit of `counts` against the uniform
/// distribution over exactly `n` cells.
fn assert_chi2_uniform(label: &str, counts: &BTreeMap<Vec<Value>, usize>, n: usize) {
    assert_eq!(
        counts.len(),
        n,
        "{label}: every answer must occur at least once"
    );
    let trials: usize = counts.values().sum();
    let expected = trials as f64 / n as f64;
    assert!(
        expected >= 20.0,
        "{label}: underpowered test ({expected:.1} expected per cell)"
    );
    let stat: f64 = counts
        .values()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    let critical = chi2_critical(n - 1, 3.719);
    assert!(
        stat <= critical,
        "{label}: chi-squared {stat:.1} exceeds critical {critical:.1} \
         (df {}, {trials} trials)",
        n - 1
    );
}

/// A skewed two-relation join database over a cycle-unique value namespace
/// (string payloads so generation sweeps genuinely recycle codes).
fn join_db(tag: &str) -> Database {
    let mut db = Database::new();
    let r: Vec<(i64, i64)> = vec![(1, 1), (2, 1), (3, 2), (4, 3), (5, 3)];
    let s: Vec<(i64, i64)> = vec![(1, 10), (1, 11), (1, 12), (2, 20), (3, 30), (3, 31)];
    let val = |side: &str, v: i64| Value::str(format!("{tag}-{side}{v}"));
    db.add_relation(
        "R",
        Relation::from_rows(
            Schema::new(["a", "b"]).unwrap(),
            r.iter().map(|&(x, y)| vec![val("a", x), val("b", y)]),
        )
        .unwrap(),
    )
    .unwrap();
    db.add_relation(
        "S",
        Relation::from_rows(
            Schema::new(["b", "c"]).unwrap(),
            s.iter().map(|&(x, y)| vec![val("b", x), val("c", y)]),
        )
        .unwrap(),
    )
    .unwrap();
    db
}

/// Replaces `S` with a partially fresh cohort and sweeps, so the dictionary
/// recycles the dropped values' codes — the "after" half of every test.
/// Join keys stay in `base_tag`'s namespace (so the join survives); the
/// payload values are fresh under `fresh_tag` (so the sweep recycles the
/// dropped cohort's codes).
fn churn_and_advance(db: &mut Database, base_tag: &str, fresh_tag: &str) {
    let key = |v: i64| Value::str(format!("{base_tag}-b{v}"));
    let fresh = |v: i64| Value::str(format!("{fresh_tag}-c{v}"));
    let s2: Vec<(i64, i64)> = vec![(1, 40), (1, 41), (2, 42), (2, 20), (3, 43)];
    db.remove_relation("S").unwrap();
    db.add_relation(
        "S",
        Relation::from_rows(
            Schema::new(["b", "c"]).unwrap(),
            s2.iter().map(|&(x, y)| vec![key(x), fresh(y)]),
        )
        .unwrap(),
    )
    .unwrap();
    db.advance_generation().unwrap();
}

fn sampler_counts<S: JoinSampler>(
    sampler: &S,
    trials: usize,
    seed: u64,
) -> BTreeMap<Vec<Value>, usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = BTreeMap::new();
    for _ in 0..trials {
        *counts.entry(sampler.sample(&mut rng).unwrap()).or_insert(0) += 1;
    }
    counts
}

#[test]
fn samplers_chi_squared_uniform_before_and_after_generation_advance() {
    let _guard = serialized();
    let mut db = join_db("chi-samp");
    let cq: ConjunctiveQuery = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let trials = 8_000;

    for phase in ["before", "after"] {
        let idx = CqIndex::build(&cq, &db).unwrap();
        let n = idx.count() as usize;
        assert!(n > 4, "{phase}: degenerate instance");
        assert_chi2_uniform(
            &format!("EW {phase}"),
            &sampler_counts(&EwSampler::new(&idx), trials, 0xE1),
            n,
        );
        assert_chi2_uniform(
            &format!("EO {phase}"),
            &sampler_counts(&EoSampler::new(&idx), trials, 0xE2),
            n,
        );
        assert_chi2_uniform(
            &format!("OE {phase}"),
            &sampler_counts(&OeSampler::new(&idx), trials, 0xE3),
            n,
        );
        assert_chi2_uniform(
            &format!("RS {phase}"),
            &sampler_counts(&RsSampler::new(&idx), trials, 0xE4),
            n,
        );
        if phase == "before" {
            churn_and_advance(&mut db, "chi-samp", "chi-samp2");
            // The pre-advance index is now stale and says so.
            assert!(idx.try_access(0).is_err());
        }
    }
}

#[test]
fn cq_shuffle_chi_squared_uniform_at_a_mid_position_across_generations() {
    let _guard = serialized();
    let mut db = join_db("chi-perm");
    let cq: ConjunctiveQuery = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let trials = 6_000;

    for phase in ["before", "after"] {
        let idx = CqIndex::build(&cq, &db).unwrap();
        let n = idx.count() as usize;
        // A mid position (not the first) catches Fisher–Yates slot bugs.
        let position = n / 2;
        let mut counts: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
        let mut seed_rng = StdRng::seed_from_u64(0x5EED);
        for _ in 0..trials {
            let seed = seed_rng.gen::<u64>();
            let ans = idx
                .random_permutation(StdRng::seed_from_u64(seed))
                .nth(position)
                .unwrap();
            *counts.entry(ans).or_insert(0) += 1;
        }
        assert_chi2_uniform(&format!("CqShuffle@mid {phase}"), &counts, n);
        if phase == "before" {
            churn_and_advance(&mut db, "chi-perm", "chi-perm2");
        }
    }
}

#[test]
fn ucq_shuffle_chi_squared_uniform_across_generations() {
    let _guard = serialized();
    let mut db = join_db("chi-ucq");
    let u: UnionQuery = "Q1(x, y) :- R(x, y). Q2(x, y) :- S(y2, x), R(x, y)."
        .parse()
        .unwrap();
    let trials = 6_000;

    for phase in ["before", "after"] {
        let expected = naive_eval_union(&u, &db).unwrap();
        let n = expected.len();
        assert!(n > 2, "{phase}: degenerate union");
        let mut counts: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
        let mut seed_rng = StdRng::seed_from_u64(0x0CEA);
        for _ in 0..trials {
            let seed = seed_rng.gen::<u64>();
            let ans = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(seed))
                .unwrap()
                .next()
                .unwrap();
            *counts.entry(ans).or_insert(0) += 1;
        }
        assert_chi2_uniform(&format!("UcqShuffle {phase}"), &counts, n);
        if phase == "before" {
            churn_and_advance(&mut db, "chi-ucq", "chi-ucq2");
        }
    }
}

#[test]
fn mc_ucq_shuffle_chi_squared_uniform_across_generations() {
    let _guard = serialized();
    let mut db = join_db("chi-mc");
    let trials = 6_000;

    for phase in ["before", "after"] {
        // Rebuild the selection each phase (it must reflect the current R).
        if db.contains("R_small") {
            db.remove_relation("R_small").unwrap();
        }
        db.derive_selection("R", "R_small", |row| {
            row[1].as_str().is_some_and(|s| !s.ends_with("b3"))
        })
        .unwrap();
        let u: UnionQuery = "Q1(x, y) :- R(x, y). Q2(x, y) :- R_small(x, y)."
            .parse()
            .unwrap();
        let mc = McUcqIndex::build(&u, &db).unwrap();
        let n = mc.count() as usize;
        assert!(n > 2, "{phase}: degenerate mc-union");
        let mut counts: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
        let mut seed_rng = StdRng::seed_from_u64(0x3C);
        for _ in 0..trials {
            let seed = seed_rng.gen::<u64>();
            let ans = mc
                .random_permutation(StdRng::seed_from_u64(seed))
                .next()
                .unwrap();
            *counts.entry(ans).or_insert(0) += 1;
        }
        assert_chi2_uniform(&format!("McUcqShuffle {phase}"), &counts, n);
        if phase == "before" {
            churn_and_advance(&mut db, "chi-mc", "chi-mc2");
        }
    }
}

#[test]
fn chi2_critical_values_are_sane() {
    let _guard = serialized();
    // Spot-check the Wilson–Hilferty approximation against table values
    // (α = 0.0001): χ²(10) ≈ 35.56, χ²(30) ≈ 66.62.
    assert!((chi2_critical(10, 3.719) - 35.56).abs() < 1.5);
    assert!((chi2_critical(30, 3.719) - 66.62).abs() < 2.0);
    // And that a grossly skewed sample fails: one cell hogging everything.
    let mut counts: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
    for i in 0..10i64 {
        counts.insert(vec![Value::Int(i)], if i == 0 { 910 } else { 10 });
    }
    let trials: usize = counts.values().sum();
    let expected = trials as f64 / 10.0;
    let stat: f64 = counts
        .values()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    assert!(stat > chi2_critical(9, 3.719), "skew must be detectable");
}
