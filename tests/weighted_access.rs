//! Acceptance suite for **weighted** ranked access (DESIGN.md §17).
//!
//! For every TPC-H free-connex benchmark CQ, realizable lexicographic
//! orders are swept and every order-prefix is tried as the weighted
//! variable set `W` under randomized per-variable weights. Each tractable
//! combination (`W` free, a prefix of the order, covered by one atom) must
//! serve `ranked_access` / `ranked_inverted_access` / `weight_at` /
//! min-max extraction / `weight_range_count` differentially equal to the
//! naive materialize-then-sort-by-`(Σ weights, lex)` oracle; each
//! intractable combination must be rejected with a structured witness
//! (arXiv:2012.11965's X+Y hardness), never a panic. A proptest run
//! repeats the differential on random databases and random weights.

use proptest::prelude::*;
use rae::prelude::*;
use rae_tpch::{generate, TpchScale};
use std::cmp::Ordering;

/// All permutations of `0..n` (Heap's algorithm, deterministic order).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    fn heap(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut items, &mut out);
    out
}

/// Deterministic pseudo-random weight for a `(seed, variable, value)`
/// triple. Small modulus on purpose: weight ties are common, so the
/// lexicographic tie-break inside weight blocks is genuinely exercised.
fn rand_weight(seed: u64, var: &Symbol, v: &Value) -> u128 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    seed.hash(&mut h);
    var.as_str().hash(&mut h);
    v.hash(&mut h);
    (h.finish() % 97) as u128
}

/// Randomized weights for the order-prefix `weighted`, covering every
/// value those variables take in `rows`.
fn weights_for(weighted: &[Symbol], head: &[Symbol], rows: &[Vec<Value>], seed: u64) -> VarWeights {
    let mut weights = VarWeights::new();
    for w in weighted {
        let hpos = head.iter().position(|h| h == w).expect("W ⊆ head");
        for row in rows {
            let v = row[hpos].clone();
            let wt = rand_weight(seed, w, &v);
            weights.set(w.clone(), v, wt);
        }
    }
    weights
}

/// The oracle: answers sorted by `(Σ weights, lex-under-order)`.
fn sorted_by_weight(
    rows: &[Vec<Value>],
    head: &[Symbol],
    order: &[Symbol],
    weights: &VarWeights,
) -> Vec<(u128, Vec<Value>)> {
    let perm: Vec<usize> = order
        .iter()
        .map(|v| head.iter().position(|h| h == v).expect("order ⊆ head"))
        .collect();
    let mut out: Vec<(u128, Vec<Value>)> = rows
        .iter()
        .map(|r| {
            let w = weights
                .answer_weight(head, r)
                .expect("test weights fit u128");
            (w, r.clone())
        })
        .collect();
    out.sort_by(|a, b| {
        a.0.cmp(&b.0).then_with(|| {
            perm.iter()
                .map(|&p| a.1[p].cmp(&b.1[p]))
                .find(|o| *o != Ordering::Equal)
                .unwrap_or(Ordering::Equal)
        })
    });
    out
}

/// Full differential check of one tractable weighted order.
fn check_weighted(
    widx: &WeightedCqIndex,
    rows: &[Vec<Value>],
    head: &[Symbol],
    order: &[Symbol],
    weights: &VarWeights,
    label: &str,
) {
    let oracle = sorted_by_weight(rows, head, order, weights);
    assert_eq!(widx.count() as usize, oracle.len(), "{label}: count");

    // Every stride-sampled rank, its weight, and the inverted round trip.
    let mut scratch = AccessScratch::new();
    let stride = (oracle.len() / 64).max(1);
    for (k, (w, expected)) in oracle.iter().enumerate().step_by(stride) {
        let k = k as Weight;
        let got = widx
            .ranked_access_into(k, &mut scratch)
            .unwrap_or_else(|| panic!("{label}: missing rank {k}"));
        assert_eq!(got, expected.as_slice(), "{label}: rank {k}");
        assert_eq!(widx.weight_at(k), Some(*w), "{label}: weight at {k}");
        assert_eq!(
            widx.ranked_inverted_access(expected),
            Some(k),
            "{label}: inverted rank {k}"
        );
        assert_eq!(
            widx.weight_of(expected, &mut scratch),
            Some(*w),
            "{label}: weight_of at {k}"
        );
    }
    assert!(
        widx.ranked_access(widx.count()).is_none(),
        "{label}: past end"
    );

    // Min/max extraction (the dichotomy paper's tractable aggregates).
    match (oracle.first(), oracle.last()) {
        (Some((w0, r0)), Some((wn, rn))) => {
            assert_eq!(widx.min_weight(), Some(*w0), "{label}: min weight");
            assert_eq!(widx.min_answer().as_ref(), Some(r0), "{label}: min answer");
            assert_eq!(widx.max_weight(), Some(*wn), "{label}: max weight");
            assert_eq!(widx.max_answer().as_ref(), Some(rn), "{label}: max answer");
        }
        _ => {
            assert_eq!(widx.min_weight(), None, "{label}: empty min");
            assert_eq!(widx.max_answer(), None, "{label}: empty max");
        }
    }

    // Weight-band counting vs a naive filter, plus window consistency.
    let naive_band = |lo: u128, hi: u128| -> Weight {
        oracle.iter().filter(|(w, _)| (lo..hi).contains(w)).count() as Weight
    };
    let mut probes: Vec<(u128, u128)> = vec![(0, u128::MAX)];
    if let (Some(lo), Some(hi)) = (widx.min_weight(), widx.max_weight()) {
        probes.extend([
            (lo, hi),
            (lo.saturating_add(1), hi),
            (lo, hi.saturating_add(1)),
            (hi, hi),
            (hi.saturating_add(1), u128::MAX),
        ]);
    }
    for (lo, hi) in probes {
        assert_eq!(
            widx.weight_range_count(lo..hi),
            naive_band(lo, hi),
            "{label}: band {lo}..{hi}"
        );
        let win = widx.weight_window(lo..hi);
        for k in [win.start, win.start + (win.end - win.start) / 2] {
            if k < win.end {
                let w = widx.weight_at(k).expect("window rank in range");
                assert!(
                    (lo..hi).contains(&w),
                    "{label}: window rank {k} weight {w} outside {lo}..{hi}"
                );
            }
        }
    }
}

#[test]
fn every_tpch_cq_weighted_orders_match_naive() {
    let db = generate(&TpchScale::tiny(), 0xD1CE);
    let mut tractable_total = 0usize;
    let mut intractable_total = 0usize;
    for (name, cq) in rae_tpch::queries::all_cqs() {
        let naive = naive_eval(&cq, &db).unwrap();
        let head = cq.head().to_vec();
        let rows: Vec<Vec<Value>> = naive.rows().map(<[Value]>::to_vec).collect();
        // Sweep realizable orders (bounded — the pure-lex permutation sweep
        // lives in ordered_access.rs); for each, try every order-prefix as
        // the weighted set W under randomized weights.
        let mut realized = 0usize;
        for perm in permutations(head.len()) {
            if realized >= 12 {
                break;
            }
            let order: Vec<Symbol> = perm.iter().map(|&i| head[i].clone()).collect();
            let mut order_realized = false;
            for p in 0..=order.len() {
                let weighted: Vec<Symbol> = order[..p].to_vec();
                let seed = 0xFEED ^ (p as u64) << 8 ^ realized as u64;
                let weights = weights_for(&weighted, &head, &rows, seed);
                let label = format!(
                    "{name} WEIGHT {:?} ORDER BY {:?}",
                    weighted.iter().map(Symbol::as_str).collect::<Vec<_>>(),
                    order.iter().map(Symbol::as_str).collect::<Vec<_>>()
                );
                match WeightedCqIndex::build(&cq, &db, &order, &weights) {
                    Ok(widx) => {
                        order_realized = true;
                        tractable_total += 1;
                        check_weighted(&widx, &rows, &head, &order, &weights, &label);
                    }
                    Err(rae_core::CoreError::Query(
                        rae_query::QueryError::IntractableWeightedOrder { left, right },
                    )) => {
                        order_realized = true; // classification ran on a real order
                        intractable_total += 1;
                        // The witness must be a genuine X+Y pair: both
                        // weighted, co-occurring in no atom.
                        assert!(
                            weighted.contains(&left) && weighted.contains(&right),
                            "{label}: witness ({left}, {right}) not in W"
                        );
                        assert!(
                            !cq.body().iter().any(|a| {
                                let vars = a.vars();
                                vars.contains(&left) && vars.contains(&right)
                            }),
                            "{label}: witness ({left}, {right}) co-occurs in an atom"
                        );
                    }
                    Err(rae_core::CoreError::Query(rae_query::QueryError::UnrealizableOrder {
                        ..
                    })) => {
                        // The underlying lex order is not realizable; no
                        // weighted combination of it can be served. Skip the
                        // remaining prefixes of this permutation.
                        break;
                    }
                    Err(other) => panic!("{label}: unexpected error {other:?}"),
                }
            }
            realized += usize::from(order_realized);
        }
        assert!(realized > 0, "{name}: no realizable order");
    }
    // The sweep must have exercised both sides of the dichotomy.
    assert!(
        tractable_total >= 20,
        "only {tractable_total} tractable combinations checked"
    );
    assert!(
        intractable_total > 0,
        "no intractable weighted order was rejected (suspicious)"
    );
}

#[test]
fn intractable_weighted_orders_are_rejected_with_structured_witnesses() {
    // The paper's X+Y hard case: weights on two variables that never
    // co-occur in an atom. Classification must reject — as a query-layer
    // check and through the index build — without panicking.
    let mut db = Database::new();
    let unary = |vals: &[i64]| {
        Relation::from_rows(
            Schema::new(["a"]).unwrap(),
            vals.iter().map(|&v| vec![Value::Int(v)]),
        )
        .unwrap()
    };
    db.add_relation("R", unary(&[1, 2, 3])).unwrap();
    db.add_relation("S", unary(&[10, 20])).unwrap();
    let cq: ConjunctiveQuery = "Q(x, y) :- R(x), S(y)".parse().unwrap();
    let order: Vec<Symbol> = ["x", "y"].iter().map(Symbol::new).collect();

    // Direct classification.
    match classify_weighted_order(&cq, &order, &order) {
        Err(rae_query::QueryError::IntractableWeightedOrder { left, right }) => {
            assert_ne!(left, right);
            assert!(order.contains(&left) && order.contains(&right));
        }
        other => panic!("expected X+Y rejection, got {other:?}"),
    }

    // Through the build, with actual weights.
    let mut w = VarWeights::new();
    for v in [1i64, 2, 3] {
        w.set("x", Value::Int(v), v as u128);
    }
    for v in [10i64, 20] {
        w.set("y", Value::Int(v), v as u128);
    }
    assert!(matches!(
        WeightedCqIndex::build(&cq, &db, &order, &w),
        Err(rae_core::CoreError::Query(
            rae_query::QueryError::IntractableWeightedOrder { .. }
        ))
    ));

    // Weighted variable not a prefix of the order: structured interleaving
    // witness naming both sides of the violation.
    let mut wy = VarWeights::new();
    wy.set("y", Value::Int(10), 5);
    match WeightedCqIndex::build(&cq, &db, &order, &wy) {
        Err(rae_core::CoreError::Query(rae_query::QueryError::WeightedOrderInterleaved {
            unweighted,
            weighted,
        })) => {
            assert_eq!(unweighted.as_str(), "x");
            assert_eq!(weighted.as_str(), "y");
        }
        other => panic!("expected interleaving rejection, got {other:?}"),
    }

    // Weights on an existential variable are meaningless for answer order.
    let cq2: ConjunctiveQuery = "Q(x) :- R(x), S(y)".parse().unwrap();
    let xonly = [Symbol::new("x")];
    match classify_weighted_order(&cq2, &xonly, &[Symbol::new("y")]) {
        Err(rae_query::QueryError::WeightedExistentialVariable { variable }) => {
            assert_eq!(variable.as_str(), "y");
        }
        other => panic!("expected existential rejection, got {other:?}"),
    }

    // Empty W degenerates to plain lexicographic order — always accepted.
    classify_weighted_order(&cq, &order, &[]).unwrap();
    let widx = WeightedCqIndex::build(&cq, &db, &order, &VarWeights::new()).unwrap();
    assert_eq!(widx.count(), 6);
    assert_eq!(widx.block_count(), 1, "one all-zero-weight block");
}

#[test]
fn weight_sum_overflow_is_structured() {
    // Two co-occurring weighted variables whose value weights sum past
    // u128: the build must fail with `WeightOverflow`, not wrap.
    let mut db = Database::new();
    db.add_relation(
        "R",
        Relation::from_rows(
            Schema::new(["a", "b"]).unwrap(),
            [(1i64, 2i64)]
                .iter()
                .map(|&(x, y)| vec![Value::Int(x), Value::Int(y)]),
        )
        .unwrap(),
    )
    .unwrap();
    let cq: ConjunctiveQuery = "Q(x, y) :- R(x, y)".parse().unwrap();
    let order: Vec<Symbol> = ["x", "y"].iter().map(Symbol::new).collect();
    let mut w = VarWeights::new();
    w.set("x", Value::Int(1), u128::MAX);
    w.set("y", Value::Int(2), 1);
    assert!(matches!(
        WeightedCqIndex::build(&cq, &db, &order, &w),
        Err(rae_core::CoreError::WeightOverflow)
    ));
}

// ---------------------------------------------------------------------
// Randomized differential (proptest): random databases, random weights.
// ---------------------------------------------------------------------

type Edges = Vec<(i64, i64)>;

fn edge_relation(edges: &Edges) -> Relation {
    Relation::from_rows(
        Schema::new(["a", "b"]).unwrap(),
        edges
            .iter()
            .map(|&(u, v)| vec![Value::Int(u), Value::Int(v)]),
    )
    .unwrap()
}

fn edges_strategy() -> impl Strategy<Value = Edges> {
    prop::collection::vec((0..5i64, 0..5i64), 0..15)
}

proptest! {
    #[test]
    fn random_weighted_databases_match_naive(
        r in edges_strategy(),
        s in edges_strategy(),
        wseed in any::<u64>(),
    ) {
        let mut db = Database::new();
        db.add_relation("R", edge_relation(&r)).unwrap();
        db.add_relation("S", edge_relation(&s)).unwrap();
        let cq: ConjunctiveQuery = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
        let head = cq.head().to_vec();
        let order: Vec<Symbol> = ["x", "y", "z"].iter().map(Symbol::new).collect();
        let naive = naive_eval(&cq, &db).unwrap();
        let rows: Vec<Vec<Value>> = naive.rows().map(<[Value]>::to_vec).collect();
        // W = {x} and W = {x, y} are both tractable under ⟨x, y, z⟩
        // ({x, y} co-occur in R); exercise each with random weights.
        for wlen in [1usize, 2] {
            let weighted: Vec<Symbol> = order[..wlen].to_vec();
            let weights = weights_for(&weighted, &head, &rows, wseed ^ wlen as u64);
            let widx = WeightedCqIndex::build(&cq, &db, &order, &weights).unwrap();
            let oracle = sorted_by_weight(&rows, &head, &order, &weights);
            prop_assert_eq!(widx.count() as usize, oracle.len());
            for (k, (w, expected)) in oracle.iter().enumerate() {
                let k = k as Weight;
                prop_assert_eq!(widx.ranked_access(k).as_ref(), Some(expected));
                prop_assert_eq!(widx.weight_at(k), Some(*w));
                prop_assert_eq!(widx.ranked_inverted_access(expected), Some(k));
            }
            // W = {z} under ⟨x, y, z⟩ interleaves — always rejected.
            let bad = weights_for(&[Symbol::new("z")], &head, &rows, wseed);
            if !bad.is_empty() {
                prop_assert!(matches!(
                    WeightedCqIndex::build(&cq, &db, &order, &bad),
                    Err(rae_core::CoreError::Query(
                        rae_query::QueryError::WeightedOrderInterleaved { .. }
                    ))
                ));
            }
        }
    }
}
