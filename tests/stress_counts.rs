//! Stress tests with analytically known answer counts: complete-bipartite
//! chains and stars have closed-form join sizes, so the index can be
//! validated at sizes where naive evaluation is infeasible.

use rae::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Complete bipartite relation `{0..left} × {0..right}` over `(a, b)`.
fn complete(attrs: (&str, &str), left: i64, right: i64) -> Relation {
    let schema = Schema::new([attrs.0, attrs.1]).unwrap();
    let mut rel = Relation::new(schema);
    for x in 0..left {
        for y in 0..right {
            rel.push_row(vec![Value::Int(x), Value::Int(y)]).unwrap();
        }
    }
    rel
}

#[test]
fn chain_count_is_the_product_formula() {
    // R(x1,x2) complete 7×5, S(x2,x3) complete 5×6, T(x3,x4) complete 6×4:
    // every combination joins, so |Q| = 7·5·6·4.
    let mut db = Database::new();
    db.add_relation("R", complete(("a", "b"), 7, 5)).unwrap();
    db.add_relation("S", complete(("a", "b"), 5, 6)).unwrap();
    db.add_relation("T", complete(("a", "b"), 6, 4)).unwrap();
    let q: ConjunctiveQuery = "Q(x1, x2, x3, x4) :- R(x1, x2), S(x2, x3), T(x3, x4)"
        .parse()
        .unwrap();
    let idx = CqIndex::build(&q, &db).unwrap();
    assert_eq!(idx.count(), 7 * 5 * 6 * 4);

    // Uniform spot checks: access + inverted access roundtrip at random
    // positions, and the sequential cursor agrees with access.
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..200 {
        let j = rng.gen_range(0..idx.count());
        let ans = idx.access(j).unwrap();
        assert_eq!(idx.inverted_access(&ans), Some(j));
    }
    let via_cursor: Vec<_> = idx.sequential().take(100).collect();
    let via_access: Vec<_> = idx.enumerate().take(100).collect();
    assert_eq!(via_cursor, via_access);
}

#[test]
fn star_count_multiplies_leaf_degrees() {
    // Center C(x) = {0..10}; leaves complete 10×d_i: |Q| = 10 · d1 · d2 · d3.
    let mut db = Database::new();
    let mut center = Relation::new(Schema::new(["a"]).unwrap());
    for x in 0..10i64 {
        center.push_row(vec![Value::Int(x)]).unwrap();
    }
    db.add_relation("C", center).unwrap();
    db.add_relation("L1", complete(("a", "b"), 10, 3)).unwrap();
    db.add_relation("L2", complete(("a", "b"), 10, 4)).unwrap();
    db.add_relation("L3", complete(("a", "b"), 10, 5)).unwrap();
    let q: ConjunctiveQuery = "Q(x, u, v, w) :- C(x), L1(x, u), L2(x, v), L3(x, w)"
        .parse()
        .unwrap();
    let idx = CqIndex::build(&q, &db).unwrap();
    assert_eq!(idx.count(), 10 * 3 * 4 * 5);
}

#[test]
fn cross_product_of_three_components() {
    let mut db = Database::new();
    db.add_relation("A", complete(("a", "b"), 11, 1)).unwrap();
    db.add_relation("B", complete(("a", "b"), 13, 1)).unwrap();
    db.add_relation("C", complete(("a", "b"), 17, 1)).unwrap();
    let q: ConjunctiveQuery = "Q(x, y, z) :- A(x, xa), B(y, yb), C(z, zc)"
        .parse()
        .unwrap();
    let idx = CqIndex::build(&q, &db).unwrap();
    assert_eq!(idx.count(), 11 * 13 * 17);
    // The permutation over a 3-component cross product emits each answer
    // exactly once.
    let mut got: Vec<_> = idx.random_permutation(StdRng::seed_from_u64(3)).collect();
    got.sort();
    got.dedup();
    assert_eq!(got.len() as u128, idx.count());
}

#[test]
fn weights_survive_large_fanout_products() {
    // Deep chain of complete bipartite relations: the count grows as d^5 and
    // exercises wide Weight arithmetic.
    let d = 12i64;
    let mut db = Database::new();
    for i in 0..5 {
        db.add_relation(format!("E{i}").as_str(), complete(("a", "b"), d, d))
            .unwrap();
    }
    let q: ConjunctiveQuery = "Q(x0, x1, x2, x3, x4, x5) :- E0(x0, x1), E1(x1, x2), E2(x2, x3), \
         E3(x3, x4), E4(x4, x5)"
        .parse()
        .unwrap();
    let idx = CqIndex::build(&q, &db).unwrap();
    let expected = (d as u128).pow(6);
    assert_eq!(idx.count(), expected);
    // First and last positions are accessible.
    assert!(idx.access(0).is_some());
    assert!(idx.access(expected - 1).is_some());
    assert!(idx.access(expected).is_none());
}

#[test]
fn mc_union_counts_follow_inclusion_exclusion_formula() {
    // Two complete bipartite relations sharing a sub-grid: |A ∪ B| is known
    // in closed form.
    let mut db = Database::new();
    db.add_relation("R", complete(("a", "b"), 8, 6)).unwrap(); // 48 pairs
    db.add_relation("S", complete(("a", "b"), 5, 9)).unwrap(); // 45 pairs
    let u: UnionQuery = "Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y).".parse().unwrap();
    let mc = McUcqIndex::build(&u, &db).unwrap();
    // Intersection = grid 5×6 = 30; union = 48 + 45 − 30.
    assert_eq!(mc.count(), 48 + 45 - 30);
    let shuffle_count = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(1))
        .unwrap()
        .count();
    assert_eq!(shuffle_count as u128, mc.count());
}
