//! Chaos lifecycle harness: the PR-2 churn workload and the ordered/union
//! query mixes, executed under seeded fault schedules (`rae-faults`).
//!
//! Invariants checked per seed:
//!
//! 1. **Structured errors only** — every failure observed across the public
//!    API is a structured workspace error; build entry points never unwind
//!    (panics convert to `BuildPanicked` at the catch boundary). The only
//!    places the harness tolerates an unwind are ingest/sweep paths whose
//!    panic-form failpoints (`dict/sweep`, `dict/shard_write`) model a
//!    genuinely crashing mutator — and those must leave the dictionary
//!    recoverable (poison recovery, generation never half-advanced).
//! 2. **Post-retry digest-identical artifacts** — once a build eventually
//!    succeeds under chaos, its `artifact_digest` equals a fault-free build
//!    over the same database state, including runs where the build silently
//!    degraded (radix→comparison sort, parallel→serial).
//! 3. **No stale answers** — answers after recovery match naive evaluation
//!    of the current database.
//! 4. **Zero-alloc steady state after recovery** — the access hot path is
//!    still allocation-free once the chaos guard drops.
//!
//! Each test serializes behind one mutex: fault schedules and the
//! dictionary are process-global. Seeds come from `CHAOS_SEEDS`
//! (comma-separated) so CI can widen the sweep without editing the test.
#![cfg(feature = "failpoints")]

use rae::prelude::*;
use rae_bench::alloc_counter::{count_allocations, CountingAllocator};
use rae_bench::preprocessing::artifact_digest;
use rae_faults::{install, FaultKind, FaultSchedule};
use rae_tpch::churn::{self, ChurnConfig, CHURN_QUERY};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Silences panic backtraces while injected Panic-kind faults fire; restores
/// the previous hook on drop.
#[allow(deprecated)] // PanicInfo is the only hook type namable on older toolchains
struct QuietPanics {
    #[allow(clippy::type_complexity)] // std::panic::take_hook's exact return type
    prev: Option<Box<dyn Fn(&std::panic::PanicInfo<'_>) + Sync + Send>>,
}

impl QuietPanics {
    fn new() -> Self {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics { prev: Some(prev) }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

/// Seeds for the chaos sweep: `CHAOS_SEEDS="1,2,3"` overrides the default
/// quartet (the CI chaos job passes 8, the nightly sweep 64).
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![11, 42, 1337, 0xC0FFEE],
    }
}

/// What one chaotic attempt of an operation produced.
enum Attempt<T> {
    Done(T),
    /// A structured error; the payload is (description, is_transient).
    Failed(String, bool),
}

/// Drives `op` until it succeeds, asserting every structured failure along
/// the way is transient (under fault injection nothing permanent may be
/// reported). An unwinding attempt — a Panic-kind fault at a site without
/// an error channel, the supervisor's restart case — also counts as
/// retryable.
fn persist<T>(what: &str, mut op: impl FnMut() -> Attempt<T>) -> T {
    for _ in 0..256 {
        match catch_unwind(AssertUnwindSafe(&mut op)) {
            Ok(Attempt::Done(v)) => return v,
            Ok(Attempt::Failed(desc, transient)) => {
                assert!(
                    transient,
                    "{what}: non-transient structured error under injected faults: {desc}"
                );
            }
            Err(_) => {}
        }
    }
    panic!("{what} did not converge within 256 chaotic attempts");
}

fn data_attempt<T>(r: Result<T, rae_data::DataError>) -> Attempt<T> {
    match r {
        Ok(v) => Attempt::Done(v),
        Err(e) => {
            let transient = e.is_transient();
            Attempt::Failed(e.to_string(), transient)
        }
    }
}

fn core_attempt<T>(r: Result<T, rae_core::CoreError>) -> Attempt<T> {
    match r {
        Ok(v) => Attempt::Done(v),
        Err(e) => {
            let transient = e.is_transient();
            Attempt::Failed(e.to_string(), transient)
        }
    }
}

fn serve_attempt<T>(r: Result<T, ServeError>) -> Attempt<T> {
    match r {
        Ok(v) => Attempt::Done(v),
        Err(e) => {
            let transient = e.is_transient();
            Attempt::Failed(e.to_string(), transient)
        }
    }
}

fn churn_config(seed: u64) -> ChurnConfig {
    ChurnConfig {
        cycles: 3,
        orders_per_cycle: 64,
        seed,
        threads: 2,
    }
}

/// The full churn lifecycle (drop → sweep → ingest → build → query) under a
/// mixed Error/Panic chaos schedule, one run per seed. Checks invariants
/// 1–4 of the module docs.
#[test]
fn chaos_churn_lifecycle_recovers_with_identical_artifacts() {
    let _s = serial();
    let q: ConjunctiveQuery = CHURN_QUERY.parse().unwrap();
    let mut total_fired = 0usize;

    for seed in chaos_seeds() {
        let _quiet = QuietPanics::new();
        let cfg = churn_config(seed);
        let mut db = Database::new();
        // Per-hit probability low enough that ingest (hundreds of intern
        // hits per attempt) converges fast, high enough that faults fire.
        let guard = install(FaultSchedule::chaos(seed, 0.002));

        let mut chaotic_digest = 0u64;
        let mut chaotic_index: Option<CqIndex> = None;
        for cycle in 0..cfg.cycles {
            persist("drop_and_reclaim", || {
                data_attempt(churn::drop_and_reclaim(&mut db))
            });
            persist("ingest_cycle", || {
                data_attempt(churn::ingest_cycle(&mut db, cycle, &cfg))
            });
            // Builds must never unwind: no catch_unwind here — a panic
            // escaping `CqIndex::build` fails the whole test (invariant 1).
            let idx = persist("CqIndex::build", || core_attempt(CqIndex::build(&q, &db)));
            chaotic_digest = artifact_digest(&idx);
            chaotic_index = Some(idx);
        }
        total_fired += rae_faults::fired().len();
        drop(guard);

        // Invariant 2: the eventually-successful chaotic build is
        // artifact-identical to a fault-free build of the same state.
        let clean = CqIndex::build(&q, &db).unwrap();
        assert_eq!(
            artifact_digest(&clean),
            chaotic_digest,
            "seed {seed}: post-retry artifacts must be digest-identical"
        );

        // Invariant 3: no stale answers — the chaotic index agrees with
        // naive evaluation of the database as it stands now.
        let idx = chaotic_index.unwrap();
        let expected = naive_eval(&q, &db).unwrap();
        assert_eq!(idx.count(), expected.len() as u128, "seed {seed}");
        for row in expected.rows() {
            assert!(
                idx.inverted_access(row).is_some(),
                "seed {seed}: answer {row:?} missing after recovery"
            );
        }

        // Invariant 4: zero-alloc steady state after recovery.
        let mut scratch = AccessScratch::new();
        idx.access_into(0, &mut scratch).unwrap(); // warm-up
        let n = idx.count();
        let ((), allocs) = count_allocations(|| {
            for j in 0..n.min(512) {
                std::hint::black_box(idx.access_into(j, &mut scratch).unwrap());
            }
        });
        assert_eq!(
            allocs, 0,
            "seed {seed}: access hot path must stay allocation-free after chaos"
        );
    }
    assert!(
        total_fired > 0,
        "the chaos schedules never fired a single fault — the sweep is vacuous"
    );
}

/// A build forced to fail — by an Error fault and by a Panic fault — must
/// leave the `Database` and the dictionary observably unchanged
/// (generation, slot accounting, relation contents), and a retry after
/// disarming must succeed.
#[test]
fn mid_build_fault_leaves_database_and_dict_unchanged() {
    let _s = serial();
    let _quiet = QuietPanics::new();
    let q: ConjunctiveQuery = CHURN_QUERY.parse().unwrap();
    let cfg = churn_config(7);
    let mut db = Database::new();
    churn::ingest_cycle(&mut db, 0, &cfg).unwrap();

    for kind in [FaultKind::Error, FaultKind::Panic] {
        let snapshot = (
            rae_data::dict::current_generation(),
            rae_data::dict::interned_count(),
            rae_data::dict::allocated_slot_count(),
            rae_data::dict::free_slot_count(),
            db.relation("churn_orders").unwrap().len(),
            db.relation("churn_lineitem").unwrap().len(),
        );
        let _g = install(FaultSchedule::new(1).always("build/node", kind));
        let err = CqIndex::build(&q, &db).expect_err("the forced fault must fail the build");
        match (kind, &err) {
            (FaultKind::Error, rae_core::CoreError::FaultInjected { site }) => {
                assert_eq!(*site, "build/node");
            }
            (FaultKind::Panic, rae_core::CoreError::BuildPanicked { .. }) => {}
            other => panic!("unexpected error shape for {kind:?}: {other:?}"),
        }
        assert!(
            err.is_transient(),
            "forced-fault build errors are retryable"
        );
        let after = (
            rae_data::dict::current_generation(),
            rae_data::dict::interned_count(),
            rae_data::dict::allocated_slot_count(),
            rae_data::dict::free_slot_count(),
            db.relation("churn_orders").unwrap().len(),
            db.relation("churn_lineitem").unwrap().len(),
        );
        assert_eq!(
            snapshot, after,
            "{kind:?}: a failed build must not disturb the database or dictionary"
        );
    }

    // Disarmed retry succeeds — the canonical with_backoff use.
    let idx = rae_faults::retry::with_backoff(&rae_faults::retry::RetryPolicy::default(), |_| {
        CqIndex::build(&q, &db)
    })
    .unwrap();
    assert!(idx.count() > 0);
}

/// With `with_backoff` driving retries *while the schedule stays armed*, a
/// first-hit fault (fail the 0th hit of `build/node`) is absorbed: attempt
/// zero fails with a transient error, attempt one succeeds.
#[test]
fn with_backoff_absorbs_first_hit_faults() {
    let _s = serial();
    let _quiet = QuietPanics::new();
    let q: ConjunctiveQuery = CHURN_QUERY.parse().unwrap();
    let mut db = Database::new();
    churn::ingest_cycle(&mut db, 0, &churn_config(9)).unwrap();

    for kind in [FaultKind::Error, FaultKind::Panic] {
        let _g = install(FaultSchedule::new(2).nth_hit("build/node", 0, kind));
        let idx =
            rae_faults::retry::with_backoff(&rae_faults::retry::RetryPolicy::default(), |_| {
                CqIndex::build(&q, &db)
            })
            .unwrap_or_else(|e| panic!("{kind:?}: retry should have absorbed the fault: {e}"));
        assert!(idx.count() > 0);
        let fired = rae_faults::fired();
        assert_eq!(
            fired.len(),
            1,
            "{kind:?}: exactly the scheduled fault fires"
        );
        assert_eq!(fired[0].site, "build/node");
    }
}

/// A panicking interner poisons its shard lock pre-mutation; the next
/// intern of the same shard must recover the guard and succeed with a
/// correct mapping (satellite: shard-lock poisoning fix).
#[test]
fn shard_lock_poisoning_recovers() {
    let _s = serial();
    let _quiet = QuietPanics::new();
    let probe = Value::str("chaos-poison-probe");
    {
        let _g = install(FaultSchedule::new(3).always("dict/shard_write", FaultKind::Panic));
        let unwound = catch_unwind(AssertUnwindSafe(|| rae_data::dict::intern(&probe))).is_err();
        assert!(unwound, "the shard-write fault must panic inside intern");
    }
    // Disarmed: the poisoned shard must serve reads and writes again.
    let code = rae_data::dict::intern(&probe).expect("poisoned shard must recover");
    assert_eq!(rae_data::dict::code_of(&probe), Some(code));
    let again = rae_data::dict::intern(&probe).unwrap();
    assert_eq!(
        code, again,
        "recovered shard must keep a consistent mapping"
    );
}

/// A sweep killed mid-flight (Panic at `dict/sweep`) must never
/// half-advance the generation: either the sweep happened entirely (new
/// generation) or not at all — and a retry completes it.
#[test]
fn killed_sweep_never_half_advances_the_generation() {
    let _s = serial();
    let _quiet = QuietPanics::new();
    let cfg = churn_config(13);
    let mut db = Database::new();
    churn::ingest_cycle(&mut db, 0, &cfg).unwrap();
    let before = rae_data::dict::current_generation();
    {
        let _g = install(FaultSchedule::new(4).always("dict/sweep", FaultKind::Panic));
        let unwound = catch_unwind(AssertUnwindSafe(|| db.advance_generation())).is_err();
        assert!(unwound, "the sweep fault must panic");
    }
    // The failpoint sits at the sweep entry: the generation must not have
    // moved, and the interrupted sweep must be cleanly retryable.
    assert_eq!(rae_data::dict::current_generation(), before);
    let after = db.advance_generation().unwrap();
    assert_eq!(after, before + 1, "retried sweep advances exactly once");
}

/// Forced degradations (radix→comparison sort, parallel→serial build) must
/// be observable in the degrade counters and *artifact-invisible*: the
/// degraded build digests identically to the unfaulted one.
#[test]
fn forced_degradations_are_artifact_invisible() {
    let _s = serial();
    let _quiet = QuietPanics::new();
    let q: ConjunctiveQuery = CHURN_QUERY.parse().unwrap();
    let mut db = Database::new();
    churn::ingest_cycle(&mut db, 0, &churn_config(21)).unwrap();
    let clean_digest = artifact_digest(&CqIndex::build(&q, &db).unwrap());

    rae_faults::degrade::reset();
    {
        let _g = install(
            FaultSchedule::new(5)
                .always("sort/scratch", FaultKind::Error)
                .always("build/spawn", FaultKind::Error),
        );
        let degraded = CqIndex::build(&q, &db).unwrap();
        assert_eq!(
            artifact_digest(&degraded),
            clean_digest,
            "degraded builds must produce byte-identical artifacts"
        );
    }
    assert!(
        rae_faults::degrade::count("sort/scratch") > 0,
        "the sort degradation must be recorded"
    );
}

/// Error-kind faults on the union rank structure's leapfrog walk force the
/// per-member merge fallback; the answers must be unchanged.
#[test]
fn leapfrog_degradation_preserves_union_answers() {
    let _s = serial();
    let _quiet = QuietPanics::new();
    let mut db = Database::new();
    let rel = |rows: &[[i64; 2]]| {
        Relation::from_rows(
            Schema::new(["a", "b"]).unwrap(),
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect()),
        )
        .unwrap()
    };
    let shared: Vec<[i64; 2]> = (0..60).map(|i| [i, i % 5]).collect();
    let mut r_rows = shared.clone();
    r_rows.push([100, 0]);
    let mut s_rows = shared;
    s_rows.push([200, 1]);
    db.add_relation("R", rel(&r_rows)).unwrap();
    db.add_relation("S", rel(&s_rows)).unwrap();
    let u: UnionQuery = "Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y).".parse().unwrap();
    let order = [Symbol::new("x"), Symbol::new("y")];

    let baseline = RankedUcq::build(&u, &db, &order).unwrap();
    let expected: Vec<Vec<Value>> = baseline.enumerate().collect();

    rae_faults::degrade::reset();
    let _g = install(FaultSchedule::new(6).always("ranked/leapfrog", FaultKind::Error));
    let degraded = RankedUcq::build(&u, &db, &order).unwrap();
    assert!(
        rae_faults::degrade::count("ranked/leapfrog") > 0,
        "the forced merge fallback must be recorded"
    );
    assert_eq!(degraded.count(), baseline.count());
    let got: Vec<Vec<Value>> = degraded.enumerate().collect();
    assert_eq!(got, expected, "merge fallback must not change any answer");
}

/// The concurrent serving lifecycle under chaos: a `ServeWriter` drives
/// apply/publish/fold rounds with a seeded fault schedule armed while
/// reader threads hammer the published snapshots. Invariants:
///
/// * every structured writer failure is **transient** (the `persist`
///   driver panics on any permanent error under injection);
/// * readers never observe a **torn snapshot** — per refreshed snapshot
///   the access↔inverted-access bijection holds at probe ranks, and the
///   publication epoch is monotone per reader;
/// * after the schedule disarms, the chaotically-published overlay
///   snapshot and a clean fold both digest identically to a fault-free
///   fold-and-rebuild oracle over the same logical rows — retried
///   commits/folds are idempotent, so chaos may cost time but never
///   answers.
#[test]
fn chaos_concurrent_serving_recovers_digest_identical() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let _s = serial();
    let q: ConjunctiveQuery = CHURN_QUERY.parse().unwrap();
    let order: Vec<Symbol> = ["o", "t", "p"].into_iter().map(Symbol::new).collect();
    let mut total_fired = 0usize;

    for seed in chaos_seeds() {
        let _quiet = QuietPanics::new();
        // Fault-free base: one churn cohort.
        let mut db = Database::new();
        churn::ingest_cycle(&mut db, 0, &churn_config(seed)).unwrap();
        let (mut w, idx) =
            ServeWriter::new(q.clone(), &db, &order, AdmissionPolicy::default()).unwrap();
        assert!(
            w.is_delta_overlay(),
            "the churn query is full and self-join-free"
        );

        // Mirror of the logical rows. It advances once per round, before
        // the chaotic commit: retried commits are idempotent set
        // mutations, so however many attempts a round takes, the served
        // state converges to the mirror. Deduped at init — the serving
        // row state is set-semantic, while the churn generator can emit
        // duplicate lineitem rows.
        let dedup = |mut rows: Vec<Vec<Value>>| {
            rows.sort_unstable();
            rows.dedup();
            rows
        };
        let mut orders: Vec<Vec<Value>> = dedup(
            db.relation("churn_orders")
                .unwrap()
                .rows()
                .map(<[Value]>::to_vec)
                .collect(),
        );
        let mut lines: Vec<Vec<Value>> = dedup(
            db.relation("churn_lineitem")
                .unwrap()
                .rows()
                .map(<[Value]>::to_vec)
                .collect(),
        );

        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for r in 0..3 {
            let stop = Arc::clone(&stop);
            let idx = idx.clone();
            readers.push(
                std::thread::Builder::new()
                    .name(format!("chaos-serve-reader-{r}"))
                    .spawn(move || {
                        let mut reader = idx.reader();
                        let mut last_epoch = 0u64;
                        let mut checks = 0usize;
                        while !stop.load(Ordering::Relaxed) {
                            let snap = reader.refresh();
                            let e = snap.epoch();
                            assert!(e >= last_epoch, "publication epochs must be monotone");
                            last_epoch = e;
                            let n = snap.count();
                            for k in [0, n / 2, n.saturating_sub(1)] {
                                if k >= n {
                                    continue;
                                }
                                let row = snap
                                    .ordered_access(k)
                                    .expect("rank below count must resolve");
                                assert_eq!(
                                    snap.ordered_inverted_access(&row),
                                    Some(k),
                                    "torn snapshot: rank {k} does not round-trip"
                                );
                                checks += 1;
                            }
                            std::thread::yield_now();
                        }
                        checks
                    })
                    .unwrap(),
            );
        }

        let guard = install(FaultSchedule::chaos(seed, 0.002));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let mut fresh = 0i64;
        for round in 0..12usize {
            let mut batch = Batch::new();
            for _ in 0..2 {
                if orders.len() > 8 {
                    let i = rng.gen_range(0..orders.len());
                    batch.delete("churn_orders", orders.swap_remove(i));
                }
                if lines.len() > 8 {
                    let i = rng.gen_range(0..lines.len());
                    batch.delete("churn_lineitem", lines.swap_remove(i));
                }
            }
            for _ in 0..3 {
                fresh += 1;
                let o = Value::Int(7_000_000_000 + fresh);
                let orow = vec![o.clone(), Value::str(format!("chaos-{seed}-{fresh}"))];
                batch.insert("churn_orders", orow.clone());
                orders.push(orow);
                let lrow = vec![o, Value::Int(fresh)];
                batch.insert("churn_lineitem", lrow.clone());
                lines.push(lrow);
            }
            persist("serve commit", || serve_attempt(w.commit(&batch)));
            if round % 5 == 4 {
                persist("serve fold", || serve_attempt(w.fold_now()));
            }
        }
        total_fired += rae_faults::fired().len();
        drop(guard);

        // The last rounds after the final fold left a pending overlay, so
        // the digest comparison below covers base ⊎ delta ∖ T, not just a
        // freshly folded base.
        let chaotic = idx.snapshot();
        assert!(
            chaotic.delta_count() > 0,
            "seed {seed}: the final chaotic snapshot must be serving a live overlay"
        );

        // Fault-free fold-and-rebuild oracle over the mirrored rows.
        let oracle = {
            let mut odb = Database::new();
            odb.add_relation(
                "churn_orders",
                Relation::from_rows(
                    Schema::new(["co_orderkey", "co_custtag"]).unwrap(),
                    orders.iter().cloned(),
                )
                .unwrap(),
            )
            .unwrap();
            odb.add_relation(
                "churn_lineitem",
                Relation::from_rows(
                    Schema::new(["cl_orderkey", "cl_partkey"]).unwrap(),
                    lines.iter().cloned(),
                )
                .unwrap(),
            )
            .unwrap();
            let oidx = OrderedCqIndex::build(&q, &odb, w.order()).unwrap();
            let mut rows: Vec<Vec<Value>> = Vec::new();
            let mut e = oidx.enumerate();
            while let Some(row) = e.next_ref() {
                rows.push(row.to_vec());
            }
            enumeration_digest(rows.iter().map(Vec::as_slice))
        };
        assert_eq!(
            chaotic.digest(),
            oracle,
            "seed {seed}: the chaotically-published overlay must equal the oracle"
        );

        // A clean fold drains the overlay and must serve the identical
        // answer sequence.
        w.fold_now().unwrap();
        let folded = idx.snapshot();
        assert_eq!(
            folded.digest(),
            oracle,
            "seed {seed}: folded snapshot digest"
        );
        assert_eq!(folded.tombstone_count(), 0, "seed {seed}");
        assert_eq!(folded.delta_count(), 0, "seed {seed}");

        stop.store(true, Ordering::Relaxed);
        let mut checks = 0usize;
        for h in readers {
            checks += h
                .join()
                .expect("a reader thread panicked — torn snapshot observed");
        }
        assert!(
            checks > 0,
            "seed {seed}: readers validated no snapshot at all"
        );
    }
    assert!(
        total_fired > 0,
        "the serving chaos sweep never fired a single fault — the sweep is vacuous"
    );
}

/// Injected sampler faults read as rejected attempts: `sample()` still
/// terminates with a correct answer and `attempt_into` faults are `None`,
/// never a panic or a wrong tuple.
#[test]
fn sampler_faults_read_as_rejected_attempts() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let _s = serial();
    let _quiet = QuietPanics::new();
    let q: ConjunctiveQuery = CHURN_QUERY.parse().unwrap();
    let mut db = Database::new();
    churn::ingest_cycle(&mut db, 0, &churn_config(31)).unwrap();
    let idx = CqIndex::build(&q, &db).unwrap();
    let sampler = EwSampler::new(&idx);
    let mut rng = StdRng::seed_from_u64(99);
    let mut scratch = AccessScratch::new();

    let _g = install(FaultSchedule::new(8).probability("sampler/attempt", 0.5, FaultKind::Error));
    let mut rejected = 0usize;
    let mut accepted = 0usize;
    for _ in 0..200 {
        match sampler.attempt_into(&mut rng, &mut scratch) {
            Some(t) => {
                accepted += 1;
                assert!(idx.inverted_access(t).is_some(), "sampled a non-answer");
            }
            None => rejected += 1,
        }
    }
    assert!(rejected > 0, "p=0.5 over 200 attempts must reject some");
    assert!(accepted > 0, "p=0.5 over 200 attempts must accept some");
}
