//! Example 5.1 from the paper: the union of the two free-connex CQs
//!
//! ```text
//! Q1(x,y,z) :- R(x,y), S(y,z)      Q2(x,y,z) :- S(y,z), T(x,z)
//! ```
//!
//! has no efficient random access (under the Triangle hypothesis) because
//! counting the union decides triangle existence:
//! `|Q∪(D)| < |Q1(D)| + |Q2(D)|  ⟺  Q1 ∩ Q2 ≠ ∅  ⟺  D has a "triangle"`.
//!
//! We verify (a) both members are individually tractable, (b) our mc-UCQ
//! builder — whose existence would contradict the lower bound if it accepted
//! this union — rejects it (the members do not share a template), and
//! (c) the REnum(UCQ) algorithm, which the paper proves *does* work here,
//! enumerates the union correctly, and its count indeed detects planted
//! triangles.

use rae::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn edge_relation(edges: &[(i64, i64)]) -> Relation {
    Relation::from_rows(
        Schema::new(["a", "b"]).unwrap(),
        edges
            .iter()
            .map(|&(u, v)| vec![Value::Int(u), Value::Int(v)]),
    )
    .unwrap()
}

fn example_queries() -> (ConjunctiveQuery, ConjunctiveQuery, UnionQuery) {
    let q1: ConjunctiveQuery = "Q1(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let q2: ConjunctiveQuery = "Q2(x, y, z) :- S(y, z), T(x, z)".parse().unwrap();
    let u = UnionQuery::new(vec![q1.clone(), q2.clone()]).unwrap();
    (q1, q2, u)
}

fn db_from(r: &[(i64, i64)], s: &[(i64, i64)], t: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.add_relation("R", edge_relation(r)).unwrap();
    db.add_relation("S", edge_relation(s)).unwrap();
    db.add_relation("T", edge_relation(t)).unwrap();
    db
}

#[test]
fn members_are_individually_tractable() {
    let (q1, q2, _) = example_queries();
    assert_eq!(classify(&q1), CqClass::FreeConnex);
    assert_eq!(classify(&q2), CqClass::FreeConnex);

    let db = db_from(&[(1, 2)], &[(2, 3)], &[(1, 3)]);
    // Each member supports counting, access, and inverted access.
    for q in [&q1, &q2] {
        let idx = CqIndex::build(q, &db).unwrap();
        assert_eq!(idx.count(), 1);
        let a = idx.access(0).unwrap();
        assert_eq!(idx.inverted_access(&a), Some(0));
    }
}

#[test]
fn mc_ucq_builder_rejects_the_union() {
    // A shared-template structure for this union would yield efficient
    // random access and contradict the Example 5.1 lower bound; the builder
    // must refuse it.
    let (_, _, u) = example_queries();
    let db = db_from(&[(1, 2)], &[(2, 3)], &[(1, 3)]);
    match rae_core::McUcqIndex::build(&u, &db) {
        Err(rae_core::CoreError::IncompatibleTemplates { .. }) => {}
        other => panic!("expected IncompatibleTemplates, got {other:?}"),
    }
}

#[test]
fn union_count_detects_planted_triangles() {
    let (q1, q2, u) = example_queries();

    // Graph 1: R(1,2), S(2,3), T(1,3) — the triangle (1,2,3).
    let db_triangle = db_from(&[(1, 2), (4, 5)], &[(2, 3), (5, 6)], &[(1, 3), (9, 9)]);
    // Graph 2: same sizes, no (x,y,z) with R(x,y), S(y,z), T(x,z).
    let db_free = db_from(&[(1, 2), (4, 5)], &[(2, 3), (5, 6)], &[(7, 3), (9, 9)]);

    for (db, expect_triangle) in [(&db_triangle, true), (&db_free, false)] {
        let c1 = CqIndex::build(&q1, db).unwrap().count();
        let c2 = CqIndex::build(&q2, db).unwrap().count();
        let union_count = UcqShuffle::build(&u, db, StdRng::seed_from_u64(1))
            .unwrap()
            .count() as u128;
        let naive = naive_eval_union(&u, db).unwrap();
        assert_eq!(union_count, naive.len() as u128);
        assert_eq!(
            union_count < c1 + c2,
            expect_triangle,
            "the union-count triangle test must match the planted structure"
        );
    }
}

#[test]
fn renum_ucq_still_enumerates_the_hard_union() {
    // Theorem 5.4: REnum(UCQ) works for ANY union of free-connex CQs,
    // including this one — uniform order, no duplicates.
    let (_, _, u) = example_queries();
    let db = db_from(
        &[(1, 2), (2, 2), (4, 5)],
        &[(2, 3), (2, 2), (5, 6)],
        &[(1, 3), (2, 2), (4, 6)],
    );
    let expected = naive_eval_union(&u, &db).unwrap();
    let mut got: Vec<Vec<Value>> = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(5))
        .unwrap()
        .collect();
    assert_eq!(got.len(), expected.len());
    got.sort();
    got.dedup();
    assert_eq!(got.len(), expected.len());
    for row in expected.rows() {
        assert!(got.iter().any(|g| g.as_slice() == row));
    }
}
