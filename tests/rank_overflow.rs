//! Extreme-cardinality regression tests for rank arithmetic (ISSUE 10
//! satellite): factorized answer counts close to `u128::MAX` must keep
//! every rank computation exact, counts *past* `u128::MAX` must surface
//! as [`rae_core::CoreError::WeightOverflow`], and union rank sums that
//! leave the `u128` rank space must surface as the structured
//! `CapacityExceeded` rank-overflow sentinel — never a debug panic or a
//! release-mode wraparound.
//!
//! The instances are cross products of unary relations: `n` atoms of
//! domain size `d` hold `d^n` answers from `n·d` tuples, so the rank
//! space is astronomically larger than the database and the mixed-radix
//! oracle for the `k`-th answer is exact arithmetic.

use rae::prelude::*;

const DOM: i64 = 255;

/// Adds unary relations `{prefix}1..={prefix}{vars}`, each with the
/// domain `base..base + DOM`.
fn add_cross_relations(db: &mut Database, prefix: &str, vars: usize, base: i64) {
    for i in 1..=vars {
        let rel = Relation::from_rows(
            Schema::new(["a"]).unwrap(),
            (0..DOM).map(|v| vec![Value::Int(base + v)]),
        )
        .unwrap();
        db.add_relation(format!("{prefix}{i}"), rel).unwrap();
    }
}

/// `Q(x1, …, xn) :- P1(x1), …, Pn(xn).` as query text.
fn cross_query_text(prefix: &str, vars: usize) -> String {
    let head: Vec<String> = (1..=vars).map(|i| format!("x{i}")).collect();
    let body: Vec<String> = (1..=vars).map(|i| format!("{prefix}{i}(x{i})")).collect();
    format!("Q({}) :- {}", head.join(", "), body.join(", "))
}

fn order_vars(vars: usize) -> Vec<Symbol> {
    (1..=vars).map(|i| Symbol::new(format!("x{i}"))).collect()
}

/// The mixed-radix oracle: under `ORDER BY x1, …, xn` with every domain
/// sorted ascending, the `k`-th answer is `k` written in base `DOM`,
/// most-significant digit first.
fn radix_answer(k: u128, vars: usize, base: i64) -> Vec<Value> {
    (0..vars)
        .map(|i| {
            let place = (DOM as u128).pow((vars - 1 - i) as u32);
            Value::Int(base + ((k / place) % DOM as u128) as i64)
        })
        .collect()
}

#[test]
fn near_u128_cross_product_ranks_are_exact() {
    // 255^16 ≈ 3.19e38 answers — within a factor 1.07 of u128::MAX — out
    // of 16·255 = 4080 tuples.
    const VARS: usize = 16;
    let mut db = Database::new();
    add_cross_relations(&mut db, "R", VARS, 0);
    let cq: ConjunctiveQuery = cross_query_text("R", VARS).parse().unwrap();
    let order = order_vars(VARS);
    let index = OrderedCqIndex::build(&cq, &db, &order).unwrap();

    let total = (DOM as u128).pow(VARS as u32);
    assert_eq!(index.count(), total);

    // Ranks spread across the whole space, including both extremes and
    // values engineered to carry into every digit.
    let probes = [
        0,
        1,
        DOM as u128 - 1,
        DOM as u128,
        (DOM as u128).pow(8) + 12_345,
        total / 3,
        total / 2,
        total - 2,
        total - 1,
    ];
    for k in probes {
        let expected = radix_answer(k, VARS, 0);
        let got = index
            .ordered_access(k)
            .unwrap_or_else(|| panic!("rank {k} < count"));
        assert_eq!(got, expected, "rank {k}");
        assert_eq!(
            index.ordered_inverted_access(&expected),
            Some(k),
            "inverted rank {k}"
        );
    }
    assert!(index.ordered_access(total).is_none());

    // Prefix range counting at the top digit: one value of x1 owns
    // exactly 255^15 consecutive ranks.
    let window = index
        .range_of_prefix(std::slice::from_ref(&Value::Int(7)))
        .unwrap();
    assert_eq!(window.start, 7 * (DOM as u128).pow((VARS - 1) as u32));
    assert_eq!(
        window.end - window.start,
        (DOM as u128).pow((VARS - 1) as u32)
    );
}

#[test]
fn counts_past_u128_fail_with_weight_overflow() {
    // One more atom: 255^17 ≈ 8.1e40 > u128::MAX. The count itself no
    // longer fits the rank space, so the build must refuse.
    const VARS: usize = 17;
    let mut db = Database::new();
    add_cross_relations(&mut db, "R", VARS, 0);
    let cq: ConjunctiveQuery = cross_query_text("R", VARS).parse().unwrap();
    assert!(matches!(
        CqIndex::build(&cq, &db),
        Err(rae_core::CoreError::WeightOverflow)
    ));
    assert!(matches!(
        OrderedCqIndex::build(&cq, &db, &order_vars(VARS)),
        Err(rae_core::CoreError::WeightOverflow)
    ));
}

/// Asserts the structured rank-overflow sentinel: `CapacityExceeded`
/// whose `count` is the `usize::MAX` marker (the quantity overflowed the
/// `u128` rank space; there is no meaningful count to report).
fn assert_rank_overflow<T: std::fmt::Debug>(result: rae_core::Result<T>, context: &str) {
    match result {
        Err(rae_core::CoreError::CapacityExceeded { what, count }) => {
            assert_eq!(count, usize::MAX, "{context}: sentinel count");
            let msg = rae_core::CoreError::CapacityExceeded { what, count }.to_string();
            assert!(
                msg.contains("overflowed the u128 rank space"),
                "{context}: display should name the rank space, got {msg:?}"
            );
        }
        other => panic!("{context}: expected rank-overflow CapacityExceeded, got {other:?}"),
    }
}

#[test]
fn union_rank_sums_past_u128_are_structured_errors() {
    // Two disjoint cross products of 255^16 answers each: every member
    // fits the rank space on its own, but their union rank arithmetic
    // (Σ member counts, inclusion–exclusion subset sums) does not —
    // 2·255^16 > u128::MAX. Every union entry point must reject at build
    // time with the structured sentinel, which is also what makes the
    // access-time checked sums provably unreachable for built indexes.
    const VARS: usize = 16;
    let mut db = Database::new();
    add_cross_relations(&mut db, "R", VARS, 0);
    add_cross_relations(&mut db, "S", VARS, 1_000);
    let order = order_vars(VARS);

    // Pre-built members into the general-union structure.
    let q_r: ConjunctiveQuery = cross_query_text("R", VARS).parse().unwrap();
    let q_s: ConjunctiveQuery = cross_query_text("S", VARS).parse().unwrap();
    let m_r = OrderedCqIndex::build(&q_r, &db, &order).unwrap();
    let m_s = OrderedCqIndex::build(&q_s, &db, &order).unwrap();
    assert_eq!(m_r.count().checked_add(m_s.count()), None, "premise");
    assert_rank_overflow(
        RankedUcq::from_members(vec![m_r, m_s]),
        "RankedUcq::from_members",
    );

    // The same union through the query-driven builders.
    let ucq: UnionQuery = format!(
        "{}. {}.",
        cross_query_text("R", VARS),
        cross_query_text("S", VARS)
    )
    .parse()
    .unwrap();
    assert_rank_overflow(
        OrderedMcUcqIndex::build(&ucq, &db, &order),
        "OrderedMcUcqIndex::build",
    );
    assert_rank_overflow(McUcqIndex::build(&ucq, &db), "McUcqIndex::build");
    assert_rank_overflow(RankedUcq::build(&ucq, &db, &order), "RankedUcq::build");
}
