//! Property-based tests for the union algorithms: Algorithm 5 (REnum(UCQ))
//! and the Theorem 5.5 mc-UCQ random access, against naive union evaluation
//! and a reference implementation of the Durand–Strozecki order.

use proptest::prelude::*;
use rae::prelude::*;
use rae_data::FxHashSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

type Edges = Vec<(i64, i64)>;

fn edge_relation(edges: &Edges) -> Relation {
    Relation::from_rows(
        Schema::new(["a", "b"]).unwrap(),
        edges
            .iter()
            .map(|&(u, v)| vec![Value::Int(u), Value::Int(v)]),
    )
    .unwrap()
}

fn db3(r: &Edges, s: &Edges, t: &Edges) -> Database {
    let mut db = Database::new();
    db.add_relation("R", edge_relation(r)).unwrap();
    db.add_relation("S", edge_relation(s)).unwrap();
    db.add_relation("T", edge_relation(t)).unwrap();
    db
}

fn edges_strategy() -> impl Strategy<Value = Edges> {
    prop::collection::vec((0..4i64, 0..4i64), 0..14)
}

/// Reference Algorithm 6 (Durand–Strozecki) over explicit member sequences.
fn ds_reference(seqs: &[Vec<Vec<Value>>]) -> Vec<Vec<Value>> {
    if seqs.len() == 1 {
        return seqs[0].clone();
    }
    let b = ds_reference(&seqs[1..]);
    let b_set: FxHashSet<&Vec<Value>> = b.iter().collect();
    let mut out = Vec::new();
    let mut b_iter = b.iter();
    for a in &seqs[0] {
        if b_set.contains(a) {
            out.push(b_iter.next().expect("enough b elements").clone());
        } else {
            out.push(a.clone());
        }
    }
    out.extend(b_iter.cloned());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn renum_ucq_equals_naive_union(
        r in edges_strategy(),
        s in edges_strategy(),
        t in edges_strategy(),
        seed in 0u64..1000,
    ) {
        let db = db3(&r, &s, &t);
        // Mixed-shape union: allowed for Algorithm 5 (it only needs
        // per-member count/sample/test/delete, not a common template).
        let u: UnionQuery = "Q1(x, y) :- R(x, y).
                             Q2(x, y) :- S(x, y).
                             Q3(x, y) :- T(x, y), T(y, w)."
            .parse()
            .unwrap();
        let expected = naive_eval_union(&u, &db).unwrap();
        let mut got: Vec<Vec<Value>> = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(seed))
            .unwrap()
            .collect();
        prop_assert_eq!(got.len(), expected.len());
        got.sort();
        got.dedup();
        prop_assert_eq!(got.len(), expected.len());
    }

    #[test]
    fn non_free_connex_member_rejected(
        r in edges_strategy(),
        t in edges_strategy(),
    ) {
        // Q2's head omits the join variable z: acyclic but not free-connex,
        // so the whole union must be rejected by Theorem 5.4's builder.
        let db = db3(&r, &Vec::new(), &t);
        let u: UnionQuery = "Q1(x, y) :- R(x, y). Q2(x, y) :- R(x, z), T(z, y)."
            .parse()
            .unwrap();
        prop_assert!(UcqShuffle::build(&u, &db, StdRng::seed_from_u64(0)).is_err());
    }

    #[test]
    fn mc_ucq_access_matches_ds_reference(
        r in edges_strategy(),
        s in edges_strategy(),
        t in edges_strategy(),
    ) {
        let db = db3(&r, &s, &t);
        let u: UnionQuery = "Q1(x, y) :- R(x, y).
                             Q2(x, y) :- S(x, y).
                             Q3(x, y) :- T(x, y)."
            .parse()
            .unwrap();
        let mc = McUcqIndex::build(&u, &db).expect("same template");

        // Count agrees with naive.
        let expected = naive_eval_union(&u, &db).unwrap();
        prop_assert_eq!(mc.count() as usize, expected.len());

        // The realized order IS the Durand–Strozecki order over the member
        // enumeration orders.
        let member_seqs: Vec<Vec<Vec<Value>>> = (0..3)
            .map(|l| {
                mc.intersection_index(1 << l)
                    .expect("member")
                    .enumerate()
                    .collect()
            })
            .collect();
        let reference = ds_reference(&member_seqs);
        let got: Vec<Vec<Value>> = mc.enumerate().collect();
        prop_assert_eq!(got, reference);
    }

    #[test]
    fn mc_ucq_shuffle_is_complete(
        r in edges_strategy(),
        s in edges_strategy(),
        seed in 0u64..1000,
    ) {
        let db = db3(&r, &s, &Vec::new());
        let u: UnionQuery = "Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y)."
            .parse()
            .unwrap();
        let mc = McUcqIndex::build(&u, &db).unwrap();
        let mut got: Vec<Vec<Value>> = mc
            .random_permutation(StdRng::seed_from_u64(seed))
            .collect();
        prop_assert_eq!(got.len() as u128, mc.count());
        got.sort();
        got.dedup();
        prop_assert_eq!(got.len() as u128, mc.count());
    }

    #[test]
    fn intersection_indexes_match_intersection_cqs(
        r in edges_strategy(),
        s in edges_strategy(),
        t in edges_strategy(),
    ) {
        // Two independent constructions of Q_I = ⋂_{i∈I} Q_i must agree:
        // the mc-UCQ builder's node-wise relation intersections, and the
        // syntactic intersection CQ (conjoined bodies with existentials
        // renamed apart, Section 5.2) evaluated naively.
        let db = db3(&r, &s, &t);
        let u: UnionQuery = "Q1(x, y) :- R(x, y).
                             Q2(x, y) :- S(x, y).
                             Q3(x, y) :- T(x, y)."
            .parse()
            .unwrap();
        let mc = McUcqIndex::build(&u, &db).expect("same template");
        for mask in 1usize..8 {
            let indices: Vec<usize> = (0..3).filter(|i| mask & (1 << i) != 0).collect();
            let cap_cq = u.intersection_cq(&indices).unwrap();
            let expected = rae_query::naive_eval(&cap_cq, &db).unwrap();
            let idx = mc.intersection_index(mask).expect("built");
            prop_assert_eq!(
                idx.count() as usize,
                expected.len(),
                "mask {:#b}: count mismatch", mask
            );
            for answer in idx.enumerate() {
                prop_assert!(expected.contains_row(&answer));
            }
        }
    }

    #[test]
    fn ucq_and_mc_ucq_agree_on_answer_sets(
        r in edges_strategy(),
        s in edges_strategy(),
        seed in 0u64..1000,
    ) {
        // Two independent union implementations must produce identical sets.
        let db = db3(&r, &s, &Vec::new());
        let u: UnionQuery = "Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y)."
            .parse()
            .unwrap();
        let mc = McUcqIndex::build(&u, &db).unwrap();
        let mut via_mc: Vec<Vec<Value>> = mc.enumerate().collect();
        let mut via_alg5: Vec<Vec<Value>> =
            UcqShuffle::build(&u, &db, StdRng::seed_from_u64(seed))
                .unwrap()
                .collect();
        via_mc.sort();
        via_alg5.sort();
        prop_assert_eq!(via_mc, via_alg5);
    }
}
