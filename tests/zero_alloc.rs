//! The acceptance test for the zero-allocation hot path: steady-state
//! `access_into`, `inverted_access_of`, sequential `next_ref`, and every
//! sampler's `attempt_into` must perform **zero** heap allocations per
//! answer, measured by a counting global allocator.
//!
//! All measurements run inside single tests (the counter is process-global),
//! and every path gets one warm-up call first so scratch buffers and lazy
//! lookup tables reach their steady state.

use rae::prelude::*;
use rae_bench::alloc_counter::{count_allocations, CountingAllocator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn skewed_db() -> Database {
    let mut db = Database::new();
    let mut r_rows = Vec::new();
    let mut s_rows = Vec::new();
    for i in 0..200i64 {
        r_rows.push(vec![Value::Int(i), Value::Int(i % 17)]);
        // Skewed fan-out: key k appears k+1 times in S.
        for j in 0..(i % 17 + 1) {
            s_rows.push(vec![Value::Int(i % 17), Value::Int(1000 + 100 * i + j)]);
        }
    }
    db.add_relation(
        "R",
        Relation::from_rows(Schema::new(["a", "b"]).unwrap(), r_rows).unwrap(),
    )
    .unwrap();
    db.add_relation(
        "S",
        Relation::from_rows(Schema::new(["b", "c"]).unwrap(), s_rows).unwrap(),
    )
    .unwrap();
    db
}

fn index() -> CqIndex {
    let q: ConjunctiveQuery = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    CqIndex::build(&q, &skewed_db()).unwrap()
}

/// One combined test so no other test's allocations interleave with the
/// measured regions.
#[test]
fn steady_state_answer_paths_do_not_allocate() {
    let idx = index();
    let n = idx.count();
    assert!(n > 100);
    let mut scratch = AccessScratch::new();
    let mut rng = StdRng::seed_from_u64(42);

    // --- access_into -----------------------------------------------------
    idx.access_into(0, &mut scratch).unwrap(); // warm-up
    let ((), allocs) = count_allocations(|| {
        for _ in 0..1000 {
            let j = rng.gen_range(0..n);
            let answer = idx.access_into(j, &mut scratch).unwrap();
            std::hint::black_box(answer);
        }
    });
    assert_eq!(allocs, 0, "access_into allocated on the steady-state path");

    // --- inverted_access_of ----------------------------------------------
    idx.prepare_inverted_access();
    let owned: Vec<Vec<Value>> = (0..64).map(|j| idx.access(j * (n / 64)).unwrap()).collect();
    let mut probe = AccessScratch::new();
    idx.inverted_access_of(&owned[0], &mut probe).unwrap(); // warm-up
    let ((), allocs) = count_allocations(|| {
        for answer in &owned {
            let j = idx.inverted_access_of(answer, &mut probe).unwrap();
            std::hint::black_box(j);
        }
    });
    assert_eq!(allocs, 0, "inverted_access_of allocated on the probe path");

    // --- sequential enumeration (next_ref) --------------------------------
    let mut cursor = idx.sequential();
    cursor.next_ref().unwrap(); // warm-up (cursor buffers are built in new())
    let ((), allocs) = count_allocations(|| {
        while let Some(answer) = cursor.next_ref() {
            std::hint::black_box(answer);
        }
    });
    assert_eq!(allocs, 0, "sequential next_ref allocated mid-stream");

    // --- the four samplers -------------------------------------------------
    let ew = EwSampler::new(&idx);
    let eo = EoSampler::new(&idx);
    let oe = OeSampler::new(&idx);
    let rs = RsSampler::new(&idx);

    fn check_sampler<S: JoinSampler>(sampler: &S, rng: &mut StdRng, scratch: &mut AccessScratch) {
        // Warm-up: one accepted attempt sizes every buffer.
        while sampler.attempt_into(rng, &mut *scratch).is_none() {}
        let ((), allocs) = count_allocations(|| {
            let mut accepted = 0u32;
            // Attempts *including rejections* must be allocation-free.
            while accepted < 500 {
                if sampler.attempt_into(rng, &mut *scratch).is_some() {
                    accepted += 1;
                }
            }
        });
        assert_eq!(
            allocs,
            0,
            "{} sampler allocated during attempts",
            sampler.name()
        );
    }

    check_sampler(&ew, &mut rng, &mut scratch);
    check_sampler(&eo, &mut rng, &mut scratch);
    check_sampler(&oe, &mut rng, &mut scratch);
    check_sampler(&rs, &mut rng, &mut scratch);
}

/// Steady state must survive the relation lifecycle: after dropping and
/// re-ingesting a relation (fresh values, new index), the SAME scratch must
/// keep producing answers with zero allocations once the new shape is
/// warmed. (No generation sweep here — sweeping tests serialize in their
/// own binaries; append-only growth is what this binary's parallel tests
/// assume.)
#[test]
fn rebuild_after_drop_reingest_stays_zero_alloc() {
    let mut db = skewed_db();
    let q: ConjunctiveQuery = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let mut scratch = AccessScratch::new();
    let mut rng = StdRng::seed_from_u64(99);

    let idx = CqIndex::build(&q, &db).unwrap();
    idx.access_into(0, &mut scratch).unwrap(); // warm the shape
    drop(idx);

    // Drop S and re-ingest a value-fresh cohort with the same join keys.
    db.remove_relation("S").unwrap();
    let mut s_rows = Vec::new();
    for i in 0..200i64 {
        for j in 0..(i % 17 + 1) {
            s_rows.push(vec![
                Value::Int(i % 17),
                Value::Int(5_000_000 + 100 * i + j),
            ]);
        }
    }
    db.add_relation(
        "S",
        Relation::from_rows(Schema::new(["b", "c"]).unwrap(), s_rows).unwrap(),
    )
    .unwrap();

    let rebuilt = CqIndex::build(&q, &db).unwrap();
    let n = rebuilt.count();
    assert!(n > 100);
    rebuilt.access_into(0, &mut scratch).unwrap(); // warm-up on the rebuild
    let ((), allocs) = count_allocations(|| {
        for _ in 0..1000 {
            let j = rng.gen_range(0..n);
            std::hint::black_box(rebuilt.access_into(j, &mut scratch).unwrap());
        }
    });
    assert_eq!(allocs, 0, "rebuilt index allocated with a reused scratch");
}

/// Scratch reuse across differently-shaped queries must stay sound *and*
/// allocation-free once every shape has been visited once.
#[test]
fn scratch_reuse_across_query_shapes_does_not_allocate() {
    let db = skewed_db();
    let queries = [
        "Q(x, y, z) :- R(x, y), S(y, z)",
        "Q(x, y) :- R(x, y)",
        "Q(x, y) :- R(x, y), S(y, z)",
        "Q(y, z) :- S(y, z)",
    ];
    let indexes: Vec<CqIndex> = queries
        .iter()
        .map(|q| CqIndex::build(&q.parse().unwrap(), &db).unwrap())
        .collect();
    let mut scratch = AccessScratch::new();
    // Warm-up round across all shapes.
    for idx in &indexes {
        idx.access_into(0, &mut scratch).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(7);
    let ((), allocs) = count_allocations(|| {
        for _ in 0..200 {
            for idx in &indexes {
                let j = rng.gen_range(0..idx.count());
                std::hint::black_box(idx.access_into(j, &mut scratch).unwrap());
            }
        }
    });
    assert_eq!(allocs, 0, "interleaving shapes reallocated scratch buffers");
}

/// The ordered path (DESIGN.md §11) inherits the zero-allocation
/// discipline: steady-state `ordered_access_into`, the rank descent behind
/// `range_count`/`prefix_bounds`, a seeked constant-delay range scan, and
/// the ordered union merge must all produce answers without touching the
/// heap.
#[test]
fn ordered_paths_do_not_allocate() {
    let db = skewed_db();
    let q: ConjunctiveQuery = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    // ORDER BY z, y, x — the reverse of the default layout's order.
    let order: Vec<Symbol> = ["z", "y", "x"].iter().map(Symbol::new).collect();
    let idx = OrderedCqIndex::build(&q, &db, &order).unwrap();
    let n = idx.count();
    assert!(n > 100);
    let mut scratch = AccessScratch::new();
    let mut rng = StdRng::seed_from_u64(21);

    // --- ordered_access_into ---------------------------------------------
    idx.ordered_access_into(0, &mut scratch).unwrap(); // warm-up
    let ((), allocs) = count_allocations(|| {
        for _ in 0..1000 {
            let k = rng.gen_range(0..n);
            std::hint::black_box(idx.ordered_access_into(k, &mut scratch).unwrap());
        }
    });
    assert_eq!(allocs, 0, "ordered_access_into allocated");

    // --- ordered_inverted_access_of --------------------------------------
    idx.index().prepare_inverted_access();
    let owned: Vec<Vec<Value>> = (0..64)
        .map(|k| idx.ordered_access(k * (n / 64)).unwrap())
        .collect();
    let mut probe = AccessScratch::new();
    idx.ordered_inverted_access_of(&owned[0], &mut probe)
        .unwrap(); // warm-up
    let ((), allocs) = count_allocations(|| {
        for answer in &owned {
            std::hint::black_box(idx.ordered_inverted_access_of(answer, &mut probe).unwrap());
        }
    });
    assert_eq!(allocs, 0, "ordered_inverted_access_of allocated");

    // --- range_count / prefix_bounds (rank descent) ----------------------
    let prefixes: Vec<Vec<Value>> = owned
        .iter()
        .map(|a| {
            idx.order_to_head()[..2]
                .iter()
                .map(|&h| a[h].clone())
                .collect()
        })
        .collect();
    std::hint::black_box(idx.range_count(&prefixes[0]).unwrap()); // warm-up (no-op)
    let ((), allocs) = count_allocations(|| {
        for p in &prefixes {
            std::hint::black_box(idx.range_count(p).unwrap());
            std::hint::black_box(idx.prefix_bounds(p).unwrap());
        }
    });
    assert_eq!(allocs, 0, "the rank descent allocated");

    // --- seeked range scan ------------------------------------------------
    let mut window = idx.range(n / 3..n);
    window.next_ref().unwrap(); // warm-up (cursor buffers built in range())
    let ((), allocs) = count_allocations(|| {
        for _ in 0..500 {
            std::hint::black_box(window.next_ref().unwrap());
        }
    });
    assert_eq!(allocs, 0, "OrderedEnumeration next_ref allocated");

    // --- ordered union merge ----------------------------------------------
    let q2: ConjunctiveQuery = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let idx2 = OrderedCqIndex::build(&q2, &db, &order).unwrap();
    let mut merge = OrderedUnionEnumeration::from_members([&idx, &idx2]).unwrap();
    merge.next_ref().unwrap(); // warm-up
    let ((), allocs) = count_allocations(|| {
        for _ in 0..500 {
            std::hint::black_box(merge.next_ref().unwrap());
        }
    });
    assert_eq!(allocs, 0, "ordered union merge allocated mid-stream");
}

/// A synthesized-plan layout (decomposition-complete realization with a
/// projection root, DESIGN.md §11) must inherit the zero-allocation
/// discipline on ordered access, inverted access, and the rank descent.
#[test]
fn synthesized_projection_plan_paths_do_not_allocate() {
    let mut db = Database::new();
    let mut t_rows = Vec::new();
    let mut u_rows = Vec::new();
    for i in 0..200i64 {
        t_rows.push(vec![Value::Int(i % 7), Value::Int(i), Value::Int(i % 13)]);
        for j in 0..(i % 13 + 1) % 3 {
            u_rows.push(vec![Value::Int(i % 13), Value::Int(10_000 + 10 * i + j)]);
        }
    }
    db.add_relation(
        "T",
        Relation::from_rows(Schema::new(["a", "b", "c"]).unwrap(), t_rows).unwrap(),
    )
    .unwrap();
    db.add_relation(
        "U",
        Relation::from_rows(Schema::new(["c", "d"]).unwrap(), u_rows).unwrap(),
    )
    .unwrap();
    let q: ConjunctiveQuery = "Q(a, b, c, d) :- T(a, b, c), U(c, d)".parse().unwrap();
    // ⟨a, c, d, b⟩ splits T's bag around U's d: only a synthesized plan
    // with the projection root {a,c} can realize it.
    let order: Vec<Symbol> = ["a", "c", "d", "b"].iter().map(Symbol::new).collect();
    let idx = OrderedCqIndex::build(&q, &db, &order).unwrap();
    let n = idx.count();
    assert!(n > 100);
    // The layout genuinely uses a projection node (PR 4 rejected this order).
    assert!(
        idx.index().plan().node_count() > 2,
        "projection node expected"
    );
    let mut scratch = AccessScratch::new();
    let mut rng = StdRng::seed_from_u64(33);

    idx.ordered_access_into(0, &mut scratch).unwrap(); // warm-up
    let ((), allocs) = count_allocations(|| {
        for _ in 0..1000 {
            let k = rng.gen_range(0..n);
            std::hint::black_box(idx.ordered_access_into(k, &mut scratch).unwrap());
        }
    });
    assert_eq!(allocs, 0, "synthesized-plan ordered_access_into allocated");

    idx.index().prepare_inverted_access();
    let owned: Vec<Vec<Value>> = (0..64)
        .map(|k| idx.ordered_access(k * (n / 64)).unwrap())
        .collect();
    let mut probe = AccessScratch::new();
    idx.ordered_inverted_access_of(&owned[0], &mut probe)
        .unwrap(); // warm-up
    let ((), allocs) = count_allocations(|| {
        for answer in &owned {
            std::hint::black_box(idx.ordered_inverted_access_of(answer, &mut probe).unwrap());
        }
    });
    assert_eq!(allocs, 0, "synthesized-plan inverted access allocated");

    // Rank descent over the synthesized layout.
    let prefixes: Vec<Vec<Value>> = owned
        .iter()
        .map(|a| {
            idx.order_to_head()[..2]
                .iter()
                .map(|&h| a[h].clone())
                .collect()
        })
        .collect();
    std::hint::black_box(idx.range_count(&prefixes[0]).unwrap()); // warm-up (no-op)
    let ((), allocs) = count_allocations(|| {
        for p in &prefixes {
            std::hint::black_box(idx.range_count(p).unwrap());
            std::hint::black_box(idx.prefix_bounds(p).unwrap());
        }
    });
    assert_eq!(allocs, 0, "synthesized-plan rank descent allocated");
}

/// The general-union rank structure (RankedUcq, DESIGN.md §11): steady-state
/// ordered access through the union rank descent, inverted access, and
/// range counting must perform zero heap allocations per answer.
#[test]
fn ranked_union_paths_do_not_allocate() {
    let mut db = skewed_db();
    // Overlapping members: Q2's answers are the subset of Q1's whose x is
    // in K, so the non-owned correction lists are exercised, not empty.
    let k_rows: Vec<Vec<Value>> = (0..100i64).map(|i| vec![Value::Int(2 * i)]).collect();
    db.add_relation(
        "K",
        Relation::from_rows(Schema::new(["a"]).unwrap(), k_rows).unwrap(),
    )
    .unwrap();
    let u: UnionQuery = "Q1(x, y, z) :- R(x, y), S(y, z). Q2(x, y, z) :- R(x, y), S(y, z), K(x)."
        .parse()
        .unwrap();
    let order: Vec<Symbol> = ["z", "y", "x"].iter().map(Symbol::new).collect();
    let ranked = RankedUcq::build(&u, &db, &order).unwrap();
    let n = ranked.count();
    assert!(n > 100);
    let mut scratch = RankedScratch::default();
    let mut rng = StdRng::seed_from_u64(55);

    // --- union ordered_access_into ----------------------------------------
    ranked.ordered_access_into(0, &mut scratch).unwrap(); // warm-up
    let ((), allocs) = count_allocations(|| {
        for _ in 0..200 {
            let k = rng.gen_range(0..n);
            std::hint::black_box(ranked.ordered_access_into(k, &mut scratch).unwrap());
        }
    });
    assert_eq!(allocs, 0, "RankedUcq::ordered_access_into allocated");

    // --- union inverted access (membership + rank via descents) -----------
    let owned: Vec<Vec<Value>> = (0..32)
        .map(|k| ranked.ordered_access(k * (n / 32)).unwrap())
        .collect();
    std::hint::black_box(ranked.ordered_inverted_access(&owned[0])); // warm-up
    let ((), allocs) = count_allocations(|| {
        for answer in &owned {
            std::hint::black_box(ranked.ordered_inverted_access(answer).unwrap());
        }
    });
    assert_eq!(allocs, 0, "RankedUcq::ordered_inverted_access allocated");

    // --- union rank descent (range_count / prefix_bounds) ------------------
    let prefixes: Vec<Vec<Value>> = owned
        .iter()
        .map(|a| {
            let h = ranked.members()[0].order_to_head()[0];
            vec![a[h].clone()]
        })
        .collect();
    std::hint::black_box(ranked.range_count(&prefixes[0]).unwrap()); // warm-up (no-op)
    let ((), allocs) = count_allocations(|| {
        for p in &prefixes {
            std::hint::black_box(ranked.range_count(p).unwrap());
            std::hint::black_box(ranked.prefix_bounds(p).unwrap());
        }
    });
    assert_eq!(allocs, 0, "RankedUcq rank descent allocated");
}

/// The weighted ranked-access path (DESIGN.md §17) inherits the
/// zero-allocation discipline: steady-state `ranked_access_into`, the
/// inverted rank + weight probes, min/max extraction, the weight-band
/// descent, and the weighted window sampler must all serve answers
/// without touching the heap.
#[test]
fn weighted_paths_do_not_allocate() {
    let db = skewed_db();
    let q: ConjunctiveQuery = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    // ORDER BY y, x, z with weights on the ⟨y, x⟩ prefix ({x, y} co-occur
    // in R) — many distinct weight sums, so block boundaries are real.
    let order: Vec<Symbol> = ["y", "x", "z"].iter().map(Symbol::new).collect();
    let mut weights = VarWeights::new();
    for v in 0..17i64 {
        weights.set("y", Value::Int(v), (v as u128 * 7) % 23);
    }
    for v in 0..200i64 {
        weights.set("x", Value::Int(v), (v as u128 * 13) % 31);
    }
    let idx = WeightedCqIndex::build(&q, &db, &order, &weights).unwrap();
    let n = idx.count();
    assert!(n > 100);
    assert!(idx.block_count() > 10, "weights should form many blocks");
    let mut scratch = AccessScratch::new();
    let mut rng = StdRng::seed_from_u64(17);

    // --- ranked_access_into ------------------------------------------------
    idx.ranked_access_into(0, &mut scratch).unwrap(); // warm-up
    let ((), allocs) = count_allocations(|| {
        for _ in 0..1000 {
            let k = rng.gen_range(0..n);
            std::hint::black_box(idx.ranked_access_into(k, &mut scratch).unwrap());
        }
    });
    assert_eq!(allocs, 0, "ranked_access_into allocated");

    // --- inverted rank + weight probes --------------------------------------
    idx.index().index().prepare_inverted_access();
    let owned: Vec<Vec<Value>> = (0..64)
        .map(|k| idx.ranked_access(k * (n / 64)).unwrap())
        .collect();
    let mut probe = AccessScratch::new();
    idx.ranked_inverted_access_of(&owned[0], &mut probe)
        .unwrap(); // warm-up
    let ((), allocs) = count_allocations(|| {
        for answer in &owned {
            std::hint::black_box(idx.ranked_inverted_access_of(answer, &mut probe).unwrap());
            std::hint::black_box(idx.weight_of(answer, &mut probe).unwrap());
        }
    });
    assert_eq!(allocs, 0, "weighted inverted access / weight_of allocated");

    // --- min/max extraction and the weight-band descent ---------------------
    idx.min_answer_into(&mut scratch).unwrap(); // warm-up
    let (lo, hi) = (idx.min_weight().unwrap(), idx.max_weight().unwrap());
    let ((), allocs) = count_allocations(|| {
        for _ in 0..200 {
            std::hint::black_box(idx.min_answer_into(&mut scratch).unwrap());
            std::hint::black_box(idx.max_answer_into(&mut scratch).unwrap());
            let a = rng.gen_range(lo..=hi);
            let b = rng.gen_range(lo..=hi);
            std::hint::black_box(idx.weight_range_count(a.min(b)..a.max(b)));
            std::hint::black_box(idx.weight_at(rng.gen_range(0..n)));
        }
    });
    assert_eq!(
        allocs, 0,
        "min/max extraction or the band descent allocated"
    );

    // --- the weighted window sampler ----------------------------------------
    let sampler = WeightedWindowSampler::new(&idx, 0..n / 2);
    sampler.attempt_into(&mut rng, &mut scratch).unwrap(); // warm-up
    let ((), allocs) = count_allocations(|| {
        for _ in 0..500 {
            std::hint::black_box(sampler.attempt_into(&mut rng, &mut scratch).unwrap());
        }
    });
    assert_eq!(allocs, 0, "WeightedWindowSampler allocated during attempts");
}

/// The zero-copy cold start must preserve the guarantee: an index served
/// straight from borrowed snapshot bytes (`rae_store::load_borrowed`, the
/// node tables are views into the mapped file) answers random access and
/// inverted-access rank descents with zero heap allocations per answer,
/// exactly like the freshly built index above.
#[test]
fn borrowed_snapshot_answer_paths_do_not_allocate() {
    let built = index();
    let dir = std::env::temp_dir().join(format!("rae-zero-alloc-borrowed-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("q.{}", rae_store::SNAPSHOT_EXT));
    let archive = rae_store::ArtifactArchive::Cq(built.to_archive());
    rae_store::save(&path, &archive, 1, "Q").unwrap();

    let (artifact, meta) = rae_store::load_borrowed(&path).unwrap();
    assert!(meta.borrowed, "snapshot should serve zero-copy here");
    let rae_store::Artifact::Cq(idx) = artifact else {
        panic!("wrong artifact kind");
    };
    assert!(idx.storage_is_borrowed());

    let n = idx.count();
    assert_eq!(n, built.count());
    let mut scratch = AccessScratch::new();
    let mut rng = StdRng::seed_from_u64(4242);

    // Random access (the Algorithm 2 weighted rank descent) through the
    // mapped bytes.
    idx.access_into(0, &mut scratch).unwrap(); // warm-up
    let ((), allocs) = count_allocations(|| {
        for _ in 0..1000 {
            let j = rng.gen_range(0..n);
            std::hint::black_box(idx.access_into(j, &mut scratch).unwrap());
        }
    });
    assert_eq!(allocs, 0, "borrowed access_into allocated per answer");

    // Inverted access (the Algorithm 4 rank reconstruction) through the
    // same borrowed tables.
    idx.prepare_inverted_access();
    let owned: Vec<Vec<Value>> = (0..64).map(|j| idx.access(j * (n / 64)).unwrap()).collect();
    let mut probe = AccessScratch::new();
    idx.inverted_access_of(&owned[0], &mut probe).unwrap(); // warm-up
    let ((), allocs) = count_allocations(|| {
        for answer in &owned {
            std::hint::black_box(idx.inverted_access_of(answer, &mut probe).unwrap());
        }
    });
    assert_eq!(allocs, 0, "borrowed inverted_access_of allocated per probe");

    drop(idx);
    std::fs::remove_dir_all(&dir).ok();
}
