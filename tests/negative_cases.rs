//! Negative-path integration tests: the library must fail loudly and
//! precisely outside the tractable classes and on malformed inputs.

use rae::prelude::*;
use rae_core::CoreError;
use rae_query::QueryError;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn db_with_binary(names: &[&str]) -> Database {
    let mut db = Database::new();
    for name in names {
        db.add_relation(
            *name,
            Relation::from_rows(
                Schema::new(["a", "b"]).unwrap(),
                vec![vec![Value::Int(1), Value::Int(2)]],
            )
            .unwrap(),
        )
        .unwrap();
    }
    db
}

#[test]
fn matrix_multiplication_query_is_rejected() {
    // The canonical non-free-connex acyclic CQ (sparse-BMM hard).
    let db = db_with_binary(&["R", "S"]);
    let cq: ConjunctiveQuery = "Q(x, z) :- R(x, y), S(y, z)".parse().unwrap();
    assert_eq!(classify(&cq), CqClass::AcyclicNonFreeConnex);
    match CqIndex::build(&cq, &db) {
        Err(CoreError::Query(QueryError::NotFreeConnex(name))) => {
            assert_eq!(name.as_str(), "Q");
        }
        other => panic!("expected NotFreeConnex, got {other:?}"),
    }
}

#[test]
fn triangle_query_is_rejected() {
    let db = db_with_binary(&["R", "S", "T"]);
    let cq: ConjunctiveQuery = "Q(x, y, z) :- R(x, y), S(y, z), T(x, z)".parse().unwrap();
    assert_eq!(classify(&cq), CqClass::Cyclic);
    assert!(matches!(
        CqIndex::build(&cq, &db),
        Err(CoreError::Query(QueryError::NotAcyclic(_)))
    ));
}

#[test]
fn hyperclique_style_query_is_rejected() {
    // The (4,3)-hyperclique pattern over ternary relations.
    let mut db = Database::new();
    for name in ["E1", "E2", "E3", "E4"] {
        db.add_relation(
            name,
            Relation::from_rows(
                Schema::new(["a", "b", "c"]).unwrap(),
                vec![vec![Value::Int(1), Value::Int(2), Value::Int(3)]],
            )
            .unwrap(),
        )
        .unwrap();
    }
    let cq: ConjunctiveQuery =
        "Q(w, x, y, z) :- E1(x, y, z), E2(w, y, z), E3(w, x, z), E4(w, x, y)"
            .parse()
            .unwrap();
    assert_eq!(classify(&cq), CqClass::Cyclic);
}

#[test]
fn unknown_relation_and_arity_mismatch() {
    let db = db_with_binary(&["R"]);
    let cq: ConjunctiveQuery = "Q(x) :- Missing(x)".parse().unwrap();
    assert!(CqIndex::build(&cq, &db).is_err());

    let cq: ConjunctiveQuery = "Q(x) :- R(x)".parse().unwrap();
    assert!(matches!(
        CqIndex::build(&cq, &db),
        Err(CoreError::Query(QueryError::AtomArityMismatch { .. }))
    ));
}

#[test]
fn ucq_with_one_bad_member_fails_atomically() {
    let db = db_with_binary(&["R", "S"]);
    let u: UnionQuery = "Q1(x, y) :- R(x, y). Q2(x, y) :- R(x, z), S(z, y)."
        .parse()
        .unwrap();
    assert!(UcqShuffle::build(&u, &db, StdRng::seed_from_u64(0)).is_err());
    assert!(McUcqIndex::build(&u, &db).is_err());
}

#[test]
fn error_messages_are_actionable() {
    let db = db_with_binary(&["R", "S"]);
    let cq: ConjunctiveQuery = "Q(x, z) :- R(x, y), S(y, z)".parse().unwrap();
    let err = CqIndex::build(&cq, &db).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("free-connex"),
        "message should name the missing property: {msg}"
    );
}

#[test]
fn parse_errors_point_at_the_offset() {
    let err = "Q(x) :- R(x,".parse::<ConjunctiveQuery>().unwrap_err();
    match err {
        QueryError::Parse { offset, .. } => assert!(offset >= 11),
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn access_beyond_count_is_none_not_panic() {
    let db = db_with_binary(&["R"]);
    let cq: ConjunctiveQuery = "Q(x, y) :- R(x, y)".parse().unwrap();
    let idx = CqIndex::build(&cq, &db).unwrap();
    assert_eq!(idx.count(), 1);
    assert!(idx.access(1).is_none());
    assert!(idx.access(u128::MAX).is_none());
    // Wrong arity answers are "not-a-member", not errors.
    assert_eq!(idx.inverted_access(&[Value::Int(1)]), None);
    assert_eq!(idx.inverted_access(&[]), None);
}
