//! Property: error-path equivalence under fault injection. For any seeded
//! fault schedule, a run that *eventually succeeds* (bounded retries while
//! the schedule stays armed) must produce answers identical to the
//! fault-free run — for plain random access, lexicographic ordered access,
//! and the general-union rank structure. Faults may only slow a computation
//! down or fail it transparently; they may never change an answer.
//!
//! Schedules are process-global, so the whole suite serializes behind one
//! mutex and silences the panic hook while Panic-kind faults fire.
#![cfg(feature = "failpoints")]

use proptest::prelude::*;
use rae::prelude::*;
use rae_faults::{install, FaultSchedule};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

type Edges = Vec<(i64, i64)>;

fn edge_relation(edges: &Edges) -> Relation {
    Relation::from_rows(
        Schema::new(["a", "b"]).unwrap(),
        edges
            .iter()
            .map(|&(u, v)| vec![Value::Int(u), Value::Int(v)]),
    )
    .unwrap()
}

fn db_from(r: &Edges, s: &Edges) -> Database {
    let mut db = Database::new();
    db.add_relation("R", edge_relation(r)).unwrap();
    db.add_relation("S", edge_relation(s)).unwrap();
    db
}

/// Retries `build` under the armed schedule until it succeeds, treating
/// structured transient errors and caught panics (none should escape the
/// build boundary, but the harness double-checks) as chaos to absorb.
/// Asserts any structured error is transient. Returns `None` if the run
/// never succeeds within the attempt bound (the property then vacuously
/// holds for this schedule — "eventually succeeding runs" only).
fn eventually<T>(mut build: impl FnMut() -> Result<T, rae_core::CoreError>) -> Option<T> {
    for _ in 0..48 {
        match catch_unwind(AssertUnwindSafe(&mut build)) {
            Ok(Ok(v)) => return Some(v),
            Ok(Err(e)) => {
                assert!(
                    e.is_transient(),
                    "non-transient error under injected faults: {e}"
                );
            }
            Err(_) => panic!("a panic escaped a build entry point"),
        }
    }
    None
}

fn edges_strategy() -> impl Strategy<Value = Edges> {
    prop::collection::vec((0..6i64, 0..6i64), 0..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Plain access: the chaotic-but-successful index enumerates exactly
    // the fault-free answer sequence.
    #[test]
    fn faulted_cq_access_equals_fault_free(
        r in edges_strategy(),
        s in edges_strategy(),
        seed in 0u64..1u64 << 48,
    ) {
        let _g = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let db = db_from(&r, &s);
        let cq: ConjunctiveQuery = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
        let baseline = CqIndex::build(&cq, &db).unwrap();
        let expected: Vec<Vec<Value>> =
            (0..baseline.count()).map(|j| baseline.access(j).unwrap()).collect();

        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let guard = install(FaultSchedule::chaos(seed, 0.05));
        let chaotic = eventually(|| CqIndex::build(&cq, &db));
        drop(guard);
        std::panic::set_hook(prev);

        if let Some(idx) = chaotic {
            let got: Vec<Vec<Value>> =
                (0..idx.count()).map(|j| idx.access(j).unwrap()).collect();
            prop_assert_eq!(got, expected, "seed {}", seed);
        }
    }

    // Ordered access: same invariant for the lexicographic structure.
    #[test]
    fn faulted_ordered_access_equals_fault_free(
        r in edges_strategy(),
        s in edges_strategy(),
        seed in 0u64..1u64 << 48,
    ) {
        let _g = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let db = db_from(&r, &s);
        let cq: ConjunctiveQuery = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
        let order = [Symbol::new("y"), Symbol::new("x"), Symbol::new("z")];
        let baseline = OrderedCqIndex::build(&cq, &db, &order).unwrap();
        let expected: Vec<Vec<Value>> =
            (0..baseline.count()).map(|k| baseline.ordered_access(k).unwrap()).collect();

        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let guard = install(FaultSchedule::chaos(seed, 0.05));
        let chaotic = eventually(|| OrderedCqIndex::build(&cq, &db, &order));
        drop(guard);
        std::panic::set_hook(prev);

        if let Some(idx) = chaotic {
            let got: Vec<Vec<Value>> =
                (0..idx.count()).map(|k| idx.ordered_access(k).unwrap()).collect();
            prop_assert_eq!(got, expected, "seed {}", seed);
        }
    }

    // General-union ranked access: the chaos schedule can also force the
    // leapfrog→merge degradation; answers must still be identical.
    #[test]
    fn faulted_ranked_union_equals_fault_free(
        r in edges_strategy(),
        s in edges_strategy(),
        seed in 0u64..1u64 << 48,
    ) {
        let _g = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let db = db_from(&r, &s);
        let u: UnionQuery = "Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y)."
            .parse()
            .unwrap();
        let order = [Symbol::new("y"), Symbol::new("x")];
        let baseline = RankedUcq::build(&u, &db, &order).unwrap();
        let expected: Vec<Vec<Value>> = baseline.enumerate().collect();

        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let guard = install(FaultSchedule::chaos(seed, 0.05));
        let chaotic = eventually(|| RankedUcq::build(&u, &db, &order));
        drop(guard);
        std::panic::set_hook(prev);

        if let Some(ranked) = chaotic {
            prop_assert_eq!(ranked.count(), baseline.count());
            let got: Vec<Vec<Value>> = ranked.enumerate().collect();
            prop_assert_eq!(got, expected, "seed {}", seed);
        }
    }
}
