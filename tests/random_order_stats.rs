//! Statistical acceptance tests: the three random-order enumerators and the
//! four samplers must be (empirically) uniform over the answer set, and the
//! enumerators must induce a uniform distribution over *positions* too.
//!
//! All tests use fixed seeds and generous tolerances so they are
//! deterministic and robust.

use rae::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

fn small_join_db() -> Database {
    let mut db = Database::new();
    // Skewed fan-out so weight bugs show up.
    let r: Vec<(i64, i64)> = vec![(1, 1), (2, 1), (3, 2), (4, 3), (5, 3)];
    let s: Vec<(i64, i64)> = vec![(1, 10), (1, 11), (1, 12), (2, 20), (3, 30), (3, 31)];
    db.add_relation(
        "R",
        Relation::from_rows(
            Schema::new(["a", "b"]).unwrap(),
            r.iter().map(|&(x, y)| vec![Value::Int(x), Value::Int(y)]),
        )
        .unwrap(),
    )
    .unwrap();
    db.add_relation(
        "S",
        Relation::from_rows(
            Schema::new(["b", "c"]).unwrap(),
            s.iter().map(|&(x, y)| vec![Value::Int(x), Value::Int(y)]),
        )
        .unwrap(),
    )
    .unwrap();
    db
}

fn assert_frequencies_uniform(counts: &BTreeMap<Vec<Value>, usize>, trials: usize, n: usize) {
    assert_eq!(counts.len(), n, "every answer must occur");
    let expected = trials as f64 / n as f64;
    for (ans, &c) in counts {
        let ratio = c as f64 / expected;
        assert!(
            (0.7..=1.3).contains(&ratio),
            "answer {ans:?}: {c} occurrences, expected ≈{expected:.0}"
        );
    }
}

#[test]
fn renum_cq_every_position_is_uniform() {
    let db = small_join_db();
    let cq: ConjunctiveQuery = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let idx = CqIndex::build(&cq, &db).unwrap();
    let n = idx.count() as usize;

    // For a mid position (not just the first), the emitted answer must be
    // uniform — this catches subtle Fisher–Yates slot bugs.
    let position = n / 2;
    let trials = 4000;
    let mut counts: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
    let mut seed_rng = StdRng::seed_from_u64(101);
    for _ in 0..trials {
        let seed = seed_rng.gen::<u64>();
        let ans = idx
            .random_permutation(StdRng::seed_from_u64(seed))
            .nth(position)
            .unwrap();
        *counts.entry(ans).or_insert(0) += 1;
    }
    assert_frequencies_uniform(&counts, trials, n);
}

#[test]
fn renum_ucq_first_answer_uniform_over_overlapping_union() {
    let db = small_join_db();
    let u: UnionQuery = "Q1(x, y) :- R(x, y). Q2(x, y) :- S(y2, x), R(x, y)."
        .parse()
        .unwrap();
    // Q2 = R rows whose x occurs as some S value... (just a second member
    // with overlap; correctness is what matters).
    let expected = naive_eval_union(&u, &db).unwrap();
    let n = expected.len();
    let trials = 4000;
    let mut counts: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
    let mut seed_rng = StdRng::seed_from_u64(55);
    for _ in 0..trials {
        let seed = seed_rng.gen::<u64>();
        let ans = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(seed))
            .unwrap()
            .next()
            .unwrap();
        *counts.entry(ans).or_insert(0) += 1;
    }
    assert_frequencies_uniform(&counts, trials, n);
}

#[test]
fn renum_mcucq_first_answer_uniform() {
    let mut db = small_join_db();
    db.derive_selection("R", "R_small", |row| row[0].as_int().unwrap() <= 3)
        .unwrap();
    let u: UnionQuery = "Q1(x, y) :- R(x, y). Q2(x, y) :- R_small(x, y)."
        .parse()
        .unwrap();
    let mc = McUcqIndex::build(&u, &db).unwrap();
    let n = mc.count() as usize;
    let trials = 4000;
    let mut counts: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
    let mut seed_rng = StdRng::seed_from_u64(77);
    for _ in 0..trials {
        let seed = seed_rng.gen::<u64>();
        let ans = mc
            .random_permutation(StdRng::seed_from_u64(seed))
            .next()
            .unwrap();
        *counts.entry(ans).or_insert(0) += 1;
    }
    assert_frequencies_uniform(&counts, trials, n);
}

#[test]
fn all_samplers_are_uniform_on_the_same_index() {
    let db = small_join_db();
    let cq: ConjunctiveQuery = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let idx = CqIndex::build(&cq, &db).unwrap();
    let n = idx.count() as usize;
    let trials = 8000;

    fn collect<S: JoinSampler>(s: &S, trials: usize) -> BTreeMap<Vec<Value>, usize> {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mut counts = BTreeMap::new();
        for _ in 0..trials {
            *counts.entry(s.sample(&mut rng).unwrap()).or_insert(0) += 1;
        }
        counts
    }

    assert_frequencies_uniform(&collect(&EwSampler::new(&idx), trials), trials, n);
    assert_frequencies_uniform(&collect(&EoSampler::new(&idx), trials), trials, n);
    assert_frequencies_uniform(&collect(&OeSampler::new(&idx), trials), trials, n);
    assert_frequencies_uniform(&collect(&RsSampler::new(&idx), trials), trials, n);
}

#[test]
fn permutation_pair_correlations_are_absent() {
    // Beyond marginals: for a 4-answer query, all 12 (position, value)
    // adjacent transpositions should be roughly equally likely; a biased
    // swap implementation fails this.
    let mut db = Database::new();
    db.add_relation(
        "R",
        Relation::from_rows(
            Schema::new(["a"]).unwrap(),
            (0..4i64).map(|i| vec![Value::Int(i)]),
        )
        .unwrap(),
    )
    .unwrap();
    let cq: ConjunctiveQuery = "Q(x) :- R(x)".parse().unwrap();
    let idx = CqIndex::build(&cq, &db).unwrap();
    let trials = 24_000;
    let mut pair_counts: BTreeMap<(i64, i64), usize> = BTreeMap::new();
    let mut seed_rng = StdRng::seed_from_u64(31);
    for _ in 0..trials {
        let seed = seed_rng.gen::<u64>();
        let perm: Vec<i64> = idx
            .random_permutation(StdRng::seed_from_u64(seed))
            .map(|a| a[0].as_int().unwrap())
            .collect();
        *pair_counts.entry((perm[0], perm[1])).or_insert(0) += 1;
    }
    // 4 × 3 ordered pairs, each with probability 1/12.
    assert_eq!(pair_counts.len(), 12);
    let expected = trials as f64 / 12.0;
    for (pair, c) in pair_counts {
        let ratio = c as f64 / expected;
        assert!(
            (0.85..=1.15).contains(&ratio),
            "pair {pair:?}: {c} occurrences, expected ≈{expected:.0}"
        );
    }
}
