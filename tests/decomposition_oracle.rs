//! Exhaustive decomposition oracle for lexicographic-order realization
//! (DESIGN.md §11).
//!
//! `rae_query::realize_order` claims to be *decomposition-complete*: a
//! requested order is accepted iff **some** free-connex join tree realizes
//! it — node bags may be projections (subsets) of the reduction's bags, as
//! long as every original bag stays contained in some node (so every join
//! constraint survives), running intersection holds, and the DFS preorder
//! concatenation of new-attribute blocks spells the order.
//!
//! This suite pits the implementation against an independent brute-force
//! enumerator of exactly that tree class:
//!
//! * every accept/reject verdict must agree, on **every** head permutation
//!   of every TPC-H benchmark CQ and of a corpus of small synthetic CQs
//!   (≤ 5 atoms);
//! * the fully exhaustive oracle (every subset of the parent-shared
//!   attributes as a candidate seen-part) must agree with the
//!   maximal-seen-part oracle on the synthetic corpus, validating the
//!   dominance argument the implementation's search relies on;
//! * every accepted synthetic order must serve answers differentially
//!   equal to naive materialize-then-sort;
//! * at least one permutation the PR 4 bag-set-bound search rejected must
//!   now be accepted — and is only servable through a projection node.
//!
//! Every candidate tree the oracle accepts is re-validated through
//! independent machinery: `TreePlan::new` re-checks running intersection,
//! and a DFS replay re-derives the realized attribute sequence.

use rae::prelude::*;
use rae_query::{realize_order, QueryError, TreePlan};
use rae_tpch::{generate, TpchScale};
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashSet};

/// All permutations of `0..n` (Heap's algorithm, deterministic order).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    fn heap(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut items, &mut out);
    out
}

// ---------------------------------------------------------------------
// The oracle: exhaustive enumeration of projection-bag join trees.
// ---------------------------------------------------------------------

struct Oracle<'a> {
    order: &'a [Symbol],
    k: usize,
    /// Input bags as masks over order positions.
    bags: Vec<u64>,
    /// Whether to try every subset of the parent-shared attributes as the
    /// seen-part (fully exhaustive) or only the maximal one.
    all_subsets: bool,
    /// Tree under construction: (bag mask, parent).
    nodes: Vec<(u64, Option<usize>)>,
    stack: Vec<usize>,
    covered: u32,
    all_covered: u32,
    /// Failed (pos, stack bag masks, covered) states.
    failed: HashSet<(usize, Vec<u64>, u32)>,
}

impl Oracle<'_> {
    fn run(&mut self) -> bool {
        if self.enumerate(0) {
            self.validate_accepted_tree();
            return true;
        }
        false
    }

    fn enumerate(&mut self, pos: usize) -> bool {
        if pos == self.k {
            return self.covered == self.all_covered;
        }
        let key = (
            pos,
            self.stack
                .iter()
                .map(|&i| self.nodes[i].0)
                .collect::<Vec<_>>(),
            self.covered,
        );
        if self.failed.contains(&key) {
            return false;
        }
        for src in 0..self.bags.len() {
            // The next block must start with order[pos] and stay inside the
            // source bag.
            if self.bags[src] & (1 << pos) == 0 {
                continue;
            }
            let mut max_run = 0usize;
            while pos + max_run < self.k && self.bags[src] & (1 << (pos + max_run)) != 0 {
                max_run += 1;
            }
            for depth in (0..=self.stack.len()).rev() {
                let parent = depth.checked_sub(1).map(|d| self.stack[d]);
                let shared = parent.map_or(0, |p| self.nodes[p].0) & self.bags[src];
                // Candidate seen-parts: every subset of the parent-shared
                // attributes, or just the maximal one.
                let mut seen_parts: Vec<u64> = vec![shared];
                if self.all_subsets {
                    let mut s = shared;
                    while s != 0 {
                        s = (s - 1) & shared;
                        seen_parts.push(s);
                        if s == 0 {
                            break;
                        }
                    }
                }
                for &seen in &seen_parts {
                    for j in 1..=max_run {
                        let bag = seen | (((1u64 << j) - 1) << pos);
                        let saved_tail: Vec<usize> = self.stack[depth..].to_vec();
                        self.stack.truncate(depth);
                        self.nodes.push((bag, parent));
                        self.stack.push(self.nodes.len() - 1);
                        let saved_covered = self.covered;
                        for (b, &bm) in self.bags.iter().enumerate() {
                            if bm & !bag == 0 {
                                self.covered |= 1 << b;
                            }
                        }
                        if self.enumerate(pos + j) {
                            return true;
                        }
                        self.covered = saved_covered;
                        self.stack.pop();
                        self.nodes.pop();
                        self.stack.extend(saved_tail);
                    }
                }
            }
        }
        self.failed.insert(key);
        false
    }

    /// Re-validates the accepted tree through independent machinery:
    /// `TreePlan::new` re-checks the running-intersection property, and a
    /// DFS replay re-derives the realized attribute sequence.
    fn validate_accepted_tree(&self) {
        let bags: Vec<BTreeSet<Symbol>> = self
            .nodes
            .iter()
            .map(|&(m, _)| {
                (0..self.k)
                    .filter(|p| m & (1 << p) != 0)
                    .map(|p| self.order[p].clone())
                    .collect()
            })
            .collect();
        let parents: Vec<Option<usize>> = self.nodes.iter().map(|&(_, p)| p).collect();
        let tree =
            TreePlan::new(bags, parents).expect("oracle tree must satisfy running intersection");
        let mut seen: BTreeSet<Symbol> = BTreeSet::new();
        let mut next = 0usize;
        let mut stack: Vec<usize> = tree.roots().iter().rev().copied().collect();
        while let Some(i) = stack.pop() {
            let new: BTreeSet<Symbol> = tree
                .bag(i)
                .iter()
                .filter(|a| !seen.contains(*a))
                .cloned()
                .collect();
            let block: BTreeSet<Symbol> =
                self.order[next..next + new.len()].iter().cloned().collect();
            assert_eq!(new, block, "oracle tree block mismatch at node {i}");
            next += new.len();
            seen.extend(new);
            for &c in tree.children(i).iter().rev() {
                stack.push(c);
            }
        }
        assert_eq!(next, self.k, "oracle tree does not cover the order");
    }
}

/// Decides realizability by exhaustive enumeration over all projection-bag
/// join trees of `plan`.
fn oracle_realizable(plan: &TreePlan, order: &[Symbol], all_subsets: bool) -> bool {
    let k = order.len();
    assert!(k <= 64, "oracle masks cap at 64 variables");
    let pos_of = |a: &Symbol| order.iter().position(|o| o == a).expect("head attr");
    let bags: Vec<u64> = (0..plan.node_count())
        .map(|i| plan.bag(i).iter().fold(0u64, |m, a| m | (1 << pos_of(a))))
        .collect();
    let all_covered = bags.iter().enumerate().fold(0u32, |m, (b, _)| m | (1 << b));
    // Empty bags (Boolean nodes) are trivially covered.
    let covered = bags
        .iter()
        .enumerate()
        .filter(|&(_, &bm)| bm == 0)
        .fold(0u32, |m, (b, _)| m | (1 << b));
    let mut oracle = Oracle {
        order,
        k,
        bags,
        all_subsets,
        nodes: Vec::new(),
        stack: Vec::new(),
        covered,
        all_covered,
        failed: HashSet::new(),
    };
    oracle.run()
}

// ---------------------------------------------------------------------
// Verdict agreement on every TPC-H head permutation.
// ---------------------------------------------------------------------

#[test]
fn tpch_verdicts_match_the_exhaustive_oracle() {
    let db = generate(&TpchScale::tiny(), 0xA11CE);
    for (name, cq) in rae_tpch::queries::all_cqs() {
        let fj = reduce_to_full_acyclic(&cq, &db).expect("benchmark CQ reduces");
        let head = cq.head().to_vec();
        let (mut accepted, mut rejected) = (0usize, 0usize);
        for perm in permutations(head.len()) {
            let order: Vec<Symbol> = perm.iter().map(|&i| head[i].clone()).collect();
            let verdict = realize_order(&fj.plan, &order);
            let oracle = oracle_realizable(&fj.plan, &order, false);
            match &verdict {
                Ok(_) => accepted += 1,
                Err(QueryError::UnrealizableOrder { earlier, later, .. }) => {
                    rejected += 1;
                    assert_ne!(earlier, later, "{name}: degenerate error pair");
                }
                Err(other) => panic!("{name}: unexpected error {other:?}"),
            }
            assert_eq!(
                verdict.is_ok(),
                oracle,
                "{name}: verdict mismatch for {:?}",
                order.iter().map(Symbol::as_str).collect::<Vec<_>>()
            );
        }
        assert!(accepted > 0, "{name}: no realizable order");
        assert!(rejected > 0, "{name}: no rejected order (suspicious)");
    }
}

// ---------------------------------------------------------------------
// Synthetic corpus (≤ 5 atoms): exhaustive-subset oracle, dominance
// cross-check, and full differential on every accepted permutation.
// ---------------------------------------------------------------------

/// Small deterministic relation over the given attributes.
fn corpus_relation(attrs: &[&str], salt: i64) -> Relation {
    let arity = attrs.len();
    let rows = (0..10i64).map(|i| {
        (0..arity as i64)
            .map(|c| Value::Int((i * (salt + c + 2) + c) % 5))
            .collect::<Vec<_>>()
    });
    Relation::from_rows(Schema::new(attrs.iter().copied()).unwrap(), rows).unwrap()
}

/// The synthetic corpus: free-connex CQs of ≤ 5 atoms, chosen to cover the
/// interesting shapes — paths (including the 4-atom stack-discipline
/// counterexample ⟨b,c,d,a,e⟩, which has no disruptive trio yet no tree),
/// stars, wide bags needing projection splits, cross-product components
/// (nesting vs crossing), self-joins, and projected-away tails.
fn corpus() -> Vec<(&'static str, Database)> {
    let mut out = Vec::new();
    let queries = [
        "Q(x, y) :- R0(x, y)",
        "Q(x, y, z) :- R0(x, y), R1(y, z)",
        "Q(a, b, c, d) :- R0(a, b), R1(b, c), R2(c, d)",
        "Q(a, b, c, d, e) :- R0(a, b), R1(b, c), R2(c, d), R3(d, e)",
        "Q(x, y, z, w) :- R0(x, y), R1(y, z), R2(y, w)",
        "Q(a, b, c, d) :- T3(a, b, c), R0(c, d)",
        "Q(a, b, c, d, e) :- T3(a, b, c), T4(c, d, e)",
        "Q(x1, x2, y1, y2) :- R0(x1, x2), R1(y1, y2)",
        "Q(x, y, z) :- R0(x, y), R0(y, z)",
        "Q(x, y) :- R0(x, y), R1(y, z)",
        "Q(a, b, c, d) :- R0(a, b), R1(a, c), R2(b, d)",
        "Q(a, b, c, d, e) :- T3(a, b, c), R0(c, d), R1(d, e), R2(b, c), R3(a, c)",
    ];
    for text in queries {
        let mut db = Database::new();
        db.add_relation("R0", corpus_relation(&["u", "v"], 1))
            .unwrap();
        db.add_relation("R1", corpus_relation(&["u", "v"], 3))
            .unwrap();
        db.add_relation("R2", corpus_relation(&["u", "v"], 5))
            .unwrap();
        db.add_relation("R3", corpus_relation(&["u", "v"], 7))
            .unwrap();
        db.add_relation("T3", corpus_relation(&["u", "v", "w"], 2))
            .unwrap();
        db.add_relation("T4", corpus_relation(&["u", "v", "w"], 4))
            .unwrap();
        out.push((text, db));
    }
    out
}

fn sort_rows_by(rows: &mut [Vec<Value>], positions: &[usize]) {
    rows.sort_by(|a, b| {
        positions
            .iter()
            .map(|&p| a[p].cmp(&b[p]))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or(Ordering::Equal)
    });
}

#[test]
fn synthetic_corpus_matches_oracle_and_naive() {
    for (text, db) in corpus() {
        let cq: ConjunctiveQuery = text.parse().expect("corpus query parses");
        let fj = reduce_to_full_acyclic(&cq, &db).expect("corpus query reduces");
        let head = cq.head().to_vec();
        let naive = naive_eval(&cq, &db).unwrap();
        let base_rows: Vec<Vec<Value>> = naive.rows().map(<[Value]>::to_vec).collect();
        for perm in permutations(head.len()) {
            let order: Vec<Symbol> = perm.iter().map(|&i| head[i].clone()).collect();
            let label = format!(
                "{text} ORDER BY {:?}",
                order.iter().map(Symbol::as_str).collect::<Vec<_>>()
            );
            let exhaustive = oracle_realizable(&fj.plan, &order, true);
            let maximal = oracle_realizable(&fj.plan, &order, false);
            assert_eq!(
                exhaustive, maximal,
                "{label}: maximal-seen dominance violated"
            );
            let verdict = realize_order(&fj.plan, &order);
            assert_eq!(verdict.is_ok(), exhaustive, "{label}: verdict mismatch");
            match verdict {
                Ok(_) => {
                    // Differential: the synthesized layout must serve every
                    // rank exactly as naive materialize-then-sort does.
                    let idx = OrderedCqIndex::build(&cq, &db, &order)
                        .unwrap_or_else(|e| panic!("{label}: index build failed: {e:?}"));
                    let mut rows = base_rows.clone();
                    sort_rows_by(&mut rows, &perm);
                    assert_eq!(idx.count() as usize, rows.len(), "{label}: count");
                    let mut scratch = AccessScratch::new();
                    for (k, expected) in rows.iter().enumerate() {
                        let got = idx
                            .ordered_access_into(k as Weight, &mut scratch)
                            .unwrap_or_else(|| panic!("{label}: missing rank {k}"));
                        assert_eq!(got, expected.as_slice(), "{label}: rank {k}");
                        assert_eq!(
                            idx.ordered_inverted_access(expected),
                            Some(k as Weight),
                            "{label}: inverted rank {k}"
                        );
                    }
                    assert!(idx.ordered_access(idx.count()).is_none(), "{label}: oob");
                }
                Err(QueryError::UnrealizableOrder { earlier, later, .. }) => {
                    assert_ne!(earlier, later, "{label}: degenerate error pair");
                }
                Err(other) => panic!("{label}: unexpected error {other:?}"),
            }
        }
    }
}

/// The 4-atom path counterexample in isolation: ⟨b,c,d,a,e⟩ has no
/// disruptive trio and a single component, yet no join tree realizes it —
/// both the oracle and the implementation must reject it, proving the
/// implementation is not just "accept when no trio".
#[test]
fn stack_discipline_counterexample_is_rejected_by_both() {
    let (text, db) = (
        "Q(a, b, c, d, e) :- R0(a, b), R1(b, c), R2(c, d), R3(d, e)",
        {
            let mut db = Database::new();
            db.add_relation("R0", corpus_relation(&["u", "v"], 1))
                .unwrap();
            db.add_relation("R1", corpus_relation(&["u", "v"], 3))
                .unwrap();
            db.add_relation("R2", corpus_relation(&["u", "v"], 5))
                .unwrap();
            db.add_relation("R3", corpus_relation(&["u", "v"], 7))
                .unwrap();
            db
        },
    );
    let cq: ConjunctiveQuery = text.parse().unwrap();
    let fj = reduce_to_full_acyclic(&cq, &db).unwrap();
    let order: Vec<Symbol> = ["b", "c", "d", "a", "e"].iter().map(Symbol::new).collect();
    assert!(!oracle_realizable(&fj.plan, &order, true));
    assert!(matches!(
        realize_order(&fj.plan, &order),
        Err(QueryError::UnrealizableOrder { .. })
    ));
}

// ---------------------------------------------------------------------
// The PR 4 conservative rejections must disappear.
// ---------------------------------------------------------------------

/// Q3's reduced bags are {ck,ok} and {ln,ok,pk,sk}. ORDER BY ok,pk,ck,sk,ln
/// interleaves the lineitem bag's attributes around ck, so no re-rooting /
/// re-attachment of the *original* bags realizes it (each bag's unseen
/// attributes would have to form one contiguous block) — the PR 4 search
/// rejected it. The decomposition-complete procedure serves it through a
/// synthesized projection root {ok,pk}.
#[test]
fn formerly_rejected_tpch_order_is_accepted_and_served() {
    let db = generate(&TpchScale::tiny(), 0xA11CE);
    let cq = rae_tpch::queries::q3();
    let fj = reduce_to_full_acyclic(&cq, &db).unwrap();
    let head = cq.head().to_vec();
    let order: Vec<Symbol> = ["ok", "pk", "ck", "sk", "ln"]
        .iter()
        .map(Symbol::new)
        .collect();

    // A bag-set-bound layout cannot exist: the synthesized plan must use at
    // least one strict projection node.
    let lex = realize_order(&fj.plan, &order).expect("decomposition-complete accept");
    let has_projection = (0..lex.plan.node_count())
        .any(|i| lex.plan.bag(i).len() < fj.plan.bag(lex.source_node[i]).len());
    assert!(
        has_projection,
        "the order must require a projection node (else PR 4 would have accepted it)"
    );

    // And it is served correctly at every rank.
    let idx = OrderedCqIndex::build(&cq, &db, &order).unwrap();
    let naive = naive_eval(&cq, &db).unwrap();
    let mut rows: Vec<Vec<Value>> = naive.rows().map(<[Value]>::to_vec).collect();
    let perm: Vec<usize> = order
        .iter()
        .map(|v| head.iter().position(|h| h == v).unwrap())
        .collect();
    sort_rows_by(&mut rows, &perm);
    assert_eq!(idx.count() as usize, rows.len());
    let mut scratch = AccessScratch::new();
    let stride = (rows.len() / 257).max(1);
    for (k, expected) in rows.iter().enumerate().step_by(stride) {
        let got = idx
            .ordered_access_into(k as Weight, &mut scratch)
            .expect("rank in range");
        assert_eq!(got, expected.as_slice(), "rank {k}");
        assert_eq!(idx.ordered_inverted_access(expected), Some(k as Weight));
    }
}
