//! Determinism suite for the level-synchronous parallel build (DESIGN.md
//! §10): for every thread count and sort algorithm, `CqIndex` preprocessing
//! must produce **byte-identical** artifacts — node row orders, weights,
//! startIndexes, buckets, bucket-of-row tables, and child-bucket tables.
//!
//! This is what makes `RAE_BUILD_THREADS` a pure wall-clock knob: answers,
//! enumeration orders, and sampler behavior cannot depend on how the build
//! was scheduled.

use rae::prelude::*;
use rae_core::{BuildOptions, SortAlgorithm};
use rae_tpch::{generate, queries, TpchScale};
use rae_yannakakis::FullAcyclicJoin;

/// Compares every artifact the index exposes, row by row and bucket by
/// bucket. `enumerate()` equality alone would miss internal divergence that
/// happens to cancel out; this does not.
fn assert_identical_artifacts(label: &str, a: &CqIndex, b: &CqIndex) {
    assert_eq!(a.count(), b.count(), "{label}: answer count");
    assert_eq!(a.node_count(), b.node_count(), "{label}: node count");
    for node in 0..a.node_count() {
        let (ra, rb) = (a.node_relation(node), b.node_relation(node));
        assert_eq!(ra, rb, "{label}: node {node} relation rows");
        assert_eq!(ra.codes(), rb.codes(), "{label}: node {node} code mirror");
        assert_eq!(
            a.node_key_cols(node),
            b.node_key_cols(node),
            "{label}: node {node} key cols"
        );
        assert_eq!(
            a.bucket_count(node),
            b.bucket_count(node),
            "{label}: node {node} bucket count"
        );
        for bucket in 0..a.bucket_count(node) as u32 {
            assert_eq!(
                a.bucket(node, bucket),
                b.bucket(node, bucket),
                "{label}: node {node} bucket {bucket}"
            );
        }
        let children = a.plan().children(node).len();
        for row in 0..ra.len() as u32 {
            assert_eq!(
                a.row_weight(node, row),
                b.row_weight(node, row),
                "{label}: node {node} row {row} weight"
            );
            assert_eq!(
                a.row_start(node, row),
                b.row_start(node, row),
                "{label}: node {node} row {row} startIndex"
            );
            assert_eq!(
                a.bucket_of_row(node, row),
                b.bucket_of_row(node, row),
                "{label}: node {node} row {row} bucket id"
            );
            for child_pos in 0..children {
                assert_eq!(
                    a.child_bucket(node, row, child_pos),
                    b.child_bucket(node, row, child_pos),
                    "{label}: node {node} row {row} child {child_pos} bucket"
                );
            }
        }
    }
}

fn full_join_of(cq: &ConjunctiveQuery, db: &Database) -> FullAcyclicJoin {
    reduce_to_full_acyclic(cq, db).expect("benchmark query reduces")
}

fn build(fj: &FullAcyclicJoin, options: BuildOptions) -> CqIndex {
    CqIndex::from_parts_with(
        fj.plan.clone(),
        fj.relations.clone(),
        fj.head.clone(),
        options,
    )
    .expect("index builds")
}

#[test]
fn thread_counts_produce_byte_identical_indexes() {
    // Large enough that the parallel paths (per-relation fan-out and row
    // chunking) actually engage, per MIN_PARALLEL_TUPLES/MIN_PARALLEL_ROWS.
    let db = generate(&TpchScale::from_sf(0.002), 42);
    for (name, cq) in queries::all_cqs() {
        let fj = full_join_of(&cq, &db);
        let serial = build(&fj, BuildOptions::serial());
        for threads in [2usize, 8] {
            let parallel = build(&fj, BuildOptions::with_threads(threads));
            assert_identical_artifacts(&format!("{name} @ {threads} threads"), &serial, &parallel);
        }
    }
}

#[test]
fn sort_algorithms_produce_byte_identical_indexes() {
    let db = generate(&TpchScale::from_sf(0.002), 42);
    let q3 = queries::q3();
    let fj = full_join_of(&q3, &db);
    let radix = build(
        &fj,
        BuildOptions {
            threads: 1,
            sort: SortAlgorithm::Radix,
        },
    );
    let comparison = build(
        &fj,
        BuildOptions {
            threads: 1,
            sort: SortAlgorithm::Comparison,
        },
    );
    assert_identical_artifacts("q3 radix vs comparison", &radix, &comparison);
    // And the combined case: parallel radix vs serial comparison.
    let parallel_radix = build(
        &fj,
        BuildOptions {
            threads: 8,
            sort: SortAlgorithm::Radix,
        },
    );
    assert_identical_artifacts("q3 parallel radix", &comparison, &parallel_radix);
}

#[test]
fn parallel_build_answers_match_serial_enumeration() {
    let db = generate(&TpchScale::from_sf(0.001), 7);
    let q10 = queries::q10();
    let fj = full_join_of(&q10, &db);
    let serial = build(&fj, BuildOptions::serial());
    let parallel = build(&fj, BuildOptions::with_threads(8));
    serial.prepare_inverted_access();
    let n = serial.count();
    assert_eq!(parallel.count(), n);
    let step = (n / 512).max(1);
    let mut j = 0;
    while j < n {
        let a = serial.access(j).expect("in range");
        let b = parallel.access(j).expect("in range");
        assert_eq!(a, b, "answer {j} diverged");
        assert_eq!(serial.inverted_access(&b), Some(j));
        j += step;
    }
}

#[test]
fn build_threads_env_var_controls_default_options() {
    // Serialized within this test: no other test in this binary touches the
    // environment variable.
    std::env::set_var(rae_core::BUILD_THREADS_ENV, "3");
    assert_eq!(BuildOptions::default().resolved_threads(), 3);
    std::env::set_var(rae_core::BUILD_THREADS_ENV, "not-a-number");
    let fallback = BuildOptions::default().resolved_threads();
    assert!(fallback >= 1, "garbage env falls back to a sane default");
    std::env::remove_var(rae_core::BUILD_THREADS_ENV);
    // Explicit thread counts always win over the environment.
    std::env::set_var(rae_core::BUILD_THREADS_ENV, "7");
    assert_eq!(BuildOptions::with_threads(2).resolved_threads(), 2);
    std::env::remove_var(rae_core::BUILD_THREADS_ENV);
}
