//! FNV-1a 64 — the workspace's checksum (same algorithm the failpoint
//! registry uses for site hashing). Not cryptographic: it defends against
//! torn writes, truncation, and bit rot, not an adversary.

/// FNV-1a 64 offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const PRIME: u64 = 0x100_0000_01b3;

/// A streaming FNV-1a 64 hasher over byte slices.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Starts a fresh hash at the offset basis.
    pub fn new() -> Self {
        Fnv64 { state: OFFSET }
    }

    /// Folds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Word-folded FNV-1a 64: folds the payload length up front, then each
/// 8-byte little-endian word (final word zero-padded) through the same
/// xor-multiply step as [`fnv64`] — one step per word instead of per byte,
/// so section-payload checksumming is not the dominant cost of a load.
///
/// Not byte-compatible with [`fnv64`]; it is the checksum of **section
/// payloads** in the snapshot format (small fixed-size regions keep the
/// canonical byte-wise form). Every single-bit flip still changes the
/// hash — each fold is a bijection of the state for a fixed input word —
/// and the up-front length fold separates payloads that differ only by
/// zero-padding of the tail word.
pub fn fnv64_fast(bytes: &[u8]) -> u64 {
    let mut state = (OFFSET ^ bytes.len() as u64).wrapping_mul(PRIME);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let mut w = [0u8; 8];
        w.copy_from_slice(c);
        state = (state ^ u64::from_le_bytes(w)).wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = [0u8; 8];
        w[..rem.len()].copy_from_slice(rem);
        state = (state ^ u64::from_le_bytes(w)).wrapping_mul(PRIME);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Fnv64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn single_bit_flips_change_the_hash() {
        let base = b"the quick brown fox".to_vec();
        let h0 = fnv64(&base);
        let f0 = fnv64_fast(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(fnv64(&flipped), h0, "flip at byte {i} bit {bit}");
                assert_ne!(fnv64_fast(&flipped), f0, "fast flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn fast_variant_separates_zero_padded_tails() {
        // Same padded tail word, different lengths: the length fold keeps
        // the hashes apart.
        assert_ne!(fnv64_fast(&[1]), fnv64_fast(&[1, 0]));
        assert_ne!(fnv64_fast(&[]), fnv64_fast(&[0; 8]));
        assert_ne!(fnv64_fast(&[0; 8]), fnv64_fast(&[0; 16]));
    }

    #[test]
    fn fast_variant_matches_a_word_level_reference() {
        // Independent re-derivation: fold len, then LE words.
        let bytes: Vec<u8> = (0u8..23).collect();
        let mut state = (0xcbf2_9ce4_8422_2325u64 ^ 23).wrapping_mul(0x100_0000_01b3);
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            state = (state ^ u64::from_le_bytes(w)).wrapping_mul(0x100_0000_01b3);
        }
        assert_eq!(fnv64_fast(&bytes), state);
    }
}
