//! Read-only file mapping behind a safe owner handle (unix only; other
//! platforms read into an aligned heap buffer instead).
//!
//! The mapping is `PROT_READ`/`MAP_PRIVATE` over a snapshot that was
//! published by atomic rename and is never mutated in place by this
//! store, so the bytes behind the pointer are stable for the mapping's
//! lifetime — the contract [`StableBytes`] asks for. External truncation
//! of a mapped file is outside that contract (as for any mmap consumer);
//! the quarantine path renames, which keeps the inode alive.
//!
//! Hand-rolled `extern "C"` bindings: this workspace links no C-binding
//! crates, and the two calls needed here are stable POSIX.

use rae_core::StableBytes;
use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;
use std::path::Path;

const PROT_READ: i32 = 1;
const MAP_PRIVATE: i32 = 2;

extern "C" {
    fn mmap(
        addr: *mut core::ffi::c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut core::ffi::c_void;
    fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
}

/// A read-only memory mapping of a whole file. Page alignment of the base
/// address satisfies the format's 16-byte discipline by construction.
pub(crate) struct MappedFile {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is read-only and never remapped; concurrent reads
// from any thread are sound, and the raw pointer is only dereferenced
// through `stable_bytes`.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Maps `path` read-only. Empty files are an error (there is nothing
    /// to map; callers fall back to a heap read, which then fails
    /// validation with the proper truncation error).
    pub fn open(path: &Path) -> io::Result<MappedFile> {
        let file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "empty file"));
        }
        // SAFETY: length is the file's current size and nonzero; the fd is
        // valid for the duration of the call; a MAP_FAILED return is
        // checked before the pointer is used.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(MappedFile {
            ptr: ptr as *const u8,
            len,
        })
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` are exactly what mmap returned; the mapping
        // is unmapped once, here.
        unsafe {
            munmap(self.ptr as *mut core::ffi::c_void, self.len);
        }
    }
}

// SAFETY: the bytes are a private read-only mapping of a file the store
// never mutates in place; address and length are fixed until drop, and
// every `Col` view holds the owning `Arc`, so the mapping outlives them.
unsafe impl StableBytes for MappedFile {
    fn stable_bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is valid for `len` bytes for the mapping lifetime.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_reads_back() {
        let dir = std::env::temp_dir().join(format!("rae-map-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        std::fs::write(&path, &payload).unwrap();
        let m = MappedFile::open(&path).unwrap();
        assert_eq!(m.stable_bytes(), payload.as_slice());
        drop(m);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_file_is_refused() {
        let dir = std::env::temp_dir().join(format!("rae-map-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        assert!(MappedFile::open(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
