//! Error type for the snapshot store. Every load-path failure is a
//! structured, non-panicking error: a corrupted file must never take the
//! process down or leak a wrong answer.

use std::fmt;
use std::path::PathBuf;

/// Errors raised while persisting or loading snapshot files.
#[derive(Debug)]
pub enum StoreError {
    /// An OS-level I/O failure (open, write, fsync, rename). Transient:
    /// retrying against a healthy filesystem is sound because the publish
    /// protocol never leaves a partially visible file under the final name.
    Io {
        /// The protocol step that failed ("create temp", "fsync", …).
        context: &'static str,
        /// The underlying error, stringified (I/O errors are not `Clone`).
        detail: String,
    },
    /// The file ends before the region the format requires; the classic
    /// torn-write / partial-crash shape.
    TruncatedFile {
        /// Bytes the format needed.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A section (or the header/footer) failed its checksum or decoded to
    /// garbage.
    Corrupt {
        /// The section name, or `"header"` / `"footer"` / `"trailer"`.
        section: String,
        /// What went wrong.
        detail: String,
    },
    /// The file's format version is not the one this build reads. Old
    /// snapshots are rebuilt, not migrated (DESIGN.md §15).
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// Every section passed its own checksum but the whole-artifact digest
    /// disagrees with the footer (e.g. sections of two snapshots spliced
    /// together).
    DigestMismatch {
        /// Digest recorded in the footer.
        expected: u64,
        /// Digest recomputed over the payload.
        actual: u64,
    },
    /// The decoded archive failed the semantic re-validation of
    /// `from_archive` (checksum-valid bytes, logically broken artifact).
    Archive(rae_core::CoreError),
    /// A deterministic fault fired at the named failpoint (only reachable
    /// under the `failpoints` feature).
    FaultInjected {
        /// The failpoint site, e.g. `"store/write"`.
        site: &'static str,
    },
    /// The file is valid, but zero-copy column views cannot be
    /// constructed over this buffer (a misaligned mapping or a big-endian
    /// host). `load_borrowed` catches this internally and falls back to
    /// the owned decode; it never signals a bad file.
    Unborrowable {
        /// Why the view was refused.
        detail: String,
    },
    /// No loadable snapshot was found during directory recovery (the
    /// payload lists the files that were quarantined on the way).
    NoSnapshot {
        /// Directory that was scanned.
        dir: PathBuf,
        /// Files that failed validation and were quarantined.
        quarantined: Vec<PathBuf>,
    },
}

impl rae_faults::Transient for StoreError {
    fn is_transient(&self) -> bool {
        match self {
            // The atomic-publish protocol makes a retry after an I/O error
            // (or an injected fault standing in for one) safe.
            StoreError::Io { .. } | StoreError::FaultInjected { .. } => true,
            StoreError::Archive(e) => e.is_transient(),
            // Corruption does not heal on retry; rebuild instead.
            StoreError::TruncatedFile { .. }
            | StoreError::Corrupt { .. }
            | StoreError::VersionMismatch { .. }
            | StoreError::DigestMismatch { .. }
            // Alignment/endianness of a mapping does not change on retry.
            | StoreError::Unborrowable { .. }
            | StoreError::NoSnapshot { .. } => false,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, detail } => {
                write!(f, "snapshot I/O failed at {context}: {detail}")
            }
            StoreError::TruncatedFile { expected, actual } => write!(
                f,
                "snapshot file truncated: format requires {expected} bytes, found {actual}"
            ),
            StoreError::Corrupt { section, detail } => {
                write!(f, "snapshot section `{section}` is corrupt: {detail}")
            }
            StoreError::VersionMismatch { found, supported } => write!(
                f,
                "snapshot format version {found} is not the supported version {supported}"
            ),
            StoreError::DigestMismatch { expected, actual } => write!(
                f,
                "artifact digest mismatch: footer says {expected:#018x}, payload hashes to {actual:#018x}"
            ),
            StoreError::Archive(e) => write!(f, "snapshot decoded but failed validation: {e}"),
            StoreError::FaultInjected { site } => {
                write!(f, "injected fault at failpoint `{site}`")
            }
            StoreError::Unborrowable { detail } => {
                write!(f, "zero-copy views unavailable for this buffer: {detail}")
            }
            StoreError::NoSnapshot { dir, quarantined } => write!(
                f,
                "no loadable snapshot in {} ({} file(s) quarantined)",
                dir.display(),
                quarantined.len()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Archive(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rae_core::CoreError> for StoreError {
    fn from(e: rae_core::CoreError) -> Self {
        StoreError::Archive(e)
    }
}

/// Maps an `io::Error` at a named protocol step.
pub(crate) fn io_err(context: &'static str) -> impl FnOnce(std::io::Error) -> StoreError {
    move |e| StoreError::Io {
        context,
        detail: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_faults::Transient;

    #[test]
    fn classification_and_messages() {
        assert!(StoreError::Io {
            context: "fsync",
            detail: "boom".into()
        }
        .is_transient());
        let c = StoreError::Corrupt {
            section: "node0/weights".into(),
            detail: "checksum".into(),
        };
        assert!(!c.is_transient());
        assert!(c.to_string().contains("node0/weights"));
        let v = StoreError::VersionMismatch {
            found: 9,
            supported: 1,
        };
        assert!(v.to_string().contains('9'));
    }
}
