//! The on-disk container and the crash-consistent publish protocol
//! (DESIGN.md §15).
//!
//! ## File layout (format v2)
//!
//! ```text
//! header  (32 B): magic "RAESTOR1" | version u32 | endian tag u32
//!                 | alignment u32 (16) | reserved u32 (0)
//!                 | FNV-1a 64 over the previous 24 bytes
//! payload       : section payloads, back to back (offsets in the footer);
//!                 every payload is a 16-byte multiple with numeric arrays
//!                 on 16-byte payload boundaries, so with the 32-byte
//!                 header every array is 16-aligned in the FILE — the
//!                 invariant the zero-copy `load_borrowed` path builds on
//! footer        : kind tag | version (redundant) | epoch | label
//!                 | artifact_digest | section table
//!                 (name, offset, len, FNV-1a 64 per section)
//! trailer (32 B): footer offset u64 | footer len u64
//!                 | FNV-1a 64 over the footer bytes | magic "RAEEND.1"
//! ```
//!
//! All integers little-endian. The trailer is found from EOF, so loading
//! never scans; a file truncated anywhere fails either the trailer magic,
//! the footer checksum, or a section checksum — always a structured
//! [`StoreError`], never a panic or a wrong answer.
//!
//! ## Zero-copy loads
//!
//! [`load_borrowed`] maps the file read-only (falling back to a 16-aligned
//! heap read where mapping fails), runs the exact same checksum + digest
//! validation, then decodes with *borrowed* columns: every numeric table
//! of the resulting index is a validated view into the mapping, kept alive
//! by a shared owner handle. A buffer that cannot support views (odd
//! alignment, big-endian host) silently falls back to the owned decode —
//! same artifact, same digest, just copied. Mutating a published snapshot
//! file in place while it is mapped is outside the protocol's contract
//! (the publish path only ever renames whole files).
//!
//! ## Publish protocol
//!
//! Writes go to a unique temp file in the destination directory, then:
//! write → `fsync(temp)` → `rename(temp, final)` → `fsync(dir)`. POSIX
//! rename atomicity guarantees a reader (or a post-crash recovery) sees
//! either the old complete file or the new complete file under the final
//! name — never a prefix. The `RAE_STORE_CRASH` environment variable aborts
//! the process at named points of this protocol (the crash harness drives
//! it from a parent process), and the `store/write` / `store/fsync` /
//! `store/torn` failpoints inject the corresponding I/O failures
//! deterministically.

use crate::artifact::{Artifact, ArtifactArchive, ArtifactKind, SectionData, Sections};
use crate::checksum::{fnv64, fnv64_fast, Fnv64};
use crate::error::{io_err, StoreError};
use crate::wire::{Reader, Writer};
use rae_core::{AlignedBytes, StableBytes};
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The snapshot format version this build reads and writes. Bump on any
/// layout change; old versions are rebuilt from base data, not migrated.
/// v2: 32-byte header with alignment tag; 16-aligned section payloads
/// (zero-copy loadable); struct-of-arrays bucket tables; per-node
/// Elias-Fano startIndex encoding.
pub const FORMAT_VERSION: u32 = 2;

/// File extension of live snapshot files (`recover_dir` scans for it).
pub const SNAPSHOT_EXT: &str = "rae";

/// Environment variable aborting the process at a named point of the
/// publish protocol (crash-injection harness). Values: `temp-created`,
/// `mid-write:<bytes>`, `after-write`, `after-fsync`, `after-rename`.
pub const CRASH_ENV: &str = "RAE_STORE_CRASH";

const MAGIC: &[u8; 8] = b"RAESTOR1";
const END_MAGIC: &[u8; 8] = b"RAEEND.1";
const ENDIAN_TAG: u32 = 0x0A0B_0C0D;
const ALIGN_TAG: u32 = 16;
const HEADER_LEN: usize = 32;
const TRAILER_LEN: usize = 32;

/// Validated metadata of one snapshot file.
#[derive(Debug, Clone)]
pub struct SnapshotMeta {
    /// Format version found in the header.
    pub version: u32,
    /// What kind of index the file holds.
    pub kind: ArtifactKind,
    /// Writer-assigned epoch (the serve layer uses its publish epoch).
    pub epoch: u64,
    /// Free-form writer label (e.g. the query name).
    pub label: String,
    /// The process-independent identity of the artifact: FNV-1a 64 over
    /// each section's `(name, checksum)` pair in table order, where the
    /// per-section checksum is the word-folded
    /// [`fnv64_fast`](crate::fnv64_fast) of its payload. Validating the
    /// sections therefore validates the digest in the same single pass.
    pub artifact_digest: u64,
    /// Total file size in bytes.
    pub file_len: u64,
    /// Whether this load serves zero-copy views into the snapshot buffer
    /// (`true` only for a [`load_borrowed`] that did not fall back).
    pub borrowed: bool,
}

fn crash_point(point: &str) {
    if let Ok(v) = std::env::var(CRASH_ENV) {
        if v == point {
            std::process::abort();
        }
    }
}

/// The `mid-write:<n>` crash point: how many bytes to write before
/// aborting, if armed.
fn mid_write_budget() -> Option<usize> {
    let v = std::env::var(CRASH_ENV).ok()?;
    let n = v.strip_prefix("mid-write:")?;
    n.parse().ok()
}

/// Serializes the full file image (header + payload + footer + trailer)
/// and returns it with the artifact digest.
fn build_image(artifact: &ArtifactArchive, epoch: u64, label: &str) -> (Vec<u8>, u64) {
    let sections = artifact.to_sections();

    let mut image = Vec::new();
    image.extend_from_slice(MAGIC);
    image.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    image.extend_from_slice(&ENDIAN_TAG.to_le_bytes());
    image.extend_from_slice(&ALIGN_TAG.to_le_bytes());
    image.extend_from_slice(&0u32.to_le_bytes()); // reserved
    let header_sum = fnv64(&image[..24]);
    image.extend_from_slice(&header_sum.to_le_bytes());
    debug_assert_eq!(image.len(), HEADER_LEN);

    let mut digest = Fnv64::new();
    let mut table = Vec::with_capacity(sections.len());
    for (name, payload) in &sections {
        let offset = image.len() as u64;
        // Padded payloads + 32-byte header keep every section payload —
        // and hence every array within one — 16-aligned in the file.
        debug_assert_eq!(offset % u64::from(ALIGN_TAG), 0, "section {name}");
        let sum = fnv64_fast(payload);
        digest.update(name.as_bytes());
        digest.update(&sum.to_le_bytes());
        table.push((name.clone(), offset, payload.len() as u64, sum));
        image.extend_from_slice(payload);
    }
    let artifact_digest = digest.finish();

    let mut footer = Writer::new();
    footer.put_u8(artifact.kind().tag());
    footer.put_u32(FORMAT_VERSION);
    footer.put_u64(epoch);
    footer.put_str(label);
    footer.put_u64(artifact_digest);
    footer.put_len(table.len());
    for (name, offset, len, sum) in &table {
        footer.put_str(name);
        footer.put_u64(*offset);
        footer.put_u64(*len);
        footer.put_u64(*sum);
    }
    let footer = footer.into_bytes();
    let footer_offset = image.len() as u64;
    let footer_sum = fnv64(&footer);
    image.extend_from_slice(&footer);

    image.extend_from_slice(&footer_offset.to_le_bytes());
    image.extend_from_slice(&(footer.len() as u64).to_le_bytes());
    image.extend_from_slice(&footer_sum.to_le_bytes());
    image.extend_from_slice(END_MAGIC);

    (image, artifact_digest)
}

fn fsync_dir(dir: &Path) -> Result<(), StoreError> {
    // Directory fsync makes the rename itself durable. On platforms where
    // directories cannot be opened for sync this is best-effort.
    if let Ok(d) = fs::File::open(dir) {
        d.sync_all().map_err(io_err("fsync directory"))?;
    }
    Ok(())
}

/// Persists `artifact` at `path` crash-consistently and returns the
/// snapshot metadata (including the artifact digest).
///
/// The write is atomic-publish: a reader of `path` — concurrent or after a
/// crash at any point — sees either the previous complete file or the new
/// complete file, never a partial one.
pub fn save(
    path: &Path,
    artifact: &ArtifactArchive,
    epoch: u64,
    label: &str,
) -> Result<SnapshotMeta, StoreError> {
    let (image, artifact_digest) = build_image(artifact, epoch, label);
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());

    // Injected torn write: a seed-derived prefix lands under the FINAL
    // name (modelling a non-atomic in-place writer / lying disk), then the
    // save fails. Recovery must detect and quarantine the torn file.
    if rae_faults::eval_error("store/torn") {
        let seed = rae_faults::active_seed().unwrap_or(0);
        // SplitMix64 finalizer over the seed picks the truncation offset.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let cut = 1 + (z as usize) % (image.len() - 1);
        fs::write(path, &image[..cut]).map_err(io_err("torn write"))?;
        return Err(StoreError::FaultInjected { site: "store/torn" });
    }

    if rae_faults::eval_error("store/write") {
        return Err(StoreError::FaultInjected {
            site: "store/write",
        });
    }

    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("snapshot");
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));

    let result = (|| {
        let mut f = fs::File::create(&tmp).map_err(io_err("create temp"))?;
        crash_point("temp-created");
        if let Some(budget) = mid_write_budget() {
            let cut = budget.min(image.len());
            f.write_all(&image[..cut]).map_err(io_err("write temp"))?;
            std::process::abort();
        }
        f.write_all(&image).map_err(io_err("write temp"))?;
        crash_point("after-write");
        if rae_faults::eval_error("store/fsync") {
            return Err(StoreError::FaultInjected {
                site: "store/fsync",
            });
        }
        f.sync_all().map_err(io_err("fsync temp"))?;
        drop(f);
        crash_point("after-fsync");
        fs::rename(&tmp, path).map_err(io_err("rename into place"))?;
        crash_point("after-rename");
        if let Some(dir) = dir {
            fsync_dir(dir)?;
        }
        Ok(())
    })();
    if result.is_err() {
        // Best-effort cleanup; the unique temp name makes a leftover inert.
        let _ = fs::remove_file(&tmp);
    }
    result?;

    Ok(SnapshotMeta {
        version: FORMAT_VERSION,
        kind: artifact.kind(),
        epoch,
        label: label.to_string(),
        artifact_digest,
        file_len: image.len() as u64,
        borrowed: false,
    })
}

/// Parsed-and-verified file: metadata plus the located section payloads as
/// `(offset, len)` regions of the file bytes (no copies — `verify` never
/// materializes payloads, and `load_archive` decodes straight from the
/// mapped regions).
struct VerifiedFile {
    meta: SnapshotMeta,
    sections: BTreeMap<String, (usize, usize)>,
}

fn corrupt(section: &str, detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        section: section.to_string(),
        detail: detail.into(),
    }
}

/// Reads and checksum-validates every layer of the file: trailer, header,
/// footer, every section, and the artifact digest. No decoding of section
/// contents happens here.
fn verify_bytes(bytes: &[u8]) -> Result<VerifiedFile, StoreError> {
    let len = bytes.len() as u64;
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(StoreError::TruncatedFile {
            expected: (HEADER_LEN + TRAILER_LEN) as u64,
            actual: len,
        });
    }
    // Header.
    if &bytes[..8] != MAGIC {
        return Err(corrupt("header", "bad magic"));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != FORMAT_VERSION {
        return Err(StoreError::VersionMismatch {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let endian = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    if endian != ENDIAN_TAG {
        return Err(corrupt("header", format!("endianness tag {endian:#010x}")));
    }
    let align = u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]);
    if align != ALIGN_TAG {
        return Err(corrupt(
            "header",
            format!("alignment tag {align}, expected {ALIGN_TAG}"),
        ));
    }
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&bytes[24..32]);
    if u64::from_le_bytes(sum) != fnv64(&bytes[..24]) {
        return Err(corrupt("header", "header checksum mismatch"));
    }
    // Trailer.
    let trailer = &bytes[bytes.len() - TRAILER_LEN..];
    if &trailer[24..32] != END_MAGIC {
        // A crashed or torn write usually lands here: the file simply ends
        // early, so the bytes where the trailer should be are payload.
        return Err(StoreError::TruncatedFile {
            expected: len + TRAILER_LEN as u64,
            actual: len,
        });
    }
    let footer_offset = u64::from_le_bytes(
        trailer[..8]
            .try_into()
            .map_err(|_| corrupt("trailer", "short read"))?,
    );
    let footer_len = u64::from_le_bytes(
        trailer[8..16]
            .try_into()
            .map_err(|_| corrupt("trailer", "short read"))?,
    );
    let footer_sum = u64::from_le_bytes(
        trailer[16..24]
            .try_into()
            .map_err(|_| corrupt("trailer", "short read"))?,
    );
    let footer_end = footer_offset.checked_add(footer_len);
    let trailer_start = len - TRAILER_LEN as u64;
    if footer_offset < HEADER_LEN as u64 || footer_end.is_none_or(|e| e != trailer_start) {
        return Err(corrupt(
            "trailer",
            format!("footer region [{footer_offset}, +{footer_len}) out of bounds"),
        ));
    }
    let footer_bytes = &bytes[footer_offset as usize..(footer_offset + footer_len) as usize];
    if fnv64(footer_bytes) != footer_sum {
        return Err(corrupt("footer", "footer checksum mismatch"));
    }
    // Footer.
    let mut r = Reader::new("footer", footer_bytes);
    let kind = ArtifactKind::from_tag(r.get_u8()?)
        .ok_or_else(|| corrupt("footer", "unknown artifact kind tag"))?;
    let footer_version = r.get_u32()?;
    if footer_version != version {
        return Err(corrupt(
            "footer",
            format!("footer version {footer_version} disagrees with header {version}"),
        ));
    }
    let epoch = r.get_u64()?;
    let label = r.get_str()?.to_string();
    let artifact_digest = r.get_u64()?;
    let table_len = r.get_len(1)?;
    let mut digest = Fnv64::new();
    let mut sections = BTreeMap::new();
    for _ in 0..table_len {
        let name = r.get_str()?.to_string();
        let offset = r.get_u64()?;
        let sec_len = r.get_u64()?;
        let sec_sum = r.get_u64()?;
        let end = offset.checked_add(sec_len);
        if offset < HEADER_LEN as u64 || end.is_none_or(|e| e > footer_offset) {
            return Err(corrupt(
                &name,
                format!("section region [{offset}, +{sec_len}) out of bounds"),
            ));
        }
        let payload = &bytes[offset as usize..(offset + sec_len) as usize];
        if fnv64_fast(payload) != sec_sum {
            return Err(corrupt(&name, "section checksum mismatch"));
        }
        digest.update(name.as_bytes());
        digest.update(&sec_sum.to_le_bytes());
        if sections
            .insert(name.clone(), (offset as usize, sec_len as usize))
            .is_some()
        {
            return Err(corrupt(&name, "duplicate section name"));
        }
    }
    r.finish()?;
    let actual = digest.finish();
    if actual != artifact_digest {
        return Err(StoreError::DigestMismatch {
            expected: artifact_digest,
            actual,
        });
    }
    Ok(VerifiedFile {
        meta: SnapshotMeta {
            version,
            kind,
            epoch,
            label,
            artifact_digest,
            file_len: len,
            borrowed: false,
        },
        sections,
    })
}

fn read_file(path: &Path) -> Result<Vec<u8>, StoreError> {
    fs::read(path).map_err(io_err("read snapshot"))
}

/// Checksum-validates a snapshot file without decoding it: every section
/// checksum, the footer/trailer/header sums, and the artifact digest.
pub fn verify(path: &Path) -> Result<SnapshotMeta, StoreError> {
    Ok(verify_bytes(&read_file(path)?)?.meta)
}

/// Builds the name → (payload, absolute offset) view over verified bytes.
/// `image_start` is where the file image begins inside the full owner
/// buffer (nonzero only for the deliberately misaligned test fixture).
fn section_map<'a>(verified: &VerifiedFile, bytes: &'a [u8], image_start: usize) -> Sections<'a> {
    verified
        .sections
        .iter()
        .map(|(name, &(offset, len))| {
            (
                name.clone(),
                SectionData {
                    bytes: &bytes[offset..offset + len],
                    abs: image_start + offset,
                },
            )
        })
        .collect()
}

/// Loads a snapshot back to its archive form (checksums + decode, no
/// dictionary interning and no semantic re-validation yet).
pub fn load_archive(path: &Path) -> Result<(ArtifactArchive, SnapshotMeta), StoreError> {
    let bytes = read_file(path)?;
    let verified = verify_bytes(&bytes)?;
    let sections = section_map(&verified, &bytes, 0);
    let archive = ArtifactArchive::from_sections(verified.meta.kind, &sections, None)?;
    Ok((archive, verified.meta))
}

/// Loads a snapshot all the way to a live, validated index: checksums,
/// decode, dictionary interning, and the full `from_archive` semantic
/// re-validation. This is the only function handing out a usable index.
pub fn load(path: &Path) -> Result<(Artifact, SnapshotMeta), StoreError> {
    let (archive, meta) = load_archive(path)?;
    Ok((archive.realize()?, meta))
}

/// Maps the file read-only where the platform supports it, else reads it
/// into a 16-aligned heap buffer (either way the buffer address is
/// alignment-compatible with the format's 16-byte discipline).
fn map_or_read(path: &Path) -> Result<Arc<dyn StableBytes>, StoreError> {
    // Mapping failures (empty file, exotic fs) degrade to a read — the
    // borrowed decode works identically over the aligned copy.
    #[cfg(unix)]
    if let Ok(m) = crate::map::MappedFile::open(path) {
        return Ok(Arc::new(m));
    }
    Ok(Arc::new(AlignedBytes::copy_from(&read_file(path)?)))
}

/// The borrowed archive load: verify, then decode with zero-copy columns
/// anchored in `owner`, falling back to the owned decode when the buffer
/// cannot support views. `meta.borrowed` reports which path was taken.
fn load_archive_from_owner(
    owner: Arc<dyn StableBytes>,
    image_start: usize,
) -> Result<(ArtifactArchive, SnapshotMeta), StoreError> {
    let all = owner.stable_bytes();
    let bytes = all.get(image_start..).ok_or(StoreError::TruncatedFile {
        expected: image_start as u64,
        actual: all.len() as u64,
    })?;
    let verified = verify_bytes(bytes)?;
    let sections = section_map(&verified, bytes, image_start);
    match ArtifactArchive::from_sections(verified.meta.kind, &sections, Some(&owner)) {
        Ok(archive) => {
            let mut meta = verified.meta;
            meta.borrowed = true;
            Ok((archive, meta))
        }
        Err(StoreError::Unborrowable { .. }) => {
            let archive = ArtifactArchive::from_sections(verified.meta.kind, &sections, None)?;
            Ok((archive, verified.meta))
        }
        Err(e) => Err(e),
    }
}

/// [`load_archive`], zero-copy: the archive's numeric tables are views
/// into a read-only mapping of the file (kept alive by the archive
/// itself). Falls back to the owned decode — same artifact, same digest —
/// when views cannot be constructed; `meta.borrowed` says which happened.
pub fn load_archive_borrowed(path: &Path) -> Result<(ArtifactArchive, SnapshotMeta), StoreError> {
    load_archive_from_owner(map_or_read(path)?, 0)
}

/// [`load`], zero-copy: the validated live index serves counts, accesses,
/// rank descents, and samples straight from the mapped snapshot bytes.
/// Validation is identical to the owned path — every checksum, the
/// artifact digest, and the full `from_archive` semantic re-validation
/// run before any borrowed view escapes.
pub fn load_borrowed(path: &Path) -> Result<(Artifact, SnapshotMeta), StoreError> {
    let (archive, meta) = load_archive_borrowed(path)?;
    Ok((archive.realize()?, meta))
}

/// Test hook: loads through a deliberately misaligned in-memory copy (the
/// image starts `prefix` bytes into an aligned buffer), to prove the
/// misalignment fallback returns a correct owned index instead of UB.
#[doc(hidden)]
pub fn load_borrowed_at_offset(
    path: &Path,
    prefix: usize,
) -> Result<(Artifact, SnapshotMeta), StoreError> {
    let bytes = read_file(path)?;
    let owner: Arc<dyn StableBytes> = Arc::new(AlignedBytes::copy_from_at(prefix, &bytes));
    let (archive, meta) = load_archive_from_owner(owner, prefix)?;
    Ok((archive.realize()?, meta))
}

/// Moves a failed file aside as `<name>.corrupt` (numbered on collision)
/// in the same directory — quarantined for diagnosis, never deleted.
pub fn quarantine(path: &Path) -> Result<PathBuf, StoreError> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("snapshot");
    let mut target = path.with_file_name(format!("{file_name}.corrupt"));
    let mut attempt = 1u32;
    while target.exists() {
        target = path.with_file_name(format!("{file_name}.corrupt.{attempt}"));
        attempt += 1;
    }
    fs::rename(path, &target).map_err(io_err("quarantine rename"))?;
    Ok(target)
}

/// Cold-start recovery: scans `dir` for `*.rae` snapshots, quarantines
/// every file that fails validation (renamed aside, never deleted), and
/// loads the newest valid one (highest epoch, file name as tie-break).
///
/// Returns [`StoreError::NoSnapshot`] — listing the quarantined files —
/// when nothing loadable remains.
pub fn recover_dir(dir: &Path) -> Result<(PathBuf, Artifact, SnapshotMeta), StoreError> {
    recover_dir_with(dir, false)
}

/// [`recover_dir`] with a choice of load path: `prefer_borrowed` loads
/// the winning snapshot zero-copy (falling back to owned on buffers that
/// cannot support views). Validation and quarantine behavior are
/// identical either way.
pub fn recover_dir_with(
    dir: &Path,
    prefer_borrowed: bool,
) -> Result<(PathBuf, Artifact, SnapshotMeta), StoreError> {
    let entries = fs::read_dir(dir).map_err(io_err("read snapshot directory"))?;
    let mut quarantined = Vec::new();
    let mut candidates: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(io_err("read snapshot directory"))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some(SNAPSHOT_EXT) {
            continue;
        }
        match verify(&path) {
            Ok(meta) => candidates.push((meta.epoch, path)),
            Err(StoreError::Io { .. }) => {
                // Unreadable now ≠ corrupt; leave it alone and move on.
            }
            Err(_) => match quarantine(&path) {
                Ok(q) => quarantined.push(q),
                Err(_) => quarantined.push(path),
            },
        }
    }
    // Newest first.
    candidates.sort_by(|a, b| b.cmp(a));
    for (_, path) in candidates {
        let loaded = if prefer_borrowed {
            load_borrowed(&path)
        } else {
            load(&path)
        };
        match loaded {
            Ok((artifact, meta)) => return Ok((path, artifact, meta)),
            Err(StoreError::Io { .. }) => continue,
            Err(_) => match quarantine(&path) {
                Ok(q) => quarantined.push(q),
                Err(_) => quarantined.push(path),
            },
        }
    }
    Err(StoreError::NoSnapshot {
        dir: dir.to_path_buf(),
        quarantined,
    })
}
