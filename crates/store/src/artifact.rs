//! Artifact ⇄ section codec. An artifact (one built index in archive form)
//! encodes to a deterministic ordered list of named sections — flat `u32`
//! reference columns, startIndex arrays (compact `u64`, wide `u128`, or
//! Elias-Fano, chosen per node by encoded size), struct-of-arrays bucket
//! tables, and the deduplicated value table — and the `artifact_digest` is
//! the FNV-1a 64 over the concatenated section payloads in that order. The
//! encoding references the archive's own value table (never process-local
//! dictionary codes), so the digest of a logical index is identical across
//! processes: the crash harness compares digests computed in different
//! processes to prove recovery exactness.
//!
//! Format v2 lays every numeric array on a 16-byte payload boundary
//! (zero padding inside the checksummed payload), which is what lets
//! [`ArtifactArchive::from_sections`] decode in *borrowed* mode: columns
//! become validated zero-copy [`rae_core::Col`] views straight into the
//! snapshot buffer instead of owned copies.
//!
//! The Elias-Fano choice is transparent to digests: the owned decode
//! expands EF back to the compact layout, and re-encoding a (valid)
//! compact node deterministically re-selects EF with identical bytes, so
//! `save(load(x))` still digests to `digest(x)` whichever path loaded it.

use crate::error::StoreError;
use crate::wire::{ColSource, Reader, Writer};
use rae_core::{
    Buckets, Col, CqIndex, CqIndexArchive, EfStarts, NodeArchive, OrderedCqIndex,
    OrderedCqIndexArchive, OrderedMcUcqArchive, OrderedMcUcqIndex, StableBytes, Starts,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// startIndex layout tags on the wire.
const STARTS_COMPACT: u8 = 0;
const STARTS_WIDE: u8 = 1;
const STARTS_ELIAS_FANO: u8 = 2;

/// What kind of index a snapshot holds (the footer's kind tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A plain [`CqIndex`] (Theorem 4.3 layout).
    Cq,
    /// An [`OrderedCqIndex`] (lex-ordered layout).
    Ordered,
    /// An [`OrderedMcUcqIndex`] (2^m − 1 ordered members).
    OrderedUnion,
}

impl ArtifactKind {
    pub(crate) fn tag(self) -> u8 {
        match self {
            ArtifactKind::Cq => 1,
            ArtifactKind::Ordered => 2,
            ArtifactKind::OrderedUnion => 3,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(ArtifactKind::Cq),
            2 => Some(ArtifactKind::Ordered),
            3 => Some(ArtifactKind::OrderedUnion),
            _ => None,
        }
    }
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ArtifactKind::Cq => "cq",
            ArtifactKind::Ordered => "ordered",
            ArtifactKind::OrderedUnion => "ordered-union",
        })
    }
}

/// The archived (process-independent) form of one persistable index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactArchive {
    /// A plain CQ index archive.
    Cq(CqIndexArchive),
    /// An ordered CQ index archive.
    Ordered(OrderedCqIndexArchive),
    /// An ordered same-template union archive.
    OrderedUnion(OrderedMcUcqArchive),
}

/// A live, validated index reconstructed from a snapshot.
#[derive(Debug)]
pub enum Artifact {
    /// A plain CQ index.
    Cq(CqIndex),
    /// An ordered CQ index.
    Ordered(OrderedCqIndex),
    /// An ordered same-template union.
    OrderedUnion(OrderedMcUcqIndex),
}

/// One named section: its payload bytes plus the payload's absolute
/// offset within the snapshot buffer (what anchors borrowed views).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SectionData<'a> {
    pub bytes: &'a [u8],
    pub abs: usize,
}

pub(crate) type Sections<'a> = BTreeMap<String, SectionData<'a>>;

impl ArtifactArchive {
    /// The kind tag this archive serializes under.
    pub fn kind(&self) -> ArtifactKind {
        match self {
            ArtifactArchive::Cq(_) => ArtifactKind::Cq,
            ArtifactArchive::Ordered(_) => ArtifactKind::Ordered,
            ArtifactArchive::OrderedUnion(_) => ArtifactKind::OrderedUnion,
        }
    }

    /// Encodes into the deterministic ordered section list. Every payload
    /// is a 16-byte multiple (padding is part of the checksummed bytes).
    pub(crate) fn to_sections(&self) -> Vec<(String, Vec<u8>)> {
        let mut out = Vec::new();
        match self {
            ArtifactArchive::Cq(a) => encode_cq("", a, &mut out),
            ArtifactArchive::Ordered(a) => encode_ordered("", a, &mut out),
            ArtifactArchive::OrderedUnion(a) => {
                let mut w = Writer::new();
                w.put_u32(a.m);
                w.put_symbols(&a.head);
                w.pad_to_16();
                out.push(("union".to_string(), w.into_bytes()));
                for (mask, member) in a.structs.iter().enumerate() {
                    if let Some(member) = member {
                        encode_ordered(&format!("m{mask}/"), member, &mut out);
                    }
                }
            }
        }
        debug_assert!(out.iter().all(|(_, p)| p.len() % 16 == 0));
        out
    }

    /// Decodes an archive of `kind` from named section payloads. With an
    /// `owner`, numeric columns are zero-copy views into it (anchored at
    /// each section's absolute offset); a view the buffer cannot support
    /// surfaces as [`StoreError::Unborrowable`] for the caller to fall
    /// back on. Without one, everything is copied out as owned vectors
    /// and Elias-Fano startIndex nodes are expanded back to compact.
    pub(crate) fn from_sections(
        kind: ArtifactKind,
        sections: &Sections<'_>,
        owner: Option<&Arc<dyn StableBytes>>,
    ) -> Result<Self, StoreError> {
        match kind {
            ArtifactKind::Cq => Ok(ArtifactArchive::Cq(decode_cq("", sections, owner)?)),
            ArtifactKind::Ordered => Ok(ArtifactArchive::Ordered(decode_ordered(
                "", sections, owner,
            )?)),
            ArtifactKind::OrderedUnion => {
                let sec = section(sections, "union")?;
                let mut r = Reader::new("union", sec.bytes);
                let m = r.get_u32()?;
                let head = r.get_symbols()?;
                r.finish_padded()?;
                if m == 0 || m > 24 {
                    return Err(StoreError::Corrupt {
                        section: "union".to_string(),
                        detail: format!("implausible member count {m}"),
                    });
                }
                let mut structs = vec![None];
                for mask in 1..(1usize << m) {
                    structs.push(Some(decode_ordered(&format!("m{mask}/"), sections, owner)?));
                }
                Ok(ArtifactArchive::OrderedUnion(OrderedMcUcqArchive {
                    m,
                    head,
                    structs,
                }))
            }
        }
    }

    /// Reconstructs the live index, running the full `from_archive`
    /// semantic validation (the backstop behind the checksums).
    pub fn realize(self) -> Result<Artifact, StoreError> {
        Ok(match self {
            ArtifactArchive::Cq(a) => Artifact::Cq(CqIndex::from_archive(a)?),
            ArtifactArchive::Ordered(a) => Artifact::Ordered(OrderedCqIndex::from_archive(a)?),
            ArtifactArchive::OrderedUnion(a) => {
                Artifact::OrderedUnion(OrderedMcUcqIndex::from_archive(a)?)
            }
        })
    }
}

/// The global cumulative startIndex sequence of one node — per-bucket
/// starts shifted by the running sum of earlier buckets' totals — when it
/// is strictly increasing and fits `u64` (the shape Elias-Fano needs).
/// `None` means "keep the direct layout". Valid archives always qualify
/// on monotonicity (weights ≥ 1); the checks make encoding total for
/// hand-built or hostile archives too.
fn ef_global(node: &NodeArchive) -> Option<Vec<u64>> {
    let Starts::Compact(starts) = &node.starts else {
        return None;
    };
    let mut g: Vec<u64> = Vec::with_capacity(starts.len());
    let mut base: u128 = 0;
    for bucket in node.buckets.iter() {
        for i in bucket.start..bucket.end {
            let v = base.checked_add(u128::from(*starts.get(i as usize)?))?;
            let v = u64::try_from(v).ok()?;
            if g.last().is_some_and(|&prev| prev >= v) {
                return None;
            }
            g.push(v);
        }
        base = base.checked_add(bucket.total)?;
    }
    (g.len() == starts.len()).then_some(g)
}

fn encode_cq(prefix: &str, a: &CqIndexArchive, out: &mut Vec<(String, Vec<u8>)>) {
    let mut w = Writer::new();
    w.put_symbols(&a.head);
    w.put_len(a.bags.len());
    for (bag, parent) in a.bags.iter().zip(&a.parent) {
        match parent {
            Some(p) => {
                w.put_u8(1);
                w.put_u32(*p as u32);
            }
            None => w.put_u8(0),
        }
        w.put_symbols(bag);
    }
    w.pad_to_16();
    out.push((format!("{prefix}plan"), w.into_bytes()));

    let mut w = Writer::new();
    w.put_len(a.values.len());
    for v in &a.values {
        w.put_value(v);
    }
    w.pad_to_16();
    out.push((format!("{prefix}values"), w.into_bytes()));

    for (i, node) in a.nodes.iter().enumerate() {
        let mut w = Writer::new();
        w.put_u32(node.rows);
        w.put_len(node.refs.len());
        w.pad_to_16();
        w.put_col(&node.refs);
        w.pad_to_16();
        out.push((format!("{prefix}node{i}/refs"), w.into_bytes()));

        let mut w = Writer::new();
        w.put_len(node.weights.len());
        w.pad_to_16();
        w.put_col(&node.weights);
        out.push((format!("{prefix}node{i}/weights"), w.into_bytes()));

        let mut w = Writer::new();
        match (
            &node.starts,
            ef_global(node).and_then(|g| EfStarts::encode(&g)),
        ) {
            (_, Some(ef)) => {
                let (len, low_bits, lower, upper, samples) = ef.parts();
                w.put_u8(STARTS_ELIAS_FANO);
                w.put_len(len);
                w.put_u32(low_bits);
                w.put_len(lower.len());
                w.put_len(upper.len());
                w.put_len(samples.len());
                w.pad_to_16();
                w.put_col(lower);
                w.pad_to_16();
                w.put_col(upper);
                w.pad_to_16();
                w.put_col(samples);
                w.pad_to_16();
            }
            (Starts::Compact(v), None) => {
                w.put_u8(STARTS_COMPACT);
                w.put_len(v.len());
                w.pad_to_16();
                w.put_col(v);
                w.pad_to_16();
            }
            (Starts::Wide(v), None) => {
                w.put_u8(STARTS_WIDE);
                w.put_len(v.len());
                w.pad_to_16();
                w.put_col(v);
            }
            // ef_global only returns Some for Compact nodes, and live
            // EliasFano starts (a borrowed load being re-saved) re-encode
            // their parts verbatim below — unreachable by construction,
            // but total: fall back to expanding through rank semantics.
            (Starts::EliasFano(ef), None) => {
                let (len, low_bits, lower, upper, samples) = ef.parts();
                w.put_u8(STARTS_ELIAS_FANO);
                w.put_len(len);
                w.put_u32(low_bits);
                w.put_len(lower.len());
                w.put_len(upper.len());
                w.put_len(samples.len());
                w.pad_to_16();
                w.put_col(lower);
                w.pad_to_16();
                w.put_col(upper);
                w.pad_to_16();
                w.put_col(samples);
                w.pad_to_16();
            }
        }
        out.push((format!("{prefix}node{i}/starts"), w.into_bytes()));

        let mut w = Writer::new();
        w.put_len(node.buckets.len());
        w.pad_to_16();
        w.put_col(&node.buckets.start);
        w.pad_to_16();
        w.put_col(&node.buckets.end);
        w.pad_to_16();
        w.put_col(&node.buckets.total);
        w.put_col(&node.buckets.max_weight);
        out.push((format!("{prefix}node{i}/buckets"), w.into_bytes()));

        let mut w = Writer::new();
        w.put_len(node.bucket_of_row.len());
        w.put_len(node.child_buckets.len());
        w.pad_to_16();
        w.put_col(&node.bucket_of_row);
        w.pad_to_16();
        for col in &node.child_buckets {
            w.put_len(col.len());
            w.pad_to_16();
            w.put_col(col);
            w.pad_to_16();
        }
        out.push((format!("{prefix}node{i}/links"), w.into_bytes()));
    }
}

fn encode_ordered(prefix: &str, a: &OrderedCqIndexArchive, out: &mut Vec<(String, Vec<u8>)>) {
    encode_cq(prefix, &a.index, out);
    let mut w = Writer::new();
    w.put_symbols(&a.order);
    w.put_len(a.node_new.len());
    for cols in &a.node_new {
        w.put_len(cols.len());
        for &(col, pos) in cols {
            w.put_u32(col);
            w.put_u32(pos);
        }
    }
    w.pad_to_16();
    out.push((format!("{prefix}order"), w.into_bytes()));
}

fn section<'a>(sections: &Sections<'a>, name: &str) -> Result<SectionData<'a>, StoreError> {
    sections
        .get(name)
        .copied()
        .ok_or_else(|| StoreError::Corrupt {
            section: name.to_string(),
            detail: "section missing from the file".to_string(),
        })
}

/// Reader for a named section, wired to decode columns from `owner` (or
/// owned copies when borrowing is off).
fn reader<'a>(
    name: &'a str,
    sec: SectionData<'a>,
    owner: Option<&Arc<dyn StableBytes>>,
) -> Reader<'a> {
    match owner {
        Some(owner) => Reader::with_source(
            name,
            sec.bytes,
            ColSource::Borrowed {
                owner: Arc::clone(owner),
                payload_base: sec.abs,
            },
        ),
        None => Reader::new(name, sec.bytes),
    }
}

fn decode_cq(
    prefix: &str,
    sections: &Sections<'_>,
    owner: Option<&Arc<dyn StableBytes>>,
) -> Result<CqIndexArchive, StoreError> {
    let name = format!("{prefix}plan");
    let mut r = Reader::new(&name, section(sections, &name)?.bytes);
    let head = r.get_symbols()?;
    let n = r.get_len(1)?;
    let mut bags = Vec::with_capacity(n);
    let mut parent = Vec::with_capacity(n);
    for _ in 0..n {
        parent.push(match r.get_u8()? {
            0 => None,
            1 => Some(r.get_u32()? as usize),
            tag => {
                return Err(StoreError::Corrupt {
                    section: name.clone(),
                    detail: format!("unknown parent tag {tag}"),
                })
            }
        });
        bags.push(r.get_symbols()?);
    }
    r.finish_padded()?;

    let name = format!("{prefix}values");
    let mut r = Reader::new(&name, section(sections, &name)?.bytes);
    let count = r.get_len(1)?;
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(r.get_value()?);
    }
    r.finish_padded()?;

    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let name = format!("{prefix}node{i}/refs");
        let mut r = reader(&name, section(sections, &name)?, owner);
        let rows = r.get_u32()?;
        let len = r.get_len(4)?;
        let refs: Col<u32> = r.get_col(len)?;
        r.finish_padded()?;

        let name = format!("{prefix}node{i}/weights");
        let mut r = reader(&name, section(sections, &name)?, owner);
        let len = r.get_len(16)?;
        let weights: Col<u128> = r.get_col(len)?;
        r.finish_padded()?;

        // Buckets before starts: the owned Elias-Fano expansion needs the
        // bucket table to turn global cumulative values back into
        // per-bucket starts.
        let name = format!("{prefix}node{i}/buckets");
        let mut r = reader(&name, section(sections, &name)?, owner);
        let len = r.get_len(40)?;
        let b_start: Col<u32> = r.get_col(len)?;
        let b_end: Col<u32> = r.get_col(len)?;
        let b_total: Col<u128> = r.get_col(len)?;
        let b_max: Col<u128> = r.get_col(len)?;
        let buckets = Buckets::from_cols(b_start, b_end, b_total, b_max).map_err(|detail| {
            StoreError::Corrupt {
                section: name.clone(),
                detail,
            }
        })?;
        r.finish_padded()?;

        let name = format!("{prefix}node{i}/starts");
        let mut r = reader(&name, section(sections, &name)?, owner);
        let starts = match r.get_u8()? {
            STARTS_COMPACT => {
                let len = r.get_len(8)?;
                Starts::Compact(r.get_col(len)?)
            }
            STARTS_WIDE => {
                let len = r.get_len(16)?;
                Starts::Wide(r.get_col(len)?)
            }
            STARTS_ELIAS_FANO => {
                // The element count is NOT bounds-checked against the
                // payload (EF stores far fewer than 8 bytes/element);
                // `from_parts` cross-validates it against the word
                // counts, which `get_col` does bound, before anything
                // allocates proportionally to it.
                let len = usize::try_from(r.get_u64()?).map_err(|_| StoreError::Corrupt {
                    section: name.clone(),
                    detail: "EF length overflows usize".to_string(),
                })?;
                let low_bits = r.get_u32()?;
                let n_lower = r.get_len(8)?;
                let n_upper = r.get_len(8)?;
                let n_samples = r.get_len(8)?;
                let lower: Col<u64> = r.get_col(n_lower)?;
                let upper: Col<u64> = r.get_col(n_upper)?;
                let samples: Col<u64> = r.get_col(n_samples)?;
                let ef = EfStarts::from_parts(len, low_bits, lower, upper, samples).map_err(
                    |detail| StoreError::Corrupt {
                        section: name.clone(),
                        detail,
                    },
                )?;
                if owner.is_some() {
                    // Borrowed load: serve ranks straight off the
                    // succinct structure.
                    Starts::EliasFano(ef)
                } else {
                    // Owned load: expand the global sequence back to
                    // per-bucket compact starts (checked subtraction —
                    // a non-monotone hostile sequence is corruption,
                    // not a wrap).
                    let g = ef.decode_all();
                    if g.len() != len {
                        return Err(StoreError::Corrupt {
                            section: name.clone(),
                            detail: "EF decoded length disagrees".to_string(),
                        });
                    }
                    let mut compact = vec![0u64; len];
                    let mut covered = 0usize;
                    for bucket in buckets.iter() {
                        let (bs, be) = (bucket.start as usize, bucket.end as usize);
                        if bs > be || be > len {
                            return Err(StoreError::Corrupt {
                                section: name.clone(),
                                detail: format!("bucket range {bs}..{be} outside {len} starts"),
                            });
                        }
                        for row in bs..be {
                            compact[row] =
                                g[row]
                                    .checked_sub(g[bs])
                                    .ok_or_else(|| StoreError::Corrupt {
                                        section: name.clone(),
                                        detail: "EF sequence not monotone within a bucket"
                                            .to_string(),
                                    })?;
                        }
                        covered += be - bs;
                    }
                    if covered != len {
                        return Err(StoreError::Corrupt {
                            section: name.clone(),
                            detail: format!("buckets cover {covered} of {len} starts"),
                        });
                    }
                    Starts::Compact(Col::Owned(compact))
                }
            }
            tag => {
                return Err(StoreError::Corrupt {
                    section: name.clone(),
                    detail: format!("unknown starts tag {tag}"),
                })
            }
        };
        r.finish_padded()?;

        let name = format!("{prefix}node{i}/links");
        let mut r = reader(&name, section(sections, &name)?, owner);
        let len = r.get_len(4)?;
        let cols = r.get_len(0)?;
        let bucket_of_row: Col<u32> = r.get_col(len)?;
        // Each column is followed by its own padding; consume it so the
        // next length is read aligned, exactly as encoded.
        r.align_16()?;
        let mut child_buckets = Vec::with_capacity(cols);
        for _ in 0..cols {
            let len = r.get_len(4)?;
            let col: Col<u32> = r.get_col(len)?;
            r.align_16()?;
            child_buckets.push(col);
        }
        r.finish_padded()?;

        nodes.push(NodeArchive {
            rows,
            refs,
            weights,
            starts,
            buckets,
            bucket_of_row,
            child_buckets,
        });
    }

    Ok(CqIndexArchive {
        values,
        bags,
        parent,
        head,
        nodes,
    })
}

fn decode_ordered(
    prefix: &str,
    sections: &Sections<'_>,
    owner: Option<&Arc<dyn StableBytes>>,
) -> Result<OrderedCqIndexArchive, StoreError> {
    let index = decode_cq(prefix, sections, owner)?;
    let name = format!("{prefix}order");
    let mut r = Reader::new(&name, section(sections, &name)?.bytes);
    let order = r.get_symbols()?;
    let n = r.get_len(8)?;
    let mut node_new = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.get_len(8)?;
        let mut cols = Vec::with_capacity(len);
        for _ in 0..len {
            cols.push((r.get_u32()?, r.get_u32()?));
        }
        node_new.push(cols);
    }
    r.finish_padded()?;
    Ok(OrderedCqIndexArchive {
        index,
        order,
        node_new,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_data::{Symbol, Value};

    pub(crate) fn tiny_cq_archive() -> CqIndexArchive {
        // One node, one attribute, two rows — hand-rolled but consistent.
        CqIndexArchive {
            values: vec![Value::Int(1), Value::Int(2)],
            bags: vec![vec![Symbol::new("x")]],
            parent: vec![None],
            head: vec![Symbol::new("x")],
            nodes: vec![NodeArchive {
                rows: 2,
                refs: Col::Owned(vec![0, 1]),
                weights: Col::Owned(vec![1, 1]),
                starts: Starts::Compact(Col::Owned(vec![0, 1])),
                buckets: Buckets::from_cols(
                    Col::Owned(vec![0]),
                    Col::Owned(vec![2]),
                    Col::Owned(vec![2]),
                    Col::Owned(vec![1]),
                )
                .unwrap(),
                bucket_of_row: Col::Owned(vec![0, 0]),
                child_buckets: vec![],
            }],
        }
    }

    fn as_sections(owned: &[(String, Vec<u8>)]) -> Sections<'_> {
        owned
            .iter()
            .map(|(n, p)| {
                (
                    n.clone(),
                    SectionData {
                        bytes: p.as_slice(),
                        abs: 0,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn sections_round_trip() {
        let archive = ArtifactArchive::Cq(tiny_cq_archive());
        let owned = archive.to_sections();
        let decoded =
            ArtifactArchive::from_sections(ArtifactKind::Cq, &as_sections(&owned), None).unwrap();
        assert_eq!(decoded, archive);
    }

    #[test]
    fn missing_section_is_structured() {
        let archive = ArtifactArchive::Cq(tiny_cq_archive());
        let owned = archive.to_sections();
        let mut sections = as_sections(&owned);
        sections.remove("node0/weights");
        assert!(matches!(
            ArtifactArchive::from_sections(ArtifactKind::Cq, &sections, None),
            Err(StoreError::Corrupt { section, .. }) if section == "node0/weights"
        ));
    }

    #[test]
    fn encode_order_is_deterministic() {
        let archive = ArtifactArchive::Cq(tiny_cq_archive());
        assert_eq!(archive.to_sections(), archive.to_sections());
    }

    #[test]
    fn payloads_are_aligned_multiples() {
        let archive = ArtifactArchive::Cq(tiny_cq_archive());
        for (name, payload) in archive.to_sections() {
            assert_eq!(payload.len() % 16, 0, "section {name} not padded");
        }
    }

    #[test]
    fn dense_starts_pick_elias_fano_and_round_trip() {
        // One bucket, consecutive starts: EF is profitable and must
        // decode (owned) back to the identical compact archive.
        let rows = 4096u32;
        let mut a = tiny_cq_archive();
        let node = &mut a.nodes[0];
        node.rows = rows;
        node.refs = Col::Owned((0..rows).map(|_| 0).collect());
        node.weights = Col::Owned(vec![1u128; rows as usize]);
        node.starts = Starts::Compact(Col::Owned((0..rows as u64).collect()));
        node.buckets = Buckets::from_cols(
            Col::Owned(vec![0]),
            Col::Owned(vec![rows]),
            Col::Owned(vec![rows as u128]),
            Col::Owned(vec![1]),
        )
        .unwrap();
        node.bucket_of_row = Col::Owned(vec![0; rows as usize]);
        let archive = ArtifactArchive::Cq(a);
        let owned = archive.to_sections();
        let starts_payload = &owned.iter().find(|(n, _)| n == "node0/starts").unwrap().1;
        assert_eq!(starts_payload[0], STARTS_ELIAS_FANO);
        // Succinct: far smaller than the 8-byte/row compact layout.
        assert!(starts_payload.len() < rows as usize * 2);
        let decoded =
            ArtifactArchive::from_sections(ArtifactKind::Cq, &as_sections(&owned), None).unwrap();
        assert_eq!(decoded, archive);
        // Digest fixed point: re-encoding re-selects EF with equal bytes.
        assert_eq!(decoded.to_sections(), owned);
    }
}
