//! Artifact ⇄ section codec. An artifact (one built index in archive form)
//! encodes to a deterministic ordered list of named sections — flat `u32`
//! reference columns, `u64`/`u128` startIndex prefix sums, bucket tables,
//! and the deduplicated value table — and the `artifact_digest` is the
//! FNV-1a 64 over the concatenated section payloads in that order. The
//! encoding references the archive's own value table (never process-local
//! dictionary codes), so the digest of a logical index is identical across
//! processes: the crash harness compares digests computed in different
//! processes to prove recovery exactness.

use crate::error::StoreError;
use crate::wire::{Reader, Writer};
use rae_core::{
    BucketArchive, CqIndex, CqIndexArchive, NodeArchive, OrderedCqIndex, OrderedCqIndexArchive,
    OrderedMcUcqArchive, OrderedMcUcqIndex, StartsArchive,
};
use std::collections::BTreeMap;

/// What kind of index a snapshot holds (the footer's kind tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A plain [`CqIndex`] (Theorem 4.3 layout).
    Cq,
    /// An [`OrderedCqIndex`] (lex-ordered layout).
    Ordered,
    /// An [`OrderedMcUcqIndex`] (2^m − 1 ordered members).
    OrderedUnion,
}

impl ArtifactKind {
    pub(crate) fn tag(self) -> u8 {
        match self {
            ArtifactKind::Cq => 1,
            ArtifactKind::Ordered => 2,
            ArtifactKind::OrderedUnion => 3,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(ArtifactKind::Cq),
            2 => Some(ArtifactKind::Ordered),
            3 => Some(ArtifactKind::OrderedUnion),
            _ => None,
        }
    }
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ArtifactKind::Cq => "cq",
            ArtifactKind::Ordered => "ordered",
            ArtifactKind::OrderedUnion => "ordered-union",
        })
    }
}

/// The archived (process-independent) form of one persistable index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactArchive {
    /// A plain CQ index archive.
    Cq(CqIndexArchive),
    /// An ordered CQ index archive.
    Ordered(OrderedCqIndexArchive),
    /// An ordered same-template union archive.
    OrderedUnion(OrderedMcUcqArchive),
}

/// A live, validated index reconstructed from a snapshot.
#[derive(Debug)]
pub enum Artifact {
    /// A plain CQ index.
    Cq(CqIndex),
    /// An ordered CQ index.
    Ordered(OrderedCqIndex),
    /// An ordered same-template union.
    OrderedUnion(OrderedMcUcqIndex),
}

impl ArtifactArchive {
    /// The kind tag this archive serializes under.
    pub fn kind(&self) -> ArtifactKind {
        match self {
            ArtifactArchive::Cq(_) => ArtifactKind::Cq,
            ArtifactArchive::Ordered(_) => ArtifactKind::Ordered,
            ArtifactArchive::OrderedUnion(_) => ArtifactKind::OrderedUnion,
        }
    }

    /// Encodes into the deterministic ordered section list.
    pub(crate) fn to_sections(&self) -> Vec<(String, Vec<u8>)> {
        let mut out = Vec::new();
        match self {
            ArtifactArchive::Cq(a) => encode_cq("", a, &mut out),
            ArtifactArchive::Ordered(a) => encode_ordered("", a, &mut out),
            ArtifactArchive::OrderedUnion(a) => {
                let mut w = Writer::new();
                w.put_u32(a.m);
                w.put_symbols(&a.head);
                out.push(("union".to_string(), w.into_bytes()));
                for (mask, member) in a.structs.iter().enumerate() {
                    if let Some(member) = member {
                        encode_ordered(&format!("m{mask}/"), member, &mut out);
                    }
                }
            }
        }
        out
    }

    /// Decodes an archive of `kind` from named section payloads.
    pub(crate) fn from_sections(
        kind: ArtifactKind,
        sections: &BTreeMap<String, &[u8]>,
    ) -> Result<Self, StoreError> {
        match kind {
            ArtifactKind::Cq => Ok(ArtifactArchive::Cq(decode_cq("", sections)?)),
            ArtifactKind::Ordered => Ok(ArtifactArchive::Ordered(decode_ordered("", sections)?)),
            ArtifactKind::OrderedUnion => {
                let bytes = section(sections, "union")?;
                let mut r = Reader::new("union", bytes);
                let m = r.get_u32()?;
                let head = r.get_symbols()?;
                r.finish()?;
                if m == 0 || m > 24 {
                    return Err(StoreError::Corrupt {
                        section: "union".to_string(),
                        detail: format!("implausible member count {m}"),
                    });
                }
                let mut structs = vec![None];
                for mask in 1..(1usize << m) {
                    structs.push(Some(decode_ordered(&format!("m{mask}/"), sections)?));
                }
                Ok(ArtifactArchive::OrderedUnion(OrderedMcUcqArchive {
                    m,
                    head,
                    structs,
                }))
            }
        }
    }

    /// Reconstructs the live index, running the full `from_archive`
    /// semantic validation (the backstop behind the checksums).
    pub fn realize(self) -> Result<Artifact, StoreError> {
        Ok(match self {
            ArtifactArchive::Cq(a) => Artifact::Cq(CqIndex::from_archive(a)?),
            ArtifactArchive::Ordered(a) => Artifact::Ordered(OrderedCqIndex::from_archive(a)?),
            ArtifactArchive::OrderedUnion(a) => {
                Artifact::OrderedUnion(OrderedMcUcqIndex::from_archive(a)?)
            }
        })
    }
}

fn encode_cq(prefix: &str, a: &CqIndexArchive, out: &mut Vec<(String, Vec<u8>)>) {
    let mut w = Writer::new();
    w.put_symbols(&a.head);
    w.put_len(a.bags.len());
    for (bag, parent) in a.bags.iter().zip(&a.parent) {
        match parent {
            Some(p) => {
                w.put_u8(1);
                w.put_u32(*p as u32);
            }
            None => w.put_u8(0),
        }
        w.put_symbols(bag);
    }
    out.push((format!("{prefix}plan"), w.into_bytes()));

    let mut w = Writer::new();
    w.put_len(a.values.len());
    for v in &a.values {
        w.put_value(v);
    }
    out.push((format!("{prefix}values"), w.into_bytes()));

    for (i, node) in a.nodes.iter().enumerate() {
        let mut w = Writer::new();
        w.put_u32(node.rows);
        w.put_len(node.refs.len());
        for &r in &node.refs {
            w.put_u32(r);
        }
        out.push((format!("{prefix}node{i}/refs"), w.into_bytes()));

        let mut w = Writer::new();
        w.put_len(node.weights.len());
        for &wt in &node.weights {
            w.put_u128(wt);
        }
        out.push((format!("{prefix}node{i}/weights"), w.into_bytes()));

        let mut w = Writer::new();
        match &node.starts {
            StartsArchive::Compact(v) => {
                w.put_u8(0);
                w.put_len(v.len());
                for &s in v {
                    w.put_u64(s);
                }
            }
            StartsArchive::Wide(v) => {
                w.put_u8(1);
                w.put_len(v.len());
                for &s in v {
                    w.put_u128(s);
                }
            }
        }
        out.push((format!("{prefix}node{i}/starts"), w.into_bytes()));

        let mut w = Writer::new();
        w.put_len(node.buckets.len());
        for b in &node.buckets {
            w.put_u32(b.start);
            w.put_u32(b.end);
            w.put_u128(b.total);
            w.put_u128(b.max_weight);
        }
        out.push((format!("{prefix}node{i}/buckets"), w.into_bytes()));

        let mut w = Writer::new();
        w.put_len(node.bucket_of_row.len());
        for &b in &node.bucket_of_row {
            w.put_u32(b);
        }
        w.put_len(node.child_buckets.len());
        for col in &node.child_buckets {
            w.put_len(col.len());
            for &b in col {
                w.put_u32(b);
            }
        }
        out.push((format!("{prefix}node{i}/links"), w.into_bytes()));
    }
}

fn encode_ordered(prefix: &str, a: &OrderedCqIndexArchive, out: &mut Vec<(String, Vec<u8>)>) {
    encode_cq(prefix, &a.index, out);
    let mut w = Writer::new();
    w.put_symbols(&a.order);
    w.put_len(a.node_new.len());
    for cols in &a.node_new {
        w.put_len(cols.len());
        for &(col, pos) in cols {
            w.put_u32(col);
            w.put_u32(pos);
        }
    }
    out.push((format!("{prefix}order"), w.into_bytes()));
}

fn section<'a>(sections: &'a BTreeMap<String, &[u8]>, name: &str) -> Result<&'a [u8], StoreError> {
    sections
        .get(name)
        .copied()
        .ok_or_else(|| StoreError::Corrupt {
            section: name.to_string(),
            detail: "section missing from the file".to_string(),
        })
}

fn decode_cq(
    prefix: &str,
    sections: &BTreeMap<String, &[u8]>,
) -> Result<CqIndexArchive, StoreError> {
    let name = format!("{prefix}plan");
    let mut r = Reader::new(&name, section(sections, &name)?);
    let head = r.get_symbols()?;
    let n = r.get_len(1)?;
    let mut bags = Vec::with_capacity(n);
    let mut parent = Vec::with_capacity(n);
    for _ in 0..n {
        parent.push(match r.get_u8()? {
            0 => None,
            1 => Some(r.get_u32()? as usize),
            tag => {
                return Err(StoreError::Corrupt {
                    section: name.clone(),
                    detail: format!("unknown parent tag {tag}"),
                })
            }
        });
        bags.push(r.get_symbols()?);
    }
    r.finish()?;

    let name = format!("{prefix}values");
    let mut r = Reader::new(&name, section(sections, &name)?);
    let count = r.get_len(1)?;
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(r.get_value()?);
    }
    r.finish()?;

    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let name = format!("{prefix}node{i}/refs");
        let mut r = Reader::new(&name, section(sections, &name)?);
        let rows = r.get_u32()?;
        let len = r.get_len(4)?;
        let mut refs = Vec::with_capacity(len);
        for _ in 0..len {
            refs.push(r.get_u32()?);
        }
        r.finish()?;

        let name = format!("{prefix}node{i}/weights");
        let mut r = Reader::new(&name, section(sections, &name)?);
        let len = r.get_len(16)?;
        let mut weights = Vec::with_capacity(len);
        for _ in 0..len {
            weights.push(r.get_u128()?);
        }
        r.finish()?;

        let name = format!("{prefix}node{i}/starts");
        let mut r = Reader::new(&name, section(sections, &name)?);
        let starts = match r.get_u8()? {
            0 => {
                let len = r.get_len(8)?;
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(r.get_u64()?);
                }
                StartsArchive::Compact(v)
            }
            1 => {
                let len = r.get_len(16)?;
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(r.get_u128()?);
                }
                StartsArchive::Wide(v)
            }
            tag => {
                return Err(StoreError::Corrupt {
                    section: name.clone(),
                    detail: format!("unknown starts tag {tag}"),
                })
            }
        };
        r.finish()?;

        let name = format!("{prefix}node{i}/buckets");
        let mut r = Reader::new(&name, section(sections, &name)?);
        let len = r.get_len(40)?;
        let mut buckets = Vec::with_capacity(len);
        for _ in 0..len {
            buckets.push(BucketArchive {
                start: r.get_u32()?,
                end: r.get_u32()?,
                total: r.get_u128()?,
                max_weight: r.get_u128()?,
            });
        }
        r.finish()?;

        let name = format!("{prefix}node{i}/links");
        let mut r = Reader::new(&name, section(sections, &name)?);
        let len = r.get_len(4)?;
        let mut bucket_of_row = Vec::with_capacity(len);
        for _ in 0..len {
            bucket_of_row.push(r.get_u32()?);
        }
        let cols = r.get_len(8)?;
        let mut child_buckets = Vec::with_capacity(cols);
        for _ in 0..cols {
            let len = r.get_len(4)?;
            let mut col = Vec::with_capacity(len);
            for _ in 0..len {
                col.push(r.get_u32()?);
            }
            child_buckets.push(col);
        }
        r.finish()?;

        nodes.push(NodeArchive {
            rows,
            refs,
            weights,
            starts,
            buckets,
            bucket_of_row,
            child_buckets,
        });
    }

    Ok(CqIndexArchive {
        values,
        bags,
        parent,
        head,
        nodes,
    })
}

fn decode_ordered(
    prefix: &str,
    sections: &BTreeMap<String, &[u8]>,
) -> Result<OrderedCqIndexArchive, StoreError> {
    let index = decode_cq(prefix, sections)?;
    let name = format!("{prefix}order");
    let mut r = Reader::new(&name, section(sections, &name)?);
    let order = r.get_symbols()?;
    let n = r.get_len(8)?;
    let mut node_new = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.get_len(8)?;
        let mut cols = Vec::with_capacity(len);
        for _ in 0..len {
            cols.push((r.get_u32()?, r.get_u32()?));
        }
        node_new.push(cols);
    }
    r.finish()?;
    Ok(OrderedCqIndexArchive {
        index,
        order,
        node_new,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_data::{Symbol, Value};

    fn tiny_cq_archive() -> CqIndexArchive {
        // One node, one attribute, two rows — hand-rolled but consistent.
        CqIndexArchive {
            values: vec![Value::Int(1), Value::Int(2)],
            bags: vec![vec![Symbol::new("x")]],
            parent: vec![None],
            head: vec![Symbol::new("x")],
            nodes: vec![NodeArchive {
                rows: 2,
                refs: vec![0, 1],
                weights: vec![1, 1],
                starts: StartsArchive::Compact(vec![0, 1]),
                buckets: vec![BucketArchive {
                    start: 0,
                    end: 2,
                    total: 2,
                    max_weight: 1,
                }],
                bucket_of_row: vec![0, 0],
                child_buckets: vec![],
            }],
        }
    }

    fn as_slices(owned: &[(String, Vec<u8>)]) -> BTreeMap<String, &[u8]> {
        owned
            .iter()
            .map(|(n, p)| (n.clone(), p.as_slice()))
            .collect()
    }

    #[test]
    fn sections_round_trip() {
        let archive = ArtifactArchive::Cq(tiny_cq_archive());
        let owned = archive.to_sections();
        let decoded = ArtifactArchive::from_sections(ArtifactKind::Cq, &as_slices(&owned)).unwrap();
        assert_eq!(decoded, archive);
    }

    #[test]
    fn missing_section_is_structured() {
        let archive = ArtifactArchive::Cq(tiny_cq_archive());
        let owned = archive.to_sections();
        let mut sections = as_slices(&owned);
        sections.remove("node0/weights");
        assert!(matches!(
            ArtifactArchive::from_sections(ArtifactKind::Cq, &sections),
            Err(StoreError::Corrupt { section, .. }) if section == "node0/weights"
        ));
    }

    #[test]
    fn encode_order_is_deterministic() {
        let archive = ArtifactArchive::Cq(tiny_cq_archive());
        assert_eq!(archive.to_sections(), archive.to_sections());
    }
}
