//! Little-endian byte encode/decode helpers. Every multi-byte integer in
//! the format is little-endian regardless of host; the header's endianness
//! tag exists so a corrupted or foreign byte order is a structured error,
//! not a reinterpretation.

use crate::error::StoreError;
use rae_data::{Symbol, Value};

/// An append-only byte buffer for one section payload.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Collection lengths are always `u64` on the wire (flat columns can
    /// exceed the `u32` element-id space: rows × arity).
    pub fn put_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn put_symbol(&mut self, s: &Symbol) {
        self.put_str(s.as_str());
    }

    pub fn put_symbols(&mut self, syms: &[Symbol]) {
        self.put_len(syms.len());
        for s in syms {
            self.put_symbol(s);
        }
    }

    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.put_u8(0);
                self.put_i64(*i);
            }
            Value::Str(s) => {
                self.put_u8(1);
                self.put_symbol(s);
            }
        }
    }
}

/// A bounds-checked cursor over one section payload. Every read failure is
/// a [`StoreError::Corrupt`] naming the section.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'a str,
}

impl<'a> Reader<'a> {
    pub fn new(section: &'a str, buf: &'a [u8]) -> Self {
        Reader {
            buf,
            pos: 0,
            section,
        }
    }

    fn corrupt(&self, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            section: self.section.to_string(),
            detail: detail.into(),
        }
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.corrupt(format!("read past end ({n} bytes at {})", self.pos)))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub fn get_u128(&mut self) -> Result<u128, StoreError> {
        let b = self.take(16)?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(u128::from_le_bytes(a))
    }

    pub fn get_i64(&mut self) -> Result<i64, StoreError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(i64::from_le_bytes(a))
    }

    /// Reads a `u64` length and sanity-bounds it against the bytes left
    /// (each element needs at least `min_elem_bytes`), so a corrupted
    /// length cannot drive a multi-gigabyte allocation.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, StoreError> {
        let n = self.get_u64()?;
        let n = usize::try_from(n).map_err(|_| self.corrupt("length overflows usize"))?;
        let remaining = self.buf.len() - self.pos;
        if n.checked_mul(min_elem_bytes.max(1))
            .is_none_or(|bytes| bytes > remaining)
        {
            return Err(self.corrupt(format!(
                "length {n} needs more bytes than the {remaining} remaining"
            )));
        }
        Ok(n)
    }

    pub fn get_str(&mut self) -> Result<&'a str, StoreError> {
        let n = self.get_len(1)?;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map_err(|_| self.corrupt("string is not UTF-8"))
    }

    pub fn get_symbol(&mut self) -> Result<Symbol, StoreError> {
        Ok(Symbol::new(self.get_str()?))
    }

    pub fn get_symbols(&mut self) -> Result<Vec<Symbol>, StoreError> {
        let n = self.get_len(8)?;
        (0..n).map(|_| self.get_symbol()).collect()
    }

    pub fn get_value(&mut self) -> Result<Value, StoreError> {
        match self.get_u8()? {
            0 => Ok(Value::Int(self.get_i64()?)),
            1 => Ok(Value::Str(self.get_symbol()?)),
            tag => Err(self.corrupt(format!("unknown value tag {tag}"))),
        }
    }

    /// Asserts the payload was consumed exactly (trailing garbage is
    /// corruption, not padding).
    pub fn finish(self) -> Result<(), StoreError> {
        if self.pos != self.buf.len() {
            return Err(self.corrupt(format!(
                "{} trailing bytes after the payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars_and_values() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_u128(u128::MAX / 3);
        w.put_value(&Value::Int(-42));
        w.put_value(&Value::str("héllo"));
        w.put_symbols(&[Symbol::new("a"), Symbol::new("b")]);
        let bytes = w.into_bytes();
        let mut r = Reader::new("test", &bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.get_value().unwrap(), Value::Int(-42));
        assert_eq!(r.get_value().unwrap(), Value::str("héllo"));
        assert_eq!(
            r.get_symbols().unwrap(),
            vec![Symbol::new("a"), Symbol::new("b")]
        );
        r.finish().unwrap();
    }

    #[test]
    fn oversized_length_is_structured_corruption() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // a length that cannot fit
        let bytes = w.into_bytes();
        let mut r = Reader::new("s", &bytes);
        assert!(matches!(
            r.get_len(8),
            Err(StoreError::Corrupt { section, .. }) if section == "s"
        ));
    }

    #[test]
    fn trailing_bytes_are_corruption() {
        let mut w = Writer::new();
        w.put_u32(1);
        w.put_u8(0);
        let bytes = w.into_bytes();
        let mut r = Reader::new("s", &bytes);
        r.get_u32().unwrap();
        assert!(r.finish().is_err());
    }
}
