//! Little-endian byte encode/decode helpers. Every multi-byte integer in
//! the format is little-endian regardless of host; the header's endianness
//! tag exists so a corrupted or foreign byte order is a structured error,
//! not a reinterpretation.
//!
//! Format v2 adds *aligned columns*: numeric arrays sit at 16-byte-aligned
//! payload offsets (reached via zero padding that is part of the
//! checksummed payload and verified to be zero on decode), so the borrowed
//! load path can hand out zero-copy [`Col`] views straight into the file.
//! [`Writer::pad_to_16`] / [`Reader::align_16`] / [`Reader::finish_padded`]
//! implement the padding discipline; `get_*_col` decodes a column either
//! owned (bulk copy) or borrowed (validated view), per the reader's
//! [`ColSource`].

use crate::error::StoreError;
use rae_core::column::{pod_bytes, pod_vec_from_bytes, FromLeBytes};
use rae_core::{Col, ColumnError, Pod, StableBytes};
use rae_data::{Symbol, Value};
use std::sync::Arc;

/// Where a decoded column's storage comes from.
#[derive(Clone)]
pub(crate) enum ColSource {
    /// Copy into owned vectors (the classic decode).
    Owned,
    /// Borrow zero-copy views from `owner`; `payload_base` is the
    /// absolute offset of the current section's payload within
    /// `owner.stable_bytes()`.
    Borrowed {
        owner: Arc<dyn StableBytes>,
        payload_base: usize,
    },
}

/// An append-only byte buffer for one section payload.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    // Part of the scalar wire vocabulary; v2 writes u128s in bulk via
    // `put_col`, leaving this to tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Collection lengths are always `u64` on the wire (flat columns can
    /// exceed the `u32` element-id space: rows × arity).
    pub fn put_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn put_symbol(&mut self, s: &Symbol) {
        self.put_str(s.as_str());
    }

    pub fn put_symbols(&mut self, syms: &[Symbol]) {
        self.put_len(syms.len());
        for s in syms {
            self.put_symbol(s);
        }
    }

    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.put_u8(0);
                self.put_i64(*i);
            }
            Value::Str(s) => {
                self.put_u8(1);
                self.put_symbol(s);
            }
        }
    }

    /// Zero-pads to the next 16-byte payload boundary (a no-op when
    /// already aligned). The padding is inside the checksummed payload;
    /// [`Reader::align_16`] verifies it decodes back as zeros.
    pub fn pad_to_16(&mut self) {
        let rem = self.buf.len() % 16;
        if rem != 0 {
            self.buf.resize(self.buf.len() + (16 - rem), 0);
        }
    }

    /// Appends a numeric column's little-endian bytes in bulk (a single
    /// `memcpy` on little-endian hosts). Callers align first.
    pub fn put_col<T: Pod + PutLe>(&mut self, v: &[T]) {
        debug_assert_eq!(self.buf.len() % 16, 0, "column written unaligned");
        #[cfg(target_endian = "little")]
        self.buf.extend_from_slice(pod_bytes(v));
        #[cfg(target_endian = "big")]
        for x in v {
            x.put_le(&mut self.buf);
        }
    }
}

/// Per-type little-endian append (the big-endian fallback of
/// [`Writer::put_col`]).
pub(crate) trait PutLe {
    #[cfg_attr(target_endian = "little", allow(dead_code))]
    fn put_le(&self, buf: &mut Vec<u8>);
}

macro_rules! impl_put_le {
    ($($t:ty),*) => {$(
        impl PutLe for $t {
            fn put_le(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
        }
    )*};
}
impl_put_le!(u32, u64, u128);

/// A bounds-checked cursor over one section payload. Every read failure is
/// a [`StoreError::Corrupt`] naming the section.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'a str,
    source: ColSource,
}

impl<'a> Reader<'a> {
    pub fn new(section: &'a str, buf: &'a [u8]) -> Self {
        Reader {
            buf,
            pos: 0,
            section,
            source: ColSource::Owned,
        }
    }

    /// A reader whose `get_*_col` calls decode per `source` (owned copy
    /// or zero-copy borrow).
    pub fn with_source(section: &'a str, buf: &'a [u8], source: ColSource) -> Self {
        Reader {
            buf,
            pos: 0,
            section,
            source,
        }
    }

    fn corrupt(&self, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            section: self.section.to_string(),
            detail: detail.into(),
        }
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.corrupt(format!("read past end ({n} bytes at {})", self.pos)))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    // See `put_u128`: v2 reads u128 columns in bulk via `get_col`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn get_u128(&mut self) -> Result<u128, StoreError> {
        let b = self.take(16)?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(u128::from_le_bytes(a))
    }

    pub fn get_i64(&mut self) -> Result<i64, StoreError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(i64::from_le_bytes(a))
    }

    /// Reads a `u64` length and sanity-bounds it against the bytes left
    /// (each element needs at least `min_elem_bytes`), so a corrupted
    /// length cannot drive a multi-gigabyte allocation.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, StoreError> {
        let n = self.get_u64()?;
        let n = usize::try_from(n).map_err(|_| self.corrupt("length overflows usize"))?;
        let remaining = self.buf.len() - self.pos;
        if n.checked_mul(min_elem_bytes.max(1))
            .is_none_or(|bytes| bytes > remaining)
        {
            return Err(self.corrupt(format!(
                "length {n} needs more bytes than the {remaining} remaining"
            )));
        }
        Ok(n)
    }

    pub fn get_str(&mut self) -> Result<&'a str, StoreError> {
        let n = self.get_len(1)?;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map_err(|_| self.corrupt("string is not UTF-8"))
    }

    pub fn get_symbol(&mut self) -> Result<Symbol, StoreError> {
        Ok(Symbol::new(self.get_str()?))
    }

    pub fn get_symbols(&mut self) -> Result<Vec<Symbol>, StoreError> {
        let n = self.get_len(8)?;
        (0..n).map(|_| self.get_symbol()).collect()
    }

    pub fn get_value(&mut self) -> Result<Value, StoreError> {
        match self.get_u8()? {
            0 => Ok(Value::Int(self.get_i64()?)),
            1 => Ok(Value::Str(self.get_symbol()?)),
            tag => Err(self.corrupt(format!("unknown value tag {tag}"))),
        }
    }

    /// Advances to the next 16-byte payload boundary, verifying the
    /// skipped padding is all zeros (any flipped padding bit is
    /// corruption — the padding is part of the checksummed payload).
    pub fn align_16(&mut self) -> Result<(), StoreError> {
        let rem = self.pos % 16;
        if rem != 0 {
            let pad = self.take(16 - rem)?;
            if pad.iter().any(|&b| b != 0) {
                return Err(self.corrupt("nonzero alignment padding"));
            }
        }
        Ok(())
    }

    /// Decodes an aligned numeric column of `len` elements: an owned
    /// bulk copy, or (borrowed source) a validated zero-copy view into
    /// the snapshot buffer. A view that cannot be constructed because of
    /// misalignment or a big-endian host surfaces as
    /// [`StoreError::Unborrowable`] — the loader's signal to fall back
    /// to the owned decode; true bounds violations stay `Corrupt`.
    pub fn get_col<T: Pod + FromLeBytes>(&mut self, len: usize) -> Result<Col<T>, StoreError> {
        self.align_16()?;
        let width = std::mem::size_of::<T>();
        let nbytes = len
            .checked_mul(width)
            .ok_or_else(|| self.corrupt("column byte length overflows"))?;
        let start = self.pos;
        let bytes = self.take(nbytes)?;
        match &self.source {
            ColSource::Owned => Ok(Col::Owned(pod_vec_from_bytes(bytes))),
            ColSource::Borrowed {
                owner,
                payload_base,
            } => {
                let abs = payload_base
                    .checked_add(start)
                    .ok_or_else(|| self.corrupt("column offset overflows"))?;
                Col::borrowed(Arc::clone(owner), abs, len).map_err(|e| match e {
                    ColumnError::Misaligned { .. } | ColumnError::ForeignEndian => {
                        StoreError::Unborrowable {
                            detail: e.to_string(),
                        }
                    }
                    // `take` already bounds-checked against the section,
                    // so an out-of-bounds here means the section table
                    // itself points outside the buffer.
                    ColumnError::OutOfBounds { .. } => self.corrupt(e.to_string()),
                })
            }
        }
    }

    /// Asserts the payload was consumed exactly (trailing garbage is
    /// corruption, not padding).
    pub fn finish(self) -> Result<(), StoreError> {
        if self.pos != self.buf.len() {
            return Err(self.corrupt(format!(
                "{} trailing bytes after the payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }

    /// [`Reader::finish`] for v2 sections, whose payloads are zero-padded
    /// to a 16-byte multiple: consumes the zero tail, then requires exact
    /// consumption. Nonzero tail bytes are corruption.
    pub fn finish_padded(mut self) -> Result<(), StoreError> {
        self.align_16()?;
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars_and_values() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_u128(u128::MAX / 3);
        w.put_value(&Value::Int(-42));
        w.put_value(&Value::str("héllo"));
        w.put_symbols(&[Symbol::new("a"), Symbol::new("b")]);
        let bytes = w.into_bytes();
        let mut r = Reader::new("test", &bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.get_value().unwrap(), Value::Int(-42));
        assert_eq!(r.get_value().unwrap(), Value::str("héllo"));
        assert_eq!(
            r.get_symbols().unwrap(),
            vec![Symbol::new("a"), Symbol::new("b")]
        );
        r.finish().unwrap();
    }

    #[test]
    fn oversized_length_is_structured_corruption() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // a length that cannot fit
        let bytes = w.into_bytes();
        let mut r = Reader::new("s", &bytes);
        assert!(matches!(
            r.get_len(8),
            Err(StoreError::Corrupt { section, .. }) if section == "s"
        ));
    }

    #[test]
    fn trailing_bytes_are_corruption() {
        let mut w = Writer::new();
        w.put_u32(1);
        w.put_u8(0);
        let bytes = w.into_bytes();
        let mut r = Reader::new("s", &bytes);
        r.get_u32().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn aligned_columns_round_trip_owned() {
        let vals: Vec<u64> = (0..7u64).map(|i| i * 977).collect();
        let mut w = Writer::new();
        w.put_len(vals.len());
        w.pad_to_16();
        w.put_col(&vals);
        w.pad_to_16();
        let bytes = w.into_bytes();
        assert_eq!(bytes.len() % 16, 0);
        let mut r = Reader::new("s", &bytes);
        let n = r.get_len(8).unwrap();
        let col: Col<u64> = r.get_col(n).unwrap();
        assert_eq!(col.as_slice(), vals.as_slice());
        r.finish_padded().unwrap();
    }

    #[test]
    fn nonzero_padding_is_corruption() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.pad_to_16();
        let mut bytes = w.into_bytes();
        bytes[7] = 0xAA; // flip a padding byte
        let mut r = Reader::new("s", &bytes);
        r.get_u8().unwrap();
        assert!(matches!(r.finish_padded(), Err(StoreError::Corrupt { .. })));
    }
}
