#![deny(missing_docs)]
// A corrupted snapshot must never panic the process: every extractor on
// the load path returns a structured `StoreError`. No allows — this crate
// is born under the lints.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # rae-store — crash-consistent durable snapshots
//!
//! A versioned, checksummed on-disk format for the built PODS 2020 access
//! structures, with an atomic publish protocol and cold-start recovery
//! (DESIGN.md §15):
//!
//! * [`save`] — serialize an index archive into contiguous little-endian
//!   sections (flat `u32` reference columns, startIndex prefix sums,
//!   bucket tables, the deduplicated value table), each individually
//!   checksummed (FNV-1a 64), with a checksummed footer carrying the
//!   format version, endianness tag, and the whole-artifact digest; then
//!   publish via temp file → fsync → atomic rename → directory fsync.
//! * [`load`] — validate every checksum and the digest, decode, and run
//!   the full `from_archive` semantic re-validation before handing out an
//!   index. Corruption is always a structured [`StoreError`]; a bad file
//!   is quarantined (renamed aside), never deleted, never served.
//! * [`recover_dir`] — cold-start entry point: newest valid snapshot wins,
//!   everything invalid is quarantined.
//! * [`load_borrowed`] / [`recover_dir_with`] — the zero-copy variants
//!   (DESIGN.md §16): the file is mapped read-only and the index serves
//!   rank descents from views into the mapped, 16-byte-aligned section
//!   payloads — same validation, no column copies. Misalignment or a
//!   foreign-endian host falls back to the owned decode (`meta.borrowed`
//!   reports which path served).
//!
//! The `artifact_digest` is computed over the process-independent archive
//! bytes (value-table references, never dictionary codes), so the same
//! logical index digests identically in any process — the crash-injection
//! harness uses this to prove recovery exactness: after a `SIGKILL` at any
//! protocol point, recovery yields a snapshot whose digest equals either
//! the old or the new fault-free build, nothing else.

mod artifact;
mod checksum;
mod error;
mod format;
#[cfg(unix)]
mod map;
mod wire;

pub use artifact::{Artifact, ArtifactArchive, ArtifactKind};
pub use checksum::{fnv64, fnv64_fast, Fnv64};
pub use error::StoreError;
pub use format::{
    load, load_archive, load_archive_borrowed, load_borrowed, load_borrowed_at_offset, quarantine,
    recover_dir, recover_dir_with, save, verify, SnapshotMeta, CRASH_ENV, FORMAT_VERSION,
    SNAPSHOT_EXT,
};

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, StoreError>;

/// The artifact digest of an archive without writing anything: the same
/// value [`save`] records in the footer — FNV-1a 64 over each section's
/// `(name, fnv64_fast(payload))` pair in section order. The crash harness
/// uses this to compute the fault-free expectation in memory.
pub fn digest_of(artifact: &ArtifactArchive) -> u64 {
    let mut digest = Fnv64::new();
    for (name, payload) in artifact.to_sections() {
        digest.update(name.as_bytes());
        digest.update(&fnv64_fast(&payload).to_le_bytes());
    }
    digest.finish()
}
