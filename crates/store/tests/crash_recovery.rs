//! Crash-injection harness for the publish protocol (DESIGN.md §15).
//!
//! The parent test re-executes this test binary as a child process with
//! `RAE_STORE_CRASH` set, so `rae_store::save` aborts the child at a named
//! point of the write → fsync → rename → dir-fsync protocol. For every
//! crash point and every seed (the seed picks the `mid-write` truncation
//! offset), the parent then runs cold-start recovery on the directory and
//! asserts the only two legal outcomes:
//!
//! * the **old** snapshot, byte-identical (digest equal to the fault-free
//!   in-memory build of artifact A), or
//! * the **new** snapshot, ditto for artifact B — only possible once the
//!   rename has happened.
//!
//! Never a partial file served, never a wrong digest, and the old snapshot
//! file is never deleted by a failed publish.
//!
//! Seeds come from the `CRASH_SEEDS` environment variable (comma-
//! separated); CI pins 8, the nightly sweep runs 64.

use rae_core::{CqIndex, OrderedCqIndex};
use rae_data::{Database, Relation, Schema, Symbol, Value};
use rae_store::{digest_of, recover_dir, save, ArtifactArchive, StoreError, SNAPSHOT_EXT};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU32, Ordering};

const DEFAULT_SEEDS: &str = "11,42,1337,12648430,7,2026,99991,424242";

/// Environment variable naming the snapshot directory the child writes to.
const DIR_ENV: &str = "RAE_CRASH_DIR";

fn seeds() -> Vec<u64> {
    let raw = std::env::var("CRASH_SEEDS").unwrap_or_else(|_| DEFAULT_SEEDS.to_string());
    raw.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.trim().parse().expect("CRASH_SEEDS must be u64s"))
        .collect()
}

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rae-store-crash-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn chain_db(shift: i64) -> Database {
    let mut db = Database::new();
    db.add_relation(
        "R",
        Relation::from_rows(
            Schema::new(["a", "b"]).unwrap(),
            (0..8i64).map(|i| vec![Value::Int(i % 4), Value::Int(i + shift)]),
        )
        .unwrap(),
    )
    .unwrap();
    db.add_relation(
        "S",
        Relation::from_rows(
            Schema::new(["b", "c"]).unwrap(),
            (0..8i64).map(|i| vec![Value::Int(i + shift), Value::Int(i * 10)]),
        )
        .unwrap(),
    )
    .unwrap();
    db
}

fn build(shift: i64) -> ArtifactArchive {
    let cq = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let order: Vec<Symbol> = CqIndex::build(&cq, &chain_db(shift))
        .unwrap()
        .plan()
        .attrs_dfs();
    let idx = OrderedCqIndex::build(&cq, &chain_db(shift), &order).unwrap();
    ArtifactArchive::Ordered(idx.to_archive())
}

/// The snapshot that exists *before* the crashing publish (epoch 1).
fn artifact_old() -> ArtifactArchive {
    build(0)
}

/// The snapshot the crashing publish is writing (epoch 2). Archives are
/// process-independent, so the child's bytes hash to this digest too.
fn artifact_new() -> ArtifactArchive {
    build(100)
}

/// SplitMix64 finalizer — derives the mid-write truncation offset from a
/// sweep seed.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The child role: invoked by the parent with `RAE_CRASH_DIR` (and
/// `RAE_STORE_CRASH`) set, writes artifact B as epoch 2 and — at most
/// crash points — aborts inside `save`. Inert under plain `--ignored`
/// runs of the suite.
#[test]
#[ignore = "child process role of the crash harness"]
fn child_crash_writer() {
    let Ok(dir) = std::env::var(DIR_ENV) else {
        return;
    };
    let path = Path::new(&dir).join(format!("snap-2.{SNAPSHOT_EXT}"));
    // A successful save (crash env unset or point never reached) is fine:
    // the parent classifies the outcome by what recovery finds.
    let _ = save(&path, &artifact_new(), 2, "crash-child");
}

/// Spawns the child writer against `dir` with `RAE_STORE_CRASH=point` and
/// waits for it to die (or finish).
fn run_child(dir: &Path, point: &str) {
    let exe = std::env::current_exe().unwrap();
    let status = Command::new(exe)
        .args(["child_crash_writer", "--exact", "--ignored"])
        .env(DIR_ENV, dir)
        .env(rae_store::CRASH_ENV, point)
        .output()
        .expect("spawn child writer")
        .status;
    // Every point in the protocol aborts the child; reaching the end
    // without crashing would mean the point was never hit.
    assert!(
        !status.success(),
        "child survived crash point `{point}` — the point was not exercised"
    );
}

#[test]
fn crash_at_every_protocol_point_recovers_old_or_new() {
    let old = artifact_old();
    let new = artifact_new();
    let digest_old = digest_of(&old);
    let digest_new = digest_of(&new);
    assert_ne!(digest_old, digest_new);

    // The exact image size of the new snapshot (for mid-write offsets),
    // measured from a fault-free save.
    let probe = scratch("probe");
    let file_len = save(
        &probe.join(format!("p.{SNAPSHOT_EXT}")),
        &new,
        2,
        "crash-child",
    )
    .unwrap()
    .file_len;
    std::fs::remove_dir_all(&probe).ok();

    for seed in seeds() {
        let cut = 1 + mix(seed) % (file_len - 1);
        let points = [
            "temp-created".to_string(),
            format!("mid-write:{cut}"),
            "after-write".to_string(),
            "after-fsync".to_string(),
            "after-rename".to_string(),
        ];
        for point in &points {
            let dir = scratch("sweep");
            let old_path = dir.join(format!("snap-1.{SNAPSHOT_EXT}"));
            save(&old_path, &old, 1, "crash-old").unwrap();

            run_child(&dir, point);

            let (path, _artifact, meta) = recover_dir(&dir)
                .unwrap_or_else(|e| panic!("seed {seed} point {point}: recovery failed: {e}"));
            let renamed = point == "after-rename";
            if renamed {
                // The new file is complete and durable under its final name.
                assert_eq!(meta.epoch, 2, "seed {seed} point {point}");
                assert_eq!(
                    meta.artifact_digest, digest_new,
                    "seed {seed} point {point}"
                );
            } else {
                // The publish never renamed: recovery must serve the old
                // snapshot, byte-exact.
                assert_eq!(meta.epoch, 1, "seed {seed} point {point}");
                assert_eq!(
                    meta.artifact_digest, digest_old,
                    "seed {seed} point {point}"
                );
                assert_eq!(path, old_path);
            }
            // A failed publish never deletes the previous snapshot.
            assert!(
                old_path.exists(),
                "seed {seed} point {point}: old snapshot deleted"
            );
            // And nothing valid was quarantined: the only *.corrupt files a
            // crash can leave would be torn finals, which the temp-file
            // protocol makes impossible.
            let corrupt = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.path().to_string_lossy().contains(".corrupt"))
                .count();
            assert_eq!(corrupt, 0, "seed {seed} point {point}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// The same protocol sweep through the zero-copy cold start
/// (`recover_dir_with(dir, true)`, the path `rae-serve` boots on): after
/// every crash point, recovery must serve the old or new snapshot with the
/// exact digest — and because the surviving file is a well-formed aligned
/// image, the recovered index must actually borrow its tables from it.
#[test]
fn crash_sweep_through_borrowed_recovery_serves_old_or_new() {
    let old = artifact_old();
    let new = artifact_new();
    let digest_old = digest_of(&old);
    let digest_new = digest_of(&new);

    for seed in seeds() {
        for point in ["temp-created", "after-fsync", "after-rename"] {
            let dir = scratch("borrowed");
            let old_path = dir.join(format!("snap-1.{SNAPSHOT_EXT}"));
            save(&old_path, &old, 1, "crash-old").unwrap();

            run_child(&dir, point);

            let (_, artifact, meta) = rae_store::recover_dir_with(&dir, true)
                .unwrap_or_else(|e| panic!("seed {seed} point {point}: recovery failed: {e}"));
            if point == "after-rename" {
                assert_eq!(meta.epoch, 2, "seed {seed} point {point}");
                assert_eq!(
                    meta.artifact_digest, digest_new,
                    "seed {seed} point {point}"
                );
            } else {
                assert_eq!(meta.epoch, 1, "seed {seed} point {point}");
                assert_eq!(
                    meta.artifact_digest, digest_old,
                    "seed {seed} point {point}"
                );
            }
            assert!(
                meta.borrowed,
                "seed {seed} point {point}: recovery fell back to the owned decode"
            );
            let rae_store::Artifact::Ordered(idx) = artifact else {
                panic!("seed {seed} point {point}: wrong artifact kind");
            };
            assert!(
                idx.index().storage_is_borrowed(),
                "seed {seed} point {point}: recovered index does not serve zero-copy"
            );
            assert!(idx.count() > 0, "seed {seed} point {point}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn crash_before_rename_with_no_prior_snapshot_reports_nothing_durable() {
    let dir = scratch("empty");
    run_child(&dir, "after-fsync");
    match recover_dir(&dir) {
        Err(StoreError::NoSnapshot { quarantined, .. }) => {
            assert!(quarantined.is_empty(), "crash temp files are not snapshots");
        }
        other => panic!("expected NoSnapshot, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_after_rename_with_no_prior_snapshot_recovers_the_new_one() {
    let dir = scratch("first");
    run_child(&dir, "after-rename");
    let (_, _, meta) = recover_dir(&dir).unwrap();
    assert_eq!(meta.epoch, 2);
    assert_eq!(meta.artifact_digest, digest_of(&artifact_new()));
    std::fs::remove_dir_all(&dir).ok();
}

/// Torn-write injection: the `store/torn` failpoint models a non-atomic
/// writer leaving a seed-chosen prefix under the FINAL name. Recovery must
/// quarantine the torn file (never delete it) and fall back to the old
/// snapshot.
#[cfg(feature = "failpoints")]
mod torn {
    use super::*;
    use rae_faults::{install, FaultKind, FaultSchedule};

    #[test]
    fn torn_final_file_is_quarantined_and_old_snapshot_served() {
        let old = artifact_old();
        let new = artifact_new();
        let digest_old = digest_of(&old);

        for seed in seeds() {
            let dir = scratch("torn");
            let old_path = dir.join(format!("snap-1.{SNAPSHOT_EXT}"));
            save(&old_path, &old, 1, "crash-old").unwrap();

            let new_path = dir.join(format!("snap-2.{SNAPSHOT_EXT}"));
            let guard = install(FaultSchedule::new(seed).always("store/torn", FaultKind::Error));
            let err = save(&new_path, &new, 2, "crash-child").unwrap_err();
            drop(guard);
            assert!(
                matches!(err, StoreError::FaultInjected { site: "store/torn" }),
                "seed {seed}: {err}"
            );
            // The torn prefix landed under the final name.
            assert!(new_path.exists(), "seed {seed}: no torn file");

            let (_, _, meta) = recover_dir(&dir).unwrap();
            assert_eq!(meta.epoch, 1, "seed {seed}");
            assert_eq!(meta.artifact_digest, digest_old, "seed {seed}");
            // Torn file quarantined aside, not deleted.
            assert!(!new_path.exists(), "seed {seed}: torn file still live");
            let corrupt = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.path().to_string_lossy().contains(".corrupt"))
                .count();
            assert_eq!(corrupt, 1, "seed {seed}: torn file not quarantined");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
