//! Borrowed-vs-owned differential: every TPC-H index, loaded zero-copy
//! via `load_borrowed`, must agree *rank by rank* with the owned load and
//! with the fresh build — counts, random access, inverted access, range
//! counts, enumeration windows, random-order samples, and digests. The
//! borrowed path changes where bytes live, never what any rank answers.
//!
//! Also the misalignment gate: a snapshot image at an odd offset in
//! memory must fall back to the owned decode (correct answers, UB-free),
//! reported via `meta.borrowed == false`.

use rae_core::{CqIndex, OrderedCqIndex, OrderedMcUcqIndex};
use rae_data::{Symbol, Value};
use rae_store::{
    digest_of, load, load_borrowed, load_borrowed_at_offset, save, Artifact, ArtifactArchive,
    SNAPSHOT_EXT,
};
use rae_tpch::{generate, prepare_selections, queries, TpchScale};
use rand::{rngs::StdRng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rae-store-borrowed-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tpch_db() -> rae_data::Database {
    let mut db = generate(&TpchScale::tiny(), 42);
    prepare_selections(&mut db).unwrap();
    db
}

/// Saves `archive`, loads it back on both paths, and returns the two
/// artifacts after checking meta/digest agreement and that the borrowed
/// load really borrowed.
fn both_loads(
    dir: &std::path::Path,
    name: &str,
    archive: &ArtifactArchive,
) -> (Artifact, Artifact) {
    let expected = digest_of(archive);
    let path = dir.join(format!("{name}.{SNAPSHOT_EXT}"));
    save(&path, archive, 1, name).unwrap();
    let (owned, owned_meta) = load(&path).unwrap();
    let (borrowed, borrowed_meta) = load_borrowed(&path).unwrap();
    assert_eq!(owned_meta.artifact_digest, expected, "{name}: owned digest");
    assert_eq!(
        borrowed_meta.artifact_digest, expected,
        "{name}: borrowed digest"
    );
    assert!(!owned_meta.borrowed);
    assert!(
        borrowed_meta.borrowed,
        "{name}: aligned mapping should serve zero-copy"
    );
    (owned, borrowed)
}

/// Every-rank agreement over three plain CQ indexes (fresh build, owned
/// load, borrowed load): count, strided access, inverted access of the
/// accessed tuples, and seeded random-permutation prefixes.
fn assert_cq_agree(name: &str, built: &CqIndex, owned: &CqIndex, borrowed: &CqIndex) {
    assert!(
        borrowed.storage_is_borrowed(),
        "{name}: borrowed index does not serve from snapshot bytes"
    );
    assert!(!owned.storage_is_borrowed());
    let n = built.count();
    assert_eq!(owned.count(), n, "{name}: owned count");
    assert_eq!(borrowed.count(), n, "{name}: borrowed count");
    let stride = (n / 128).max(1);
    let mut j = 0;
    while j < n {
        let t = built.access(j);
        assert_eq!(owned.access(j), t, "{name}: owned access({j})");
        assert_eq!(borrowed.access(j), t, "{name}: borrowed access({j})");
        if let Some(tuple) = &t {
            assert_eq!(
                borrowed.inverted_access(tuple),
                Some(j),
                "{name}: borrowed inverted_access({j})"
            );
            assert_eq!(owned.inverted_access(tuple), Some(j));
        }
        j += stride;
    }
    // Random-order samples: the same seed must yield the same stream from
    // every storage (the shuffle consumes access + count only).
    let take = n.min(16) as usize;
    let from_built: Vec<_> = built
        .random_permutation(StdRng::seed_from_u64(9))
        .take(take)
        .collect();
    let from_owned: Vec<_> = owned
        .random_permutation(StdRng::seed_from_u64(9))
        .take(take)
        .collect();
    let from_borrowed: Vec<_> = borrowed
        .random_permutation(StdRng::seed_from_u64(9))
        .take(take)
        .collect();
    assert_eq!(from_owned, from_built, "{name}: owned sample stream");
    assert_eq!(from_borrowed, from_built, "{name}: borrowed sample stream");
}

/// Every-rank agreement over ordered indexes: adds ordered access,
/// ordered inverted access, per-prefix range counts, and window
/// enumeration.
fn assert_ordered_agree(
    name: &str,
    built: &OrderedCqIndex,
    owned: &OrderedCqIndex,
    borrowed: &OrderedCqIndex,
) {
    assert_cq_agree(name, built.index(), owned.index(), borrowed.index());
    assert_eq!(owned.order(), built.order());
    assert_eq!(borrowed.order(), built.order());
    let n = built.count();
    let stride = (n / 128).max(1);
    let mut k = 0;
    while k < n {
        let t = built.ordered_access(k);
        assert_eq!(owned.ordered_access(k), t, "{name}: owned ordered({k})");
        assert_eq!(
            borrowed.ordered_access(k),
            t,
            "{name}: borrowed ordered({k})"
        );
        if let Some(tuple) = &t {
            assert_eq!(
                borrowed.ordered_inverted_access(tuple),
                Some(k),
                "{name}: borrowed ordered_inverted({k})"
            );
            // Range counts under every prefix of this answer, in order
            // coordinates.
            let head_to_order: Vec<Value> = built
                .order_to_head()
                .iter()
                .map(|&h| tuple[h].clone())
                .collect();
            for p in 0..=head_to_order.len() {
                let prefix = &head_to_order[..p];
                let expect = built.range_count(prefix);
                assert_eq!(
                    owned.range_count(prefix),
                    expect,
                    "{name}: owned range_count@{k}/{p}"
                );
                assert_eq!(
                    borrowed.range_count(prefix),
                    expect,
                    "{name}: borrowed range_count@{k}/{p}"
                );
            }
        }
        k += stride;
    }
    // A mid-stream enumeration window must stream identically.
    let lo = n / 3;
    let hi = (lo + 64).min(n);
    let expect: Vec<_> = built.range(lo..hi).collect();
    assert_eq!(owned.range(lo..hi).collect::<Vec<_>>(), expect);
    assert_eq!(borrowed.range(lo..hi).collect::<Vec<_>>(), expect);
}

#[test]
fn tpch_cq_borrowed_matches_owned_and_build() {
    let db = tpch_db();
    let dir = scratch("cq");
    for (name, cq) in queries::all_cqs() {
        let built = CqIndex::build(&cq, &db).unwrap();
        let archive = ArtifactArchive::Cq(built.to_archive());
        let (owned, borrowed) = both_loads(&dir, name, &archive);
        let (Artifact::Cq(owned), Artifact::Cq(borrowed)) = (owned, borrowed) else {
            panic!("{name}: wrong artifact kind");
        };
        assert_cq_agree(name, &built, &owned, &borrowed);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tpch_ordered_borrowed_matches_owned_and_build() {
    let db = tpch_db();
    let dir = scratch("ordered");
    for (name, cq) in queries::all_cqs() {
        let order: Vec<Symbol> = CqIndex::build(&cq, &db).unwrap().plan().attrs_dfs();
        let built = OrderedCqIndex::build(&cq, &db, &order).unwrap();
        let archive = ArtifactArchive::Ordered(built.to_archive());
        let (owned, borrowed) = both_loads(&dir, name, &archive);
        let (Artifact::Ordered(owned), Artifact::Ordered(borrowed)) = (owned, borrowed) else {
            panic!("{name}: wrong artifact kind");
        };
        assert_ordered_agree(name, &built, &owned, &borrowed);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tpch_union_borrowed_matches_owned_and_build() {
    let db = tpch_db();
    let dir = scratch("union");
    for (name, ucq) in queries::all_ucqs() {
        let order: Vec<Symbol> = CqIndex::build(&ucq.disjuncts()[0], &db)
            .unwrap()
            .plan()
            .attrs_dfs();
        let built = OrderedMcUcqIndex::build(&ucq, &db, &order).unwrap();
        let file = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect::<String>();
        let archive = ArtifactArchive::OrderedUnion(built.to_archive());
        let (owned, borrowed) = both_loads(&dir, &file, &archive);
        let (Artifact::OrderedUnion(owned), Artifact::OrderedUnion(borrowed)) = (owned, borrowed)
        else {
            panic!("{name}: wrong artifact kind");
        };
        let n = built.count();
        assert_eq!(owned.count(), n, "{name}: owned count");
        assert_eq!(borrowed.count(), n, "{name}: borrowed count");
        let stride = (n / 128).max(1);
        let mut k = 0;
        while k < n {
            let t = built.ordered_access(k);
            assert_eq!(owned.ordered_access(k), t, "{name}: owned union({k})");
            assert_eq!(borrowed.ordered_access(k), t, "{name}: borrowed union({k})");
            if let Some(tuple) = &t {
                assert_eq!(
                    borrowed.ordered_inverted_access(tuple),
                    Some(k),
                    "{name}: borrowed union inverted({k})"
                );
            }
            k += stride;
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn misaligned_image_falls_back_to_owned_decode() {
    let db = tpch_db();
    let dir = scratch("misaligned");
    let (name, cq) = &queries::all_cqs()[0];
    let built = CqIndex::build(cq, &db).unwrap();
    let archive = ArtifactArchive::Cq(built.to_archive());
    let path = dir.join(format!("{name}.{SNAPSHOT_EXT}"));
    save(&path, &archive, 1, name).unwrap();

    for prefix in [1usize, 3, 7, 9] {
        // The image starts `prefix` bytes into an aligned buffer, so no
        // 16-aligned view can exist: the loader must fall back to the
        // owned decode and still answer every rank correctly.
        let (artifact, meta) = load_borrowed_at_offset(&path, prefix).unwrap();
        assert!(
            !meta.borrowed,
            "prefix {prefix}: misaligned buffer cannot serve zero-copy"
        );
        let Artifact::Cq(loaded) = artifact else {
            panic!("wrong artifact kind");
        };
        assert!(!loaded.storage_is_borrowed());
        assert_eq!(loaded.count(), built.count());
        let n = built.count();
        let stride = (n / 32).max(1);
        let mut j = 0;
        while j < n {
            assert_eq!(loaded.access(j), built.access(j), "prefix {prefix} j {j}");
            j += stride;
        }
    }

    // Offset 0 through the same in-memory fixture: aligned, so it borrows.
    let (_, meta) = load_borrowed_at_offset(&path, 0).unwrap();
    assert!(meta.borrowed);
    std::fs::remove_dir_all(&dir).ok();
}
