//! Snapshot round-trips over the paper's TPC-H benchmark queries, and a
//! byte-level corruption fuzz: every single-byte corruption of a snapshot
//! file must surface as a structured [`StoreError`] — never a panic, never
//! a silently wrong index.

use proptest::prelude::*;
use rae_core::{CqIndex, OrderedCqIndex, OrderedMcUcqIndex};
use rae_data::{Database, Relation, Schema, Symbol, Value};
use rae_store::{
    digest_of, load, load_borrowed, save, verify, Artifact, ArtifactArchive, StoreError,
    SNAPSHOT_EXT,
};
use rae_tpch::{generate, prepare_selections, queries, TpchScale};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// A fresh per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rae-store-roundtrip-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tpch_db() -> Database {
    let mut db = generate(&TpchScale::tiny(), 42);
    prepare_selections(&mut db).unwrap();
    db
}

/// Round-trips `archive` through a snapshot file and checks the digest
/// chain: in-memory digest == on-disk digest == re-serialized digest.
fn round_trip(dir: &std::path::Path, name: &str, archive: ArtifactArchive) -> Artifact {
    let expected = digest_of(&archive);
    let path = dir.join(format!("{name}.{SNAPSHOT_EXT}"));
    let meta = save(&path, &archive, 1, name).unwrap();
    assert_eq!(meta.artifact_digest, expected, "{name}: save digest");
    assert_eq!(verify(&path).unwrap().artifact_digest, expected);
    let (artifact, meta) = load(&path).unwrap();
    assert_eq!(meta.artifact_digest, expected, "{name}: load digest");
    // Serialization of the restored index is a fixed point.
    let re_archived = match &artifact {
        Artifact::Cq(idx) => ArtifactArchive::Cq(idx.to_archive()),
        Artifact::Ordered(idx) => ArtifactArchive::Ordered(idx.to_archive()),
        Artifact::OrderedUnion(idx) => ArtifactArchive::OrderedUnion(idx.to_archive()),
    };
    assert_eq!(
        digest_of(&re_archived),
        expected,
        "{name}: re-archive digest"
    );
    artifact
}

#[test]
fn tpch_cq_snapshots_round_trip() {
    let db = tpch_db();
    let dir = scratch("cq");
    for (name, cq) in queries::all_cqs() {
        let idx = CqIndex::build(&cq, &db).unwrap();
        let Artifact::Cq(restored) = round_trip(&dir, name, ArtifactArchive::Cq(idx.to_archive()))
        else {
            panic!("{name}: wrong artifact kind");
        };
        assert_eq!(restored.count(), idx.count(), "{name}: count");
        let n = idx.count();
        let stride = (n / 64).max(1);
        let mut j = 0;
        while j < n {
            assert_eq!(restored.access(j), idx.access(j), "{name}: access({j})");
            j += stride;
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tpch_ordered_snapshots_round_trip() {
    let db = tpch_db();
    let dir = scratch("ordered");
    for (name, cq) in queries::all_cqs() {
        // The plan's own DFS new-attribute sequence is realizable by
        // construction — the head order itself need not be.
        let order: Vec<Symbol> = CqIndex::build(&cq, &db).unwrap().plan().attrs_dfs();
        let idx = OrderedCqIndex::build(&cq, &db, &order).unwrap();
        let Artifact::Ordered(restored) =
            round_trip(&dir, name, ArtifactArchive::Ordered(idx.to_archive()))
        else {
            panic!("{name}: wrong artifact kind");
        };
        assert_eq!(restored.count(), idx.count(), "{name}: count");
        assert_eq!(restored.order(), idx.order(), "{name}: order");
        let n = idx.count();
        let stride = (n / 64).max(1);
        let mut k = 0;
        while k < n {
            assert_eq!(
                restored.ordered_access(k),
                idx.ordered_access(k),
                "{name}: ordered_access({k})"
            );
            k += stride;
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tpch_union_snapshots_round_trip() {
    let db = tpch_db();
    let dir = scratch("union");
    for (name, ucq) in queries::all_ucqs() {
        // mc-UCQ members share one join-tree template, so the first
        // member's DFS attribute sequence realizes for every member.
        let order: Vec<Symbol> = CqIndex::build(&ucq.disjuncts()[0], &db)
            .unwrap()
            .plan()
            .attrs_dfs();
        let idx = OrderedMcUcqIndex::build(&ucq, &db, &order).unwrap();
        let file = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect::<String>();
        let Artifact::OrderedUnion(restored) =
            round_trip(&dir, &file, ArtifactArchive::OrderedUnion(idx.to_archive()))
        else {
            panic!("{name}: wrong artifact kind");
        };
        assert_eq!(restored.count(), idx.count(), "{name}: count");
        let n = idx.count();
        let stride = (n / 64).max(1);
        let mut k = 0;
        while k < n {
            assert_eq!(
                restored.ordered_access(k),
                idx.ordered_access(k),
                "{name}: ordered_access({k})"
            );
            k += stride;
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A small fixed index for the corruption fuzz (keeps the file a few KB so
/// the exhaustive sweep stays fast).
fn small_archive() -> ArtifactArchive {
    let mut db = Database::new();
    db.add_relation(
        "R",
        Relation::from_rows(
            Schema::new(["a", "b"]).unwrap(),
            (0..6i64).map(|i| vec![Value::Int(i % 3), Value::Int(i)]),
        )
        .unwrap(),
    )
    .unwrap();
    db.add_relation(
        "S",
        Relation::from_rows(
            Schema::new(["b", "c"]).unwrap(),
            (0..6i64).map(|i| vec![Value::Int(i), Value::str(["x", "y"][i as usize % 2])]),
        )
        .unwrap(),
    )
    .unwrap();
    let cq = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let order: Vec<Symbol> = ["x", "y", "z"].into_iter().map(Symbol::new).collect();
    ArtifactArchive::Ordered(
        OrderedCqIndex::build(&cq, &db, &order)
            .unwrap()
            .to_archive(),
    )
}

#[test]
fn every_single_byte_corruption_is_refused() {
    let dir = scratch("fuzz");
    let path = dir.join(format!("victim.{SNAPSHOT_EXT}"));
    let archive = small_archive();
    save(&path, &archive, 1, "fuzz").unwrap();
    let pristine = std::fs::read(&path).unwrap();
    let expected = digest_of(&archive);

    let mut refused = 0usize;
    for i in 0..pristine.len() {
        for bit in 0..8 {
            let mut bytes = pristine.clone();
            bytes[i] ^= 1 << bit;
            std::fs::write(&path, &bytes).unwrap();
            match load(&path) {
                Err(_) => refused += 1,
                Ok((_, meta)) => panic!(
                    "flip at byte {i} bit {bit} loaded silently (digest {:#x} vs {expected:#x})",
                    meta.artifact_digest
                ),
            }
            // The zero-copy path must refuse the identical corruption —
            // same checksums, same structured errors, no mapped-memory UB.
            match load_borrowed(&path) {
                Err(_) => {}
                Ok((_, meta)) => panic!(
                    "flip at byte {i} bit {bit} borrow-loaded silently (digest {:#x})",
                    meta.artifact_digest
                ),
            }
        }
    }
    assert_eq!(refused, pristine.len() * 8);

    // And every truncation, on both paths.
    for cut in 0..pristine.len() {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        assert!(load(&path).is_err(), "truncation to {cut} bytes loaded");
        assert!(
            load_borrowed(&path).is_err(),
            "truncation to {cut} bytes borrow-loaded"
        );
    }

    // The pristine bytes still load — the harness itself isn't broken.
    std::fs::write(&path, &pristine).unwrap();
    assert_eq!(load(&path).unwrap().1.artifact_digest, expected);
    let (_, meta) = load_borrowed(&path).unwrap();
    assert_eq!(meta.artifact_digest, expected);
    assert!(meta.borrowed, "aligned mapping should serve zero-copy");
    std::fs::remove_dir_all(&dir).ok();
}

/// A dense single-attribute index whose startIndex serializes as
/// Elias-Fano (asserted in the test), so the corruption sweep also covers
/// the succinct rank-structure sections.
fn dense_archive() -> ArtifactArchive {
    let mut db = Database::new();
    db.add_relation(
        "R",
        Relation::from_rows(
            Schema::new(["a"]).unwrap(),
            (0..256i64).map(|i| vec![Value::Int(i)]),
        )
        .unwrap(),
    )
    .unwrap();
    let cq = "Q(x) :- R(x)".parse().unwrap();
    ArtifactArchive::Cq(CqIndex::build(&cq, &db).unwrap().to_archive())
}

#[test]
fn every_byte_corruption_of_ef_snapshot_is_refused() {
    let dir = scratch("ef-fuzz");
    let path = dir.join(format!("victim.{SNAPSHOT_EXT}"));
    save(&path, &dense_archive(), 1, "ef-fuzz").unwrap();
    let pristine = std::fs::read(&path).unwrap();

    // Sanity: this snapshot really is served zero-copy off an Elias-Fano
    // startIndex — otherwise the sweep would not cover what it claims.
    let (artifact, meta) = load_borrowed(&path).unwrap();
    assert!(meta.borrowed);
    let Artifact::Cq(idx) = artifact else {
        panic!("wrong artifact kind");
    };
    assert!(idx.storage_is_borrowed());
    assert_eq!(idx.starts_encoding(0), "elias-fano");
    assert_eq!(idx.count(), 256);

    // One flip per byte (rotating bit) on both load paths: a structured
    // error every time, never a panic, never a wrong load.
    for i in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[i] ^= 1 << (i % 8);
        std::fs::write(&path, &bytes).unwrap();
        assert!(load(&path).is_err(), "EF flip at byte {i} loaded");
        assert!(
            load_borrowed(&path).is_err(),
            "EF flip at byte {i} borrow-loaded"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corruption_errors_are_structured() {
    // Spot-check that representative corruptions map to the intended
    // variants, not just "some error".
    let dir = scratch("variants");
    let path = dir.join(format!("victim.{SNAPSHOT_EXT}"));
    save(&path, &small_archive(), 1, "variants").unwrap();
    let pristine = std::fs::read(&path).unwrap();

    // Unsupported version.
    let mut bytes = pristine.clone();
    bytes[8] = 0xFF;
    // Re-stamp the v2 header checksum (FNV over the first 24 bytes) so
    // the version check itself is reached even if checks reorder.
    let sum = rae_store::fnv64(&bytes[..24]).to_le_bytes();
    bytes[24..32].copy_from_slice(&sum);
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        load(&path),
        Err(StoreError::VersionMismatch { found, .. }) if found == 0xFF
    ));

    // Lost trailer → truncation report.
    std::fs::write(&path, &pristine[..pristine.len() - 8]).unwrap();
    assert!(matches!(load(&path), Err(StoreError::TruncatedFile { .. })));

    // Flip one payload byte and fix up nothing: section checksum catches it.
    let mut bytes = pristine.clone();
    bytes[40] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(load(&path), Err(StoreError::Corrupt { .. })));
    std::fs::remove_dir_all(&dir).ok();
}

type Rows = Vec<(i64, i64)>;

fn two_table_db(r_rows: &Rows, s_rows: &Rows) -> Database {
    let rel = |schema: [&str; 2], rows: &Rows| {
        Relation::from_rows(
            Schema::new(schema).unwrap(),
            rows.iter()
                .map(|&(x, y)| vec![Value::Int(x), Value::Int(y)]),
        )
        .unwrap()
    };
    let mut db = Database::new();
    db.add_relation("R", rel(["a", "b"], r_rows)).unwrap();
    db.add_relation("S", rel(["b", "c"], s_rows)).unwrap();
    db
}

/// One random-database round-trip case: serialize → load → identical
/// digest and identical ordered answer stream.
fn check_random_round_trip(r_rows: &Rows, s_rows: &Rows) {
    let db = two_table_db(r_rows, s_rows);
    let cq = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let order: Vec<Symbol> = ["z", "y", "x"].into_iter().map(Symbol::new).collect();
    let idx = OrderedCqIndex::build(&cq, &db, &order).unwrap();
    let archive = ArtifactArchive::Ordered(idx.to_archive());
    let expected = digest_of(&archive);

    let dir = scratch("prop");
    let path = dir.join(format!("p.{SNAPSHOT_EXT}"));
    let meta = save(&path, &archive, 7, "prop").unwrap();
    assert_eq!(meta.artifact_digest, expected);
    let (artifact, meta) = load(&path).unwrap();
    assert_eq!(meta.artifact_digest, expected);
    let Artifact::Ordered(restored) = artifact else {
        panic!("wrong artifact kind");
    };
    assert_eq!(restored.count(), idx.count());
    for k in 0..idx.count() {
        assert_eq!(restored.ordered_access(k), idx.ordered_access(k));
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_indexes_round_trip(
        r_rows in prop::collection::vec((-4..4i64, -4..4i64), 0..20),
        s_rows in prop::collection::vec((-4..4i64, -4..4i64), 0..20),
    ) {
        check_random_round_trip(&r_rows, &s_rows);
    }
}
