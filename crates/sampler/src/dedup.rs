//! The without-replacement adaptor: repeated sampling + duplicate rejection.

use crate::JoinSampler;
use rae_core::{AccessScratch, Weight};
use rae_data::{FxHashSet, Value};
use rand::Rng;

/// Turns any with-replacement [`JoinSampler`] into a stream of *distinct*
/// answers by rejecting previously seen ones — the paper's "naive
/// transformation into a sampling-without-replacement algorithm by duplicate
/// elimination" (Section 6.2). The coupon-collector effect makes the cost of
/// the k-th distinct answer grow as the fraction of answers already seen
/// grows, which is the behaviour Figures 1–3 measure.
#[derive(Debug)]
pub struct WithoutReplacement<S> {
    sampler: S,
    seen: FxHashSet<Vec<Value>>,
    /// Scratch reused across draws: duplicates and rejections are
    /// allocation-free; only a genuinely new answer is materialized.
    scratch: AccessScratch,
    /// With-replacement draws performed (including duplicates).
    draws: u64,
    /// Draws that returned an already-seen answer.
    duplicates: u64,
    /// Internal sampler rejections (e.g. Olken walk restarts).
    rejections: u64,
}

impl<S: JoinSampler> WithoutReplacement<S> {
    /// Wraps a sampler.
    pub fn new(sampler: S) -> Self {
        WithoutReplacement {
            sampler,
            seen: FxHashSet::default(),
            scratch: AccessScratch::new(),
            draws: 0,
            duplicates: 0,
            rejections: 0,
        }
    }

    /// Number of distinct answers produced so far.
    pub fn produced(&self) -> usize {
        self.seen.len()
    }

    /// Total with-replacement draws performed.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Draws rejected as duplicates.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Internal sampler rejections.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// The wrapped sampler.
    pub fn sampler(&self) -> &S {
        &self.sampler
    }

    /// Produces the next distinct answer, or `None` once all answers of the
    /// underlying index have been produced.
    pub fn next_distinct<R: Rng>(&mut self, rng: &mut R) -> Option<Vec<Value>> {
        let total = self.sampler.index().count();
        if (self.seen.len() as Weight) >= total {
            return None;
        }
        loop {
            if self.sampler.attempt_into(rng, &mut self.scratch).is_none() {
                self.rejections += 1;
                continue;
            }
            self.draws += 1;
            // Probe by borrowed slice first; allocate only for new answers.
            let answer = self.scratch.answer();
            if self.seen.contains(answer) {
                self.duplicates += 1;
                continue;
            }
            let owned = answer.to_vec();
            self.seen.insert(owned.clone());
            return Some(owned);
        }
    }

    /// Produces up to `k` further distinct answers.
    pub fn take_distinct<R: Rng>(&mut self, rng: &mut R, k: usize) -> Vec<Vec<Value>> {
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            match self.next_distinct(rng) {
                Some(a) => out.push(a),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ew::EwSampler;
    use crate::test_support::skewed_index;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn produces_every_answer_exactly_once() {
        let idx = skewed_index();
        let total = idx.count() as usize;
        let mut wr = WithoutReplacement::new(EwSampler::new(&idx));
        let mut rng = StdRng::seed_from_u64(5);
        let mut got = Vec::new();
        while let Some(a) = wr.next_distinct(&mut rng) {
            got.push(a);
        }
        assert_eq!(got.len(), total);
        got.sort();
        got.dedup();
        assert_eq!(got.len(), total);
        assert_eq!(wr.produced(), total);
    }

    #[test]
    fn duplicate_rate_grows_with_coverage() {
        let idx = skewed_index();
        let total = idx.count() as usize;
        let mut wr = WithoutReplacement::new(EwSampler::new(&idx));
        let mut rng = StdRng::seed_from_u64(5);
        // First half: few duplicates expected.
        wr.take_distinct(&mut rng, total / 2);
        let dups_first_half = wr.duplicates();
        // Second half: coupon collector kicks in.
        wr.take_distinct(&mut rng, total - total / 2);
        let dups_second_half = wr.duplicates() - dups_first_half;
        assert!(
            dups_second_half >= dups_first_half,
            "expected more duplicates late: {dups_first_half} then {dups_second_half}"
        );
    }

    #[test]
    fn take_distinct_stops_at_total() {
        let idx = skewed_index();
        let total = idx.count() as usize;
        let mut wr = WithoutReplacement::new(EwSampler::new(&idx));
        let mut rng = StdRng::seed_from_u64(1);
        let got = wr.take_distinct(&mut rng, total + 50);
        assert_eq!(got.len(), total);
        assert!(wr.next_distinct(&mut rng).is_none());
    }
}
