//! The OE (hybrid Olken/exact) sampler.

// Sanctioned panics: each `expect` names a structural invariant of the
// built index (ids and counts fit u32, uniform ranks are in range);
// violation is a bug, not a recoverable state.
#![allow(clippy::expect_used)]

use crate::JoinSampler;
use rae_core::{AccessScratch, CqIndex, Weight};
use rae_data::Value;
use rand::Rng;

/// Hybrid sampling: each root row is drawn uniformly from its (single root)
/// bucket and accepted with probability `w(t) / max-weight(bucket)`; on
/// acceptance the completion below the row is sampled **exactly** by drawing
/// a uniform offset within `w(t)` and delegating to random access.
///
/// Uniformity: `P(answer) = ∏_roots (1/|B|) · (w/wmax) · (1/w)
/// = ∏_roots 1/(|B|·wmax)`, a constant. Rejection happens only at the top
/// level, so OE sits between EW (no rejections) and EO (rejections at every
/// level) — the ordering observed in the paper's appendix Figure 8.
#[derive(Debug, Clone, Copy)]
pub struct OeSampler<'a> {
    index: &'a CqIndex,
}

impl<'a> OeSampler<'a> {
    /// Wraps an index.
    pub fn new(index: &'a CqIndex) -> Self {
        OeSampler { index }
    }
}

impl JoinSampler for OeSampler<'_> {
    fn attempt_into<'s, R: Rng>(
        &self,
        rng: &mut R,
        scratch: &'s mut AccessScratch,
    ) -> Option<&'s [Value]> {
        // Chaos site: an injected fault reads as one more rejected attempt,
        // which the rejection samplers already tolerate uniformly.
        rae_faults::fail_point!("sampler/attempt", |_site| None);
        let idx = self.index;
        if idx.count() == 0 {
            return None;
        }
        // CombineIndex streamed over the roots in order — no radix/digit
        // vectors needed.
        let mut global: Weight = 0;
        for &root in idx.plan().roots() {
            let bucket = idx.root_bucket(root)?;
            let row = rng.gen_range(bucket.start..bucket.end);
            let w = idx.row_weight(root, row);
            // Accept with probability w / max-weight.
            if w < bucket.max_weight && rng.gen_range(0..bucket.max_weight) >= w {
                return None;
            }
            // Exact completion: a uniform offset inside this row's range.
            let offset = rng.gen_range(0..w);
            global = global * bucket.total + idx.row_start(root, row) + offset;
        }
        Some(
            idx.access_into(global, scratch)
                .expect("index within count"),
        )
    }

    fn index(&self) -> &CqIndex {
        self.index
    }

    fn name(&self) -> &'static str {
        "OE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_uniform, skewed_index};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_despite_top_level_rejections() {
        let idx = skewed_index();
        let s = OeSampler::new(&idx);
        assert_uniform(&s, 8000, 0.25);
    }

    #[test]
    fn rejects_less_than_full_olken_on_average() {
        use crate::eo::EoSampler;
        let idx = skewed_index();
        let oe = OeSampler::new(&idx);
        let eo = EoSampler::new(&idx);
        let mut rng = StdRng::seed_from_u64(13);
        let trials = 4000;
        let mut oe_rej = 0u32;
        let mut eo_rej = 0u32;
        for _ in 0..trials {
            if oe.attempt(&mut rng).is_none() {
                oe_rej += 1;
            }
            if eo.attempt(&mut rng).is_none() {
                eo_rej += 1;
            }
        }
        // Same acceptance structure at the root, but EO additionally rejects
        // below; with this data OE ≤ EO in expectation.
        assert!(
            oe_rej <= eo_rej + (trials / 20),
            "OE rejected {oe_rej}, EO rejected {eo_rej}"
        );
    }

    #[test]
    fn cross_product_roots_combine_correctly() {
        use rae_data::Database;
        use rae_query::parser::parse_cq;
        let mut db = Database::new();
        db.add_relation(
            "R",
            crate::test_support::rel_int(&["a"], &[&[1], &[2], &[3]]),
        )
        .unwrap();
        db.add_relation("S", crate::test_support::rel_int(&["b"], &[&[10], &[20]]))
            .unwrap();
        let cq = parse_cq("Q(x, y) :- R(x), S(y)").unwrap();
        let idx = CqIndex::build(&cq, &db).unwrap();
        let s = OeSampler::new(&idx);
        assert_uniform(&s, 6000, 0.25);
    }
}
