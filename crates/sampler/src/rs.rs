//! The RS (naive rejection) sampler.

// Sanctioned panics: each `expect` names a structural invariant of the
// built index (ids and counts fit u32, uniform ranks are in range);
// violation is a bug, not a recoverable state.
#![allow(clippy::expect_used)]

use crate::JoinSampler;
use rae_core::{AccessScratch, CqIndex};
use rae_data::{Symbol, Value};
use rand::Rng;

/// Naive rejection sampling: draw one uniform row from **every** node
/// relation independently and accept only if the rows agree on every shared
/// attribute (i.e. they join).
///
/// Uniform by symmetry (`P = ∏ 1/|R_v|` for every joining combination), but
/// the acceptance probability equals `|answers| / ∏|R_v|`, which collapses
/// for selective joins — reproducing the paper's B.2.3 observation that RS
/// cannot produce even 1% of the answers in reasonable time.
#[derive(Debug, Clone)]
pub struct RsSampler<'a> {
    index: &'a CqIndex,
    /// Per node: `(child node, columns in this bag, columns in child bag)`.
    edges: Vec<(usize, usize, Vec<usize>, Vec<usize>)>,
}

impl<'a> RsSampler<'a> {
    /// Wraps an index, precomputing the join-condition column pairs.
    pub fn new(index: &'a CqIndex) -> Self {
        let plan = index.plan();
        let mut edges = Vec::new();
        for node in 0..plan.node_count() {
            for &child in plan.children(node) {
                let child_cols = plan.parent_shared_cols(child);
                let attrs: Vec<Symbol> = child_cols
                    .iter()
                    .map(|&c| plan.bag(child)[c].clone())
                    .collect();
                let parent_cols: Vec<usize> = attrs
                    .iter()
                    .map(|a| plan.bag(node).binary_search(a).expect("shared attr"))
                    .collect();
                edges.push((node, child, parent_cols, child_cols));
            }
        }
        RsSampler { index, edges }
    }
}

impl JoinSampler for RsSampler<'_> {
    fn attempt_into<'s, R: Rng>(
        &self,
        rng: &mut R,
        scratch: &'s mut AccessScratch,
    ) -> Option<&'s [Value]> {
        // Chaos site: an injected fault reads as one more rejected attempt,
        // which the rejection samplers already tolerate uniformly.
        rae_faults::fail_point!("sampler/attempt", |_site| None);
        let idx = self.index;
        if idx.count() == 0 {
            return None;
        }
        // One uniform row per node, into the reused row-id buffer.
        {
            let rows = scratch.row_ids();
            rows.clear();
            for node in 0..idx.node_count() {
                let n = idx.node_relation(node).len();
                debug_assert!(n > 0);
                rows.push(rng.gen_range(0..u32::try_from(n).expect("row count fits u32")));
            }
        }
        // Join check on every tree edge, over dictionary codes (u32
        // compares instead of Value compares).
        {
            let rows: &[u32] = scratch.row_ids();
            for (parent, child, parent_cols, child_cols) in &self.edges {
                let p_codes = idx.node_relation(*parent).row_codes(rows[*parent] as usize);
                let c_codes = idx.node_relation(*child).row_codes(rows[*child] as usize);
                for (&pc, &cc) in parent_cols.iter().zip(child_cols.iter()) {
                    if p_codes[pc] != c_codes[cc] {
                        return None;
                    }
                }
            }
        }
        scratch.reset_answer(idx.arity());
        let (rows, answer) = scratch.rows_and_answer();
        for (node, &row) in rows.iter().enumerate() {
            idx.write_row_values(node, row, answer);
        }
        Some(scratch.answer())
    }

    fn index(&self) -> &CqIndex {
        self.index
    }

    fn name(&self) -> &'static str {
        "RS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_uniform, skewed_index};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_over_answers() {
        let idx = skewed_index();
        let s = RsSampler::new(&idx);
        assert_uniform(&s, 12000, 0.3);
    }

    #[test]
    fn rejection_rate_matches_selectivity() {
        // 4 R-rows × 6 S-rows = 24 combinations; the join has 9 answers
        // (2·3 for y=1, 1·1 for y=2, 1·2 for y=3) ⇒ acceptance ≈ 9/24.
        let idx = skewed_index();
        let s = RsSampler::new(&idx);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 8000u32;
        let mut accepted = 0u32;
        for _ in 0..trials {
            if s.attempt(&mut rng).is_some() {
                accepted += 1;
            }
        }
        let rate = f64::from(accepted) / f64::from(trials);
        assert!(
            (0.32..=0.43).contains(&rate),
            "acceptance rate {rate:.3}, expected ≈ 9/24"
        );
    }

    #[test]
    fn accepts_everything_on_trivial_join() {
        use rae_data::Database;
        use rae_query::parser::parse_cq;
        let mut db = Database::new();
        db.add_relation("R", crate::test_support::rel_int(&["a"], &[&[1], &[2]]))
            .unwrap();
        let cq = parse_cq("Q(x) :- R(x)").unwrap();
        let idx = CqIndex::build(&cq, &db).unwrap();
        let s = RsSampler::new(&idx);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(s.attempt(&mut rng).is_some());
        }
    }
}
