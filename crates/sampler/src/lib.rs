#![warn(missing_docs)]
// Panicking extractors are banned in library code; everything surfaces a
// structured, classifiable `SamplerError`.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # rae-sampler
//!
//! Join-sampling baselines in the style of Zhao et al., *"Random Sampling
//! over Joins Revisited"* (SIGMOD 2018) — the state-of-the-art comparator of
//! the paper's Section 6 experiments. All samplers draw answers **uniformly
//! with replacement** from the answer set of a free-connex CQ, reusing the
//! weighted join-tree structure of [`rae_core::CqIndex`]:
//!
//! * [`EwSampler`] (**EW**, *exact weight*): every level samples exactly
//!   proportionally to the precomputed subtree weights — equivalent to
//!   `access(uniform index)`. No rejections.
//! * [`EoSampler`] (**EO**, *Olken everywhere*): a root-to-leaf random walk
//!   choosing rows uniformly within buckets and accepting each visited
//!   non-root bucket with probability `|bucket| / max-bucket-size`; rejects
//!   restart the walk.
//! * [`OeSampler`] (**OE**, *hybrid*): the root row is chosen uniformly and
//!   accepted with probability `w(t) / max-weight`, after which the
//!   completion below is sampled exactly.
//! * [`RsSampler`] (**RS**, *naive rejection*): one uniform row from every
//!   node relation, accepted only if they happen to join.
//!
//! The four variants correspond to the EW/EO/OE/RS configurations compared
//! in the paper's appendix (Figures 6 and 8 and the RS note); our EO/OE/RS
//! are interpretations of those initialization strategies with the same
//! rejection behaviour (see DESIGN.md §4 on substitutions). All four are
//! provably uniform over the answer set.
//!
//! [`WithoutReplacement`] converts any of them into a *distinct-answer*
//! stream by rejecting previously seen answers — the "naive transformation"
//! the paper benchmarks `REnum(CQ)` against (Section 6.2, footnote 3).

pub mod dedup;
pub mod eo;
pub mod ew;
pub mod oe;
pub mod ranked;
pub mod rs;

pub use dedup::WithoutReplacement;
pub use eo::EoSampler;
pub use ew::EwSampler;
pub use oe::OeSampler;
pub use ranked::{OrderedWindowSampler, WeightedWindowSampler};
pub use rs::RsSampler;

use rae_core::{AccessScratch, CqIndex};
use rae_data::Value;
use rand::Rng;

/// A uniform with-replacement sampler over the answers of a [`CqIndex`].
///
/// The primitive operation is [`JoinSampler::attempt_into`]: one sampling
/// attempt writing into a caller-provided [`AccessScratch`], performing
/// **zero heap allocations** — including on rejected attempts, which is
/// where the Olken-style samplers spend most of their time on skewed data.
/// The owned-result methods (`attempt`, `sample`, `sample_with_budget`) are
/// thin wrappers that allocate only for the value they return.
///
/// ```
/// use rae_core::{AccessScratch, CqIndex};
/// use rae_data::{Database, Relation, Schema, Value};
/// use rae_sampler::{EwSampler, JoinSampler};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut db = Database::new();
/// let rel = Relation::from_rows(
///     Schema::new(["a"]).unwrap(),
///     (0..50).map(|i| vec![Value::Int(i)]),
/// )
/// .unwrap();
/// db.add_relation("R", rel).unwrap();
/// let index = CqIndex::build(&"Q(x) :- R(x)".parse().unwrap(), &db).unwrap();
///
/// let sampler = EwSampler::new(&index);
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut scratch = AccessScratch::new();
/// // EW never rejects: every attempt yields a uniform answer.
/// let answer = sampler.attempt_into(&mut rng, &mut scratch).unwrap();
/// assert_eq!(answer.len(), 1);
/// ```
pub trait JoinSampler {
    /// One sampling attempt: on success writes the answer into `scratch`
    /// and returns a borrow of it; `None` signals an internal rejection
    /// (the attempt must then be retried). Allocation-free in steady state.
    fn attempt_into<'s, R: Rng>(
        &self,
        rng: &mut R,
        scratch: &'s mut AccessScratch,
    ) -> Option<&'s [Value]>;

    /// The underlying index.
    fn index(&self) -> &CqIndex;

    /// Short name for reports ("EW", "EO", …).
    fn name(&self) -> &'static str;

    /// One sampling attempt returning an owned answer (fresh scratch per
    /// call; prefer [`JoinSampler::attempt_into`] in loops).
    fn attempt<R: Rng>(&self, rng: &mut R) -> Option<Vec<Value>> {
        let mut scratch = AccessScratch::new();
        self.attempt_into(rng, &mut scratch).map(<[Value]>::to_vec)
    }

    /// Samples one answer uniformly with replacement into `scratch`,
    /// retrying rejections without allocating. Returns `None` iff the query
    /// has no answers.
    fn sample_into<'s, R: Rng>(
        &self,
        rng: &mut R,
        scratch: &'s mut AccessScratch,
    ) -> Option<&'s [Value]> {
        if self.index().count() == 0 {
            return None;
        }
        loop {
            if self.attempt_into(rng, &mut *scratch).is_some() {
                return Some(scratch.answer());
            }
        }
    }

    /// Samples one answer uniformly with replacement, retrying rejections.
    /// Returns `None` iff the query has no answers. Allocates only the
    /// returned vector (rejected attempts are free).
    fn sample<R: Rng>(&self, rng: &mut R) -> Option<Vec<Value>> {
        let mut scratch = AccessScratch::new();
        self.sample_into(rng, &mut scratch).map(<[Value]>::to_vec)
    }

    /// Samples with a rejection budget: gives up after `max_attempts`
    /// rejected attempts (used to reproduce the paper's timeout handling of
    /// EO/RS). Returns `Err(attempts_made)` on giving up.
    fn sample_with_budget<R: Rng>(
        &self,
        rng: &mut R,
        max_attempts: u64,
    ) -> Result<Vec<Value>, u64> {
        if self.index().count() == 0 {
            return Err(0);
        }
        let mut scratch = AccessScratch::new();
        for _ in 0..max_attempts {
            if self.attempt_into(rng, &mut scratch).is_some() {
                return Ok(scratch.answer().to_vec());
            }
        }
        Err(max_attempts)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use rae_core::CqIndex;
    use rae_data::{Database, Relation, Schema, Value};
    use rae_query::parser::parse_cq;

    pub fn rel_int(attrs: &[&str], rows: &[&[i64]]) -> Relation {
        Relation::from_rows(
            Schema::new(attrs.iter().copied()).unwrap(),
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect()),
        )
        .unwrap()
    }

    /// A two-hop join with skewed fan-out (weights differ across rows), so
    /// uniformity bugs show up in frequency tests.
    pub fn skewed_index() -> CqIndex {
        let mut db = Database::new();
        db.add_relation(
            "R",
            rel_int(&["a", "b"], &[&[1, 1], &[2, 1], &[3, 2], &[4, 3]]),
        )
        .unwrap();
        db.add_relation(
            "S",
            rel_int(
                &["b", "c"],
                &[&[1, 10], &[1, 11], &[1, 12], &[2, 20], &[3, 30], &[3, 31]],
            ),
        )
        .unwrap();
        let cq = parse_cq("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        CqIndex::build(&cq, &db).unwrap()
    }

    /// Uniformity check: every answer's frequency within `tolerance` of the
    /// expectation.
    pub fn assert_uniform<S: super::JoinSampler>(sampler: &S, trials: usize, tolerance: f64) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let idx = sampler.index();
        let n = idx.count() as usize;
        assert!(n > 0);
        let mut counts: std::collections::BTreeMap<Vec<Value>, usize> = Default::default();
        let mut rng = StdRng::seed_from_u64(0xFEED);
        for _ in 0..trials {
            let a = sampler.sample(&mut rng).unwrap();
            *counts.entry(a).or_insert(0) += 1;
        }
        assert_eq!(
            counts.len(),
            n,
            "{}: some answer was never sampled",
            sampler.name()
        );
        let expected = trials as f64 / n as f64;
        for (ans, c) in counts {
            let ratio = c as f64 / expected;
            assert!(
                (1.0 - tolerance..=1.0 + tolerance).contains(&ratio),
                "{}: answer {ans:?} sampled {c} times (expected ≈{expected:.0})",
                sampler.name()
            );
        }
    }
}
