//! The EO (Olken-style rejection) sampler.

// Sanctioned panics: each `expect` names a structural invariant of the
// built index (ids and counts fit u32, uniform ranks are in range);
// violation is a bug, not a recoverable state.
#![allow(clippy::expect_used)]

use crate::JoinSampler;
use rae_core::{AccessScratch, CqIndex};
use rae_data::Value;
use rand::Rng;

/// Olken-style sampling: a root-to-leaf walk choosing rows uniformly within
/// buckets. Each visited non-root bucket `B` of node `v` is accepted with
/// probability `|B| / M_v`, where `M_v` is the maximum bucket size of `v`;
/// any rejection restarts the whole walk.
///
/// Uniformity: a fixed answer is produced with probability
/// `∏_roots 1/|B_root| · ∏_{v non-root} (1/|B_v|) · (|B_v|/M_v)
///  = ∏_roots 1/|B_root| · ∏ 1/M_v`, a constant. The price is a rejection
/// rate that grows with fan-out skew — the behaviour driving the EO curves
/// in the paper's appendix Figure 6.
#[derive(Debug, Clone)]
pub struct EoSampler<'a> {
    index: &'a CqIndex,
    /// Maximum bucket cardinality per node.
    max_bucket_size: Vec<u64>,
}

impl<'a> EoSampler<'a> {
    /// Wraps an index, precomputing per-node maximum bucket sizes.
    pub fn new(index: &'a CqIndex) -> Self {
        let max_bucket_size = (0..index.node_count())
            .map(|node| {
                (0..index.bucket_count(node))
                    .map(|b| {
                        let view = index.bucket(node, u32::try_from(b).expect("bucket id"));
                        u64::from(view.end - view.start)
                    })
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        EoSampler {
            index,
            max_bucket_size,
        }
    }

    /// Walks the subtree under `node`, starting at the given bucket. Returns
    /// `false` on rejection.
    fn walk<R: Rng>(
        &self,
        node: usize,
        bucket: rae_core::BucketView,
        is_root: bool,
        rng: &mut R,
        answer: &mut [Value],
    ) -> bool {
        let size = u64::from(bucket.end - bucket.start);
        debug_assert!(size > 0, "reduced relations have no empty buckets");
        if !is_root {
            // Accept this bucket with probability |B| / M.
            let max = self.max_bucket_size[node];
            if size < max && rng.gen_range(0..max) >= size {
                return false;
            }
        }
        let row = rng.gen_range(bucket.start..bucket.end);
        self.index.write_row_values(node, row, answer);
        for (child_pos, &child) in self.index.plan().children(node).iter().enumerate() {
            let child_bucket = self.index.child_bucket(node, row, child_pos);
            if !self.walk(child, child_bucket, false, rng, answer) {
                return false;
            }
        }
        true
    }
}

impl JoinSampler for EoSampler<'_> {
    fn attempt_into<'s, R: Rng>(
        &self,
        rng: &mut R,
        scratch: &'s mut AccessScratch,
    ) -> Option<&'s [Value]> {
        // Chaos site: an injected fault reads as one more rejected attempt,
        // which the rejection samplers already tolerate uniformly.
        rae_faults::fail_point!("sampler/attempt", |_site| None);
        if self.index.count() == 0 {
            return None;
        }
        scratch.reset_answer(self.index.arity());
        for &root in self.index.plan().roots() {
            let bucket = self.index.root_bucket(root)?;
            if !self.walk(root, bucket, true, rng, scratch.answer_mut()) {
                return None;
            }
        }
        Some(scratch.answer())
    }

    fn index(&self) -> &CqIndex {
        self.index
    }

    fn name(&self) -> &'static str {
        "EO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_uniform, skewed_index};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_despite_rejections() {
        let idx = skewed_index();
        let s = EoSampler::new(&idx);
        assert_uniform(&s, 8000, 0.25);
    }

    #[test]
    fn rejects_sometimes_on_skewed_data() {
        // Bucket sizes are 3, 1, 2 for y = 1, 2, 3 ⇒ the walk must reject
        // roughly (1 - avg/max) of the time.
        let idx = skewed_index();
        let s = EoSampler::new(&idx);
        let mut rng = StdRng::seed_from_u64(7);
        let mut rejections = 0;
        for _ in 0..2000 {
            if s.attempt(&mut rng).is_none() {
                rejections += 1;
            }
        }
        assert!(
            rejections > 300,
            "expected substantial rejections, got {rejections}"
        );
    }

    #[test]
    fn no_rejections_on_uniform_fanout() {
        use rae_data::Database;
        use rae_query::parser::parse_cq;
        let mut db = Database::new();
        db.add_relation(
            "R",
            crate::test_support::rel_int(&["a", "b"], &[&[1, 1], &[2, 2]]),
        )
        .unwrap();
        db.add_relation(
            "S",
            crate::test_support::rel_int(&["b", "c"], &[&[1, 10], &[1, 11], &[2, 20], &[2, 21]]),
        )
        .unwrap();
        let cq = parse_cq("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let idx = CqIndex::build(&cq, &db).unwrap();
        let s = EoSampler::new(&idx);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            assert!(
                s.attempt(&mut rng).is_some(),
                "uniform fan-out never rejects"
            );
        }
    }
}
