//! The EW (exact-weight) sampler.

// Sanctioned panics: each `expect` names a structural invariant of the
// built index (ids and counts fit u32, uniform ranks are in range);
// violation is a bug, not a recoverable state.
#![allow(clippy::expect_used)]

use crate::JoinSampler;
use rae_core::{AccessScratch, CqIndex};
use rae_data::Value;
use rand::Rng;

/// Exact-weight sampling: with the subtree weights of Algorithm 2 available,
/// drawing a uniform answer is exactly a random access at a uniform index —
/// every level of the walk picks a row with probability proportional to its
/// weight, with zero rejections.
///
/// This is the strongest baseline in the paper's experiments (the one
/// `REnum(CQ)` is compared against in Figures 1–3).
#[derive(Debug, Clone, Copy)]
pub struct EwSampler<'a> {
    index: &'a CqIndex,
}

impl<'a> EwSampler<'a> {
    /// Wraps an index.
    pub fn new(index: &'a CqIndex) -> Self {
        EwSampler { index }
    }
}

impl JoinSampler for EwSampler<'_> {
    fn attempt_into<'s, R: Rng>(
        &self,
        rng: &mut R,
        scratch: &'s mut AccessScratch,
    ) -> Option<&'s [Value]> {
        // Chaos site: an injected fault reads as one more rejected attempt,
        // which the rejection samplers already tolerate uniformly.
        rae_faults::fail_point!("sampler/attempt", |_site| None);
        let n = self.index.count();
        if n == 0 {
            return None;
        }
        let j = rng.gen_range(0..n);
        Some(
            self.index
                .access_into(j, scratch)
                .expect("uniform index is in range"),
        )
    }

    fn index(&self) -> &CqIndex {
        self.index
    }

    fn name(&self) -> &'static str {
        "EW"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_uniform, skewed_index};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn never_rejects() {
        let idx = skewed_index();
        let s = EwSampler::new(&idx);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(s.attempt(&mut rng).is_some());
        }
    }

    #[test]
    fn uniform_over_skewed_weights() {
        let idx = skewed_index();
        let s = EwSampler::new(&idx);
        assert_uniform(&s, 6000, 0.25);
    }

    #[test]
    fn empty_index_yields_none() {
        use rae_data::{Database, Relation, Schema};
        use rae_query::parser::parse_cq;
        let mut db = Database::new();
        db.add_relation(
            "R",
            Relation::from_rows(Schema::new(["a", "b"]).unwrap(), Vec::new()).unwrap(),
        )
        .unwrap();
        let cq = parse_cq("Q(x, y) :- R(x, y)").unwrap();
        let idx = CqIndex::build(&cq, &db).unwrap();
        let s = EwSampler::new(&idx);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(s.sample(&mut rng).is_none());
        assert!(s.sample_with_budget(&mut rng, 10).is_err());
    }
}
