//! Ordered- and weighted-window sampling over rank-aware indexes
//! (DESIGN.md §11, §17).
//!
//! [`OrderedCqIndex`] resolves any `ORDER BY`-prefix to a contiguous rank
//! window in O(log n); drawing a uniform rank from that window and serving
//! it with `ordered_access_into` yields a **rejection-free, exactly
//! uniform** sampler over the answers matching the prefix — e.g. "sample
//! among the top-k" or "sample uniformly within one key group" — including
//! over plans the decomposition-complete synthesis built with projection
//! nodes. [`WeightedWindowSampler`] does the same over a
//! [`WeightedCqIndex`]'s sum-of-weights rank space (e.g. "uniform among
//! the k cheapest answers" or within a weight band). Attempts are
//! allocation-free like every other sampler here.
//!
//! Windows can also arrive pre-minted as style-tagged [`RankWindow`]s;
//! [`OrderedWindowSampler::for_window`] and
//! [`WeightedWindowSampler::for_window`] verify the tag so a weighted
//! window is never silently served by lexicographic ranks or vice versa
//! ([`rae_core::CoreError::MismatchedOrderStyle`]).

use crate::JoinSampler;
use rae_core::{
    AccessScratch, CoreError, CqIndex, OrderStyle, OrderedCqIndex, RankWindow, Weight,
    WeightedCqIndex,
};
use rae_data::Value;
use rand::Rng;
use std::ops::Range;

/// A uniform with-replacement sampler over a rank window of an
/// [`OrderedCqIndex`] — every attempt succeeds (no rejections).
///
/// ```
/// use rae_core::{AccessScratch, OrderedCqIndex};
/// use rae_data::{Database, Relation, Schema, Symbol, Value};
/// use rae_sampler::{JoinSampler, OrderedWindowSampler};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut db = Database::new();
/// db.add_relation(
///     "R",
///     Relation::from_rows(
///         Schema::new(["a", "b"]).unwrap(),
///         (0..20).map(|i| vec![Value::Int(i % 4), Value::Int(i)]),
///     )
///     .unwrap(),
/// )
/// .unwrap();
/// let q = "Q(x, y) :- R(x, y)".parse().unwrap();
/// let order = [Symbol::new("x"), Symbol::new("y")];
/// let idx = OrderedCqIndex::build(&q, &db, &order).unwrap();
///
/// // Sample uniformly among the answers with x = 2.
/// let sampler = OrderedWindowSampler::for_prefix(&idx, &[Value::Int(2)]).unwrap();
/// let mut rng = StdRng::seed_from_u64(9);
/// let mut scratch = AccessScratch::new();
/// let answer = sampler.attempt_into(&mut rng, &mut scratch).unwrap();
/// assert_eq!(answer[0], Value::Int(2));
/// ```
#[derive(Debug)]
pub struct OrderedWindowSampler<'a> {
    index: &'a OrderedCqIndex,
    window: Range<Weight>,
}

impl<'a> OrderedWindowSampler<'a> {
    /// A sampler over the rank window `[range.start, range.end)` of the
    /// requested order (out-of-bounds ends are clamped to `count()`).
    pub fn new(index: &'a OrderedCqIndex, range: Range<Weight>) -> Self {
        let lo = range.start.min(index.count());
        let hi = range.end.min(index.count()).max(lo);
        OrderedWindowSampler {
            index,
            window: lo..hi,
        }
    }

    /// A sampler over every answer matching a prefix of order values
    /// (empty prefix ⇒ the whole answer set). Errors only when the rank
    /// descent's capacity guard trips ([`CoreError::CapacityExceeded`]).
    pub fn for_prefix(index: &'a OrderedCqIndex, prefix: &[Value]) -> rae_core::Result<Self> {
        Ok(Self::new(index, index.range_of_prefix(prefix)?))
    }

    /// A sampler over a pre-minted style-tagged window. Errors with
    /// [`CoreError::MismatchedOrderStyle`] when the window's ranks are
    /// weighted (this sampler draws lexicographic ranks), and with
    /// [`CoreError::MismatchedOrders`] when it was minted under a
    /// different variable order than `index` realizes.
    pub fn for_window(index: &'a OrderedCqIndex, window: &RankWindow) -> rae_core::Result<Self> {
        check_window(window, OrderStyle::Lexicographic, index.order())?;
        Ok(Self::new(index, window.ranks()))
    }

    /// The sampled rank window.
    pub fn window(&self) -> Range<Weight> {
        self.window.clone()
    }

    /// Number of answers in the window.
    pub fn window_len(&self) -> Weight {
        self.window.end - self.window.start
    }
}

impl JoinSampler for OrderedWindowSampler<'_> {
    fn attempt_into<'s, R: Rng>(
        &self,
        rng: &mut R,
        scratch: &'s mut AccessScratch,
    ) -> Option<&'s [Value]> {
        // Chaos site: an injected fault reads as one more rejected attempt,
        // which the rejection samplers already tolerate uniformly.
        rae_faults::fail_point!("sampler/attempt", |_site| None);
        if self.window.is_empty() {
            return None;
        }
        let k = rng.gen_range(self.window.clone());
        self.index.ordered_access_into(k, scratch)
    }

    fn index(&self) -> &CqIndex {
        self.index.index()
    }

    /// Unlike the join samplers, an empty *window* (not an empty query)
    /// also yields `None`.
    fn sample_into<'s, R: Rng>(
        &self,
        rng: &mut R,
        scratch: &'s mut AccessScratch,
    ) -> Option<&'s [Value]> {
        if self.window.is_empty() {
            return None;
        }
        self.attempt_into(rng, scratch)
    }

    fn name(&self) -> &'static str {
        "OW"
    }
}

/// Shared window validation: the style tag first (a wrong style means the
/// caller is about to sample the wrong distribution), then the variable
/// order (same defense as the ordered-union merge).
fn check_window(
    window: &RankWindow,
    expected: OrderStyle,
    order: &[rae_data::Symbol],
) -> rae_core::Result<()> {
    if window.style() != expected {
        return Err(CoreError::MismatchedOrderStyle {
            expected: expected.name(),
            got: window.style().name(),
        });
    }
    if window.order() != order {
        return Err(CoreError::MismatchedOrders {
            expected: order.iter().map(|s| s.as_str().to_string()).collect(),
            got: window
                .order()
                .iter()
                .map(|s| s.as_str().to_string())
                .collect(),
        });
    }
    Ok(())
}

/// A uniform with-replacement sampler over a **weighted** rank window of a
/// [`WeightedCqIndex`] — every attempt succeeds (no rejections). Windows
/// come from weighted ranks directly ([`WeightedWindowSampler::new`],
/// e.g. `0..k` for the k cheapest answers), from a weight band
/// ([`WeightedWindowSampler::for_weight_range`]), or from a style-checked
/// pre-minted window ([`WeightedWindowSampler::for_window`]).
///
/// ```
/// use rae_core::WeightedCqIndex;
/// use rae_data::{Database, Relation, Schema, Symbol, Value, VarWeights};
/// use rae_sampler::{JoinSampler, WeightedWindowSampler};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut db = Database::new();
/// db.add_relation(
///     "R",
///     Relation::from_rows(
///         Schema::new(["a", "b"]).unwrap(),
///         (0..20).map(|i| vec![Value::Int(i % 4), Value::Int(i)]),
///     )
///     .unwrap(),
/// )
/// .unwrap();
/// let q = "Q(x, y) :- R(x, y)".parse().unwrap();
/// let order = [Symbol::new("x"), Symbol::new("y")];
/// let mut weights = VarWeights::new();
/// for v in 0..4 {
///     weights.set("x", Value::Int(v), (10 - v) as u128);
/// }
/// let idx = WeightedCqIndex::build(&q, &db, &order, &weights).unwrap();
///
/// // Sample uniformly among the 5 cheapest answers.
/// let sampler = WeightedWindowSampler::new(&idx, 0..5);
/// let mut rng = StdRng::seed_from_u64(9);
/// let answer = sampler.sample(&mut rng).unwrap();
/// assert!(idx.ranked_inverted_access(&answer).unwrap() < 5);
/// ```
#[derive(Debug)]
pub struct WeightedWindowSampler<'a> {
    index: &'a WeightedCqIndex,
    window: Range<Weight>,
}

impl<'a> WeightedWindowSampler<'a> {
    /// A sampler over the weighted-rank window `[range.start, range.end)`
    /// (out-of-bounds ends are clamped to `count()`).
    pub fn new(index: &'a WeightedCqIndex, range: Range<Weight>) -> Self {
        let lo = range.start.min(index.count());
        let hi = range.end.min(index.count()).max(lo);
        WeightedWindowSampler {
            index,
            window: lo..hi,
        }
    }

    /// A sampler over every answer whose weight falls in `weights`
    /// (half-open) — the window is contiguous in weighted ranks by
    /// construction ([`WeightedCqIndex::weight_window`]).
    pub fn for_weight_range(index: &'a WeightedCqIndex, weights: Range<u128>) -> Self {
        Self::new(index, index.weight_window(weights))
    }

    /// A sampler over a pre-minted style-tagged window. Errors with
    /// [`CoreError::MismatchedOrderStyle`] when the window carries
    /// lexicographic ranks — drawing them as weighted ranks would sample
    /// the wrong distribution.
    pub fn for_window(index: &'a WeightedCqIndex, window: &RankWindow) -> rae_core::Result<Self> {
        check_window(window, OrderStyle::Weighted, index.order())?;
        Ok(Self::new(index, window.ranks()))
    }

    /// The sampled weighted-rank window.
    pub fn window(&self) -> Range<Weight> {
        self.window.clone()
    }

    /// Number of answers in the window.
    pub fn window_len(&self) -> Weight {
        self.window.end - self.window.start
    }
}

impl JoinSampler for WeightedWindowSampler<'_> {
    fn attempt_into<'s, R: Rng>(
        &self,
        rng: &mut R,
        scratch: &'s mut AccessScratch,
    ) -> Option<&'s [Value]> {
        // Same chaos site as the ordered sampler: an injected fault reads
        // as one more rejected attempt.
        rae_faults::fail_point!("sampler/attempt", |_site| None);
        if self.window.is_empty() {
            return None;
        }
        let k = rng.gen_range(self.window.clone());
        self.index.ranked_access_into(k, scratch)
    }

    fn index(&self) -> &CqIndex {
        self.index.index().index()
    }

    /// Unlike the join samplers, an empty *window* (not an empty query)
    /// also yields `None`.
    fn sample_into<'s, R: Rng>(
        &self,
        rng: &mut R,
        scratch: &'s mut AccessScratch,
    ) -> Option<&'s [Value]> {
        if self.window.is_empty() {
            return None;
        }
        self.attempt_into(rng, scratch)
    }

    fn name(&self) -> &'static str {
        "WW"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_data::{Database, Relation, Schema, Symbol};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            "R",
            Relation::from_rows(
                Schema::new(["a", "b"]).unwrap(),
                (0..6).map(|i| vec![Value::Int(i % 3), Value::Int(i)]),
            )
            .unwrap(),
        )
        .unwrap();
        db.add_relation(
            "S",
            Relation::from_rows(
                Schema::new(["b", "c"]).unwrap(),
                (0..6).flat_map(|i| {
                    (0..(i % 2 + 1)).map(move |j| vec![Value::Int(i), Value::Int(10 * i + j)])
                }),
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn ordered_index(db: &Database) -> OrderedCqIndex {
        let q = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
        let order: Vec<Symbol> = ["x", "y", "z"].iter().map(Symbol::new).collect();
        OrderedCqIndex::build(&q, db, &order).unwrap()
    }

    #[test]
    fn prefix_window_is_uniform_over_matching_answers() {
        let db = db();
        let idx = ordered_index(&db);
        let prefix = [Value::Int(1)];
        let expected: Vec<Vec<Value>> = idx.enumerate_prefix(&prefix).unwrap().collect();
        assert!(expected.len() >= 2);
        let sampler = OrderedWindowSampler::for_prefix(&idx, &prefix).unwrap();
        let mut rng = StdRng::seed_from_u64(0xFACE);
        let mut counts: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
        let trials = 3000usize;
        for _ in 0..trials {
            let a = sampler.sample(&mut rng).unwrap();
            assert_eq!(a[0], Value::Int(1), "sampled outside the prefix");
            *counts.entry(a).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), expected.len(), "some window answer missed");
        let freq = trials as f64 / expected.len() as f64;
        for (a, c) in counts {
            let ratio = c as f64 / freq;
            assert!(
                (0.75..=1.25).contains(&ratio),
                "answer {a:?} sampled {c} times (expected ≈{freq:.0})"
            );
        }
    }

    #[test]
    fn empty_window_never_yields() {
        let db = db();
        let idx = ordered_index(&db);
        let sampler = OrderedWindowSampler::for_prefix(&idx, &[Value::Int(999)]).unwrap();
        assert_eq!(sampler.window_len(), 0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sampler.sample(&mut rng).is_none());
        assert!(sampler.attempt(&mut rng).is_none());
    }

    #[test]
    fn full_window_covers_every_answer() {
        let db = db();
        let idx = ordered_index(&db);
        let sampler = OrderedWindowSampler::new(&idx, 0..Weight::MAX);
        assert_eq!(sampler.window_len(), idx.count());
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen: std::collections::BTreeSet<Vec<Value>> = Default::default();
        for _ in 0..2000 {
            seen.insert(sampler.sample(&mut rng).unwrap());
        }
        assert_eq!(seen.len() as Weight, idx.count());
    }

    fn weighted_index(db: &Database) -> WeightedCqIndex {
        let q = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
        let order: Vec<Symbol> = ["x", "y", "z"].iter().map(Symbol::new).collect();
        let mut weights = rae_data::VarWeights::new();
        for v in 0..3 {
            weights.set("x", Value::Int(v), (7 * (v + 1)) as u128);
        }
        WeightedCqIndex::build(&q, db, &order, &weights).unwrap()
    }

    #[test]
    fn weighted_window_is_uniform_over_cheapest_answers() {
        let db = db();
        let widx = weighted_index(&db);
        assert!(widx.count() >= 4);
        let k: Weight = widx.count() / 2;
        let sampler = WeightedWindowSampler::new(&widx, 0..k);
        assert_eq!(sampler.window_len(), k);
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let mut counts: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
        for _ in 0..3000 {
            let a = sampler.sample(&mut rng).unwrap();
            let rank = widx.ranked_inverted_access(&a).unwrap();
            assert!(rank < k, "sampled outside the cheapest-{k} window");
            *counts.entry(a).or_insert(0) += 1;
        }
        assert_eq!(counts.len() as Weight, k, "some window answer missed");
        let freq = 3000f64 / k as f64;
        for (a, c) in counts {
            let ratio = c as f64 / freq;
            assert!(
                (0.75..=1.25).contains(&ratio),
                "answer {a:?} sampled {c} times (expected ≈{freq:.0})"
            );
        }
    }

    #[test]
    fn weight_band_window_stays_in_band() {
        let db = db();
        let widx = weighted_index(&db);
        let (lo_w, hi_w) = (widx.min_weight().unwrap(), widx.max_weight().unwrap());
        assert!(lo_w < hi_w, "fixture needs at least two weight classes");
        let sampler = WeightedWindowSampler::for_weight_range(&widx, lo_w..hi_w);
        assert_eq!(
            sampler.window_len(),
            widx.weight_range_count(lo_w..hi_w),
            "band window length"
        );
        let mut rng = StdRng::seed_from_u64(3);
        let mut scratch = AccessScratch::new();
        for _ in 0..200 {
            let a = sampler.sample(&mut rng).unwrap();
            let w = widx.weight_of(&a, &mut scratch).unwrap();
            assert!((lo_w..hi_w).contains(&w), "weight {w} outside the band");
        }
        // Empty band ⇒ empty window ⇒ no samples.
        let empty = WeightedWindowSampler::for_weight_range(&widx, 0..lo_w);
        assert_eq!(empty.window_len(), 0);
        assert!(empty.sample(&mut rng).is_none());
    }

    /// A weighted window applied to a lexicographic sampler (and vice
    /// versa) must be refused with the structured style error — never
    /// silently served from the wrong rank space.
    #[test]
    fn mismatched_window_styles_are_rejected() {
        let db = db();
        let idx = ordered_index(&db);
        let widx = weighted_index(&db);

        let lex_window = idx.rank_window(0..3);
        let weighted_window = widx.rank_window(0..3);

        assert!(matches!(
            OrderedWindowSampler::for_window(&idx, &weighted_window),
            Err(CoreError::MismatchedOrderStyle {
                expected: "lexicographic",
                got: "weighted",
            })
        ));
        assert!(matches!(
            WeightedWindowSampler::for_window(&widx, &lex_window),
            Err(CoreError::MismatchedOrderStyle {
                expected: "weighted",
                got: "lexicographic",
            })
        ));

        // Matching tags pass and reproduce the window bounds.
        let ok = OrderedWindowSampler::for_window(&idx, &lex_window).unwrap();
        assert_eq!(ok.window(), 0..3);
        let ok = WeightedWindowSampler::for_window(&widx, &weighted_window).unwrap();
        assert_eq!(ok.window(), 0..3);

        // Same style, different realized order ⇒ the order check fires.
        let q = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
        let other_order: Vec<Symbol> = ["y", "x", "z"].iter().map(Symbol::new).collect();
        let other = OrderedCqIndex::build(&q, &db, &other_order).unwrap();
        assert!(matches!(
            OrderedWindowSampler::for_window(&other, &lex_window),
            Err(CoreError::MismatchedOrders { .. })
        ));
    }
}
