//! Ordered-window sampling over lexicographic indexes (DESIGN.md §11).
//!
//! [`OrderedCqIndex`] resolves any `ORDER BY`-prefix to a contiguous rank
//! window in O(log n); drawing a uniform rank from that window and serving
//! it with `ordered_access_into` yields a **rejection-free, exactly
//! uniform** sampler over the answers matching the prefix — e.g. "sample
//! among the top-k" or "sample uniformly within one key group" — including
//! over plans the decomposition-complete synthesis built with projection
//! nodes. Attempts are allocation-free like every other sampler here.

use crate::JoinSampler;
use rae_core::{AccessScratch, CqIndex, OrderedCqIndex, Weight};
use rae_data::Value;
use rand::Rng;
use std::ops::Range;

/// A uniform with-replacement sampler over a rank window of an
/// [`OrderedCqIndex`] — every attempt succeeds (no rejections).
///
/// ```
/// use rae_core::{AccessScratch, OrderedCqIndex};
/// use rae_data::{Database, Relation, Schema, Symbol, Value};
/// use rae_sampler::{JoinSampler, OrderedWindowSampler};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut db = Database::new();
/// db.add_relation(
///     "R",
///     Relation::from_rows(
///         Schema::new(["a", "b"]).unwrap(),
///         (0..20).map(|i| vec![Value::Int(i % 4), Value::Int(i)]),
///     )
///     .unwrap(),
/// )
/// .unwrap();
/// let q = "Q(x, y) :- R(x, y)".parse().unwrap();
/// let order = [Symbol::new("x"), Symbol::new("y")];
/// let idx = OrderedCqIndex::build(&q, &db, &order).unwrap();
///
/// // Sample uniformly among the answers with x = 2.
/// let sampler = OrderedWindowSampler::for_prefix(&idx, &[Value::Int(2)]);
/// let mut rng = StdRng::seed_from_u64(9);
/// let mut scratch = AccessScratch::new();
/// let answer = sampler.attempt_into(&mut rng, &mut scratch).unwrap();
/// assert_eq!(answer[0], Value::Int(2));
/// ```
#[derive(Debug)]
pub struct OrderedWindowSampler<'a> {
    index: &'a OrderedCqIndex,
    window: Range<Weight>,
}

impl<'a> OrderedWindowSampler<'a> {
    /// A sampler over the rank window `[range.start, range.end)` of the
    /// requested order (out-of-bounds ends are clamped to `count()`).
    pub fn new(index: &'a OrderedCqIndex, range: Range<Weight>) -> Self {
        let lo = range.start.min(index.count());
        let hi = range.end.min(index.count()).max(lo);
        OrderedWindowSampler {
            index,
            window: lo..hi,
        }
    }

    /// A sampler over every answer matching a prefix of order values
    /// (empty prefix ⇒ the whole answer set).
    pub fn for_prefix(index: &'a OrderedCqIndex, prefix: &[Value]) -> Self {
        Self::new(index, index.range_of_prefix(prefix))
    }

    /// The sampled rank window.
    pub fn window(&self) -> Range<Weight> {
        self.window.clone()
    }

    /// Number of answers in the window.
    pub fn window_len(&self) -> Weight {
        self.window.end - self.window.start
    }
}

impl JoinSampler for OrderedWindowSampler<'_> {
    fn attempt_into<'s, R: Rng>(
        &self,
        rng: &mut R,
        scratch: &'s mut AccessScratch,
    ) -> Option<&'s [Value]> {
        // Chaos site: an injected fault reads as one more rejected attempt,
        // which the rejection samplers already tolerate uniformly.
        rae_faults::fail_point!("sampler/attempt", |_site| None);
        if self.window.is_empty() {
            return None;
        }
        let k = rng.gen_range(self.window.clone());
        self.index.ordered_access_into(k, scratch)
    }

    fn index(&self) -> &CqIndex {
        self.index.index()
    }

    /// Unlike the join samplers, an empty *window* (not an empty query)
    /// also yields `None`.
    fn sample_into<'s, R: Rng>(
        &self,
        rng: &mut R,
        scratch: &'s mut AccessScratch,
    ) -> Option<&'s [Value]> {
        if self.window.is_empty() {
            return None;
        }
        self.attempt_into(rng, scratch)
    }

    fn name(&self) -> &'static str {
        "OW"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_data::{Database, Relation, Schema, Symbol};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            "R",
            Relation::from_rows(
                Schema::new(["a", "b"]).unwrap(),
                (0..6).map(|i| vec![Value::Int(i % 3), Value::Int(i)]),
            )
            .unwrap(),
        )
        .unwrap();
        db.add_relation(
            "S",
            Relation::from_rows(
                Schema::new(["b", "c"]).unwrap(),
                (0..6).flat_map(|i| {
                    (0..(i % 2 + 1)).map(move |j| vec![Value::Int(i), Value::Int(10 * i + j)])
                }),
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn ordered_index(db: &Database) -> OrderedCqIndex {
        let q = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
        let order: Vec<Symbol> = ["x", "y", "z"].iter().map(Symbol::new).collect();
        OrderedCqIndex::build(&q, db, &order).unwrap()
    }

    #[test]
    fn prefix_window_is_uniform_over_matching_answers() {
        let db = db();
        let idx = ordered_index(&db);
        let prefix = [Value::Int(1)];
        let expected: Vec<Vec<Value>> = idx.enumerate_prefix(&prefix).collect();
        assert!(expected.len() >= 2);
        let sampler = OrderedWindowSampler::for_prefix(&idx, &prefix);
        let mut rng = StdRng::seed_from_u64(0xFACE);
        let mut counts: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
        let trials = 3000usize;
        for _ in 0..trials {
            let a = sampler.sample(&mut rng).unwrap();
            assert_eq!(a[0], Value::Int(1), "sampled outside the prefix");
            *counts.entry(a).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), expected.len(), "some window answer missed");
        let freq = trials as f64 / expected.len() as f64;
        for (a, c) in counts {
            let ratio = c as f64 / freq;
            assert!(
                (0.75..=1.25).contains(&ratio),
                "answer {a:?} sampled {c} times (expected ≈{freq:.0})"
            );
        }
    }

    #[test]
    fn empty_window_never_yields() {
        let db = db();
        let idx = ordered_index(&db);
        let sampler = OrderedWindowSampler::for_prefix(&idx, &[Value::Int(999)]);
        assert_eq!(sampler.window_len(), 0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sampler.sample(&mut rng).is_none());
        assert!(sampler.attempt(&mut rng).is_none());
    }

    #[test]
    fn full_window_covers_every_answer() {
        let db = db();
        let idx = ordered_index(&db);
        let sampler = OrderedWindowSampler::new(&idx, 0..Weight::MAX);
        assert_eq!(sampler.window_len(), idx.count());
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen: std::collections::BTreeSet<Vec<Value>> = Default::default();
        for _ in 0..2000 {
            seen.insert(sampler.sample(&mut rng).unwrap());
        }
        assert_eq!(seen.len() as Weight, idx.count());
    }
}
