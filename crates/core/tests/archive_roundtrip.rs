//! Archive round-trip: `to_archive` → `from_archive` must reproduce the
//! exact answer stream, and `from_archive` must refuse tampered archives
//! with a structured `CoreError::InvalidArchive` (never a panic, never a
//! wrong answer).

use rae_core::{CoreError, CqIndex, OrderedCqIndex, OrderedMcUcqIndex};
use rae_data::{Database, Relation, Schema, Symbol, Value};

fn db() -> Database {
    let mut db = Database::new();
    let r = Relation::from_rows(
        Schema::new(["a", "b"]).unwrap(),
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(10)],
            vec![Value::Int(1), Value::Int(20)],
            vec![Value::Int(3), Value::Int(30)],
        ],
    )
    .unwrap();
    let s = Relation::from_rows(
        Schema::new(["b", "c"]).unwrap(),
        vec![
            vec![Value::Int(10), Value::str("x")],
            vec![Value::Int(10), Value::str("y")],
            vec![Value::Int(20), Value::str("x")],
            vec![Value::Int(30), Value::str("z")],
        ],
    )
    .unwrap();
    db.add_relation("R", r).unwrap();
    db.add_relation("S", s).unwrap();
    db
}

#[test]
fn cq_round_trip_preserves_every_answer() {
    let db = db();
    let cq = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let idx = CqIndex::build(&cq, &db).unwrap();
    let restored = CqIndex::from_archive(idx.to_archive()).unwrap();
    assert_eq!(restored.count(), idx.count());
    for j in 0..idx.count() {
        assert_eq!(restored.access(j), idx.access(j));
    }
    // Inverted access over the restored index agrees too.
    for j in 0..idx.count() {
        let answer = idx.access(j).unwrap();
        assert_eq!(restored.inverted_access(&answer), Some(j));
    }
}

#[test]
fn archives_are_deterministic() {
    let db = db();
    let cq = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let idx = CqIndex::build(&cq, &db).unwrap();
    let a = idx.to_archive();
    let b = CqIndex::from_archive(idx.to_archive())
        .unwrap()
        .to_archive();
    assert_eq!(a, b, "archive → load → archive must be a fixed point");
}

#[test]
fn ordered_round_trip_preserves_order_semantics() {
    let db = db();
    let cq = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let order = [Symbol::new("z"), Symbol::new("y"), Symbol::new("x")];
    let idx = OrderedCqIndex::build(&cq, &db, &order).unwrap();
    let restored = OrderedCqIndex::from_archive(idx.to_archive()).unwrap();
    assert_eq!(restored.count(), idx.count());
    assert_eq!(restored.order(), idx.order());
    for k in 0..idx.count() {
        assert_eq!(restored.ordered_access(k), idx.ordered_access(k));
    }
    assert_eq!(
        restored.range_count(&[Value::str("x")]),
        idx.range_count(&[Value::str("x")])
    );
}

#[test]
fn ordered_union_round_trip() {
    let db = db();
    let ucq = "Q(x, y) :- R(x, y) ; Q(x, y) :- S(x, y)".parse().unwrap();
    let order = [Symbol::new("y"), Symbol::new("x")];
    let idx = OrderedMcUcqIndex::build(&ucq, &db, &order).unwrap();
    let restored = OrderedMcUcqIndex::from_archive(idx.to_archive()).unwrap();
    assert_eq!(restored.count(), idx.count());
    for k in 0..idx.count() {
        assert_eq!(restored.ordered_access(k), idx.ordered_access(k));
    }
}

#[test]
fn tampered_weight_is_refused() {
    let db = db();
    let cq = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let idx = CqIndex::build(&cq, &db).unwrap();
    let mut archive = idx.to_archive();
    // Inflate one row weight: the Algorithm 2 invariant (weight = product
    // of child bucket totals) no longer holds.
    let node = archive
        .nodes
        .iter_mut()
        .find(|n| !n.weights.is_empty())
        .unwrap();
    node.weights.to_mut()[0] += 1;
    match CqIndex::from_archive(archive) {
        Err(CoreError::InvalidArchive(detail)) => {
            assert!(detail.contains("weight"), "unexpected detail: {detail}");
        }
        other => panic!("expected InvalidArchive, got {other:?}"),
    }
}

#[test]
fn tampered_parent_pointers_are_refused() {
    let db = db();
    let cq = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let idx = CqIndex::build(&cq, &db).unwrap();

    let mut cyclic = idx.to_archive();
    let n = cyclic.parent.len();
    for p in cyclic.parent.iter_mut() {
        *p = Some(0); // includes a self-loop at node 0
    }
    assert!(matches!(
        CqIndex::from_archive(cyclic),
        Err(CoreError::InvalidArchive(_))
    ));

    let mut out_of_range = idx.to_archive();
    out_of_range.parent[0] = Some(n + 7);
    assert!(matches!(
        CqIndex::from_archive(out_of_range),
        Err(CoreError::InvalidArchive(_))
    ));
}

#[test]
fn tampered_value_ref_is_refused() {
    let db = db();
    let cq = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let idx = CqIndex::build(&cq, &db).unwrap();
    let mut archive = idx.to_archive();
    let table = archive.values.len() as u32;
    let node = archive
        .nodes
        .iter_mut()
        .find(|n| !n.refs.is_empty())
        .unwrap();
    node.refs.to_mut()[0] = table + 3;
    // Surfaces as the data layer's structured out-of-range error, wrapped.
    assert!(CqIndex::from_archive(archive).is_err());
}

#[test]
fn tampered_sort_order_is_refused_for_ordered_layouts() {
    let db = db();
    let cq = "Q(x, y, z) :- R(x, y), S(y, z)".parse().unwrap();
    let order = [Symbol::new("x"), Symbol::new("y"), Symbol::new("z")];
    let idx = OrderedCqIndex::build(&cq, &db, &order).unwrap();
    let mut archive = idx.to_archive();
    // Swap two rows of one node inside a single bucket by rewriting refs;
    // find a node with a bucket of at least two rows first.
    let plain = CqIndex::from_archive(archive.index.clone()).unwrap();
    let mut target = None;
    'outer: for node in 0..plain.node_count() {
        for bucket_id in 0..plain.bucket_count(node) {
            let b = plain.bucket(node, bucket_id as u32);
            if b.end - b.start >= 2 {
                target = Some((node, b.start as usize));
                break 'outer;
            }
        }
    }
    let Some((node, row)) = target else {
        panic!("expected some bucket with two rows");
    };
    let arity = plain.node_relation(node).arity();
    let refs = archive.index.nodes[node].refs.to_mut();
    for c in 0..arity {
        refs.swap(row * arity + c, (row + 1) * arity + c);
    }
    // The swap breaks either the within-bucket sort order or a structural
    // invariant below it — never yields a working index silently.
    assert!(OrderedCqIndex::from_archive(archive).is_err());
}
