//! Property tests for the Elias-Fano startIndex encoding: on random
//! strictly-increasing sequences and random bucket partitions, the
//! succinct layout must answer `at`/`rank_leq` byte-identically to the
//! compact `u64` and wide `u128` layouts — including the wide-`j`
//! overflow boundaries (`j` just above `u64::MAX`) where the compact
//! layout takes its everything-qualifies fallback. Case counts follow
//! `PROPTEST_CASES` like every suite in this workspace.

use proptest::prelude::*;
use rae_core::{Col, EfStarts, Starts, Weight};

/// Builds the global strictly increasing sequence from positive gaps.
fn cumulative(gaps: &[u64]) -> Vec<u64> {
    let mut v = 0u64;
    gaps.iter()
        .map(|&g| {
            v += g;
            v
        })
        .collect()
}

/// Splits `0..n` into bucket ranges at the given cut points (reduced
/// modulo `n + 1`).
fn buckets_from_cuts(n: usize, cuts: &[usize]) -> Vec<(usize, usize)> {
    let mut points: Vec<usize> = cuts.iter().map(|c| c % (n + 1)).collect();
    points.push(0);
    points.push(n);
    points.sort_unstable();
    points.dedup();
    points.windows(2).map(|w| (w[0], w[1])).collect()
}

/// The three layouts over one global sequence, per-bucket: compact and
/// wide store `g[i] − g[bucket_start]`, Elias-Fano stores `g` itself.
fn three_layouts(global: &[u64], buckets: &[(usize, usize)]) -> Option<(Starts, Starts, Starts)> {
    let ef = Starts::EliasFano(EfStarts::encode(global)?);
    let mut rel = vec![0u64; global.len()];
    for &(s, e) in buckets {
        for i in s..e {
            rel[i] = global[i] - global[s];
        }
    }
    let wide = Starts::Wide(Col::Owned(rel.iter().map(|&v| Weight::from(v)).collect()));
    let compact = Starts::Compact(Col::Owned(rel));
    Some((compact, wide, ef))
}

/// Body of `ef_round_trips_and_ranks_match_direct_layouts` (plain
/// function so assertion failures panic through the proptest shim).
fn check_ranks_match(gaps: &[u64], cuts: &[usize], j_small: u128) {
    let global = cumulative(gaps);
    let n = global.len();
    let buckets = buckets_from_cuts(n, cuts);
    let Some((compact, wide, ef)) = three_layouts(&global, &buckets) else {
        // Unprofitable encodings are a legitimate outcome for tiny or
        // sparse inputs; nothing to differentiate.
        return;
    };

    // Point lookups, bucket-relative.
    for &(s, e) in &buckets {
        for i in s..e {
            let expect = compact.at(i, 0);
            assert_eq!(wide.at(i, 0), expect);
            assert_eq!(ef.at(i, s), expect, "row {i} bucket {s}..{e}");
        }
    }

    // Rank queries at generated and adversarial j, per bucket. The
    // >u64::MAX probes hit compact's everything-qualifies fallback; EF
    // compares in u128 and must agree exactly.
    let probes: [u128; 7] = [
        0,
        j_small,
        u128::from(u64::MAX) - 1,
        u128::from(u64::MAX),
        u128::from(u64::MAX) + 1,
        u128::from(u64::MAX) + j_small,
        u128::MAX,
    ];
    for &(s, e) in &buckets {
        for &j in &probes {
            let expect = compact.rank_leq(s, e, j);
            assert_eq!(wide.rank_leq(s, e, j), expect);
            assert_eq!(ef.rank_leq(s, e, j), expect, "bucket {s}..{e} j {j}");
        }
    }
}

/// Body of `ef_parts_round_trip`: dense sequences (gap 1..4) are where EF
/// is chosen in practice; `encode → parts → from_parts` must reproduce
/// the identical structure and full decode.
fn check_parts_round_trip(gaps: &[u64]) {
    let global = cumulative(gaps);
    let Some(ef) = EfStarts::encode(&global) else {
        return;
    };
    assert_eq!(ef.decode_all(), global);
    let (len, low_bits, lower, upper, samples) = ef.parts();
    let re = EfStarts::from_parts(len, low_bits, lower.clone(), upper.clone(), samples.clone());
    assert_eq!(re.as_ref().ok(), Some(&ef));
    for (i, &v) in global.iter().enumerate() {
        assert_eq!(ef.get(i), v);
    }
}

/// Body of `ef_from_parts_never_panics_on_corrupt_words`: structural
/// validation is total — corrupting any single word of the serialized
/// parts either fails `from_parts` or yields a structure whose accessors
/// stay in bounds (no panic, no UB); the checksum layer above is what
/// detects the corruption itself.
fn check_corrupt_words_total(gaps: &[u64], which: usize, bit: u32) {
    let global = cumulative(gaps);
    let Some(ef) = EfStarts::encode(&global) else {
        return;
    };
    let (len, low_bits, lower, upper, samples) = ef.parts();
    let mut lower: Vec<u64> = lower.as_slice().to_vec();
    let mut upper: Vec<u64> = upper.as_slice().to_vec();
    let mut samples: Vec<u64> = samples.as_slice().to_vec();
    let total = lower.len() + upper.len() + samples.len();
    let k = which % total.max(1);
    if k < lower.len() {
        lower[k] ^= 1 << bit;
    } else if k < lower.len() + upper.len() {
        upper[k - lower.len()] ^= 1 << bit;
    } else if !samples.is_empty() {
        samples[k - lower.len() - upper.len()] ^= 1 << bit;
    }
    if let Ok(re) = EfStarts::from_parts(
        len,
        low_bits,
        Col::Owned(lower),
        Col::Owned(upper),
        Col::Owned(samples),
    ) {
        // A lower-bits flip survives structural checks (values are free);
        // every accessor must still be total.
        for i in 0..len {
            let _ = re.get(i);
        }
        let _ = re.rank_leq(0, len, u128::from(u64::MAX) + 1);
        let _ = re.decode_all();
    }
}

proptest! {
    #[test]
    fn ef_round_trips_and_ranks_match_direct_layouts(
        gaps in prop::collection::vec(1u64..64, 1..300),
        cuts in prop::collection::vec(0usize..100_000, 0..8),
        j_small in 0u128..1 << 20,
    ) {
        check_ranks_match(&gaps, &cuts, j_small);
    }

    #[test]
    fn ef_parts_round_trip(gaps in prop::collection::vec(1u64..4, 32..400)) {
        check_parts_round_trip(&gaps);
    }

    #[test]
    fn ef_from_parts_never_panics_on_corrupt_words(
        gaps in prop::collection::vec(1u64..4, 64..200),
        which in 0usize..1_000_000,
        bit in 0u32..64,
    ) {
        check_corrupt_words_total(&gaps, which, bit);
    }
}
