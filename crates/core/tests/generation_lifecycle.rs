//! Index invalidation across dictionary generations: stale detection on
//! every checked entry point, correct rebuilds with **reused scratch**, and
//! differential checks (CqIndex / McUcqIndex / UcqShuffle vs. the naive
//! evaluator) across drop/re-ingest + sweep cycles.
//!
//! Every test may advance the process-wide dictionary generation, so the
//! file serializes behind one mutex (own process; other binaries are
//! unaffected).

use rae_core::{AccessScratch, CoreError, CqIndex, McUcqIndex, UcqShuffle};
use rae_data::{dict, Database, Relation, Schema, Value};
use rae_query::{naive_eval, naive_eval_union, UnionQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard};

fn serialized() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn edge_rel(prefix: &str, edges: &[(i64, i64)]) -> Relation {
    Relation::from_rows(
        Schema::new(["a", "b"]).unwrap(),
        edges.iter().map(|&(u, v)| {
            vec![
                Value::str(format!("{prefix}{u}")),
                Value::str(format!("{prefix}{v}")),
            ]
        }),
    )
    .unwrap()
}

fn two_rel_db(prefix: &str, r: &[(i64, i64)], s: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.add_relation("R", edge_rel(prefix, r)).unwrap();
    db.add_relation("S", edge_rel(prefix, s)).unwrap();
    db
}

const R0: &[(i64, i64)] = &[(1, 10), (2, 10), (3, 11), (4, 12), (5, 12)];
const S0: &[(i64, i64)] = &[(10, 7), (10, 8), (11, 7), (12, 9)];
const R1: &[(i64, i64)] = &[(6, 13), (7, 13), (8, 14)];
const S1: &[(i64, i64)] = &[(13, 5), (14, 5), (14, 6)];

#[test]
fn sweep_invalidates_index_and_rebuild_reuses_scratch() {
    let _guard = serialized();
    let cq = rae_query::parser::parse_cq("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let mut db = two_rel_db("gl-a-", R0, S0);
    let mut scratch = AccessScratch::new();

    let idx = CqIndex::build(&cq, &db).unwrap();
    let built_at = idx.generation();
    let expected = naive_eval(&cq, &db).unwrap();
    assert_eq!(idx.count() as usize, expected.len());
    for j in 0..idx.count() {
        let ans = idx.try_access_into(j, &mut scratch).unwrap().unwrap();
        assert!(expected.contains_row(ans));
    }

    // Drop + re-ingest a fresh cohort, then sweep.
    db.remove_relation("R").unwrap();
    db.remove_relation("S").unwrap();
    db.add_relation("R", edge_rel("gl-a2-", R1)).unwrap();
    db.add_relation("S", edge_rel("gl-a2-", S1)).unwrap();
    let generation = db.advance_generation().unwrap();
    assert!(generation > built_at);

    // Every checked entry point reports stale, with both generations.
    assert!(!idx.is_current());
    match idx.try_access(0) {
        Err(CoreError::StaleGeneration { built, current }) => {
            assert_eq!(built, built_at);
            assert_eq!(current, generation);
        }
        other => panic!("expected StaleGeneration, got {other:?}"),
    }
    assert!(matches!(
        idx.try_access_into(0, &mut scratch),
        Err(CoreError::StaleGeneration { .. })
    ));
    assert!(matches!(
        idx.try_inverted_access(&[]),
        Err(CoreError::StaleGeneration { .. })
    ));

    // Rebuild over the new cohort; the SAME scratch keeps working and the
    // answers match naive evaluation of the new instance.
    let fresh = CqIndex::build(&cq, &db).unwrap();
    assert_eq!(fresh.generation(), generation);
    let expected = naive_eval(&cq, &db).unwrap();
    assert_eq!(fresh.count() as usize, expected.len());
    for j in 0..fresh.count() {
        let borrowed = fresh
            .try_access_into(j, &mut scratch)
            .unwrap()
            .unwrap()
            .to_vec();
        assert!(expected.contains_row(&borrowed));
        assert_eq!(fresh.inverted_access(&borrowed), Some(j));
        assert_eq!(fresh.access(j).unwrap(), borrowed, "scratch vs allocating");
    }
}

#[test]
fn from_parts_refuses_stale_pre_encoded_relations() {
    let _guard = serialized();
    let cq = rae_query::parser::parse_cq("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let db = two_rel_db("gl-b-", R0, S0);
    // A reduced full join carries pre-encoded node relations (this is the
    // path the mc-UCQ builder feeds with intersected relations).
    let fj = rae_yannakakis::reduce_to_full_acyclic(&cq, &db).unwrap();
    // An outside sweep stales those mirrors before the index is built.
    dict::advance_generation(std::iter::empty());
    assert!(matches!(
        CqIndex::from_full_join(fj),
        Err(CoreError::StaleGeneration { .. })
    ));

    // `CqIndex::build`, by contrast, re-encodes values during instantiation
    // and therefore produces a *current* index even from a stale database —
    // stale codes never flow into the lookup tables.
    let idx = CqIndex::build(&cq, &db).unwrap();
    assert!(idx.is_current());
    let expected = naive_eval(&cq, &db).unwrap();
    assert_eq!(idx.count() as usize, expected.len());
}

#[test]
fn mc_ucq_differential_across_generations() {
    let _guard = serialized();
    let mut db = two_rel_db("gl-c-", R0, S0);
    db.derive_selection("R", "R_sel", |row| {
        row[0].as_str().is_some_and(|s| !s.ends_with('2'))
    })
    .unwrap();
    let u: UnionQuery = "Q1(x, y) :- R(x, y). Q2(x, y) :- R_sel(x, y)."
        .parse()
        .unwrap();

    let check = |db: &Database| {
        let mc = McUcqIndex::build(&u, db).unwrap();
        let expected = naive_eval_union(&u, db).unwrap();
        assert_eq!(mc.count() as usize, expected.len());
        let mut got: Vec<Vec<Value>> = mc.enumerate().collect();
        got.sort();
        got.dedup();
        assert_eq!(got.len() as u128, mc.count(), "mc-UCQ emitted duplicates");
        for ans in &got {
            assert!(expected.contains_row(ans));
        }
        // UcqShuffle over the same union: a permutation of the same set.
        let shuffled: Vec<Vec<Value>> = UcqShuffle::build(&u, db, StdRng::seed_from_u64(5))
            .unwrap()
            .collect();
        let mut sorted = shuffled.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), expected.len());
        assert_eq!(shuffled.len(), expected.len());
    };
    check(&db);

    // Drop/re-ingest R with a fresh cohort, refresh the selection, sweep.
    db.remove_relation("R").unwrap();
    db.remove_relation("R_sel").unwrap();
    db.add_relation("R", edge_rel("gl-c2-", R1)).unwrap();
    db.derive_selection("R", "R_sel", |row| {
        row[0].as_str().is_some_and(|s| !s.ends_with('7'))
    })
    .unwrap();
    db.advance_generation().unwrap();
    check(&db);
}

#[test]
fn unchecked_hot_path_is_still_coherent_for_current_indexes() {
    let _guard = serialized();
    // The unchecked methods skip the generation probe; for a current index
    // they must agree with the checked ones (the zero-alloc contract keeps
    // the probe off the steady-state path).
    let cq = rae_query::parser::parse_cq("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
    let mut db = two_rel_db("gl-d-", R0, S0);
    db.advance_generation().unwrap();
    let idx = CqIndex::build(&cq, &db).unwrap();
    let mut scratch = AccessScratch::new();
    for j in 0..idx.count() {
        let checked = idx.try_access(j).unwrap().unwrap();
        let unchecked = idx.access_into(j, &mut scratch).unwrap();
        assert_eq!(checked.as_slice(), unchecked);
    }
}
