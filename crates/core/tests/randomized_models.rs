//! Model-based randomized tests: [`DeletableSet`] against a `BTreeSet`
//! model, and [`LazyShuffle`] permutation properties across sizes.

use proptest::prelude::*;
use rae_core::{DeletableSet, LazyShuffle, Weight};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Operations driven against both the structure and the model.
#[derive(Debug, Clone)]
enum Op {
    Delete(Weight),
    Contains(Weight),
    Sample(u64),
}

fn ops_strategy(universe: Weight) -> impl Strategy<Value = Vec<Op>> {
    let u = universe.max(1) as u64;
    prop::collection::vec(
        prop_oneof![
            (0..u * 2).prop_map(|v| Op::Delete(v as Weight)),
            (0..u * 2).prop_map(|v| Op::Contains(v as Weight)),
            any::<u64>().prop_map(Op::Sample),
        ],
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn deletable_set_matches_btreeset_model(
        universe in 0u128..40,
        ops in ops_strategy(40),
    ) {
        let mut sut = DeletableSet::new(universe);
        let mut model: BTreeSet<Weight> = (0..universe).collect();
        for op in ops {
            match op {
                Op::Delete(v) => {
                    let expected = model.remove(&v);
                    prop_assert_eq!(sut.delete(v), expected, "delete({})", v);
                }
                Op::Contains(v) => {
                    prop_assert_eq!(sut.contains(v), model.contains(&v), "contains({})", v);
                }
                Op::Sample(seed) => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    match sut.sample(&mut rng) {
                        None => prop_assert!(model.is_empty(), "sample() = None on non-empty set"),
                        Some(v) => prop_assert!(
                            model.contains(&v),
                            "sampled deleted/out-of-range value {}", v
                        ),
                    }
                }
            }
            prop_assert_eq!(sut.remaining() as usize, model.len());
        }
    }

    #[test]
    fn lazy_shuffle_is_always_a_permutation(n in 0u128..300, seed in any::<u64>()) {
        let shuffle = LazyShuffle::new(n, StdRng::seed_from_u64(seed));
        let mut seen: Vec<Weight> = shuffle.collect();
        prop_assert_eq!(seen.len() as Weight, n);
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len() as Weight, n, "duplicates in permutation");
        if n > 0 {
            prop_assert_eq!(*seen.first().unwrap(), 0);
            prop_assert_eq!(*seen.last().unwrap(), n - 1);
        }
    }

    #[test]
    fn delete_all_then_empty(universe in 1u128..30, seed in any::<u64>()) {
        let mut sut = DeletableSet::new(universe);
        // Delete in a shuffled order to exercise the swap bookkeeping.
        let order: Vec<Weight> =
            LazyShuffle::new(universe, StdRng::seed_from_u64(seed)).collect();
        for (i, v) in order.iter().enumerate() {
            prop_assert!(sut.delete(*v));
            prop_assert_eq!(sut.remaining(), universe - i as Weight - 1);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(sut.sample(&mut rng), None);
        // Every index reports deleted.
        for v in 0..universe {
            prop_assert!(!sut.contains(v));
        }
    }
}
