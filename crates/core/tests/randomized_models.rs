//! Model-based randomized tests: [`DeletableSet`] against a `BTreeSet`
//! model, [`LazyShuffle`] permutation properties across sizes, and the
//! zero-allocation access paths (`access_into`, `inverted_access_of`,
//! `CqSequential::next_ref`) against their allocating counterparts over
//! randomized acyclic instances.

use proptest::prelude::*;
use rae_core::{AccessScratch, CqIndex, DeletableSet, LazyShuffle, Weight};
use rae_data::{Database, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Operations driven against both the structure and the model.
#[derive(Debug, Clone)]
enum Op {
    Delete(Weight),
    Contains(Weight),
    Sample(u64),
}

fn ops_strategy(universe: Weight) -> impl Strategy<Value = Vec<Op>> {
    let u = universe.max(1) as u64;
    prop::collection::vec(
        prop_oneof![
            (0..u * 2).prop_map(|v| Op::Delete(v as Weight)),
            (0..u * 2).prop_map(|v| Op::Contains(v as Weight)),
            any::<u64>().prop_map(Op::Sample),
        ],
        0..60,
    )
}

type Edges = Vec<(i64, i64)>;

fn edge_relation(edges: &Edges) -> Relation {
    Relation::from_rows(
        Schema::new(["a", "b"]).unwrap(),
        edges
            .iter()
            .map(|&(u, v)| vec![Value::Int(u), Value::Int(v)]),
    )
    .unwrap()
}

fn db_from(r: &Edges, s: &Edges) -> Database {
    let mut db = Database::new();
    db.add_relation("R", edge_relation(r)).unwrap();
    db.add_relation("S", edge_relation(s)).unwrap();
    db
}

/// Free-connex shapes of varying head arity and tree depth, so one scratch
/// is reused across differently-shaped queries inside each case.
fn shape_portfolio(db: &Database) -> Vec<CqIndex> {
    [
        "Q(x, y, z) :- R(x, y), S(y, z)",
        "Q(x, y) :- R(x, y), S(y, z)",
        "Q(x) :- R(x, y)",
        "Q(x, y, u, v) :- R(x, y), S(u, v)",
        "Q(x, y, z) :- R(x, y), R(y, z)",
    ]
    .iter()
    .map(|text| {
        let cq = rae_query::parser::parse_cq(text).unwrap();
        CqIndex::build(&cq, db).unwrap()
    })
    .collect()
}

fn edges_strategy() -> impl Strategy<Value = Edges> {
    prop::collection::vec((0..5i64, 0..5i64), 0..15)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn deletable_set_matches_btreeset_model(
        universe in 0u128..40,
        ops in ops_strategy(40),
    ) {
        let mut sut = DeletableSet::new(universe);
        let mut model: BTreeSet<Weight> = (0..universe).collect();
        for op in ops {
            match op {
                Op::Delete(v) => {
                    let expected = model.remove(&v);
                    prop_assert_eq!(sut.delete(v), expected, "delete({})", v);
                }
                Op::Contains(v) => {
                    prop_assert_eq!(sut.contains(v), model.contains(&v), "contains({})", v);
                }
                Op::Sample(seed) => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    match sut.sample(&mut rng) {
                        None => prop_assert!(model.is_empty(), "sample() = None on non-empty set"),
                        Some(v) => prop_assert!(
                            model.contains(&v),
                            "sampled deleted/out-of-range value {}", v
                        ),
                    }
                }
            }
            prop_assert_eq!(sut.remaining() as usize, model.len());
        }
    }

    #[test]
    fn lazy_shuffle_is_always_a_permutation(n in 0u128..300, seed in any::<u64>()) {
        let shuffle = LazyShuffle::new(n, StdRng::seed_from_u64(seed));
        let mut seen: Vec<Weight> = shuffle.collect();
        prop_assert_eq!(seen.len() as Weight, n);
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len() as Weight, n, "duplicates in permutation");
        if n > 0 {
            prop_assert_eq!(*seen.first().unwrap(), 0);
            prop_assert_eq!(*seen.last().unwrap(), n - 1);
        }
    }

    #[test]
    fn access_into_matches_allocating_access(
        r in edges_strategy(),
        s in edges_strategy(),
    ) {
        let db = db_from(&r, &s);
        // ONE scratch deliberately shared across every index and position:
        // reuse across differently-shaped queries must never leak state.
        let mut scratch = AccessScratch::new();
        for idx in shape_portfolio(&db) {
            for j in 0..idx.count() {
                let allocating = idx.access(j).expect("j < count");
                let borrowed = idx.access_into(j, &mut scratch).expect("j < count");
                prop_assert_eq!(
                    allocating.as_slice(), borrowed,
                    "access mismatch at {}", j
                );
            }
            prop_assert!(idx.access_into(idx.count(), &mut scratch).is_none());
        }
    }

    #[test]
    fn inverted_access_of_matches_allocating_inverted_access(
        r in edges_strategy(),
        s in edges_strategy(),
    ) {
        let db = db_from(&r, &s);
        let mut scratch = AccessScratch::new();
        for idx in shape_portfolio(&db) {
            for j in 0..idx.count() {
                let answer = idx.access(j).expect("j < count");
                prop_assert_eq!(idx.inverted_access(&answer), Some(j));
                prop_assert_eq!(idx.inverted_access_of(&answer, &mut scratch), Some(j));
            }
            // Non-answers (including never-interned values) are rejected.
            let bogus = vec![Value::Int(-999_999); idx.arity()];
            prop_assert_eq!(
                idx.inverted_access_of(&bogus, &mut scratch),
                idx.inverted_access(&bogus)
            );
        }
    }

    #[test]
    fn sequential_next_ref_matches_iterator(
        r in edges_strategy(),
        s in edges_strategy(),
    ) {
        let db = db_from(&r, &s);
        for idx in shape_portfolio(&db) {
            let via_iter: Vec<Vec<Value>> = idx.sequential().collect();
            let mut via_ref: Vec<Vec<Value>> = Vec::new();
            let mut cursor = idx.sequential();
            while let Some(answer) = cursor.next_ref() {
                via_ref.push(answer.to_vec());
            }
            prop_assert_eq!(&via_iter, &via_ref);
            prop_assert_eq!(via_iter.len() as Weight, idx.count());
        }
    }

    #[test]
    fn delete_all_then_empty(universe in 1u128..30, seed in any::<u64>()) {
        let mut sut = DeletableSet::new(universe);
        // Delete in a shuffled order to exercise the swap bookkeeping.
        let order: Vec<Weight> =
            LazyShuffle::new(universe, StdRng::seed_from_u64(seed)).collect();
        for (i, v) in order.iter().enumerate() {
            prop_assert!(sut.delete(*v));
            prop_assert_eq!(sut.remaining(), universe - i as Weight - 1);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(sut.sample(&mut rng), None);
        // Every index reports deleted.
        for v in 0..universe {
            prop_assert!(!sut.contains(v));
        }
    }
}
