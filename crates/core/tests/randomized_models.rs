//! Model-based randomized tests: [`DeletableSet`] against a `BTreeSet`
//! model, [`LazyShuffle`] permutation properties across sizes, the
//! zero-allocation access paths (`access_into`, `inverted_access_of`,
//! `CqSequential::next_ref`) against their allocating counterparts over
//! randomized acyclic instances, and differential checks of `CqIndex` /
//! `McUcqIndex` / `UcqShuffle` against the naive evaluator across relation
//! drop/re-ingest cycles.
//!
//! Nothing here advances the dictionary generation (drop/re-ingest without
//! a sweep only grows the dictionary), so these tests are safe to run in
//! parallel; sweep-crossing differentials live in the serialized
//! `generation_lifecycle` suite.

use proptest::prelude::*;
use rae_core::{AccessScratch, CqIndex, DeletableSet, LazyShuffle, McUcqIndex, UcqShuffle, Weight};
use rae_data::{Database, Relation, Schema, Value};
use rae_query::{naive_eval, naive_eval_union, UnionQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Operations driven against both the structure and the model.
#[derive(Debug, Clone)]
enum Op {
    Delete(Weight),
    Contains(Weight),
    Sample(u64),
}

fn ops_strategy(universe: Weight) -> impl Strategy<Value = Vec<Op>> {
    let u = universe.max(1) as u64;
    prop::collection::vec(
        prop_oneof![
            (0..u * 2).prop_map(|v| Op::Delete(v as Weight)),
            (0..u * 2).prop_map(|v| Op::Contains(v as Weight)),
            any::<u64>().prop_map(Op::Sample),
        ],
        0..60,
    )
}

type Edges = Vec<(i64, i64)>;

fn edge_relation(edges: &Edges) -> Relation {
    Relation::from_rows(
        Schema::new(["a", "b"]).unwrap(),
        edges
            .iter()
            .map(|&(u, v)| vec![Value::Int(u), Value::Int(v)]),
    )
    .unwrap()
}

fn db_from(r: &Edges, s: &Edges) -> Database {
    let mut db = Database::new();
    db.add_relation("R", edge_relation(r)).unwrap();
    db.add_relation("S", edge_relation(s)).unwrap();
    db
}

/// Free-connex shapes of varying head arity and tree depth, so one scratch
/// is reused across differently-shaped queries inside each case.
fn shape_portfolio(db: &Database) -> Vec<CqIndex> {
    [
        "Q(x, y, z) :- R(x, y), S(y, z)",
        "Q(x, y) :- R(x, y), S(y, z)",
        "Q(x) :- R(x, y)",
        "Q(x, y, u, v) :- R(x, y), S(u, v)",
        "Q(x, y, z) :- R(x, y), R(y, z)",
    ]
    .iter()
    .map(|text| {
        let cq = rae_query::parser::parse_cq(text).unwrap();
        CqIndex::build(&cq, db).unwrap()
    })
    .collect()
}

fn edges_strategy() -> impl Strategy<Value = Edges> {
    prop::collection::vec((0..5i64, 0..5i64), 0..15)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn deletable_set_matches_btreeset_model(
        universe in 0u128..40,
        ops in ops_strategy(40),
    ) {
        let mut sut = DeletableSet::new(universe);
        let mut model: BTreeSet<Weight> = (0..universe).collect();
        for op in ops {
            match op {
                Op::Delete(v) => {
                    let expected = model.remove(&v);
                    prop_assert_eq!(sut.delete(v), expected, "delete({})", v);
                }
                Op::Contains(v) => {
                    prop_assert_eq!(sut.contains(v), model.contains(&v), "contains({})", v);
                }
                Op::Sample(seed) => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    match sut.sample(&mut rng) {
                        None => prop_assert!(model.is_empty(), "sample() = None on non-empty set"),
                        Some(v) => prop_assert!(
                            model.contains(&v),
                            "sampled deleted/out-of-range value {}", v
                        ),
                    }
                }
            }
            prop_assert_eq!(sut.remaining() as usize, model.len());
        }
    }

    #[test]
    fn lazy_shuffle_is_always_a_permutation(n in 0u128..300, seed in any::<u64>()) {
        let shuffle = LazyShuffle::new(n, StdRng::seed_from_u64(seed));
        let mut seen: Vec<Weight> = shuffle.collect();
        prop_assert_eq!(seen.len() as Weight, n);
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len() as Weight, n, "duplicates in permutation");
        if n > 0 {
            prop_assert_eq!(*seen.first().unwrap(), 0);
            prop_assert_eq!(*seen.last().unwrap(), n - 1);
        }
    }

    #[test]
    fn access_into_matches_allocating_access(
        r in edges_strategy(),
        s in edges_strategy(),
    ) {
        let db = db_from(&r, &s);
        // ONE scratch deliberately shared across every index and position:
        // reuse across differently-shaped queries must never leak state.
        let mut scratch = AccessScratch::new();
        for idx in shape_portfolio(&db) {
            for j in 0..idx.count() {
                let allocating = idx.access(j).expect("j < count");
                let borrowed = idx.access_into(j, &mut scratch).expect("j < count");
                prop_assert_eq!(
                    allocating.as_slice(), borrowed,
                    "access mismatch at {}", j
                );
            }
            prop_assert!(idx.access_into(idx.count(), &mut scratch).is_none());
        }
    }

    #[test]
    fn inverted_access_of_matches_allocating_inverted_access(
        r in edges_strategy(),
        s in edges_strategy(),
    ) {
        let db = db_from(&r, &s);
        let mut scratch = AccessScratch::new();
        for idx in shape_portfolio(&db) {
            for j in 0..idx.count() {
                let answer = idx.access(j).expect("j < count");
                prop_assert_eq!(idx.inverted_access(&answer), Some(j));
                prop_assert_eq!(idx.inverted_access_of(&answer, &mut scratch), Some(j));
            }
            // Non-answers (including never-interned values) are rejected.
            let bogus = vec![Value::Int(-999_999); idx.arity()];
            prop_assert_eq!(
                idx.inverted_access_of(&bogus, &mut scratch),
                idx.inverted_access(&bogus)
            );
        }
    }

    #[test]
    fn sequential_next_ref_matches_iterator(
        r in edges_strategy(),
        s in edges_strategy(),
    ) {
        let db = db_from(&r, &s);
        for idx in shape_portfolio(&db) {
            let via_iter: Vec<Vec<Value>> = idx.sequential().collect();
            let mut via_ref: Vec<Vec<Value>> = Vec::new();
            let mut cursor = idx.sequential();
            while let Some(answer) = cursor.next_ref() {
                via_ref.push(answer.to_vec());
            }
            prop_assert_eq!(&via_iter, &via_ref);
            prop_assert_eq!(via_iter.len() as Weight, idx.count());
        }
    }

    #[test]
    fn drop_reingest_differential_vs_naive(
        r1 in edges_strategy(),
        s1 in edges_strategy(),
        r2 in edges_strategy(),
        s2 in edges_strategy(),
    ) {
        // One database living through a drop/re-ingest cycle; the full
        // portfolio of index shapes must agree with the naive evaluator in
        // BOTH phases, and scratch state must carry over soundly.
        let mut db = db_from(&r1, &s1);
        let mut scratch = AccessScratch::new();
        for phase in 0..2 {
            for text in [
                "Q(x, y, z) :- R(x, y), S(y, z)",
                "Q(x, y) :- R(x, y), S(y, z)",
                "Q(x) :- R(x, y)",
            ] {
                let cq = rae_query::parser::parse_cq(text).unwrap();
                let idx = CqIndex::build(&cq, &db).unwrap();
                let expected = naive_eval(&cq, &db).unwrap();
                prop_assert_eq!(
                    idx.count() as usize, expected.len(),
                    "phase {}: count mismatch", phase
                );
                for j in 0..idx.count() {
                    let ans = idx.access_into(j, &mut scratch).expect("j < count").to_vec();
                    prop_assert!(
                        expected.contains_row(&ans),
                        "phase {}: access({}) not a naive answer", phase, j
                    );
                    prop_assert_eq!(
                        idx.inverted_access_of(&ans, &mut scratch), Some(j),
                        "phase {}: inverted access mismatch at {}", phase, j
                    );
                }
            }

            // mc-UCQ + UcqShuffle over an overlapping union vs. naive.
            let u: UnionQuery = "Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y)."
                .parse()
                .unwrap();
            let expected = naive_eval_union(&u, &db).unwrap();
            let mc = McUcqIndex::build(&u, &db).unwrap();
            prop_assert_eq!(mc.count() as usize, expected.len(), "phase {}", phase);
            let mut got: Vec<Vec<Value>> = mc.enumerate().collect();
            got.sort();
            got.dedup();
            prop_assert_eq!(got.len(), expected.len(), "phase {}: mc-UCQ duplicates", phase);
            for ans in &got {
                prop_assert!(expected.contains_row(ans), "phase {}", phase);
            }
            let shuffled: Vec<Vec<Value>> =
                UcqShuffle::build(&u, &db, StdRng::seed_from_u64(17)).unwrap().collect();
            let mut sorted = shuffled;
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), expected.len(), "phase {}: UcqShuffle set", phase);

            // Drop both relations and re-ingest the second cohort (no
            // sweep: append-only growth keeps parallel tests safe).
            db.remove_relation("R").unwrap();
            db.remove_relation("S").unwrap();
            db.add_relation("R", edge_relation(&r2)).unwrap();
            db.add_relation("S", edge_relation(&s2)).unwrap();
        }
    }

    #[test]
    fn delete_all_then_empty(universe in 1u128..30, seed in any::<u64>()) {
        let mut sut = DeletableSet::new(universe);
        // Delete in a shuffled order to exercise the swap bookkeeping.
        let order: Vec<Weight> =
            LazyShuffle::new(universe, StdRng::seed_from_u64(seed)).collect();
        for (i, v) in order.iter().enumerate() {
            prop_assert!(sut.delete(*v));
            prop_assert_eq!(sut.remaining(), universe - i as Weight - 1);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(sut.sample(&mut rng), None);
        // Every index reports deleted.
        for v in 0..universe {
            prop_assert!(!sut.contains(v));
        }
    }
}
