//! Ordered random access for **general** unions of free-connex CQs
//! (DESIGN.md §11) — no shared-template (mc-UCQ) restriction.
//!
//! [`crate::OrderedMcUcqIndex`] answers union ranks by inclusion–exclusion
//! over materialized *intersection indexes*, which only exist when every
//! disjunct reduces to one join-tree template. [`RankedUcq`] drops that
//! requirement: each disjunct gets its own [`OrderedCqIndex`] (possibly a
//! completely different synthesized layout — only the realized variable
//! order must agree), and the union rank of any tuple is corrected for
//! duplicates by per-member *ownership*: an answer shared by several
//! members is owned by (counted at) the least member containing it.
//!
//! For member `i`, preprocessing materializes the sorted list of its
//! **non-owned positions** — ranks of answers that also occur in some
//! member `j < i`. The number of *owned* answers among member `i`'s first
//! `p` positions is then `p − |{non-owned < p}|` (one binary search), and
//! every union-rank question becomes a sum over members:
//!
//! * `lt_∪(t) = Σᵢ owned_before_i(ltᵢ(t))` — the distinct-union rank of `t`
//!   (each `ltᵢ` is an O(log n) rank descent, [`OrderedCqIndex::prefix_bounds`]);
//! * [`RankedUcq::ordered_access`]`(k)` binary-searches each member's
//!   positions for the first answer whose union `le`-rank exceeds `k` and
//!   takes the order-minimum candidate — O(m² log² n);
//! * [`RankedUcq::ordered_inverted_access`] and
//!   [`RankedUcq::range_count`] are single sweeps of rank descents.
//!
//! Non-owned positions are discovered by a pairwise *leapfrog* walk over
//! the ordered indexes: both cursors jump via rank descents, so a pair
//! costs O((|Qᵢ(D) ∩ Qⱼ(D)| + alternations) · log n) — it never enumerates
//! the non-overlapping bulk of either member. Worst case (two members with
//! a huge intersection) this is output-sensitive rather than linear in
//! `|D|`. That worst case is **cost-capped**: the walk counts its steps,
//! and once they exceed the point where a plain linear merge of the two
//! constant-delay member enumerations is cheaper (each leapfrog step costs
//! O(log n) rank descents; the merge costs O(1) per answer), discovery
//! restarts as that merge (`merge_matches`) — so per-pair preprocessing
//! is `O(min((matches + alternations)·log n, nᵢ + nⱼ))`, never worse than
//! linear in the member outputs. The mc-UCQ structure remains the
//! guaranteed-near-linear option for shared-template unions, and the two
//! agree answer-for-answer (`tests/ordered_access.rs`).
//!
//! **Shared-template switch.** Even the merge bound approaches output-size
//! preprocessing when members are near-identical (the ROADMAP carried
//! item). [`RankedUcq::build`] therefore estimates both costs after the
//! member builds: when every disjunct reduced to one join-tree shape and
//! the pairwise-intersection bound `Σ_{i<j} min(nᵢ, nⱼ)` exceeds the
//! mc-UCQ's extra-index bound `(2^m − 1 − m)·max nᵢ`, it builds an
//! [`OrderedMcUcqIndex`] over the same order and serves union ranks from
//! its inclusion–exclusion structure instead of pairwise discovery
//! ([`RankedUcq::uses_shared_backend`]). Rank-by-rank agreement between
//! the two backends is asserted in the union differential suite.

// Sanctioned panics: each `expect` names a rank-structure invariant (members are built over
// the same order, so windows and cursors stay in bounds); violation is a bug.
#![allow(clippy::expect_used)]

use crate::error::CoreError;
use crate::mcucq::{OrderedMcUcqIndex, MAX_DISJUNCTS};
use crate::ordered::{OrderedCqIndex, OrderedEnumeration};
use crate::renum_ucq::{ensure_shared_layout, OrderedUnionEnumeration};
use crate::scratch::AccessScratch;
use crate::weight::Weight;
use crate::Result;
use rae_data::{Database, Symbol, Value};
use rae_faults::{degrade, Budget};
use rae_query::{QueryError, UnionQuery};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::Arc;

/// Ordered random access, rank lookup, and range counting over a general
/// union of free-connex CQs, duplicates counted once.
///
/// ```
/// use rae_core::RankedUcq;
/// use rae_data::{Database, Relation, Schema, Symbol, Value};
///
/// let mut db = Database::new();
/// let rel = |rows: &[[i64; 2]]| {
///     Relation::from_rows(
///         Schema::new(["a", "b"]).unwrap(),
///         rows.iter().map(|r| r.iter().map(|&v| Value::Int(v)).collect()),
///     )
///     .unwrap()
/// };
/// db.add_relation("R", rel(&[[1, 1], [2, 2]])).unwrap();
/// db.add_relation("S", rel(&[[2, 2], [3, 3]])).unwrap();
/// let u = "Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y)."
///     .parse()
///     .unwrap();
/// let order = [Symbol::new("x"), Symbol::new("y")];
/// let ranked = RankedUcq::build(&u, &db, &order).unwrap();
///
/// // (2,2) is shared: the distinct union has 3 answers, ranked by x.
/// assert_eq!(ranked.count(), 3);
/// assert_eq!(
///     ranked.ordered_access(1).unwrap(),
///     vec![Value::Int(2), Value::Int(2)]
/// );
/// assert_eq!(
///     ranked.ordered_inverted_access(&[Value::Int(3), Value::Int(3)]),
///     Some(2)
/// );
/// assert_eq!(ranked.range_count(&[Value::Int(2)]).unwrap(), 1);
/// ```
#[derive(Debug)]
pub struct RankedUcq {
    /// Members are `Arc`-shared so a large base index can participate in
    /// many union structures (the serving layer republishes base ⊎ delta on
    /// every write batch) without being copied or rebuilt.
    members: Vec<Arc<OrderedCqIndex>>,
    /// Per member: sorted ranks of answers owned by an earlier member.
    non_owned: Vec<Vec<Weight>>,
    /// Order-significant head positions (shared by all members).
    cmp_positions: Vec<usize>,
    /// `|Q_1(D) ∪ … ∪ Q_m(D)|`.
    total: Weight,
    /// The shared-template inclusion–exclusion backend, when the cost
    /// model chose it over pairwise duplicate discovery (see the module
    /// docs). `None` on every `from_members` path: pre-built members carry
    /// no query to re-plan from.
    shared: Option<OrderedMcUcqIndex>,
}

/// Reusable buffers for [`RankedUcq`]'s allocation-free accessors: three
/// [`AccessScratch`]es (candidate probes, best-candidate re-access, and the
/// returned answer), sized on first use.
#[derive(Debug, Default)]
pub struct RankedScratch {
    probe: AccessScratch,
    best: AccessScratch,
    out: AccessScratch,
}

impl RankedUcq {
    /// Builds one ordered index per disjunct, all realizing `order`, and
    /// discovers cross-member duplicates.
    ///
    /// Fails like [`OrderedCqIndex::build`] when any disjunct is outside
    /// the tractable class or cannot realize the order, and with
    /// [`rae_query::QueryError::EmptyUnion`] on an empty union.
    pub fn build(ucq: &UnionQuery, db: &Database, order: &[Symbol]) -> Result<Self> {
        Self::build_budgeted(ucq, db, order, &Budget::unlimited())
    }

    /// [`RankedUcq::build`] under a resource [`Budget`]: member builds check
    /// it at their phase boundaries ([`OrderedCqIndex::build_budgeted`]) and
    /// the pairwise duplicate discovery checks it per pair and per merge
    /// chunk. The leapfrog cost cap is always on — a budget is only needed
    /// to bound wall-clock/memory, not to close the output-sensitivity
    /// worst case.
    pub fn build_budgeted(
        ucq: &UnionQuery,
        db: &Database,
        order: &[Symbol],
        budget: &Budget<'_>,
    ) -> Result<Self> {
        let members = ucq
            .disjuncts()
            .iter()
            .map(|d| {
                OrderedCqIndex::build_budgeted(d, db, order, crate::BuildOptions::default(), budget)
            })
            .collect::<Result<Vec<_>>>()?;
        if shared_backend_pays_off(&members) {
            if let Ok(mc) =
                OrderedMcUcqIndex::build_with(ucq, db, order, crate::BuildOptions::default())
            {
                let members: Vec<Arc<OrderedCqIndex>> = members.into_iter().map(Arc::new).collect();
                let cmp_positions = ensure_shared_layout(members.iter().map(Arc::as_ref))?;
                let total = mc.count();
                return Ok(RankedUcq {
                    non_owned: vec![Vec::new(); members.len()],
                    members,
                    cmp_positions,
                    total,
                    shared: Some(mc),
                });
            }
            // The shape check is a heuristic over realized plans; if the
            // mc-UCQ builder still refuses the union (template subtleties,
            // capacity), pairwise discovery below handles it.
        }
        Self::from_members_budgeted(members, budget)
    }

    /// Builds the union rank structure over pre-built member indexes.
    ///
    /// Errors with [`CoreError::MismatchedOrders`] unless all members share
    /// one head layout and realized order.
    pub fn from_members(members: Vec<OrderedCqIndex>) -> Result<Self> {
        Self::from_members_budgeted(members, &Budget::unlimited())
    }

    /// [`RankedUcq::from_members`] under a resource [`Budget`].
    pub fn from_members_budgeted(
        members: Vec<OrderedCqIndex>,
        budget: &Budget<'_>,
    ) -> Result<Self> {
        Self::from_shared_members_budgeted(members.into_iter().map(Arc::new).collect(), budget)
    }

    /// [`RankedUcq::from_members`] over `Arc`-shared member indexes: members
    /// already owned elsewhere (e.g. a serving snapshot's base index) join
    /// the union without a copy.
    pub fn from_shared_members(members: Vec<Arc<OrderedCqIndex>>) -> Result<Self> {
        Self::from_shared_members_budgeted(members, &Budget::unlimited())
    }

    /// [`RankedUcq::from_shared_members`] under a resource [`Budget`].
    pub fn from_shared_members_budgeted(
        members: Vec<Arc<OrderedCqIndex>>,
        budget: &Budget<'_>,
    ) -> Result<Self> {
        // Catch boundary for the duplicate-discovery phase (the member
        // builds carry their own); a panic here surfaces as `BuildPanicked`.
        crate::error::catch_build("RankedUcq::from_members", move || {
            if members.is_empty() {
                return Err(CoreError::Query(QueryError::EmptyUnion));
            }
            let cmp_positions = ensure_shared_layout(members.iter().map(Arc::as_ref))?;
            // Guard the union's rank space before the (possibly expensive)
            // duplicate discovery: every union rank sum below is bounded by
            // Σ member counts, so checking that one sum here makes extreme
            // synthetic cardinalities fail fast and structured instead of
            // wrapping inside a rank query.
            let over = || crate::error::rank_overflow("union rank sums");
            members.iter().try_fold(0 as Weight, |acc, m| {
                acc.checked_add(m.count()).ok_or_else(over)
            })?;
            let non_owned = discover_non_owned(&members, &cmp_positions, budget)?;
            let total = members
                .iter()
                .zip(&non_owned)
                .map(|(m, d)| m.count() - d.len() as Weight)
                .sum();
            Ok(RankedUcq {
                members,
                non_owned,
                cmp_positions,
                total,
                shared: None,
            })
        })
    }

    /// The per-disjunct ordered indexes (shared handles; deref to
    /// [`OrderedCqIndex`]).
    pub fn members(&self) -> &[Arc<OrderedCqIndex>] {
        &self.members
    }

    /// The head attributes, in answer-tuple order.
    pub fn head(&self) -> &[Symbol] {
        self.members[0].head()
    }

    /// The realized lexicographic variable order.
    pub fn order(&self) -> &[Symbol] {
        self.members[0].order()
    }

    /// `|Q_1(D) ∪ … ∪ Q_m(D)|` (duplicates counted once) — O(1).
    pub fn count(&self) -> Weight {
        self.total
    }

    /// Whether union ranks are served by the shared-template
    /// inclusion–exclusion backend instead of pairwise ownership (chosen by
    /// the build-time cost model; see the module docs).
    pub fn uses_shared_backend(&self) -> bool {
        self.shared.is_some()
    }

    /// Answers among member `i`'s first `p` positions that member `i` owns.
    #[inline]
    fn owned_before(&self, i: usize, p: Weight) -> Weight {
        p - self.non_owned[i].partition_point(|&x| x < p) as Weight
    }

    /// The union's `(lt, le)` ranks of a full tuple (head order).
    fn tuple_union_bounds(&self, tuple: &[Value]) -> Result<(Weight, Weight)> {
        if let Some(mc) = &self.shared {
            return mc.tuple_union_bounds(tuple);
        }
        let over = || crate::error::rank_overflow("union rank sums");
        let (mut lt, mut le) = (0 as Weight, 0 as Weight);
        for (i, m) in self.members.iter().enumerate() {
            let (l, e) = m.tuple_bounds(tuple)?;
            lt = lt.checked_add(self.owned_before(i, l)).ok_or_else(over)?;
            le = le.checked_add(self.owned_before(i, e)).ok_or_else(over)?;
        }
        Ok((lt, le))
    }

    /// The `(lt, le)` union ranks bracketing a prefix of order values:
    /// distinct union answers strictly below / below-or-matching the
    /// prefix. O(m log n), allocation-free.
    ///
    /// # Panics
    /// When `prefix` is longer than the arity.
    pub fn prefix_bounds(&self, prefix: &[Value]) -> Result<(Weight, Weight)> {
        if let Some(mc) = &self.shared {
            let r = mc.range_of_prefix(prefix)?;
            return Ok((r.start, r.end));
        }
        let over = || crate::error::rank_overflow("union rank sums");
        let (mut lt, mut le) = (0 as Weight, 0 as Weight);
        for (i, m) in self.members.iter().enumerate() {
            let (l, e) = m.prefix_bounds(prefix)?;
            lt = lt.checked_add(self.owned_before(i, l)).ok_or_else(over)?;
            le = le.checked_add(self.owned_before(i, e)).ok_or_else(over)?;
        }
        Ok((lt, le))
    }

    /// The number of distinct union answers matching a prefix of order
    /// values — O(m log n), nothing enumerated.
    pub fn range_count(&self, prefix: &[Value]) -> Result<Weight> {
        let (lt, le) = self.prefix_bounds(prefix)?;
        Ok(le - lt)
    }

    /// The contiguous union-rank range of all answers matching a prefix of
    /// order values.
    pub fn range_of_prefix(&self, prefix: &[Value]) -> Result<Range<Weight>> {
        let (lt, le) = self.prefix_bounds(prefix)?;
        Ok(lt..le)
    }

    /// The `k`-th distinct union answer under the order, or `None` when
    /// `k ≥ count()` — O(m² log² n).
    pub fn ordered_access(&self, k: Weight) -> Option<Vec<Value>> {
        let mut scratch = RankedScratch::default();
        self.ordered_access_into(k, &mut scratch)
            .map(<[Value]>::to_vec)
    }

    /// Allocation-free [`RankedUcq::ordered_access`]: writes into `scratch`
    /// and returns a borrow.
    pub fn ordered_access_into<'s>(
        &self,
        k: Weight,
        scratch: &'s mut RankedScratch,
    ) -> Option<&'s [Value]> {
        if k >= self.total {
            return None;
        }
        if let Some(mc) = &self.shared {
            // The inclusion–exclusion backend materializes its own answer
            // buffer; copy it into the caller's scratch so both backends
            // expose the one borrow-based signature. This path allocates the
            // candidate vector internally — the cost model only picks the
            // backend when pairwise discovery would be far more expensive.
            let ans = mc.ordered_access(k)?;
            scratch.out.reset_answer(ans.len());
            scratch.out.answer_mut().clone_from_slice(&ans);
            return Some(scratch.out.answer());
        }
        // Per member: the first position whose answer's union le-rank
        // exceeds k (the union rank is monotone along the member's order).
        // The owner of the k-th union answer lands exactly on it; every
        // other member's candidate compares ≥, so the order-minimum
        // candidate is the answer.
        let mut best: Option<(usize, Weight)> = None;
        for (i, member) in self.members.iter().enumerate() {
            let count = member.count();
            let (mut lo, mut hi) = (0 as Weight, count);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let ans = member
                    .ordered_access_into(mid, &mut scratch.probe)
                    .expect("mid < count");
                // Build-checked: Σ member counts fits the rank space and
                // bounds every union sum, so the checked arithmetic cannot
                // trip on a successfully built structure.
                let (_, le) = self.tuple_union_bounds(ans).ok()?;
                if le > k {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            if lo == count {
                continue; // every answer of this member ranks ≤ k
            }
            best = match best {
                None => Some((i, lo)),
                Some((bi, bp)) => {
                    let cand = member
                        .ordered_access_into(lo, &mut scratch.probe)
                        .expect("lo < count");
                    let cur = self.members[bi]
                        .ordered_access_into(bp, &mut scratch.best)
                        .expect("recorded candidate in range");
                    if self.order_cmp(cand, cur) == Ordering::Less {
                        Some((i, lo))
                    } else {
                        Some((bi, bp))
                    }
                }
            };
        }
        let (bi, bp) = best.expect("k < count guarantees an owner member");
        self.members[bi].ordered_access_into(bp, &mut scratch.out)
    }

    /// The rank of `answer` (head order) among the distinct union answers,
    /// or `None` when no member contains it — O(m log n), allocation-free.
    pub fn ordered_inverted_access(&self, answer: &[Value]) -> Option<Weight> {
        if answer.len() != self.head().len() {
            return None;
        }
        if let Some(mc) = &self.shared {
            return mc.ordered_inverted_access(answer);
        }
        // Membership falls out of the same rank descents: a member contains
        // the tuple iff its (lt, le) bracket is non-empty. The checked sums
        // are build-guarded (Σ member counts fits the rank space); a trip
        // would mean a corrupted structure and degrades to "not found".
        let (mut lt, mut contained) = (0 as Weight, false);
        for (i, m) in self.members.iter().enumerate() {
            let (l, e) = m.tuple_bounds(answer).ok()?;
            contained |= e > l;
            lt = lt.checked_add(self.owned_before(i, l))?;
        }
        contained.then_some(lt)
    }

    /// Compares two answers (head order) by the shared lexicographic order.
    pub fn order_cmp(&self, a: &[Value], b: &[Value]) -> Ordering {
        for &p in &self.cmp_positions {
            match a[p].cmp(&b[p]) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// A constant-delay ordered scan of the whole distinct union (the
    /// k-way member merge).
    pub fn enumerate(&self) -> OrderedUnionEnumeration<'_> {
        OrderedUnionEnumeration::from_members(self.members.iter().map(Arc::as_ref))
            .expect("members share one layout by construction")
    }

    /// A duplicate-eliminating scan over a union-rank window
    /// `[range.start, range.end)` (out-of-bounds ends are clamped): each
    /// member is seeked past the answers below the window in O(log n), so
    /// skipped pages are never paid for.
    pub fn range(&self, range: Range<Weight>) -> RankedUnionWindow<'_> {
        let lo = range.start.min(self.total);
        let hi = range.end.min(self.total).max(lo);
        if lo == hi {
            let merge = OrderedUnionEnumeration::from_windows(
                self.members
                    .iter()
                    .map(|m| (m.as_ref(), m.range(0..0)))
                    .collect(),
            )
            .expect("members share one layout by construction");
            return RankedUnionWindow {
                merge,
                remaining: 0,
            };
        }
        let mut scratch = RankedScratch::default();
        let first = self
            .ordered_access_into(lo, &mut scratch)
            .expect("lo < count");
        let windows: Vec<(&OrderedCqIndex, OrderedEnumeration<'_>)> = self
            .members
            .iter()
            .map(|m| {
                let (lt, _) = m
                    .tuple_bounds(first)
                    .expect("rank sums bounded by build-checked member counts");
                (m.as_ref(), m.range(lt..m.count()))
            })
            .collect();
        let merge =
            OrderedUnionEnumeration::from_windows(windows).expect("layout checked at build");
        RankedUnionWindow {
            merge,
            remaining: hi - lo,
        }
    }

    /// A duplicate-eliminating scan of every union answer matching a prefix
    /// of order values, in order.
    pub fn enumerate_prefix(&self, prefix: &[Value]) -> Result<RankedUnionWindow<'_>> {
        Ok(self.range(self.range_of_prefix(prefix)?))
    }
}

/// A bounded window over a [`RankedUcq`]'s duplicate-eliminating merge
/// (see [`RankedUcq::range`]).
#[derive(Debug)]
pub struct RankedUnionWindow<'a> {
    merge: OrderedUnionEnumeration<'a>,
    remaining: Weight,
}

impl RankedUnionWindow<'_> {
    /// Distinct answers left in the window.
    pub fn remaining(&self) -> Weight {
        self.remaining
    }

    /// The next distinct union answer as a borrow of the merge buffer
    /// (zero-allocation), or `None` when the window is exhausted.
    pub fn next_ref(&mut self) -> Option<&[Value]> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.merge.next_ref()
    }
}

impl Iterator for RankedUnionWindow<'_> {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        self.next_ref().map(<[Value]>::to_vec)
    }
}

/// Cost model for the shared-template switch (module docs): pairwise
/// duplicate discovery costs up to `Σ_{i<j} min(nᵢ, nⱼ)` merge steps
/// (near-identical members hit that bound), while the mc-UCQ backend builds
/// `2^m − 1 − m` extra intersection indexes of at most `max nᵢ` rows each.
/// Switch only when every member realized the same join-tree shape and the
/// discovery bound covers the backend's extra build work; the constant
/// floor keeps tiny unions on the simpler, budget-aware discovery path.
fn shared_backend_pays_off(members: &[OrderedCqIndex]) -> bool {
    let m = members.len();
    if !(2..=MAX_DISJUNCTS).contains(&m) {
        return false;
    }
    let plan = members[0].index().plan();
    if !members[1..]
        .iter()
        .all(|x| x.index().plan().same_shape(plan))
    {
        return false;
    }
    let mut pairwise: Weight = 0;
    for i in 0..m {
        for j in (i + 1)..m {
            pairwise = pairwise.saturating_add(members[i].count().min(members[j].count()));
        }
    }
    let cmax = members.iter().map(OrderedCqIndex::count).max().unwrap_or(0);
    let extra = (((1 as Weight) << m) - 1 - m as Weight).saturating_mul(cmax);
    pairwise >= extra.max(1024)
}

/// Per member: sorted ranks of answers also contained in an earlier member
/// (the non-owned positions). Member 0 owns everything it contains.
///
/// Each pair is first walked by the cost-capped leapfrog; if the cap trips
/// (or the `"ranked/leapfrog"` failpoint fires), the pair is redone by the
/// linear [`merge_matches`], so a pair never costs more than
/// `O(nᵢ + nⱼ)` regardless of the intersection shape. The `BTreeSet`
/// absorbs any positions the aborted leapfrog already found — they are all
/// genuine matches, so the merge simply completes the set.
fn discover_non_owned(
    members: &[Arc<OrderedCqIndex>],
    cmp_positions: &[usize],
    budget: &Budget<'_>,
) -> Result<Vec<Vec<Weight>>> {
    let mut scratch = AccessScratch::new();
    let mut out: Vec<Vec<Weight>> = Vec::with_capacity(members.len());
    out.push(Vec::new());
    for j in 1..members.len() {
        let mut dupes: BTreeSet<Weight> = BTreeSet::new();
        for i in 0..j {
            budget.check("ranked/leapfrog")?;
            let (a, b) = (members[i].as_ref(), members[j].as_ref());
            let capped = rae_faults::eval_error("ranked/leapfrog")
                || !leapfrog_matches(a, b, &mut dupes, &mut scratch, step_cap(a, b));
            if capped {
                degrade::record("ranked/leapfrog");
                merge_matches(a, b, cmp_positions, &mut dupes, budget)?;
            }
        }
        out.push(dupes.into_iter().collect());
    }
    Ok(out)
}

/// Leapfrog step allowance for a member pair. Each leapfrog step performs
/// O(log n) rank descents where a merge step costs O(1), so once the walk
/// has taken more than ~an eighth of the merge's step count the merge is
/// the cheaper algorithm; the constant floor keeps tiny members from
/// degrading on noise.
fn step_cap(a: &OrderedCqIndex, b: &OrderedCqIndex) -> u64 {
    let n = (a.count() + b.count()) as u64;
    n / 8 + 64
}

/// Inserts into `out` the positions in `b` of every answer shared with `a`,
/// by a leapfrog walk: each side's cursor jumps over the other's gaps with
/// one O(log n) rank descent, so runs of non-overlapping answers cost one
/// step instead of one step per answer.
///
/// Returns `false` when the walk exceeds `cap` steps (adversarial overlap
/// shapes make leapfrog output-sensitive); the caller then falls back to
/// the linear [`merge_matches`]. Positions already inserted stay valid.
fn leapfrog_matches(
    a: &OrderedCqIndex,
    b: &OrderedCqIndex,
    out: &mut BTreeSet<Weight>,
    scratch: &mut AccessScratch,
    cap: u64,
) -> bool {
    let (na, nb) = (a.count(), b.count());
    let (mut pa, mut pb) = (0 as Weight, 0 as Weight);
    let mut steps = 0u64;
    while pa < na && pb < nb {
        steps += 1;
        if steps > cap {
            return false;
        }
        let Some(ta) = a.ordered_access_into(pa, scratch) else {
            unreachable!("pa < member count");
        };
        let (lt_b, le_b) = b
            .tuple_bounds(ta)
            .expect("rank descents over a built member stay in rank space");
        if le_b > lt_b {
            // ta ∈ b at position lt_b; continue after it on both sides.
            out.insert(lt_b);
            pa += 1;
            pb = le_b;
        } else {
            if lt_b >= nb {
                break; // every remaining b-answer is below ta
            }
            // b's next candidate is its first answer above ta; jump a past
            // everything below it. tb > ta guarantees progress (lt_a > pa).
            let Some(tb) = b.ordered_access_into(lt_b, scratch) else {
                unreachable!("lt_b < member count");
            };
            let (lt_a, _) = a
                .tuple_bounds(tb)
                .expect("rank descents over a built member stay in rank space");
            pa = lt_a;
            pb = lt_b;
        }
    }
    true
}

/// Linear fallback for [`leapfrog_matches`]: a dual-cursor merge over the
/// two members' constant-delay ordered enumerations, inserting into `out`
/// the `b`-positions of every shared answer. Exactly `O(na + nb)` steps —
/// the graceful-degradation bound when leapfrog's output sensitivity makes
/// it the slower algorithm. The budget is probed once per 1024 steps.
fn merge_matches(
    a: &OrderedCqIndex,
    b: &OrderedCqIndex,
    cmp_positions: &[usize],
    out: &mut BTreeSet<Weight>,
    budget: &Budget<'_>,
) -> Result<()> {
    let cmp_at = |x: &[Value], y: &[Value]| -> Ordering {
        for &p in cmp_positions {
            match x[p].cmp(&y[p]) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    };
    let mut ea = a.range(0..a.count());
    let mut eb = b.range(0..b.count());
    // The enumerations lend their cursor buffer, so each side keeps its own
    // reusable copy of the current tuple.
    let mut ta: Vec<Value> = Vec::new();
    let mut tb: Vec<Value> = Vec::new();
    let next_into = |e: &mut OrderedEnumeration<'_>, buf: &mut Vec<Value>| -> bool {
        match e.next_ref() {
            Some(t) => {
                buf.clear();
                buf.extend_from_slice(t);
                true
            }
            None => false,
        }
    };
    let mut have_a = next_into(&mut ea, &mut ta);
    let mut have_b = next_into(&mut eb, &mut tb);
    let mut pb: Weight = 0;
    let mut steps = 0u64;
    while have_a && have_b {
        if steps.is_multiple_of(1024) {
            budget.check("ranked/merge")?;
        }
        steps += 1;
        match cmp_at(&ta, &tb) {
            Ordering::Less => {
                have_a = next_into(&mut ea, &mut ta);
            }
            Ordering::Greater => {
                have_b = next_into(&mut eb, &mut tb);
                pb += 1;
            }
            Ordering::Equal => {
                out.insert(pb);
                have_a = next_into(&mut ea, &mut ta);
                have_b = next_into(&mut eb, &mut tb);
                pb += 1;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use rae_data::{Relation, Schema};

    /// A mixed-template union: Q1 reduces to the single bag {x,y}, Q2 to
    /// the cross-product forest {x}, {y} — no shared template, so the
    /// mc-UCQ structure refuses it while RankedUcq serves it.
    fn mixed_db() -> Database {
        let mut db = Database::new();
        add(
            &mut db,
            "R",
            rel_int(&["a", "b"], &[&[1, 1], &[1, 2], &[2, 1], &[3, 3]]),
        );
        add(&mut db, "S", rel_int(&["a"], &[&[1], &[2]]));
        add(&mut db, "T", rel_int(&["a"], &[&[1], &[3]]));
        db
    }

    fn mixed_union() -> UnionQuery {
        ucq("Q1(x, y) :- R(x, y). Q2(x, y) :- S(x), T(y).")
    }

    fn sorted_union(u: &UnionQuery, db: &Database, order: &[&str]) -> Vec<Vec<Value>> {
        let expected = naive_union(u, db);
        let head = u.head().to_vec();
        let positions: Vec<usize> = order
            .iter()
            .map(|v| head.iter().position(|h| h.as_str() == *v).unwrap())
            .collect();
        let mut rows: Vec<Vec<Value>> = expected.rows().map(<[Value]>::to_vec).collect();
        rows.sort_by(|a, b| {
            positions
                .iter()
                .map(|&p| a[p].cmp(&b[p]))
                .find(|o| *o != Ordering::Equal)
                .unwrap_or(Ordering::Equal)
        });
        rows
    }

    fn check_ranked(u: &UnionQuery, db: &Database, order: &[&str]) {
        let syms: Vec<Symbol> = order.iter().map(Symbol::new).collect();
        let ranked = RankedUcq::build(u, db, &syms).unwrap();
        let expected = sorted_union(u, db, order);
        assert_eq!(ranked.count() as usize, expected.len(), "count");
        for (k, row) in expected.iter().enumerate() {
            assert_eq!(
                ranked.ordered_access(k as Weight).as_ref(),
                Some(row),
                "rank {k} under {order:?}"
            );
            assert_eq!(
                ranked.ordered_inverted_access(row),
                Some(k as Weight),
                "inverted rank {k}"
            );
        }
        assert!(ranked.ordered_access(ranked.count()).is_none());
        let merged: Vec<Vec<Value>> = ranked.enumerate().collect();
        assert_eq!(merged, expected, "merge vs ranks");
    }

    #[test]
    fn mixed_template_union_matches_naive_sorted() {
        let db = mixed_db();
        let u = mixed_union();
        check_ranked(&u, &db, &["x", "y"]);
        check_ranked(&u, &db, &["y", "x"]);
        // The same union is refused by the mc-UCQ template builder.
        let syms: Vec<Symbol> = ["x", "y"].iter().map(Symbol::new).collect();
        assert!(matches!(
            crate::OrderedMcUcqIndex::build(&u, &db, &syms),
            Err(CoreError::IncompatibleTemplates { .. })
        ));
    }

    #[test]
    fn range_count_matches_naive_filter() {
        let db = mixed_db();
        let u = mixed_union();
        let syms: Vec<Symbol> = ["y", "x"].iter().map(Symbol::new).collect();
        let ranked = RankedUcq::build(&u, &db, &syms).unwrap();
        let all = sorted_union(&u, &db, &["y", "x"]);
        let head_of = |p: usize| ranked.members()[0].order_to_head()[p];
        for answer in &all {
            for plen in 0..=2 {
                let prefix: Vec<Value> = (0..plen).map(|p| answer[head_of(p)].clone()).collect();
                let expected = all
                    .iter()
                    .filter(|r| (0..plen).all(|p| r[head_of(p)] == prefix[p]))
                    .count() as Weight;
                assert_eq!(
                    ranked.range_count(&prefix).unwrap(),
                    expected,
                    "prefix {prefix:?}"
                );
                let window: Vec<Vec<Value>> = ranked.enumerate_prefix(&prefix).unwrap().collect();
                assert_eq!(window.len() as Weight, expected);
            }
        }
        assert_eq!(ranked.range_count(&[Value::Int(999)]).unwrap(), 0);
        assert_eq!(ranked.range_count(&[]).unwrap(), ranked.count());
    }

    #[test]
    fn range_windows_paginate_consistently() {
        let db = mixed_db();
        let u = mixed_union();
        let syms: Vec<Symbol> = ["x", "y"].iter().map(Symbol::new).collect();
        let ranked = RankedUcq::build(&u, &db, &syms).unwrap();
        let all: Vec<Vec<Value>> = ranked.enumerate().collect();
        for window in [1 as Weight, 2, 3] {
            let mut paged: Vec<Vec<Value>> = Vec::new();
            let mut at: Weight = 0;
            while at < ranked.count() {
                paged.extend(ranked.range(at..at + window));
                at += window;
            }
            assert_eq!(paged, all, "window {window}");
        }
        assert_eq!(ranked.range(ranked.count()..Weight::MAX).count(), 0);
    }

    #[test]
    fn identical_members_count_once() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a"], &[&[1], &[2], &[3]]));
        add(&mut db, "S", rel_int(&["a"], &[&[1], &[2], &[3]]));
        let u = ucq("Q1(x) :- R(x). Q2(x) :- S(x).");
        check_ranked(&u, &db, &["x"]);
        let syms = [Symbol::new("x")];
        let ranked = RankedUcq::build(&u, &db, &syms).unwrap();
        assert_eq!(ranked.count(), 3);
    }

    #[test]
    fn three_member_mixed_union() {
        let mut db = mixed_db();
        add(
            &mut db,
            "U",
            rel_int(&["a", "b"], &[&[1, 2], &[9, 9], &[2, 1]]),
        );
        let u = ucq("Q1(x, y) :- R(x, y). Q2(x, y) :- S(x), T(y). Q3(x, y) :- U(x, y).");
        check_ranked(&u, &db, &["x", "y"]);
        check_ranked(&u, &db, &["y", "x"]);
    }

    #[test]
    fn empty_union_and_empty_members() {
        assert!(matches!(
            RankedUcq::from_members(Vec::new()),
            Err(CoreError::Query(QueryError::EmptyUnion))
        ));
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a"], &[]));
        add(&mut db, "S", rel_int(&["a"], &[&[7]]));
        let u = ucq("Q1(x) :- R(x). Q2(x) :- S(x).");
        let syms = [Symbol::new("x")];
        let ranked = RankedUcq::build(&u, &db, &syms).unwrap();
        assert_eq!(ranked.count(), 1);
        assert_eq!(ranked.ordered_access(0).unwrap(), vec![Value::Int(7)]);
        assert!(ranked.ordered_access(1).is_none());
    }

    #[test]
    fn mismatched_member_layouts_are_rejected() {
        let db = mixed_db();
        let q_xy = cq("Q(x, y) :- R(x, y)");
        let xy: Vec<Symbol> = ["x", "y"].iter().map(Symbol::new).collect();
        let yx: Vec<Symbol> = ["y", "x"].iter().map(Symbol::new).collect();
        let a = OrderedCqIndex::build(&q_xy, &db, &xy).unwrap();
        let b = OrderedCqIndex::build(&q_xy, &db, &yx).unwrap();
        assert!(matches!(
            RankedUcq::from_members(vec![a, b]),
            Err(CoreError::MismatchedOrders { .. })
        ));
    }

    #[test]
    fn wrong_arity_inverted_access_is_none() {
        let db = mixed_db();
        let u = mixed_union();
        let syms: Vec<Symbol> = ["x", "y"].iter().map(Symbol::new).collect();
        let ranked = RankedUcq::build(&u, &db, &syms).unwrap();
        assert_eq!(ranked.ordered_inverted_access(&[Value::Int(1)]), None);
        assert_eq!(
            ranked.ordered_inverted_access(&[Value::Int(777), Value::Int(0)]),
            None
        );
    }

    /// The linear merge fallback must find exactly the duplicate positions
    /// the leapfrog walk finds — including when the leapfrog is aborted
    /// mid-way by a tiny step cap and the merge completes a partial set.
    #[test]
    fn merge_fallback_agrees_with_leapfrog() {
        let mut db = Database::new();
        // Heavy overlap (the leapfrog's worst case): R and S share most rows.
        let shared: Vec<Vec<i64>> = (0..200).map(|i| vec![i, i % 7]).collect();
        let mut r_rows = shared.clone();
        r_rows.push(vec![500, 0]);
        let mut s_rows = shared;
        s_rows.extend([vec![600, 1], vec![601, 2]]);
        let to_rel = |rows: &[Vec<i64>]| {
            Relation::from_rows(
                Schema::new(["a", "b"]).unwrap(),
                rows.iter()
                    .map(|r| r.iter().map(|&v| Value::Int(v)).collect()),
            )
            .unwrap()
        };
        add(&mut db, "R", to_rel(&r_rows));
        add(&mut db, "S", to_rel(&s_rows));
        let u = ucq("Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y).");
        let syms: Vec<Symbol> = ["x", "y"].iter().map(Symbol::new).collect();
        let members: Vec<OrderedCqIndex> = u
            .disjuncts()
            .iter()
            .map(|d| OrderedCqIndex::build(d, &db, &syms).unwrap())
            .collect();
        let cmp_positions = ensure_shared_layout(members.iter()).unwrap();
        let (a, b) = (&members[0], &members[1]);
        let mut scratch = AccessScratch::new();

        let mut by_leapfrog = BTreeSet::new();
        assert!(leapfrog_matches(
            a,
            b,
            &mut by_leapfrog,
            &mut scratch,
            u64::MAX
        ));

        let mut by_merge = BTreeSet::new();
        merge_matches(a, b, &cmp_positions, &mut by_merge, &Budget::unlimited()).unwrap();
        assert_eq!(by_leapfrog, by_merge);
        assert_eq!(by_merge.len(), 200);

        // Abort the leapfrog after 3 steps, then let the merge complete the
        // partial set — the end state must be identical.
        let mut completed = BTreeSet::new();
        assert!(!leapfrog_matches(a, b, &mut completed, &mut scratch, 3));
        merge_matches(a, b, &cmp_positions, &mut completed, &Budget::unlimited()).unwrap();
        assert_eq!(completed, by_merge);

        // And the capped full build still answers correctly end to end.
        check_ranked(&u, &db, &["x", "y"]);
    }

    /// A cancelled budget surfaces as a structured `BudgetExceeded` from the
    /// budgeted build, not a panic or a wrong answer.
    #[test]
    fn cancelled_budget_stops_ranked_build() {
        use std::sync::atomic::AtomicBool;
        let db = mixed_db();
        let u = mixed_union();
        let syms: Vec<Symbol> = ["x", "y"].iter().map(Symbol::new).collect();
        let cancel = AtomicBool::new(true);
        let budget = Budget::unlimited().with_cancel(&cancel);
        match RankedUcq::build_budgeted(&u, &db, &syms, &budget) {
            Err(CoreError::BudgetExceeded(b)) => {
                assert!(rae_faults::Transient::is_transient(&b));
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }
}
