//! [`AccessScratch`]: the reusable buffer bundle behind the zero-allocation
//! answer-production paths.
//!
//! Every per-answer buffer the engine needs — the answer tuple itself, the
//! iterative descent stack of [`CqIndex::access_into`], mixed-radix digit
//! vectors, code-gather buffers for inverted access, and the row picks of
//! the rejection samplers — lives here. A scratch is created once (cheap:
//! all buffers start empty), threaded through any number of `*_into` calls,
//! and reused across queries of different shapes: buffers are resized, never
//! reallocated once they have grown to the high-water mark.
//!
//! Steady state (after the first call per shape), `access_into`,
//! `inverted_access_of`, and every sampler `attempt_into` perform **zero
//! heap allocations** — verified by `tests/zero_alloc.rs` with a counting
//! global allocator.
//!
//! [`CqIndex::access_into`]: crate::CqIndex::access_into

use crate::weight::Weight;
use rae_data::{Value, ValueCode};

/// Reusable buffers for the allocation-free access, inverted-access, and
/// sampling paths.
///
/// The sampler crate reaches the buffers it needs through the public
/// methods; the descent internals stay crate-private.
#[derive(Debug, Default, Clone)]
pub struct AccessScratch {
    /// The answer tuple being assembled (head order).
    pub(crate) answer: Vec<Value>,
    /// Iterative-descent work stack: `(node, bucket id, sub-index)`.
    pub(crate) stack: Vec<(u32, u32, Weight)>,
    /// Digit buffer for splitting an index across the plan roots.
    pub(crate) digits: Vec<Weight>,
    /// Gather buffer for bucket/tuple key codes.
    pub(crate) key_codes: Vec<ValueCode>,
    /// Dictionary codes of a probed answer, one per head position.
    pub(crate) answer_codes: Vec<ValueCode>,
    /// Per-node digit accumulator for inverted access.
    pub(crate) node_digits: Vec<Weight>,
    /// Row-id buffer for samplers that draw one row per node.
    pub(crate) row_ids: Vec<u32>,
}

impl AccessScratch {
    /// Creates an empty scratch (no buffers allocated yet).
    pub fn new() -> Self {
        AccessScratch::default()
    }

    /// The most recently produced answer, in head-attribute order.
    ///
    /// Valid after a successful `access_into` / `attempt_into`-style call;
    /// the content is overwritten by the next one.
    #[inline]
    pub fn answer(&self) -> &[Value] {
        &self.answer
    }

    /// Sizes the answer buffer to `arity` values, reusing its capacity.
    ///
    /// When the buffer already has the right length its contents are left in
    /// place: every producer overwrites all `arity` positions before
    /// returning a borrow, so clearing would only add a drop-and-refill pass
    /// per answer.
    #[inline]
    pub fn reset_answer(&mut self, arity: usize) {
        if self.answer.len() != arity {
            self.answer.clear();
            self.answer.resize(arity, Value::Int(0));
        }
    }

    /// Mutable view of the (already sized) answer buffer, for writers like
    /// [`crate::CqIndex::write_row_values`].
    #[inline]
    pub fn answer_mut(&mut self) -> &mut [Value] {
        &mut self.answer
    }

    /// A reusable `u32` row-id buffer (used by samplers drawing one row per
    /// join-tree node).
    #[inline]
    pub fn row_ids(&mut self) -> &mut Vec<u32> {
        &mut self.row_ids
    }

    /// Split borrow: the row-id buffer (shared) together with the answer
    /// buffer (mutable), for writers that materialize an answer from
    /// previously drawn rows.
    #[inline]
    pub fn rows_and_answer(&mut self) -> (&[u32], &mut [Value]) {
        (&self.row_ids, &mut self.answer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_answer_sizes_and_reuses_capacity() {
        let mut s = AccessScratch::new();
        s.reset_answer(3);
        assert_eq!(s.answer(), &[Value::Int(0), Value::Int(0), Value::Int(0)]);
        s.answer_mut()[1] = Value::Int(7);
        let cap = s.answer.capacity();
        s.reset_answer(2);
        assert_eq!(s.answer(), &[Value::Int(0), Value::Int(0)]);
        assert_eq!(s.answer.capacity(), cap, "capacity must be retained");
    }

    #[test]
    fn row_ids_buffer_is_reusable() {
        let mut s = AccessScratch::new();
        s.row_ids().extend([1, 2, 3]);
        s.row_ids().clear();
        assert!(s.row_ids().is_empty());
        assert!(s.row_ids.capacity() >= 3);
    }
}
