#![deny(missing_docs)]
// Panicking extractors are banned in library code. The few sanctioned
// `expect`s document structural invariants (see the per-module allows);
// everything else must surface a structured, retryable `CoreError`.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # rae-core
//!
//! The algorithms of *"Answering (Unions of) Conjunctive Queries using
//! Random Access and Random-Order Enumeration"* (Carmeli, Zeevi, Berkholz,
//! Kimelfeld, Schweikardt — PODS 2020):
//!
//! | Paper | Here |
//! |---|---|
//! | Algorithm 1 (lazy Fisher–Yates) | [`LazyShuffle`] |
//! | Algorithm 2 (preprocessing: buckets, weights, startIndex) | [`CqIndex::build`] |
//! | Algorithm 3 (random access) | [`CqIndex::access`] |
//! | Algorithm 4 (inverted access) | [`CqIndex::inverted_access`] |
//! | Theorem 3.7 (access + count ⇒ random permutation) | [`CqIndex::random_permutation`] / [`CqShuffle`] |
//! | Lemma 5.3 (sample/test/delete/count sets) | [`DeletableSet`] |
//! | Algorithm 5 (REnum(UCQ)) | [`UcqShuffle`] |
//! | Algorithms 6–8 + Theorem 5.5 (mc-UCQ random access) | [`McUcqIndex`] / [`McUcqShuffle`] |
//!
//! The entry points are [`CqIndex::build`] for a single free-connex CQ,
//! [`UcqShuffle::build`] for random-order enumeration of any union of
//! free-connex CQs, and [`McUcqIndex::build`] for random access over
//! mutually-compatible unions (shared-template UCQs).

pub mod archive;
pub mod budgeted;
pub mod column;
pub mod delset;
pub mod ef;
pub mod enumerate;
pub mod error;
pub mod index;
pub mod mcucq;
pub mod ordered;
pub mod ranked_ucq;
pub mod renum_cq;
pub mod renum_ucq;
pub mod scratch;
pub mod shuffle;
pub mod weight;
pub mod weighted;

#[cfg(test)]
pub(crate) mod testutil;

pub use archive::{
    Buckets, CqIndexArchive, NodeArchive, OrderedCqIndexArchive, OrderedMcUcqArchive, Starts,
};
pub use budgeted::{Budgeted, ProbeCadence};
pub use column::{AlignedBytes, Col, ColumnError, Pod, StableBytes};
pub use delset::DeletableSet;
pub use ef::EfStarts;
pub use enumerate::CqSequential;
pub use error::CoreError;
pub use index::{BucketView, BuildOptions, CqIndex, BUILD_THREADS_ENV};
pub use mcucq::{McUcqIndex, McUcqShuffle, OrderedMcUcqIndex, RankStrategy};
pub use ordered::{OrderedCqIndex, OrderedEnumeration};
pub use rae_data::SortAlgorithm;
pub use ranked_ucq::{RankedScratch, RankedUcq, RankedUnionWindow};
pub use renum_cq::CqShuffle;
pub use renum_ucq::{OrderedUcq, OrderedUnionEnumeration, UcqEvent, UcqShuffle};
pub use scratch::AccessScratch;
pub use shuffle::LazyShuffle;
pub use weight::{combine_index, split_index, Weight};
pub use weighted::{OrderStyle, RankWindow, WeightedCqIndex};

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
