//! Shared test fixtures: the parse/build/ingest chains every test module
//! otherwise repeats inline. Panics on malformed fixtures — test input is
//! trusted, and a loud failure beats threading `Result` through fixtures.

use rae_data::{Database, Relation, Schema, Symbol, Value};
use rae_query::{ConjunctiveQuery, UnionQuery};

use crate::{CqIndex, Weight};

/// Parses a conjunctive query fixture.
pub(crate) fn cq(text: &str) -> ConjunctiveQuery {
    rae_query::parser::parse_cq(text).expect("test CQ parses")
}

/// Parses a union-of-CQs fixture.
pub(crate) fn ucq(text: &str) -> UnionQuery {
    rae_query::parser::parse_ucq(text).expect("test UCQ parses")
}

/// Interns the given variable names.
pub(crate) fn syms(vs: &[&str]) -> Vec<Symbol> {
    vs.iter().map(Symbol::new).collect()
}

/// Builds a relation from explicit rows of already-constructed values.
pub(crate) fn rel(attrs: &[&str], rows: impl IntoIterator<Item = Vec<Value>>) -> Relation {
    let schema = Schema::new(attrs.iter().copied()).expect("test schema is well formed");
    Relation::from_rows(schema, rows).expect("test rows match the schema")
}

/// Builds a relation of string constants.
pub(crate) fn rel_str(attrs: &[&str], rows: &[&[&str]]) -> Relation {
    rel(
        attrs,
        rows.iter()
            .map(|r| r.iter().map(|&v| Value::str(v)).collect()),
    )
}

/// Builds a relation of integer constants.
pub(crate) fn rel_int(attrs: &[&str], rows: &[&[i64]]) -> Relation {
    rel(
        attrs,
        rows.iter()
            .map(|r| r.iter().map(|&v| Value::Int(v)).collect()),
    )
}

/// Assembles a database from named relations.
pub(crate) fn db_of(rels: impl IntoIterator<Item = (&'static str, Relation)>) -> Database {
    let mut db = Database::new();
    for (name, r) in rels {
        db.add_relation(name, r).expect("test relation ingests");
    }
    db
}

/// Adds one more relation to an existing test database.
pub(crate) fn add(db: &mut Database, name: &str, r: Relation) {
    db.add_relation(name, r).expect("test relation ingests");
}

/// Builds the random-access index for a query fixture.
pub(crate) fn built(q: &ConjunctiveQuery, db: &Database) -> CqIndex {
    CqIndex::build(q, db).expect("test index builds")
}

/// In-bounds `access(j)`.
pub(crate) fn at(idx: &CqIndex, j: Weight) -> Vec<Value> {
    idx.access(j).expect("test access position is in bounds")
}

/// Fault-free reference answers for a CQ fixture.
pub(crate) fn naive(q: &ConjunctiveQuery, db: &Database) -> Relation {
    rae_query::naive_eval(q, db).expect("naive evaluation of a test fixture succeeds")
}

/// Fault-free reference answers for a UCQ fixture.
pub(crate) fn naive_union(u: &UnionQuery, db: &Database) -> Relation {
    rae_query::naive_eval_union(u, db).expect("naive evaluation of a test fixture succeeds")
}
