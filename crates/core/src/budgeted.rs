//! Budget enforcement for long enumerations and shuffles.
//!
//! Preprocessing checks its [`Budget`] at phase
//! boundaries, but an enumeration or random-permutation scan can run for
//! `|Q(D)|` steps with no natural boundary. [`Budgeted`] wraps any such
//! iterator and probes the budget once every [`CHECK_INTERVAL`] items: the
//! stream yields `Ok(item)` until a breach, then exactly one
//! `Err(CoreError::BudgetExceeded)` and fuses. The amortized probe keeps
//! the constant-delay guarantee intact — a check is two atomic/clock reads
//! every 64 answers.
//!
//! ```
//! use rae_core::{Budgeted, CoreError};
//! use rae_faults::Budget;
//! use std::sync::atomic::{AtomicBool, Ordering};
//!
//! let cancel = AtomicBool::new(false);
//! let budget = Budget::unlimited().with_cancel(&cancel);
//! let mut stream = Budgeted::new(0..1_000_000u32, &budget, "enumerate");
//! assert_eq!(stream.next(), Some(Ok(0)));
//! cancel.store(true, Ordering::Relaxed);
//! // The breach surfaces within one check interval, then the stream ends.
//! assert!(stream.any(|r| matches!(r, Err(CoreError::BudgetExceeded(_)))));
//! ```

use crate::error::CoreError;
use rae_faults::Budget;

/// How many items flow between two budget probes. The first item is always
/// probed, so a pre-breached budget fails before any work.
pub const CHECK_INTERVAL: u64 = 64;

/// An iterator adapter that enforces a [`Budget`] over a long-running
/// enumeration or shuffle (see the [module docs](self)).
#[derive(Debug)]
pub struct Budgeted<'b, I> {
    inner: I,
    budget: Budget<'b>,
    phase: &'static str,
    yielded: u64,
    breached: bool,
}

impl<'b, I> Budgeted<'b, I> {
    /// Wraps `inner`, probing `budget` every [`CHECK_INTERVAL`] items and
    /// tagging any breach with `phase` (e.g. `"enumerate"`, `"shuffle"`).
    pub fn new(inner: I, budget: &Budget<'b>, phase: &'static str) -> Self {
        Budgeted {
            inner,
            budget: *budget,
            phase,
            yielded: 0,
            breached: false,
        }
    }

    /// Consumes the adapter, returning the underlying iterator (e.g. to
    /// continue unmetered after a scoped budget ends).
    pub fn into_inner(self) -> I {
        self.inner
    }
}

impl<I: Iterator> Iterator for Budgeted<'_, I> {
    type Item = Result<I::Item, CoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.breached {
            return None;
        }
        if self.yielded.is_multiple_of(CHECK_INTERVAL) {
            if let Err(b) = self.budget.check(self.phase) {
                self.breached = true;
                return Some(Err(CoreError::BudgetExceeded(b)));
            }
        }
        match self.inner.next() {
            Some(item) => {
                self.yielded += 1;
                Some(Ok(item))
            }
            None => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.breached {
            return (0, Some(0));
        }
        let (lo, hi) = self.inner.size_hint();
        // A breach can cut the stream short and adds one Err item.
        (0, hi.and_then(|h| h.checked_add(1)).or(Some(lo + 1)).or(hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_faults::Breach;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn unlimited_budget_is_transparent() {
        let budget = Budget::unlimited();
        let items: Vec<u32> = Budgeted::new(0..200u32, &budget, "enumerate")
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(items, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_surfaces_within_one_interval_and_fuses() {
        let cancel = AtomicBool::new(false);
        let budget = Budget::unlimited().with_cancel(&cancel);
        let mut stream = Budgeted::new(0..10_000u32, &budget, "shuffle");
        for _ in 0..10 {
            assert!(stream.next().unwrap().is_ok());
        }
        cancel.store(true, Ordering::Relaxed);
        let mut seen_err = 0usize;
        let mut oks_after_cancel = 0usize;
        for r in stream.by_ref() {
            match r {
                Ok(_) => oks_after_cancel += 1,
                Err(CoreError::BudgetExceeded(b)) => {
                    assert_eq!(b.breach, Breach::Cancelled);
                    seen_err += 1;
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert_eq!(seen_err, 1, "exactly one structured breach");
        assert!(
            oks_after_cancel < CHECK_INTERVAL as usize,
            "breach must surface within one check interval"
        );
        assert_eq!(stream.next(), None, "stream fuses after the breach");
    }

    #[test]
    fn expired_deadline_fails_before_any_item() {
        let budget = Budget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
        let mut stream = Budgeted::new(0..10u32, &budget, "enumerate");
        assert!(matches!(
            stream.next(),
            Some(Err(CoreError::BudgetExceeded(_)))
        ));
        assert_eq!(stream.next(), None);
    }
}
