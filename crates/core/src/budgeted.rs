//! Budget enforcement for long enumerations and shuffles.
//!
//! Preprocessing checks its [`Budget`] at phase
//! boundaries, but an enumeration or random-permutation scan can run for
//! `|Q(D)|` steps with no natural boundary. [`Budgeted`] wraps any such
//! iterator and probes the budget between items: the stream yields
//! `Ok(item)` until a breach, then exactly one
//! `Err(CoreError::BudgetExceeded)` and fuses.
//!
//! The probe cadence is **adaptive** ([`ProbeCadence::Adaptive`], the
//! default): the adapter measures the wall time between consecutive probes
//! and rescales the probe interval toward a fixed latency target, clamped
//! to `1..=`[`CHECK_INTERVAL`] items. Cheap streams (an in-memory
//! enumeration yields in tens of nanoseconds) converge to a probe every 64
//! answers — two clock/atomic reads amortized over 64 items, preserving the
//! constant-delay guarantee — while expensive streams (a `RankedUcq` access
//! is O(m² log² n) per item) converge to a probe per item, bounding
//! cancellation latency by roughly one item instead of 64. A fixed cadence
//! probed every 64th item regardless, so cancelling a ranked drain could
//! take 64 × the per-item cost to surface.
//!
//! ```
//! use rae_core::{Budgeted, CoreError};
//! use rae_faults::Budget;
//! use std::sync::atomic::{AtomicBool, Ordering};
//!
//! let cancel = AtomicBool::new(false);
//! let budget = Budget::unlimited().with_cancel(&cancel);
//! let mut stream = Budgeted::new(0..1_000_000u32, &budget, "enumerate");
//! assert_eq!(stream.next(), Some(Ok(0)));
//! cancel.store(true, Ordering::Relaxed);
//! // The breach surfaces within one probe interval, then the stream ends.
//! assert!(stream.any(|r| matches!(r, Err(CoreError::BudgetExceeded(_)))));
//! ```

use crate::error::CoreError;
use rae_faults::Budget;
use std::time::{Duration, Instant};

/// The widest allowed gap between two budget probes, in items. Adaptive
/// cadence never exceeds it, so even a mis-measured stream breaches within
/// 64 items, as before the cadence became adaptive.
pub const CHECK_INTERVAL: u64 = 64;

/// Wall-time the adaptive cadence aims to keep between budget probes.
/// Well under any deadline a caller plausibly sets, and ~1000× the cost of
/// the probe itself, so metering overhead stays negligible.
const ADAPTIVE_TARGET: Duration = Duration::from_micros(50);

/// How often [`Budgeted`] probes its budget between items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeCadence {
    /// Rescale the probe interval so consecutive probes land roughly
    /// `target` apart in wall time, clamped to `1..=`[`CHECK_INTERVAL`]
    /// items (and at most doubling per adjustment, to damp oscillation).
    Adaptive {
        /// Desired wall-time between probes.
        target: Duration,
    },
    /// Probe before every item: minimal cancellation latency, one clock
    /// read per item. For streams known to be expensive per item (ranked
    /// union access).
    EveryItem,
    /// Probe every `n` items (clamped to `1..=`[`CHECK_INTERVAL`]), no
    /// clock feedback — the pre-adaptive behavior, for tests and perfectly
    /// uniform streams.
    Fixed(u64),
}

impl Default for ProbeCadence {
    fn default() -> Self {
        ProbeCadence::Adaptive {
            target: ADAPTIVE_TARGET,
        }
    }
}

/// An iterator adapter that enforces a [`Budget`] over a long-running
/// enumeration or shuffle (see the [module docs](self)).
#[derive(Debug)]
pub struct Budgeted<'b, I> {
    inner: I,
    budget: Budget<'b>,
    phase: &'static str,
    cadence: ProbeCadence,
    /// Items until the next probe (0 ⇒ probe now).
    until_probe: u64,
    /// Current adaptive interval in items.
    interval: u64,
    last_probe: Option<Instant>,
    breached: bool,
}

impl<'b, I> Budgeted<'b, I> {
    /// Wraps `inner`, probing `budget` at the default adaptive cadence and
    /// tagging any breach with `phase` (e.g. `"enumerate"`, `"shuffle"`).
    /// The first item is always probed, so a pre-breached budget fails
    /// before any work.
    pub fn new(inner: I, budget: &Budget<'b>, phase: &'static str) -> Self {
        Budgeted::with_cadence(inner, budget, phase, ProbeCadence::default())
    }

    /// [`Budgeted::new`] with an explicit [`ProbeCadence`].
    pub fn with_cadence(
        inner: I,
        budget: &Budget<'b>,
        phase: &'static str,
        cadence: ProbeCadence,
    ) -> Self {
        let interval = match cadence {
            ProbeCadence::EveryItem => 1,
            // Adaptive starts tight and relaxes as cheap items are
            // observed: the first items of an expensive stream are already
            // covered, and a cheap stream reaches CHECK_INTERVAL within a
            // handful of doublings.
            ProbeCadence::Adaptive { .. } => 1,
            ProbeCadence::Fixed(n) => n.clamp(1, CHECK_INTERVAL),
        };
        Budgeted {
            inner,
            budget: *budget,
            phase,
            cadence,
            until_probe: 0,
            interval,
            last_probe: None,
            breached: false,
        }
    }

    /// Consumes the adapter, returning the underlying iterator (e.g. to
    /// continue unmetered after a scoped budget ends).
    pub fn into_inner(self) -> I {
        self.inner
    }

    /// Probes the budget and, under adaptive cadence, rescales the probe
    /// interval toward the latency target.
    fn probe(&mut self) -> Result<(), CoreError> {
        if let ProbeCadence::Adaptive { target } = self.cadence {
            let now = Instant::now();
            if let Some(last) = self.last_probe {
                let elapsed = now.duration_since(last);
                let ideal = if elapsed.is_zero() {
                    // Too fast to measure: open up as quickly as damping
                    // allows.
                    CHECK_INTERVAL
                } else {
                    let scaled = (self.interval as u128).saturating_mul(target.as_nanos())
                        / elapsed.as_nanos();
                    u64::try_from(scaled).unwrap_or(CHECK_INTERVAL)
                };
                // Clamp growth to 2× per adjustment; shrinking can jump
                // straight down (an expensive item must tighten the cadence
                // immediately).
                self.interval = ideal.min(self.interval * 2).clamp(1, CHECK_INTERVAL);
            }
            self.last_probe = Some(now);
        }
        self.until_probe = self.interval;
        self.budget
            .check(self.phase)
            .map_err(CoreError::BudgetExceeded)
    }
}

impl<I: Iterator> Iterator for Budgeted<'_, I> {
    type Item = Result<I::Item, CoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.breached {
            return None;
        }
        if self.until_probe == 0 {
            if let Err(e) = self.probe() {
                self.breached = true;
                return Some(Err(e));
            }
        }
        match self.inner.next() {
            Some(item) => {
                self.until_probe -= 1;
                Some(Ok(item))
            }
            None => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.breached {
            return (0, Some(0));
        }
        let (lo, hi) = self.inner.size_hint();
        // A breach can cut the stream short and adds one Err item.
        (0, hi.and_then(|h| h.checked_add(1)).or(Some(lo + 1)).or(hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_faults::Breach;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn unlimited_budget_is_transparent() {
        let budget = Budget::unlimited();
        let items: Vec<u32> = Budgeted::new(0..200u32, &budget, "enumerate")
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(items, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_surfaces_within_one_interval_and_fuses() {
        let cancel = AtomicBool::new(false);
        let budget = Budget::unlimited().with_cancel(&cancel);
        let mut stream = Budgeted::new(0..10_000u32, &budget, "shuffle");
        for _ in 0..10 {
            assert!(stream.next().unwrap().is_ok());
        }
        cancel.store(true, Ordering::Relaxed);
        let mut seen_err = 0usize;
        let mut oks_after_cancel = 0usize;
        for r in stream.by_ref() {
            match r {
                Ok(_) => oks_after_cancel += 1,
                Err(CoreError::BudgetExceeded(b)) => {
                    assert_eq!(b.breach, Breach::Cancelled);
                    seen_err += 1;
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert_eq!(seen_err, 1, "exactly one structured breach");
        assert!(
            oks_after_cancel < CHECK_INTERVAL as usize,
            "breach must surface within one check interval"
        );
        assert_eq!(stream.next(), None, "stream fuses after the breach");
    }

    #[test]
    fn expired_deadline_fails_before_any_item() {
        let budget = Budget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
        let mut stream = Budgeted::new(0..10u32, &budget, "enumerate");
        assert!(matches!(
            stream.next(),
            Some(Err(CoreError::BudgetExceeded(_)))
        ));
        assert_eq!(stream.next(), None);
    }

    #[test]
    fn fixed_cadence_is_clamped_and_probes_on_schedule() {
        let cancel = AtomicBool::new(false);
        let budget = Budget::unlimited().with_cancel(&cancel);
        let mut stream = Budgeted::with_cadence(
            0..1_000u32,
            &budget,
            "enumerate",
            ProbeCadence::Fixed(u64::MAX),
        );
        for _ in 0..3 {
            assert!(stream.next().unwrap().is_ok());
        }
        cancel.store(true, Ordering::Relaxed);
        let oks = stream.by_ref().take_while(|r| r.is_ok()).count();
        assert!(
            oks < CHECK_INTERVAL as usize,
            "Fixed cadence must clamp to CHECK_INTERVAL, saw {oks} items"
        );
    }

    #[test]
    fn every_item_cadence_cancels_immediately() {
        let cancel = AtomicBool::new(false);
        let budget = Budget::unlimited().with_cancel(&cancel);
        let mut stream =
            Budgeted::with_cadence(0..1_000u32, &budget, "access", ProbeCadence::EveryItem);
        assert!(stream.next().unwrap().is_ok());
        cancel.store(true, Ordering::Relaxed);
        assert!(
            matches!(stream.next(), Some(Err(CoreError::BudgetExceeded(_)))),
            "per-item cadence must surface the breach before the next item"
        );
    }

    /// The cancellation-latency regression: with ~1ms items, the fixed
    /// 64-item cadence took ≥ 50ms of wasted work to notice a cancel.
    /// Adaptive cadence must tighten to (near) per-item probing and
    /// surface the breach after a handful of items.
    #[test]
    fn adaptive_cadence_bounds_cancel_latency_for_expensive_items() {
        let cancel = AtomicBool::new(false);
        let budget = Budget::unlimited().with_cancel(&cancel);
        let slow = (0..10_000u32).inspect(|_| {
            std::thread::sleep(Duration::from_millis(1));
        });
        let mut stream = Budgeted::new(slow, &budget, "ranked/access");
        for _ in 0..5 {
            assert!(stream.next().unwrap().is_ok());
        }
        cancel.store(true, Ordering::Relaxed);
        let mut oks_after_cancel = 0usize;
        for r in stream.by_ref() {
            match r {
                Ok(_) => oks_after_cancel += 1,
                Err(CoreError::BudgetExceeded(b)) => {
                    assert_eq!(b.breach, Breach::Cancelled);
                    break;
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        // Each item costs ~1ms ≫ the 50µs target, so the interval must have
        // collapsed to 1 by the time the cancel lands; allow a little slack
        // for the probe that was already scheduled.
        assert!(
            oks_after_cancel <= 2,
            "cancel took {oks_after_cancel} expensive items to surface"
        );
    }

    /// Cheap items must relax the cadence back toward CHECK_INTERVAL —
    /// adaptivity may not turn every enumeration into probe-per-item.
    #[test]
    fn adaptive_cadence_relaxes_for_cheap_items() {
        let budget = Budget::unlimited();
        let mut stream = Budgeted::new(0..2_000_000u32, &budget, "enumerate");
        for _ in 0..1_000_000 {
            assert!(stream.next().unwrap().is_ok());
        }
        assert!(
            stream.interval > CHECK_INTERVAL / 2,
            "cheap stream stuck at a tight probe interval ({})",
            stream.interval
        );
    }
}
