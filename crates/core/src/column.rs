//! Owned-or-borrowed numeric columns (DESIGN.md §16).
//!
//! Every per-row artifact table of an index — flat `u32` reference
//! columns, `u128` weights, startIndex prefix sums, bucket tables,
//! child-bucket links — is stored as a [`Col<T>`]: either an owned `Vec<T>`
//! (fresh builds, owned snapshot decodes) or a *borrowed view* into a
//! shared immutable byte buffer (a validated snapshot file). Borrowed
//! columns are what make zero-copy snapshot serving possible: `rae-store`'s
//! `load_borrowed` maps the file once and hands out `Col`s pointing
//! straight into it, so N serving processes share one read-only artifact
//! with near-zero decode cost.
//!
//! The design deliberately avoids lifetime parameters: a borrowed column
//! carries an `Arc` to its byte owner, so an index served from a snapshot
//! is an ordinary `'static` value — `rae-serve` publishes it through the
//! same `Arc<Snapshot>` slots as a freshly built one.
//!
//! ## Safety contract
//!
//! A borrowed view reinterprets raw little-endian file bytes as `&[T]`.
//! That is sound only under conditions [`Col::borrowed`] checks up front
//! and refuses (with a structured [`ColumnError`], never UB) otherwise:
//!
//! * **Pod element types.** `T` is one of `u32`/`u64`/`u128` (the sealed
//!   [`Pod`] trait): every bit pattern is a valid value, so no byte
//!   sequence can construct an invalid `T`.
//! * **Alignment.** The absolute address of the first element must be a
//!   multiple of `align_of::<T>()`. The v2 snapshot format 16-aligns every
//!   array, but a foreign or hand-truncated file (or a buffer copied to an
//!   odd offset) fails this check and the loader falls back to an owned
//!   decode.
//! * **Endianness.** On-disk integers are little-endian; on a big-endian
//!   host reinterpretation would be wrong, so construction is refused at
//!   runtime (`cfg!(target_endian)`) and the loader falls back.
//! * **Stability.** The owner implements [`StableBytes`], an `unsafe`
//!   trait promising the bytes never move and never mutate for the
//!   owner's lifetime; the `Arc` keeps the owner alive as long as any
//!   view exists.

use std::fmt;
use std::sync::Arc;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for u128 {}
}

/// Plain-old-data element types a [`Col`] may borrow from raw bytes:
/// fixed-width unsigned integers where every bit pattern is valid.
/// Sealed — the zero-copy safety argument is per-type, not structural.
pub trait Pod: Copy + Send + Sync + PartialEq + Eq + fmt::Debug + sealed::Sealed + 'static {}
impl Pod for u32 {}
impl Pod for u64 {}
impl Pod for u128 {}

/// An immutable, address-stable byte buffer borrowed columns can point
/// into.
///
/// # Safety
///
/// Implementors promise that the slice returned by
/// [`StableBytes::stable_bytes`] has a stable address and stable contents
/// for the implementor's entire lifetime (no reallocation, no interior
/// mutation, no in-place file truncation for mapped files). [`Col`] caches
/// raw pointers into this slice and dereferences them for as long as the
/// owning `Arc` lives.
pub unsafe trait StableBytes: Send + Sync + 'static {
    /// The stable byte contents.
    fn stable_bytes(&self) -> &[u8];
}

/// A heap byte buffer whose base address is 16-byte aligned (the widest
/// element alignment in a snapshot, `u128`), backed by a boxed `u128`
/// allocation. The portable fallback owner when a file cannot be mapped,
/// and the buffer the misalignment tests build odd-offset copies in.
pub struct AlignedBytes {
    words: Box<[u128]>,
    len: usize,
}

impl AlignedBytes {
    /// Copies `bytes` into a fresh 16-aligned allocation.
    pub fn copy_from(bytes: &[u8]) -> Self {
        Self::copy_from_at(0, bytes)
    }

    /// Copies `bytes` into a fresh allocation at byte offset `prefix`
    /// (zero-filled before it). The buffer base stays 16-aligned, so an
    /// odd `prefix` makes every wide array inside `bytes` deliberately
    /// misaligned — the fixture for the fallback-not-UB tests.
    pub fn copy_from_at(prefix: usize, bytes: &[u8]) -> Self {
        let len = prefix + bytes.len();
        let words = vec![0u128; len.div_ceil(16)].into_boxed_slice();
        let mut out = AlignedBytes { words, len };
        // Sound: the u128 allocation is at least `len` bytes and uniquely
        // owned here.
        unsafe {
            let dst = out.words.as_mut_ptr().cast::<u8>().add(prefix);
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), dst, bytes.len());
        }
        out
    }

    /// The buffer contents.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // Sound: the u128 allocation holds at least `len` initialized
        // bytes (zero-filled then overwritten).
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

impl fmt::Debug for AlignedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AlignedBytes({} bytes)", self.len)
    }
}

// Safety: the backing allocation is boxed (never reallocated) and the
// struct exposes no mutation after construction.
unsafe impl StableBytes for AlignedBytes {
    fn stable_bytes(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Why a borrowed view could not be constructed. Never UB — the loader
/// maps these to a fallback onto the owned decode path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnError {
    /// The array's absolute address is not a multiple of the element
    /// alignment (e.g. a snapshot image copied to an odd offset).
    Misaligned {
        /// Absolute address modulo the required alignment.
        remainder: usize,
        /// Required element alignment.
        align: usize,
    },
    /// The requested region does not fit inside the owner's bytes.
    OutOfBounds {
        /// Requested end offset (saturated).
        end: usize,
        /// Owner byte length.
        len: usize,
    },
    /// The host is big-endian; little-endian file bytes cannot be
    /// reinterpreted in place.
    ForeignEndian,
}

impl fmt::Display for ColumnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnError::Misaligned { remainder, align } => {
                write!(f, "array misaligned by {remainder} bytes (need {align})")
            }
            ColumnError::OutOfBounds { end, len } => {
                write!(f, "array region ends at {end} beyond the {len}-byte buffer")
            }
            ColumnError::ForeignEndian => f.write_str("big-endian host cannot borrow LE bytes"),
        }
    }
}

impl std::error::Error for ColumnError {}

/// A borrowed view over `len` little-endian `T`s inside a shared byte
/// owner. Construction (via [`Col::borrowed`]) validated bounds,
/// alignment, and host endianness; the `Arc` keeps the bytes alive.
pub struct BorrowedCol<T: Pod> {
    owner: Arc<dyn StableBytes>,
    ptr: *const T,
    len: usize,
}

// Safety: the view is read-only over immutable shared bytes whose owner
// is itself Send + Sync; the raw pointer is derived from (and outlived
// by) the Arc'd owner.
unsafe impl<T: Pod> Send for BorrowedCol<T> {}
unsafe impl<T: Pod> Sync for BorrowedCol<T> {}

impl<T: Pod> Clone for BorrowedCol<T> {
    fn clone(&self) -> Self {
        BorrowedCol {
            owner: Arc::clone(&self.owner),
            ptr: self.ptr,
            len: self.len,
        }
    }
}

/// An owned-or-borrowed numeric column. Owned for fresh builds and owned
/// snapshot decodes; borrowed for zero-copy snapshot serving. All read
/// paths go through [`Col::as_slice`] (also available via `Deref`), which
/// allocates nothing in either representation.
#[derive(Clone)]
pub enum Col<T: Pod> {
    /// Heap-owned storage.
    Owned(Vec<T>),
    /// A validated zero-copy view into a shared snapshot buffer.
    Borrowed(BorrowedCol<T>),
}

impl<T: Pod> Col<T> {
    /// A validated zero-copy view of `len` elements starting `offset`
    /// bytes into `owner`'s stable bytes. Refuses (structured error,
    /// never UB) on misalignment, out-of-bounds regions, or a big-endian
    /// host — see the module-level safety contract.
    pub fn borrowed(
        owner: Arc<dyn StableBytes>,
        offset: usize,
        len: usize,
    ) -> Result<Self, ColumnError> {
        if cfg!(target_endian = "big") {
            return Err(ColumnError::ForeignEndian);
        }
        let bytes = owner.stable_bytes();
        let width = std::mem::size_of::<T>();
        let end = len
            .checked_mul(width)
            .and_then(|b| offset.checked_add(b))
            .ok_or(ColumnError::OutOfBounds {
                end: usize::MAX,
                len: bytes.len(),
            })?;
        if end > bytes.len() {
            return Err(ColumnError::OutOfBounds {
                end,
                len: bytes.len(),
            });
        }
        let ptr = unsafe { bytes.as_ptr().add(offset) };
        let align = std::mem::align_of::<T>();
        let remainder = (ptr as usize) % align;
        if remainder != 0 {
            return Err(ColumnError::Misaligned { remainder, align });
        }
        Ok(Col::Borrowed(BorrowedCol {
            ptr: ptr.cast(),
            len,
            owner,
        }))
    }

    /// The elements as a slice — zero-allocation for both representations.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            Col::Owned(v) => v,
            // Sound: construction checked bounds + alignment, T is Pod
            // (every bit pattern valid), the host is little-endian, and
            // the Arc'd owner guarantees address/content stability.
            Col::Borrowed(b) => unsafe { std::slice::from_raw_parts(b.ptr, b.len) },
        }
    }

    /// Whether this column is a zero-copy view into a snapshot buffer.
    #[inline]
    pub fn is_borrowed(&self) -> bool {
        matches!(self, Col::Borrowed(_))
    }

    /// Mutable access to the elements, copying a borrowed view into
    /// owned storage first (`Cow::to_mut` semantics — the snapshot bytes
    /// themselves are immutable).
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if self.is_borrowed() {
            *self = Col::Owned(self.as_slice().to_vec());
        }
        match self {
            Col::Owned(v) => v,
            Col::Borrowed(_) => unreachable!("converted to owned above"),
        }
    }
}

impl<T: Pod> std::ops::Deref for Col<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> From<Vec<T>> for Col<T> {
    fn from(v: Vec<T>) -> Self {
        Col::Owned(v)
    }
}

impl<T: Pod> Default for Col<T> {
    fn default() -> Self {
        Col::Owned(Vec::new())
    }
}

impl<T: Pod> fmt::Debug for Col<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.is_borrowed() {
            "Col::Borrowed"
        } else {
            "Col::Owned"
        };
        write!(f, "{tag}({} elems)", self.len())
    }
}

/// Equality is element equality: an owned column and a borrowed view of
/// the same values are the same column (round-trip tests rely on this).
impl<T: Pod> PartialEq for Col<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod> Eq for Col<T> {}

/// The raw little-endian bytes of a pod slice (little-endian hosts only —
/// there the in-memory representation *is* the wire representation). The
/// store's bulk section encoder uses this to emit whole arrays with one
/// `extend_from_slice` instead of a per-element loop.
#[cfg(target_endian = "little")]
pub fn pod_bytes<T: Pod>(v: &[T]) -> &[u8] {
    // Sound: T is Pod (no padding bytes in u32/u64/u128), and on a
    // little-endian host the memory bytes equal the wire bytes.
    unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), std::mem::size_of_val(v)) }
}

/// Materializes an owned `Vec<T>` from little-endian bytes. `bytes.len()`
/// must be a multiple of `size_of::<T>()` (caller-checked). Single
/// `memcpy` on little-endian hosts, per-element conversion elsewhere.
pub fn pod_vec_from_bytes<T: Pod + FromLeBytes>(bytes: &[u8]) -> Vec<T> {
    let width = std::mem::size_of::<T>();
    debug_assert_eq!(bytes.len() % width, 0);
    let n = bytes.len() / width;
    #[cfg(target_endian = "little")]
    {
        let mut v: Vec<T> = Vec::with_capacity(n);
        // Sound: the copy fills exactly the `n` elements reserved above
        // and T is Pod, so any byte content is a valid initialization.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), v.as_mut_ptr().cast::<u8>(), bytes.len());
            v.set_len(n);
        }
        v
    }
    #[cfg(target_endian = "big")]
    {
        (0..n)
            .map(|i| T::from_le_slice(&bytes[i * width..(i + 1) * width]))
            .collect()
    }
}

/// Per-type little-endian decoding (the big-endian fallback of
/// [`pod_vec_from_bytes`]).
pub trait FromLeBytes: Sized {
    /// Decodes one element from exactly `size_of::<Self>()` bytes.
    fn from_le_slice(bytes: &[u8]) -> Self;
}

macro_rules! impl_from_le {
    ($($t:ty),*) => {$(
        impl FromLeBytes for $t {
            fn from_le_slice(bytes: &[u8]) -> Self {
                let mut a = [0u8; std::mem::size_of::<$t>()];
                a.copy_from_slice(bytes);
                <$t>::from_le_bytes(a)
            }
        }
    )*};
}
impl_from_le!(u32, u64, u128);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_bytes_base_is_16_aligned() {
        let b = AlignedBytes::copy_from(&[1, 2, 3, 4, 5]);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(b.as_slice().as_ptr() as usize % 16, 0);
    }

    #[test]
    fn borrowed_round_trips_values() {
        let vals: Vec<u64> = (0..9u64).map(|i| i * 1_000_000_007).collect();
        let owner = Arc::new(AlignedBytes::copy_from(pod_bytes(&vals)));
        let col: Col<u64> = Col::borrowed(owner, 0, vals.len()).unwrap();
        assert!(col.is_borrowed());
        assert_eq!(col.as_slice(), vals.as_slice());
        assert_eq!(col, Col::Owned(vals));
    }

    #[test]
    fn misaligned_offset_is_refused_not_ub() {
        let vals: Vec<u32> = vec![7, 8, 9];
        let owner: Arc<dyn StableBytes> = Arc::new(AlignedBytes::copy_from_at(1, pod_bytes(&vals)));
        assert!(matches!(
            Col::<u32>::borrowed(Arc::clone(&owner), 1, 3),
            Err(ColumnError::Misaligned { .. })
        ));
        // Out of bounds is a separate refusal.
        assert!(matches!(
            Col::<u32>::borrowed(owner, 0, 1000),
            Err(ColumnError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn pod_vec_round_trips() {
        let vals: Vec<u128> = vec![0, 1, u128::MAX / 5];
        let bytes = pod_bytes(&vals);
        assert_eq!(pod_vec_from_bytes::<u128>(bytes), vals);
    }
}
