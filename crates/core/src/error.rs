//! Error type for the core enumeration algorithms.

use rae_faults::BudgetExceeded;
use rae_query::QueryError;
use std::fmt;

/// Errors raised while building or using the enumeration structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An underlying query/data-layer error (including "not free-connex").
    Query(QueryError),
    /// Weight arithmetic overflowed `u128` (astronomically many answers).
    WeightOverflow,
    /// A union has more disjuncts than the mc-UCQ builder supports; the
    /// preprocessing cost grows as `2^m`.
    TooManyDisjuncts {
        /// Maximum supported.
        max: usize,
        /// Requested.
        got: usize,
    },
    /// mc-UCQ members do not reduce to the same join-tree template.
    IncompatibleTemplates {
        /// Name of the first disjunct (the template donor).
        first: String,
        /// Name of the mismatching disjunct.
        other: String,
    },
    /// A head attribute is not covered by any plan bag.
    UncoveredHeadAttribute(String),
    /// Ordered-union members do not share one head layout and lexicographic
    /// variable order, so their streams cannot be merged positionally.
    MismatchedOrders {
        /// Head then order of the first member.
        expected: Vec<String>,
        /// Head then order of the offending member.
        got: Vec<String>,
    },
    /// A structural count (row ids, bucket ids) exceeded the `u32` id space
    /// the index uses; relations beyond ~4.29 billion rows per node are not
    /// supported by this layout. A `count` of `usize::MAX` is the sentinel
    /// for rank arithmetic overflowing the `u128` rank space instead (see
    /// the crate-internal `rank_overflow` constructor).
    CapacityExceeded {
        /// What overflowed ("rows", "buckets", …).
        what: &'static str,
        /// The observed count (`usize::MAX` ⇒ u128 rank-space overflow).
        count: usize,
    },
    /// A rank window names an order style (lexicographic vs weighted) the
    /// index it is applied to was not built under; serving it would
    /// silently fall back to the wrong order.
    MismatchedOrderStyle {
        /// Style the consumer requires ("weighted", "lexicographic").
        expected: &'static str,
        /// Style the window or index actually carries.
        got: &'static str,
    },
    /// The index was built against a dictionary generation that has since
    /// been advanced; its code-based lookup tables may hold recycled codes,
    /// so access would be unsound. Rebuild the index over the rehydrated
    /// database.
    StaleGeneration {
        /// Generation the index was built against.
        built: u64,
        /// The dictionary's current generation.
        current: u64,
    },
    /// A [`rae_faults::Budget`] limit was breached during preprocessing or
    /// enumeration. The phase and breach detail are in the payload; deadline
    /// and cancellation breaches are transient (retry under a fresh budget),
    /// memory breaches are not.
    BudgetExceeded(BudgetExceeded),
    /// A build path panicked (a bug, an injected chaos fault, or a worker
    /// thread dying) and the panic was converted to an error at the build
    /// boundary. Builds consume owned relation copies, so the source
    /// `Database` and dictionary are observably unchanged; retrying is safe.
    BuildPanicked {
        /// The build entry point that caught the panic.
        context: &'static str,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A deterministic fault fired at the named failpoint (only reachable
    /// under the `failpoints` feature of `rae-faults`).
    FaultInjected {
        /// The failpoint site, e.g. `"build/node"`.
        site: &'static str,
    },
    /// A deserialized index archive is internally inconsistent (plan shape,
    /// bucket partition, prefix sums, weight products, or sort order do not
    /// hold). Checksums upstream catch storage corruption; this is the
    /// semantic backstop that refuses to serve wrong answers from a
    /// checksum-valid but logically broken artifact.
    InvalidArchive(String),
}

impl rae_faults::Transient for CoreError {
    fn is_transient(&self) -> bool {
        match self {
            CoreError::Query(e) => e.is_transient(),
            // A sweep raced the build/access; rehydrate + rebuild succeeds.
            CoreError::StaleGeneration { .. } => true,
            // Injected chaos and caught panics: the retry path is the test.
            CoreError::FaultInjected { .. } | CoreError::BuildPanicked { .. } => true,
            CoreError::BudgetExceeded(b) => b.is_transient(),
            // Structural and capacity errors recur on retry.
            CoreError::WeightOverflow
            | CoreError::TooManyDisjuncts { .. }
            | CoreError::IncompatibleTemplates { .. }
            | CoreError::UncoveredHeadAttribute(_)
            | CoreError::MismatchedOrders { .. }
            | CoreError::MismatchedOrderStyle { .. }
            | CoreError::InvalidArchive(_)
            | CoreError::CapacityExceeded { .. } => false,
        }
    }
}

/// Validates that a structural count fits the `u32` id space, returning the
/// narrowed id. This is the single checkpoint behind every row/bucket id
/// the index mints, so the overflow path is a recoverable
/// [`CoreError::CapacityExceeded`], never a truncation or panic.
#[inline]
pub fn ensure_u32(what: &'static str, count: usize) -> Result<u32, CoreError> {
    u32::try_from(count).map_err(|_| CoreError::CapacityExceeded { what, count })
}

/// The structured error for rank arithmetic (descent sums, inclusion–
/// exclusion totals) overflowing the `u128` rank space. Uses the
/// `usize::MAX` sentinel in [`CoreError::CapacityExceeded::count`] because
/// the overflowing quantity, by definition, does not fit any machine
/// integer we could report.
#[inline]
pub(crate) fn rank_overflow(what: &'static str) -> CoreError {
    CoreError::CapacityExceeded {
        what,
        count: usize::MAX,
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Query(e) => write!(f, "{e}"),
            CoreError::WeightOverflow => {
                write!(f, "answer-count weight overflowed u128 during preprocessing")
            }
            CoreError::TooManyDisjuncts { max, got } => write!(
                f,
                "mc-UCQ random access supports at most {max} disjuncts (2^m preprocessing), got {got}"
            ),
            CoreError::IncompatibleTemplates { first, other } => write!(
                f,
                "disjunct {other} does not share the join-tree template of {first}; \
                 mc-UCQ random access requires a common template"
            ),
            CoreError::UncoveredHeadAttribute(a) => {
                write!(f, "head attribute {a} is not covered by any join-tree bag")
            }
            CoreError::MismatchedOrders { expected, got } => write!(
                f,
                "ordered-union members must share one head layout and \
                 variable order, expected {expected:?} but got {got:?}"
            ),
            CoreError::CapacityExceeded { what, count } => {
                if *count == usize::MAX {
                    write!(
                        f,
                        "index capacity exceeded: {what} overflowed the u128 rank space"
                    )
                } else {
                    write!(
                        f,
                        "index capacity exceeded: {count} {what} do not fit the u32 id space"
                    )
                }
            }
            CoreError::MismatchedOrderStyle { expected, got } => write!(
                f,
                "rank window order-style mismatch: this consumer requires a \
                 {expected} order, but the index/window carries a {got} order"
            ),
            CoreError::StaleGeneration { built, current } => write!(
                f,
                "index was built against dictionary generation {built}, but the \
                 dictionary is at generation {current}; rebuild the index"
            ),
            CoreError::BudgetExceeded(b) => write!(f, "{b}"),
            CoreError::BuildPanicked { context, message } => {
                write!(f, "panic caught at build boundary {context}: {message}")
            }
            CoreError::FaultInjected { site } => {
                write!(f, "injected fault at failpoint `{site}`")
            }
            CoreError::InvalidArchive(detail) => {
                write!(f, "index archive is internally inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for CoreError {
    fn from(e: QueryError) -> Self {
        CoreError::Query(e)
    }
}

impl From<rae_data::DataError> for CoreError {
    fn from(e: rae_data::DataError) -> Self {
        CoreError::Query(QueryError::Data(e))
    }
}

impl From<BudgetExceeded> for CoreError {
    fn from(e: BudgetExceeded) -> Self {
        CoreError::BudgetExceeded(e)
    }
}

/// Runs `f` under a `catch_unwind` boundary, converting any panic into
/// [`CoreError::BuildPanicked`]. This is what makes the build entry points
/// transactional: they operate on owned relation copies, so a panic
/// anywhere inside (including in a worker thread, re-thrown at the scope
/// join) leaves the caller's `Database` and the dictionary observably
/// unchanged, and the caller gets a structured, transient error instead of
/// an unwinding stack.
pub(crate) fn catch_build<T>(
    context: &'static str,
    f: impl FnOnce() -> Result<T, CoreError>,
) -> Result<T, CoreError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_owned()
            };
            Err(CoreError::BuildPanicked { context, message })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_chains() {
        let e = CoreError::TooManyDisjuncts { max: 12, got: 20 };
        assert!(e.to_string().contains("12"));
        let q: CoreError = QueryError::EmptyUnion.into();
        assert!(std::error::Error::source(&q).is_some());
    }

    #[test]
    fn ensure_u32_accepts_the_full_id_space() {
        assert_eq!(ensure_u32("rows", 0), Ok(0));
        assert_eq!(ensure_u32("rows", 12_345), Ok(12_345));
        assert_eq!(ensure_u32("rows", u32::MAX as usize), Ok(u32::MAX));
    }

    #[test]
    fn ensure_u32_overflow_is_a_recoverable_error() {
        // One past the u32 id space must surface as CapacityExceeded with
        // the offending count preserved, not panic or wrap.
        let over = u32::MAX as usize + 1;
        match ensure_u32("buckets", over) {
            Err(CoreError::CapacityExceeded { what, count }) => {
                assert_eq!(what, "buckets");
                assert_eq!(count, over);
            }
            other => panic!("expected CapacityExceeded, got {other:?}"),
        }
        let msg = ensure_u32("rows", over).unwrap_err().to_string();
        assert!(msg.contains("u32"), "message should name the id space");
    }

    #[test]
    fn stale_generation_error_reports_both_generations() {
        let e = CoreError::StaleGeneration {
            built: 3,
            current: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains('5'));
        assert!(std::error::Error::source(&e).is_none());
    }
}
