//! Error type for the core enumeration algorithms.

use rae_query::QueryError;
use std::fmt;

/// Errors raised while building or using the enumeration structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An underlying query/data-layer error (including "not free-connex").
    Query(QueryError),
    /// Weight arithmetic overflowed `u128` (astronomically many answers).
    WeightOverflow,
    /// A union has more disjuncts than the mc-UCQ builder supports; the
    /// preprocessing cost grows as `2^m`.
    TooManyDisjuncts {
        /// Maximum supported.
        max: usize,
        /// Requested.
        got: usize,
    },
    /// mc-UCQ members do not reduce to the same join-tree template.
    IncompatibleTemplates {
        /// Name of the first disjunct (the template donor).
        first: String,
        /// Name of the mismatching disjunct.
        other: String,
    },
    /// A head attribute is not covered by any plan bag.
    UncoveredHeadAttribute(String),
    /// A structural count (row ids, bucket ids) exceeded the `u32` id space
    /// the index uses; relations beyond ~4.29 billion rows per node are not
    /// supported by this layout.
    CapacityExceeded {
        /// What overflowed ("rows", "buckets", …).
        what: &'static str,
        /// The observed count.
        count: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Query(e) => write!(f, "{e}"),
            CoreError::WeightOverflow => {
                write!(f, "answer-count weight overflowed u128 during preprocessing")
            }
            CoreError::TooManyDisjuncts { max, got } => write!(
                f,
                "mc-UCQ random access supports at most {max} disjuncts (2^m preprocessing), got {got}"
            ),
            CoreError::IncompatibleTemplates { first, other } => write!(
                f,
                "disjunct {other} does not share the join-tree template of {first}; \
                 mc-UCQ random access requires a common template"
            ),
            CoreError::UncoveredHeadAttribute(a) => {
                write!(f, "head attribute {a} is not covered by any join-tree bag")
            }
            CoreError::CapacityExceeded { what, count } => write!(
                f,
                "index capacity exceeded: {count} {what} do not fit the u32 id space"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for CoreError {
    fn from(e: QueryError) -> Self {
        CoreError::Query(e)
    }
}

impl From<rae_data::DataError> for CoreError {
    fn from(e: rae_data::DataError) -> Self {
        CoreError::Query(QueryError::Data(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_chains() {
        let e = CoreError::TooManyDisjuncts { max: 12, got: 20 };
        assert!(e.to_string().contains("12"));
        let q: CoreError = QueryError::EmptyUnion.into();
        assert!(std::error::Error::source(&q).is_some());
    }
}
