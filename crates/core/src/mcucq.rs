//! Theorem 5.5 — random access for mutually compatible UCQs (mc-UCQs) in
//! O(log² n) access time, via the Durand–Strozecki union trick
//! (Algorithms 6–8).
//!
//! The implemented class is the one the paper's own experiments use
//! (Section 6.1): every CQ in the union reduces to the **same join-tree
//! template** (identical bags and shape), differing only in node relations —
//! e.g. different selections of the same base tables. Over a shared
//! template, the intersection `Q_I = ⋂_{i∈I} Q_i` of full joins equals the
//! full join of the node-wise intersected relations, so the builder
//! materializes one [`CqIndex`] per non-empty `I ⊆ [m]` (2^m − 1 indexes).
//! Because every index sorts its nodes canonically over the same template,
//! all enumeration orders are *compatible* (each is a subsequence of the
//! others restricted to shared answers) — exactly the mc-UCQ requirement.
//!
//! Random access to `S_ℓ ∪ … ∪ S_m` follows Algorithm 7: try `S_ℓ`, and on
//! collision with the suffix union compute the rank `k = |{a_1…a_j} ∩ B|`
//! by inclusion–exclusion over the intersection indexes (Algorithm 8),
//! where each term is a `rank` computed by binary search over
//! `T.access` / `S_ℓ.inverted_access` (the `Largest` routine of the
//! Theorem 5.5 proof, fused with `InvAcc` as in the paper's implementation).

// Sanctioned panics: each `expect` names an Algorithm 6-8 invariant (the full reduction
// guarantees matching child buckets; ranks are dense); violation is a bug,
// not a recoverable state.
#![allow(clippy::expect_used)]

use crate::error::CoreError;
use crate::index::{BuildOptions, CqIndex};
use crate::ordered::OrderedCqIndex;
use crate::renum_ucq::OrderedUnionEnumeration;
use crate::scratch::AccessScratch;
use crate::shuffle::LazyShuffle;
use crate::weight::Weight;
use crate::Result;
use rae_data::{Database, Relation, Symbol, Value};
use rae_query::{realize_order, validate_order, UnionQuery};
use rae_yannakakis::reduce_to_full_acyclic;
use rand::Rng;
use std::cmp::Ordering;
use std::ops::Range;

/// Maximum number of disjuncts: preprocessing builds `2^m − 1` indexes and
/// access performs `2^m`-term inclusion–exclusion, matching the paper's
/// `O(2^m · t)` bound — `m` is part of the (fixed) query in data complexity.
pub const MAX_DISJUNCTS: usize = 12;

/// How the Algorithm 8 rank terms are computed — an ablation knob for the
/// benchmark harness validating the Theorem 5.5 log² component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankStrategy {
    /// Binary search over the intersection index (O(log²) per term, the
    /// paper's algorithm).
    #[default]
    BinarySearch,
    /// Linear scan over the intersection index (O(|T|·log) per term) — only
    /// for the `ablation-binary` experiment.
    LinearScan,
}

/// The mc-UCQ random-access structure (Theorem 5.5):
/// `RAccess⟨lin, log²⟩` and, via Fisher–Yates, `REnum⟨lin, log²⟩`.
#[derive(Debug)]
pub struct McUcqIndex {
    m: usize,
    head: Vec<Symbol>,
    /// `structs[mask]` = index of `⋂_{i ∈ mask} Q_i`; `mask` ranges over
    /// non-empty subsets of `[m]`; singletons are the member CQs.
    structs: Vec<Option<CqIndex>>,
    /// `cap_ab[ℓ] = |S_ℓ ∩ (S_{ℓ+1} ∪ … ∪ S_{m-1})|`.
    cap_ab: Vec<Weight>,
    /// `suffix_counts[ℓ] = |S_ℓ ∪ … ∪ S_{m-1}|`.
    suffix_counts: Vec<Weight>,
    rank_strategy: RankStrategy,
}

impl McUcqIndex {
    /// Builds the structure for a union of same-template free-connex CQs.
    ///
    /// Errors with [`CoreError::IncompatibleTemplates`] when the disjuncts do
    /// not reduce to one join-tree shape (the implemented mc-UCQ subclass),
    /// and with [`CoreError::TooManyDisjuncts`] beyond [`MAX_DISJUNCTS`].
    pub fn build(ucq: &UnionQuery, db: &Database) -> Result<Self> {
        // Transactional boundary: panics anywhere in the 2^m-subset build
        // convert to `BuildPanicked` (see `catch_build`).
        crate::error::catch_build("McUcqIndex::build", || Self::build_inner(ucq, db))
    }

    fn build_inner(ucq: &UnionQuery, db: &Database) -> Result<Self> {
        let m = ucq.len();
        if m > MAX_DISJUNCTS {
            return Err(CoreError::TooManyDisjuncts {
                max: MAX_DISJUNCTS,
                got: m,
            });
        }
        let head: Vec<Symbol> = ucq.head().to_vec();

        // Reduce every disjunct; check the shared template.
        let fjs: Vec<_> = ucq
            .disjuncts()
            .iter()
            .map(|d| reduce_to_full_acyclic(d, db))
            .collect::<std::result::Result<_, _>>()?;
        let plan = fjs[0].plan.clone();
        for (i, fj) in fjs.iter().enumerate().skip(1) {
            if !fj.plan.same_shape(&plan) {
                return Err(CoreError::IncompatibleTemplates {
                    first: ucq.disjuncts()[0].name().to_string(),
                    other: ucq.disjuncts()[i].name().to_string(),
                });
            }
        }

        // One index per non-empty subset; relations of `mask` = node-wise
        // intersection of the lowest member with the already-built rest.
        let mut structs: Vec<Option<CqIndex>> = (0..(1usize << m)).map(|_| None).collect();
        for mask in 1..(1usize << m) {
            let lowest = mask.trailing_zeros() as usize;
            let rest = mask & (mask - 1);
            let relations: Vec<Relation> = if rest == 0 {
                fjs[lowest].relations.clone()
            } else {
                let rest_idx = structs[rest].as_ref().expect("built in mask order");
                (0..plan.node_count())
                    .map(|node| fjs[lowest].relations[node].intersect(rest_idx.node_relation(node)))
                    .collect::<std::result::Result<_, _>>()?
            };
            let idx = CqIndex::from_parts(plan.clone(), relations, head.clone())?;
            if mask.count_ones() == 1 {
                // Member indexes serve membership tests and rank lookups at
                // access time; force their lookup tables during
                // preprocessing as the paper's implementation does.
                idx.prepare_inverted_access();
            }
            structs[mask] = Some(idx);
        }

        // Access-time inclusion–exclusion (Algorithm 8) sums subset ranks
        // on the hot path; every term is bounded by its subset's count, so
        // proving here that Σ subset counts fits `u128` makes those sums
        // overflow-free by construction. Extreme synthetic cardinalities
        // surface as a structured capacity error instead of wrapping.
        let over = || crate::error::rank_overflow("inclusion–exclusion sums");
        let mut all: Weight = 0;
        for s in structs.iter().flatten() {
            all = all.checked_add(s.count()).ok_or_else(over)?;
        }

        // |S_ℓ ∩ suffix-union| by inclusion–exclusion; then suffix counts.
        let count_of = |mask: usize| structs[mask].as_ref().expect("built").count();
        let mut cap_ab = vec![0 as Weight; m];
        #[allow(clippy::needless_range_loop)]
        for l in 0..m.saturating_sub(1) {
            let suffix_mask = (((1usize << m) - 1) >> (l + 1)) << (l + 1);
            let (mut plus, mut minus) = (0 as Weight, 0 as Weight);
            let mut sub = suffix_mask;
            while sub != 0 {
                let t = count_of(sub | (1 << l));
                if sub.count_ones() % 2 == 1 {
                    plus = plus.checked_add(t).ok_or_else(over)?;
                } else {
                    minus = minus.checked_add(t).ok_or_else(over)?;
                }
                sub = (sub - 1) & suffix_mask;
            }
            cap_ab[l] = plus.checked_sub(minus).ok_or_else(over)?;
        }

        let mut suffix_counts = vec![0 as Weight; m];
        suffix_counts[m - 1] = count_of(1 << (m - 1));
        for l in (0..m - 1).rev() {
            suffix_counts[l] = count_of(1 << l)
                .checked_add(suffix_counts[l + 1])
                .and_then(|s| s.checked_sub(cap_ab[l]))
                .ok_or_else(over)?;
        }

        Ok(McUcqIndex {
            m,
            head,
            structs,
            cap_ab,
            suffix_counts,
            rank_strategy: RankStrategy::default(),
        })
    }

    /// Selects how Algorithm 8 rank terms are computed (ablation knob; the
    /// default binary search is the paper's algorithm).
    pub fn set_rank_strategy(&mut self, strategy: RankStrategy) {
        self.rank_strategy = strategy;
    }

    #[inline]
    fn member(&self, l: usize) -> &CqIndex {
        self.structs[1 << l].as_ref().expect("member index built")
    }

    /// Number of disjuncts.
    pub fn members(&self) -> usize {
        self.m
    }

    /// The head attributes, in answer order.
    pub fn head(&self) -> &[Symbol] {
        &self.head
    }

    /// The intersection index for a non-empty member subset (testing/bench
    /// introspection).
    pub fn intersection_index(&self, mask: usize) -> Option<&CqIndex> {
        self.structs.get(mask).and_then(Option::as_ref)
    }

    /// `|Q_1(D) ∪ … ∪ Q_m(D)|`, computed during preprocessing — O(1).
    pub fn count(&self) -> Weight {
        self.suffix_counts[0]
    }

    /// Algorithm 7 (iterated): the `j`-th answer of the union's
    /// Durand–Strozecki enumeration order, or `None` when `j ≥ count()`.
    pub fn access(&self, j: Weight) -> Option<Vec<Value>> {
        let mut scratch = McScratch::default();
        self.access_with(j, &mut scratch)
    }

    /// [`McUcqIndex::access`] reusing caller-held scratch buffers: the
    /// access/inverted-access sub-calls of Algorithms 7–8 all run through
    /// the two scratches, so only the returned answer is allocated.
    pub(crate) fn access_with(&self, j: Weight, scratch: &mut McScratch) -> Option<Vec<Value>> {
        if j >= self.count() {
            return None;
        }
        Some(self.access_level(0, j, scratch))
    }

    fn access_level(&self, l: usize, j: Weight, scratch: &mut McScratch) -> Vec<Value> {
        let a = self.member(l);
        if l == self.m - 1 {
            return a
                .access_into(j, &mut scratch.access)
                .expect("index in range by invariant")
                .to_vec();
        }
        let a_count = a.count();
        if j < a_count {
            let answer = a.access_into(j, &mut scratch.access).expect("j < |A|");
            if !Self::in_suffix_of(&self.structs, self.m, l + 1, answer, &mut scratch.probe) {
                return answer.to_vec();
            }
            // Algorithm 8: k = |{a_0..a_j} ∩ B| ≥ 1; emit b_{k-1}.
            let k = self.rank_in_suffix_union(l, j, scratch);
            debug_assert!(k >= 1);
            self.access_level(l + 1, k - 1, scratch)
        } else {
            self.access_level(l + 1, j - a_count + self.cap_ab[l], scratch)
        }
    }

    /// Membership of `answer` in `S_from ∪ … ∪ S_{m-1}`.
    ///
    /// An associated function (not a method) so callers can hold `answer`
    /// borrowed from one scratch while probing with the other.
    fn in_suffix_of(
        structs: &[Option<CqIndex>],
        m: usize,
        from: usize,
        answer: &[Value],
        probe: &mut AccessScratch,
    ) -> bool {
        (from..m).any(|i| {
            structs[1 << i]
                .as_ref()
                .expect("member built")
                .inverted_access_of(answer, probe)
                .is_some()
        })
    }

    /// `|{a_0, …, a_j} ∩ (S_{l+1} ∪ …)|` by inclusion–exclusion over the
    /// intersection indexes (Algorithm 8).
    fn rank_in_suffix_union(&self, l: usize, j: Weight, scratch: &mut McScratch) -> Weight {
        let suffix_mask = (((1usize << self.m) - 1) >> (l + 1)) << (l + 1);
        let (mut plus, mut minus) = (0 as Weight, 0 as Weight);
        let mut sub = suffix_mask;
        while sub != 0 {
            let t = self.structs[sub | (1 << l)].as_ref().expect("built");
            let r = self.rank_leq(t, l, j, scratch);
            if sub.count_ones() % 2 == 1 {
                plus += r;
            } else {
                minus += r;
            }
            sub = (sub - 1) & suffix_mask;
        }
        plus - minus
    }

    /// Number of elements of `t` whose rank in `S_l`'s enumeration order is
    /// at most `j` — the proof of Theorem 5.5's `Largest` + `InvAcc`, fused
    /// into one binary search over `t`'s positions (O(log²) time).
    fn rank_leq(&self, t: &CqIndex, l: usize, j: Weight, scratch: &mut McScratch) -> Weight {
        let a = self.member(l);
        match self.rank_strategy {
            RankStrategy::BinarySearch => {
                let (mut lo, mut hi) = (0 as Weight, t.count());
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    let x = t.access_into(mid, &mut scratch.access).expect("mid < |T|");
                    let rank_in_a = a
                        .inverted_access_of(x, &mut scratch.probe)
                        .expect("T ⊆ S_l with a compatible order");
                    if rank_in_a <= j {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                lo
            }
            RankStrategy::LinearScan => {
                // Compatibility means T's order is a subsequence of S_l's,
                // so the first element beyond rank j ends the scan.
                let mut rank = 0 as Weight;
                for pos in 0..t.count() {
                    let x = t.access_into(pos, &mut scratch.access).expect("pos < |T|");
                    let rank_in_a = a
                        .inverted_access_of(x, &mut scratch.probe)
                        .expect("T ⊆ S_l with a compatible order");
                    if rank_in_a <= j {
                        rank += 1;
                    } else {
                        break;
                    }
                }
                rank
            }
        }
    }

    /// Sequential enumeration in the union's access order.
    pub fn enumerate(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.count()).map(move |j| self.access(j).expect("in range"))
    }

    /// REnum(mcUCQ): Fisher–Yates over the union's random access — uniformly
    /// random order with guaranteed O(log²) delay (Theorem 5.5).
    pub fn random_permutation<R: Rng>(&self, rng: R) -> McUcqShuffle<'_, R> {
        McUcqShuffle {
            index: self,
            shuffle: LazyShuffle::new(self.count(), rng),
            scratch: McScratch::default(),
        }
    }
}

/// Lexicographic direct access over a same-template union (the ordered
/// counterpart of [`McUcqIndex`], DESIGN.md §11).
///
/// Every disjunct reduces to one join-tree template; the template is
/// reoriented once to realize the requested order, and one
/// [`OrderedCqIndex`] is built per non-empty member subset (node-wise
/// intersections, as in [`McUcqIndex`]). Because all 2^m − 1 indexes share
/// the ordered layout, every per-set answer stream is the lexicographic
/// order restricted to that set, and inclusion–exclusion over their rank
/// counts gives the union's ranks:
///
/// * [`OrderedMcUcqIndex::count`] — O(1) (precomputed inclusion–exclusion);
/// * [`OrderedMcUcqIndex::ordered_access`]`(k)` — the `k`-th **distinct**
///   union answer under the order, via per-member binary searches on the
///   union rank (O(2^m · log² n));
/// * [`OrderedMcUcqIndex::ordered_inverted_access`] — a union answer's
///   rank, one inclusion–exclusion sweep of strict-rank counts;
/// * [`OrderedMcUcqIndex::range_count`] /
///   [`OrderedMcUcqIndex::range_of_prefix`] — `ORDER BY`-prefix windows
///   over the union, duplicates counted once.
#[derive(Debug)]
pub struct OrderedMcUcqIndex {
    m: usize,
    head: Vec<Symbol>,
    /// `structs[mask]` = ordered index of `⋂_{i ∈ mask} Q_i` (non-empty
    /// masks only), all over one ordered layout.
    structs: Vec<Option<OrderedCqIndex>>,
    /// `|Q_1(D) ∪ … ∪ Q_m(D)|` by inclusion–exclusion.
    total: Weight,
}

impl OrderedMcUcqIndex {
    /// Builds the ordered union structure for a same-template union of
    /// free-connex CQs under the variable order `order`.
    ///
    /// Fails like [`McUcqIndex::build`] (template/disjunct-count checks)
    /// and like [`OrderedCqIndex::build`] (order validation/realizability).
    pub fn build(ucq: &UnionQuery, db: &Database, order: &[Symbol]) -> Result<Self> {
        Self::build_with(ucq, db, order, BuildOptions::default())
    }

    /// [`OrderedMcUcqIndex::build`] with explicit preprocessing options.
    pub fn build_with(
        ucq: &UnionQuery,
        db: &Database,
        order: &[Symbol],
        options: BuildOptions,
    ) -> Result<Self> {
        crate::error::catch_build("OrderedMcUcqIndex::build", || {
            Self::build_with_inner(ucq, db, order, options)
        })
    }

    fn build_with_inner(
        ucq: &UnionQuery,
        db: &Database,
        order: &[Symbol],
        options: BuildOptions,
    ) -> Result<Self> {
        let m = ucq.len();
        if m > MAX_DISJUNCTS {
            return Err(CoreError::TooManyDisjuncts {
                max: MAX_DISJUNCTS,
                got: m,
            });
        }
        let head: Vec<Symbol> = ucq.head().to_vec();
        validate_order(&head, order).map_err(CoreError::Query)?;

        // Reduce every disjunct; check the shared template; realize the
        // order once on it.
        let fjs: Vec<_> = ucq
            .disjuncts()
            .iter()
            .map(|d| reduce_to_full_acyclic(d, db))
            .collect::<std::result::Result<_, _>>()?;
        let plan = fjs[0].plan.clone();
        for (i, fj) in fjs.iter().enumerate().skip(1) {
            if !fj.plan.same_shape(&plan) {
                return Err(CoreError::IncompatibleTemplates {
                    first: ucq.disjuncts()[0].name().to_string(),
                    other: ucq.disjuncts()[i].name().to_string(),
                });
            }
        }
        let lex = realize_order(&plan, order)?;

        // Member relations derived for the ordered plan's node layout
        // (full bags carried over, projection nodes projected per member).
        let member_rels: Vec<Vec<Relation>> = fjs
            .into_iter()
            .map(|fj| lex.derive_relations(fj.relations))
            .collect::<rae_query::Result<_>>()?;

        // One ordered index per non-empty subset (node-wise intersections,
        // reusing the already-built rest like the unordered builder).
        let n = lex.plan.node_count();
        let mut structs: Vec<Option<OrderedCqIndex>> = (0..(1usize << m)).map(|_| None).collect();
        for mask in 1..(1usize << m) {
            let lowest = mask.trailing_zeros() as usize;
            let rest = mask & (mask - 1);
            let relations: Vec<Relation> = if rest == 0 {
                member_rels[lowest].clone()
            } else {
                let rest_idx = structs[rest].as_ref().expect("built in mask order");
                (0..n)
                    .map(|node| {
                        member_rels[lowest][node].intersect(rest_idx.index().node_relation(node))
                    })
                    .collect::<std::result::Result<_, _>>()?
            };
            structs[mask] = Some(OrderedCqIndex::from_lex_parts(
                &lex,
                relations,
                head.clone(),
                options,
                &rae_faults::Budget::unlimited(),
            )?);
            if mask.count_ones() == 1 {
                structs[mask]
                    .as_ref()
                    .expect("just built")
                    .index()
                    .prepare_inverted_access();
            }
        }

        // Checked inclusion–exclusion, as for the archive path: extreme
        // synthetic cardinalities surface as a structured capacity error,
        // never a debug panic / release wraparound.
        let over = || crate::error::rank_overflow("inclusion–exclusion sums");
        let (mut plus, mut minus) = (0 as Weight, 0 as Weight);
        for (mask, s) in structs.iter().enumerate().skip(1) {
            let c = s.as_ref().expect("non-empty masks built").count();
            let acc = if mask.count_ones() % 2 == 1 {
                &mut plus
            } else {
                &mut minus
            };
            *acc = acc.checked_add(c).ok_or_else(over)?;
        }
        let total = plus.checked_sub(minus).ok_or_else(over)?;

        Ok(OrderedMcUcqIndex {
            m,
            head,
            structs,
            total,
        })
    }

    /// Number of disjuncts.
    pub fn members(&self) -> usize {
        self.m
    }

    /// The head attributes, in answer order.
    pub fn head(&self) -> &[Symbol] {
        &self.head
    }

    /// The realized lexicographic variable order.
    pub fn order(&self) -> &[Symbol] {
        self.member(0).order()
    }

    /// The ordered index of one member.
    pub fn member(&self, l: usize) -> &OrderedCqIndex {
        self.structs[1 << l].as_ref().expect("member index built")
    }

    /// The ordered intersection index for a non-empty member subset.
    pub fn intersection_index(&self, mask: usize) -> Option<&OrderedCqIndex> {
        self.structs.get(mask).and_then(Option::as_ref)
    }

    /// `|Q_1(D) ∪ … ∪ Q_m(D)|` — O(1).
    pub fn count(&self) -> Weight {
        self.total
    }

    /// Inclusion–exclusion over the per-subset `(lt, le)` rank pairs of a
    /// bound (each produced by the ordered rank descent). All sums are
    /// checked: overflow of the `u128` rank space surfaces as
    /// [`CoreError::CapacityExceeded`] (unreachable for indexes this crate
    /// built — the build proved Σ subset counts fits — but a violated
    /// invariant must not wrap silently).
    fn union_bounds(
        &self,
        bounds_of: impl Fn(&OrderedCqIndex) -> Result<(Weight, Weight)>,
    ) -> Result<(Weight, Weight)> {
        let over = || crate::error::rank_overflow("inclusion–exclusion sums");
        let (mut lt_plus, mut lt_minus) = (0 as Weight, 0 as Weight);
        let (mut le_plus, mut le_minus) = (0 as Weight, 0 as Weight);
        for (mask, s) in self.structs.iter().enumerate().skip(1) {
            let (lt, le) = bounds_of(s.as_ref().expect("built"))?;
            if mask.count_ones() % 2 == 1 {
                lt_plus = lt_plus.checked_add(lt).ok_or_else(over)?;
                le_plus = le_plus.checked_add(le).ok_or_else(over)?;
            } else {
                lt_minus = lt_minus.checked_add(lt).ok_or_else(over)?;
                le_minus = le_minus.checked_add(le).ok_or_else(over)?;
            }
        }
        let lt = lt_plus.checked_sub(lt_minus).ok_or_else(over)?;
        let le = le_plus.checked_sub(le_minus).ok_or_else(over)?;
        Ok((lt, le))
    }

    /// The union's `(lt, le)` ranks of a full tuple (head order).
    pub(crate) fn tuple_union_bounds(&self, tuple: &[Value]) -> Result<(Weight, Weight)> {
        self.union_bounds(|s| s.tuple_bounds(tuple))
    }

    /// The `k`-th distinct union answer under the order, or `None` when
    /// `k ≥ count()`.
    ///
    /// For each member, a binary search over its (order-sorted) positions
    /// finds the first answer whose union `le`-rank reaches `k + 1`; the
    /// smallest candidate under the order is the union's `k`-th answer.
    pub fn ordered_access(&self, k: Weight) -> Option<Vec<Value>> {
        if k >= self.total {
            return None;
        }
        let mut scratch = AccessScratch::new();
        let mut best: Option<Vec<Value>> = None;
        for l in 0..self.m {
            let member = self.member(l);
            let count = member.count();
            // Smallest j with le_union(member[j]) ≥ k + 1; the union rank
            // is monotone along the member's order.
            let (mut lo, mut hi) = (0 as Weight, count);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let ans = member
                    .ordered_access_into(mid, &mut scratch)
                    .expect("mid < count");
                // Overflow is unreachable for a built index (the build
                // proved Σ subset counts fits u128); a violated invariant
                // degrades to "not found" rather than panicking.
                let (_, le) = self.tuple_union_bounds(ans).ok()?;
                if le > k {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            if lo == count {
                continue; // every member answer ranks below k
            }
            let candidate = member.ordered_access(lo).expect("lo < count");
            best = match best {
                Some(b) if self.member(0).order_cmp(&b, &candidate) != Ordering::Greater => Some(b),
                _ => Some(candidate),
            };
        }
        Some(best.expect("k < count guarantees an owner member"))
    }

    /// The rank of `answer` (head order) among the distinct union answers,
    /// or `None` when no member contains it.
    pub fn ordered_inverted_access(&self, answer: &[Value]) -> Option<Weight> {
        let mut scratch = AccessScratch::new();
        let is_member = (0..self.m).any(|l| {
            self.member(l)
                .ordered_inverted_access_of(answer, &mut scratch)
                .is_some()
        });
        if !is_member {
            return None;
        }
        // Same invariant as `ordered_access`: checked sums cannot fire for
        // a built index; degrade to "not found" if they ever do.
        self.tuple_union_bounds(answer).ok().map(|(lt, _)| lt)
    }

    /// The number of distinct union answers matching a prefix of order
    /// values (duplicates across members counted once) — O(2^m · log n).
    /// Rank-space overflow surfaces as [`CoreError::CapacityExceeded`].
    pub fn range_count(&self, prefix: &[Value]) -> Result<Weight> {
        let (lt, le) = self.union_bounds(|s| s.prefix_bounds(prefix))?;
        Ok(le - lt)
    }

    /// The contiguous union-rank range of all answers matching a prefix of
    /// order values.
    pub fn range_of_prefix(&self, prefix: &[Value]) -> Result<Range<Weight>> {
        let (lt, le) = self.union_bounds(|s| s.prefix_bounds(prefix))?;
        Ok(lt..le)
    }

    /// Constant-delay ordered scan of the whole union (the k-way member
    /// merge of [`OrderedUnionEnumeration`]; intersections are not
    /// consulted).
    pub fn enumerate(&self) -> OrderedUnionEnumeration<'_> {
        OrderedUnionEnumeration::from_members((0..self.m).map(|l| self.member(l)))
            .expect("members share one order by construction")
    }
}

/// The scratch pair threaded through the Algorithm 7/8 walk: one buffer set
/// for access descents, one for inverted-access probes (an answer borrowed
/// from the first stays valid while the second probes).
#[derive(Debug, Default)]
pub(crate) struct McScratch {
    access: AccessScratch,
    probe: AccessScratch,
}

/// Random-order enumeration over an [`McUcqIndex`].
#[derive(Debug)]
pub struct McUcqShuffle<'a, R: Rng> {
    index: &'a McUcqIndex,
    shuffle: LazyShuffle<R>,
    scratch: McScratch,
}

impl<R: Rng> McUcqShuffle<'_, R> {
    /// Answers not yet emitted.
    pub fn remaining(&self) -> Weight {
        self.shuffle.remaining()
    }
}

impl<R: Rng> Iterator for McUcqShuffle<'_, R> {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        let j = self.shuffle.next()?;
        Some(
            self.index
                .access_with(j, &mut self.scratch)
                .expect("in range"),
        )
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.shuffle.size_hint()
    }
}

// ----------------------------------------------------------------------
// Archive round-trip (DESIGN.md §15).
// ----------------------------------------------------------------------

impl OrderedMcUcqIndex {
    /// Extracts the process-independent raw parts: one ordered archive per
    /// non-empty member subset, all over the shared ordered layout.
    pub fn to_archive(&self) -> crate::archive::OrderedMcUcqArchive {
        crate::archive::OrderedMcUcqArchive {
            m: self.m as u32,
            head: self.head.clone(),
            structs: self
                .structs
                .iter()
                .map(|s| s.as_ref().map(OrderedCqIndex::to_archive))
                .collect(),
        }
    }

    /// Reconstructs the ordered union structure from archived raw parts.
    /// Each member archive passes the full [`OrderedCqIndex::from_archive`]
    /// validation; on top of that, all 2^m − 1 members must share one head,
    /// one realized order, and one plan shape (the compatibility the
    /// inclusion–exclusion ranks rely on), and the stored masks must be
    /// exactly the non-empty subsets. The union total is recomputed by
    /// checked inclusion–exclusion, never trusted from the file.
    pub fn from_archive(archive: crate::archive::OrderedMcUcqArchive) -> Result<Self> {
        crate::error::catch_build("OrderedMcUcqIndex::from_archive", move || {
            Self::from_archive_phases(archive)
        })
    }

    fn from_archive_phases(a: crate::archive::OrderedMcUcqArchive) -> Result<Self> {
        use crate::archive::invalid;
        let m = a.m as usize;
        if m == 0 {
            return Err(invalid("union archive with zero members"));
        }
        if m > MAX_DISJUNCTS {
            return Err(CoreError::TooManyDisjuncts {
                max: MAX_DISJUNCTS,
                got: m,
            });
        }
        if a.structs.len() != 1 << m {
            return Err(invalid(format!(
                "{} subset slots for {m} members (expected {})",
                a.structs.len(),
                1usize << m
            )));
        }
        let mut arch_structs = a.structs.into_iter();
        if arch_structs
            .next()
            .is_some_and(|empty_mask| empty_mask.is_some())
        {
            return Err(invalid("subset mask 0 must be empty"));
        }
        let mut structs: Vec<Option<OrderedCqIndex>> = vec![None];
        for (offset, arch) in arch_structs.enumerate() {
            let mask = offset + 1;
            let Some(arch) = arch else {
                return Err(invalid(format!("subset mask {mask} is missing")));
            };
            let member = OrderedCqIndex::from_archive(arch)?;
            if member.head() != a.head {
                return Err(invalid(format!(
                    "subset mask {mask} head does not match the union head"
                )));
            }
            if let Some(first) = structs.get(1).and_then(Option::as_ref) {
                if member.order() != first.order() {
                    return Err(CoreError::MismatchedOrders {
                        expected: first.order().iter().map(|s| s.to_string()).collect(),
                        got: member.order().iter().map(|s| s.to_string()).collect(),
                    });
                }
                if !member.index().plan().same_shape(first.index().plan()) {
                    return Err(invalid(format!(
                        "subset mask {mask} plan shape differs from the template"
                    )));
                }
            }
            if mask.count_ones() == 1 {
                member.index().prepare_inverted_access();
            }
            structs.push(Some(member));
        }

        // Checked inclusion–exclusion: a corrupted archive must not be able
        // to underflow the unsigned total (or smuggle in a wrong one — it
        // is recomputed, never read from the file).
        let (mut plus, mut minus) = (0 as Weight, 0 as Weight);
        for (mask, s) in structs.iter().enumerate().skip(1) {
            let c = s
                .as_ref()
                .ok_or_else(|| invalid("non-empty mask missing after validation"))?
                .count();
            let acc = if mask.count_ones() % 2 == 1 {
                &mut plus
            } else {
                &mut minus
            };
            *acc = acc.checked_add(c).ok_or(CoreError::WeightOverflow)?;
        }
        let total = plus
            .checked_sub(minus)
            .ok_or_else(|| invalid("inclusion–exclusion total underflows"))?;

        Ok(OrderedMcUcqIndex {
            m,
            head: a.head,
            structs,
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use rae_data::{Database, FxHashSet};

    use rae_query::parser::parse_ucq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Database with three same-schema binary relations, pairwise
    /// overlapping, for same-template unions over the path join.
    fn db3() -> Database {
        let mut db = Database::new();
        add(
            &mut db,
            "R",
            rel_int(&["a", "b"], &[&[1, 1], &[1, 2], &[2, 1], &[3, 2]]),
        );
        add(
            &mut db,
            "S",
            rel_int(&["a", "b"], &[&[1, 1], &[2, 1], &[4, 2], &[5, 2]]),
        );
        add(
            &mut db,
            "T",
            rel_int(&["a", "b"], &[&[1, 2], &[4, 2], &[6, 1]]),
        );
        add(
            &mut db,
            "W",
            rel_int(&["b", "c"], &[&[1, 10], &[2, 20], &[2, 30]]),
        );
        db
    }

    /// Reference Durand–Strozecki union order (Algorithm 6) over explicit
    /// sequences.
    fn ds_reference(seqs: &[Vec<Vec<Value>>]) -> Vec<Vec<Value>> {
        if seqs.len() == 1 {
            return seqs[0].clone();
        }
        let b = ds_reference(&seqs[1..]);
        let b_set: FxHashSet<&Vec<Value>> = b.iter().collect();
        let mut out = Vec::new();
        let mut b_iter = b.iter();
        for a in &seqs[0] {
            if b_set.contains(a) {
                out.push(b_iter.next().expect("enough b elements").clone());
            } else {
                out.push(a.clone());
            }
        }
        out.extend(b_iter.cloned());
        out
    }

    fn check_against_reference(ucq_text: &str, db: &Database) {
        let u = parse_ucq(ucq_text).unwrap();
        let mc = McUcqIndex::build(&u, db).unwrap();

        // Set correctness and count.
        let expected = naive_union(&u, db);
        assert_eq!(mc.count() as usize, expected.len(), "count mismatch");
        let got: Vec<Vec<Value>> = mc.enumerate().collect();
        let got_set: FxHashSet<&Vec<Value>> = got.iter().collect();
        assert_eq!(got_set.len(), got.len(), "duplicates in union enumeration");
        for row in expected.rows() {
            assert!(got_set.contains(&row.to_vec()), "missing answer {row:?}");
        }

        // Order correctness: must equal the Durand–Strozecki reference over
        // the member enumeration orders.
        let member_seqs: Vec<Vec<Vec<Value>>> = (0..mc.members())
            .map(|l| mc.member(l).enumerate().collect())
            .collect();
        let reference = ds_reference(&member_seqs);
        assert_eq!(
            got, reference,
            "union enumeration order must match Algorithm 6"
        );
    }

    #[test]
    fn two_member_overlapping_union() {
        check_against_reference("Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y).", &db3());
    }

    #[test]
    fn three_member_union() {
        check_against_reference(
            "Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y). Q3(x, y) :- T(x, y).",
            &db3(),
        );
    }

    #[test]
    fn union_with_existential_template() {
        // Same template with a projected-away tail: Qi(x,y) :- Ri(x,y), W(y,z).
        check_against_reference(
            "Q1(x, y) :- R(x, y), W(y, z). Q2(x, y) :- S(x, y), W(y, z).",
            &db3(),
        );
    }

    #[test]
    fn disjoint_union() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a"], &[&[1], &[2]]));
        add(&mut db, "S", rel_int(&["a"], &[&[3], &[4]]));
        check_against_reference("Q1(x) :- R(x). Q2(x) :- S(x).", &db);
    }

    #[test]
    fn identical_members() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a"], &[&[1], &[2], &[3]]));
        add(&mut db, "S", rel_int(&["a"], &[&[1], &[2], &[3]]));
        let u = ucq("Q1(x) :- R(x). Q2(x) :- S(x).");
        let mc = McUcqIndex::build(&u, &db).unwrap();
        assert_eq!(mc.count(), 3);
        check_against_reference("Q1(x) :- R(x). Q2(x) :- S(x).", &db);
    }

    #[test]
    fn one_member_degenerates_to_cq() {
        let u = ucq("Q1(x, y) :- R(x, y).");
        let mc = McUcqIndex::build(&u, &db3()).unwrap();
        assert_eq!(mc.count(), 4);
        let member: Vec<_> = mc.member(0).enumerate().collect();
        let union: Vec<_> = mc.enumerate().collect();
        assert_eq!(member, union);
    }

    #[test]
    fn empty_members_are_fine() {
        let mut db = db3();
        db.set_relation("S", rel_int(&["a", "b"], &[]));
        check_against_reference("Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y).", &db);
    }

    #[test]
    fn out_of_bounds_access() {
        let u = ucq("Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y).");
        let mc = McUcqIndex::build(&u, &db3()).unwrap();
        assert!(mc.access(mc.count()).is_none());
    }

    #[test]
    fn incompatible_templates_rejected() {
        // Q1's template is a single {x,y} bag; Q2 is free-connex but its
        // projected template is two disjoint bags {x}, {y}.
        let mut db = db3();
        add(&mut db, "U", rel_int(&["a"], &[&[1], &[2]]));
        let u = ucq("Q1(x, y) :- R(x, y). Q2(x, y) :- R(x, z), U(y).");
        assert!(matches!(
            McUcqIndex::build(&u, &db),
            Err(CoreError::IncompatibleTemplates { .. })
        ));
    }

    #[test]
    fn non_free_connex_member_surfaces_query_error() {
        let db = db3();
        // Q2(x,y) :- R(x,z), W(z,y) has a cyclic extended hypergraph.
        let u = ucq("Q1(x, y) :- R(x, y). Q2(x, y) :- R(x, z), W(z, y).");
        assert!(matches!(
            McUcqIndex::build(&u, &db),
            Err(CoreError::Query(rae_query::QueryError::NotFreeConnex(_)))
        ));
    }

    #[test]
    fn shuffle_is_uniform_and_complete() {
        let u = ucq("Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y).");
        let db = db3();
        let mc = McUcqIndex::build(&u, &db).unwrap();
        let expected = naive_union(&u, &db);

        let mut all: Vec<Vec<Value>> = mc.random_permutation(StdRng::seed_from_u64(8)).collect();
        assert_eq!(all.len(), expected.len());
        all.sort();
        all.dedup();
        assert_eq!(all.len(), expected.len());

        // First answer uniform across the union.
        let n = mc.count();
        let mut counts: std::collections::BTreeMap<Vec<Value>, usize> = Default::default();
        let mut seed_rng = StdRng::seed_from_u64(4242);
        let trials = 3000usize;
        for _ in 0..trials {
            let seed = rand::Rng::gen::<u64>(&mut seed_rng);
            let first = mc
                .random_permutation(StdRng::seed_from_u64(seed))
                .next()
                .unwrap();
            *counts.entry(first).or_insert(0) += 1;
        }
        assert_eq!(counts.len() as Weight, n);
        let expected_freq = trials as f64 / n as f64;
        for (ans, c) in counts {
            let ratio = c as f64 / expected_freq;
            assert!(
                (0.7..=1.3).contains(&ratio),
                "answer {ans:?} first {c} times (expected ≈{expected_freq:.0})"
            );
        }
    }

    fn sorted_union(u: &UnionQuery, db: &Database, order: &[&str]) -> Vec<Vec<Value>> {
        let expected = naive_union(u, db);
        let head = u.head().to_vec();
        let positions: Vec<usize> = order
            .iter()
            .map(|v| head.iter().position(|h| h.as_str() == *v).unwrap())
            .collect();
        let mut rows: Vec<Vec<Value>> = expected.rows().map(<[Value]>::to_vec).collect();
        rows.sort_by(|a, b| {
            positions
                .iter()
                .map(|&p| a[p].cmp(&b[p]))
                .find(|o| *o != Ordering::Equal)
                .unwrap_or(Ordering::Equal)
        });
        rows
    }

    fn check_ordered_union(ucq_text: &str, db: &Database, order: &[&str]) {
        let u = parse_ucq(ucq_text).unwrap();
        let syms: Vec<Symbol> = order.iter().map(Symbol::new).collect();
        let mc = OrderedMcUcqIndex::build(&u, db, &syms).unwrap();
        let expected = sorted_union(&u, db, order);
        assert_eq!(mc.count() as usize, expected.len(), "count mismatch");
        for (k, row) in expected.iter().enumerate() {
            assert_eq!(
                mc.ordered_access(k as Weight).as_ref(),
                Some(row),
                "rank {k} of {ucq_text} under {order:?}"
            );
            assert_eq!(
                mc.ordered_inverted_access(row),
                Some(k as Weight),
                "inverted rank {k}"
            );
        }
        assert!(mc.ordered_access(mc.count()).is_none());
        // The merged scan equals rank-by-rank access.
        let merged: Vec<Vec<Value>> = mc.enumerate().collect();
        assert_eq!(merged, expected, "merge vs ranks");
        // Range counts for every single-variable prefix value.
        let first_head = mc.member(0).order_to_head()[0];
        let mut prefix_values: Vec<Value> =
            expected.iter().map(|r| r[first_head].clone()).collect();
        prefix_values.dedup();
        for v in prefix_values {
            let expected_count = expected.iter().filter(|r| r[first_head] == v).count() as Weight;
            assert_eq!(
                mc.range_count(std::slice::from_ref(&v)).unwrap(),
                expected_count,
                "prefix {v:?}"
            );
            let range = mc.range_of_prefix(std::slice::from_ref(&v)).unwrap();
            assert_eq!(range.end - range.start, expected_count);
            if expected_count > 0 {
                let first_in_range = mc.ordered_access(range.start).unwrap();
                assert_eq!(first_in_range[first_head], v);
            }
        }
    }

    #[test]
    fn ordered_union_matches_naive_sorted() {
        let db = db3();
        for order in [&["a", "b"], &["b", "a"]] {
            check_ordered_union("Q1(a, b) :- R(a, b). Q2(a, b) :- S(a, b).", &db, order);
            check_ordered_union(
                "Q1(a, b) :- R(a, b). Q2(a, b) :- S(a, b). Q3(a, b) :- T(a, b).",
                &db,
                order,
            );
        }
    }

    #[test]
    fn ordered_union_with_existential_template() {
        let db = db3();
        for order in [&["x", "y"], &["y", "x"]] {
            check_ordered_union(
                "Q1(x, y) :- R(x, y), W(y, z). Q2(x, y) :- S(x, y), W(y, z).",
                &db,
                order,
            );
        }
    }

    #[test]
    fn ordered_union_rejects_bad_inputs() {
        let db = db3();
        let ab: Vec<Symbol> = ["a", "b"].iter().map(Symbol::new).collect();
        // Incompatible templates.
        let mut db2 = db3();
        add(&mut db2, "U", rel_int(&["a"], &[&[1], &[2]]));
        let u = ucq("Q1(a, b) :- R(a, b). Q2(a, b) :- R(a, z), U(b).");
        assert!(matches!(
            OrderedMcUcqIndex::build(&u, &db2, &ab),
            Err(CoreError::IncompatibleTemplates { .. })
        ));
        // Order not a permutation of the head.
        let u = ucq("Q1(a, b) :- R(a, b). Q2(a, b) :- S(a, b).");
        let bad: Vec<Symbol> = ["a"].iter().map(Symbol::new).collect();
        assert!(matches!(
            OrderedMcUcqIndex::build(&u, &db, &bad),
            Err(CoreError::Query(
                rae_query::QueryError::OrderVariableMismatch { .. }
            ))
        ));
    }

    #[test]
    fn too_many_disjuncts_rejected() {
        let mut db = Database::new();
        let mut text = String::new();
        for i in 0..13 {
            add(
                &mut db,
                format!("R{i}").as_str(),
                rel_int(&["a"], &[&[i as i64]]),
            );
            text.push_str(&format!("Q{i}(x) :- R{i}(x). "));
        }
        let u = parse_ucq(&text).unwrap();
        assert!(matches!(
            McUcqIndex::build(&u, &db),
            Err(CoreError::TooManyDisjuncts { .. })
        ));
    }

    #[test]
    fn linear_rank_strategy_gives_identical_orders() {
        let u = ucq("Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y). Q3(x, y) :- T(x, y).");
        let db = db3();
        let binary = McUcqIndex::build(&u, &db).unwrap();
        let mut linear = McUcqIndex::build(&u, &db).unwrap();
        linear.set_rank_strategy(RankStrategy::LinearScan);
        for j in 0..binary.count() {
            assert_eq!(binary.access(j), linear.access(j), "mismatch at {j}");
        }
    }

    #[test]
    fn intersection_indexes_match_set_intersections() {
        let u = ucq("Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y).");
        let db = db3();
        let mc = McUcqIndex::build(&u, &db).unwrap();
        let cap = mc.intersection_index(0b11).unwrap();
        // R ∩ S = {(1,1), (2,1)}.
        assert_eq!(cap.count(), 2);
        let items: Vec<_> = cap.enumerate().collect();
        assert!(items.contains(&vec![Value::Int(1), Value::Int(1)]));
        assert!(items.contains(&vec![Value::Int(2), Value::Int(1)]));
    }
}
