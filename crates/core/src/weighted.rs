//! Ranked direct access under sum-of-weights orders (DESIGN.md §17).
//!
//! [`OrderedCqIndex`] serves *lexicographic* orders; this module layers the
//! tractable **sum-of-weights** orders of "Tractable Orders for Direct
//! Access to Ranked Answers of Conjunctive Queries" (Carmeli et al.,
//! arXiv:2012.11965) on top: answers are ranked by
//! `w(answer) = Σ_x w_x(answer[x])` over a set `W` of weighted free
//! variables, ties broken by the lexicographic order, and
//!
//! * [`WeightedCqIndex::ranked_access`]`(k)` returns the answer of
//!   weighted rank `k` in O(log n);
//! * [`WeightedCqIndex::ranked_inverted_access`] returns an answer's
//!   weighted rank in O(log n);
//! * [`WeightedCqIndex::weight_range_count`] counts answers with weight in
//!   a half-open range without enumerating them;
//! * [`WeightedCqIndex::min_answer`] / [`WeightedCqIndex::max_answer`]
//!   extract the min/max-weight answers (the tractable aggregate cases of
//!   the min/max dichotomy paper, arXiv:2510.19197) in O(log n).
//!
//! The tractability frontier is enforced up front by
//! [`rae_query::classify_weighted_order`]: `W` must be free, a prefix of
//! the order, and covered by one atom — otherwise the build rejects with a
//! structured witness (X+Y hardness) instead of building something slow or
//! wrong.
//!
//! **Structure.** For a tractable order the weighted variables form a
//! prefix of the lexicographic order, so answers sharing a `W`-prefix
//! valuation occupy one contiguous lex-rank block and share one weight.
//! The build walks those blocks via O(log n) [`OrderedCqIndex::
//! prefix_bounds`] descents (one per *distinct* `W`-valuation — never per
//! answer), then sorts the block directory by `(weight, lex_lo)` and
//! prefix-sums the block lengths into `wstart` partial-sum sidecars — the
//! same trick as the per-node `StartIndex` arrays, one level up. Both
//! ranked directions are then two nested O(log n) searches, and the
//! steady-state answer path stays zero-allocation (`tests/zero_alloc.rs`).
//!
//! Durable archives for weighted indexes are future work: the block
//! directory is derivable, so `OrderedCqIndexArchive` round-trips the
//! underlying index today and the directory is rebuilt on load.

// Sanctioned panics: each `expect` names a block-directory invariant
// (blocks partition the lex rank space, every block is non-empty);
// violation is a bug, not a data-dependent condition.
#![allow(clippy::expect_used)]

use crate::error::CoreError;
use crate::index::BuildOptions;
use crate::ordered::{OrderedCqIndex, OrderedEnumeration};
use crate::scratch::AccessScratch;
use crate::weight::Weight;
use crate::Result;
use rae_data::{Database, Symbol, Value, VarWeights};
use rae_faults::Budget;
use rae_query::{classify_weighted_order, ConjunctiveQuery};
use std::ops::Range;

/// Which comparison an index's rank space (and any window into it) is
/// defined by. Consumers check this tag so a weighted window is never
/// silently served by lexicographic ranks or vice versa
/// ([`CoreError::MismatchedOrderStyle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderStyle {
    /// Ranks compare answers lexicographically under the realized order.
    Lexicographic,
    /// Ranks compare answers by sum-of-weights, ties broken
    /// lexicographically.
    Weighted,
}

impl OrderStyle {
    /// Stable human-readable name (used in error payloads).
    pub fn name(self) -> &'static str {
        match self {
            OrderStyle::Lexicographic => "lexicographic",
            OrderStyle::Weighted => "weighted",
        }
    }
}

/// A style-tagged rank window minted by an index
/// ([`OrderedCqIndex::rank_window`] / [`WeightedCqIndex::rank_window`]).
/// Carrying the style and variable order lets window consumers (the
/// samplers) verify the window actually describes the rank space they are
/// about to draw from.
#[derive(Debug, Clone)]
pub struct RankWindow {
    ranks: Range<Weight>,
    style: OrderStyle,
    order: Vec<Symbol>,
}

impl RankWindow {
    /// Only indexes mint windows; the constructor is crate-private so the
    /// style tag is trustworthy.
    pub(crate) fn new(ranks: Range<Weight>, style: OrderStyle, order: Vec<Symbol>) -> Self {
        RankWindow {
            ranks,
            style,
            order,
        }
    }

    /// The half-open rank range.
    pub fn ranks(&self) -> Range<Weight> {
        self.ranks.clone()
    }

    /// The order style the ranks are defined under.
    pub fn style(&self) -> OrderStyle {
        self.style
    }

    /// The variable order the ranks are defined under.
    pub fn order(&self) -> &[Symbol] {
        &self.order
    }
}

/// One contiguous lex-rank block of answers sharing a `W`-prefix valuation
/// (hence one weight). `wstart` is the block's first *weighted* rank after
/// the `(weight, lex_lo)` sort — the partial-sum sidecar.
#[derive(Debug, Clone, Copy)]
struct WeightBlock {
    /// Σ of the weighted variables' value weights for this valuation.
    weight: u128,
    /// First lexicographic rank of the block.
    lex_lo: Weight,
    /// Number of answers in the block.
    len: Weight,
    /// First weighted rank of the block.
    wstart: Weight,
}

/// Ranked direct access under a sum-of-weights order: O(log n) access,
/// inverted access, weight-range counting, and min/max extraction over
/// `w(answer) = Σ_x w_x(answer[x])`, ties broken lexicographically.
///
/// ```
/// use rae_core::{AccessScratch, WeightedCqIndex};
/// use rae_data::{Database, Relation, Schema, Symbol, Value, VarWeights};
///
/// let mut db = Database::new();
/// db.add_relation(
///     "R",
///     Relation::from_rows(
///         Schema::new(["a", "b"]).unwrap(),
///         vec![
///             vec![Value::Int(1), Value::Int(10)],
///             vec![Value::Int(2), Value::Int(10)],
///             vec![Value::Int(3), Value::Int(20)],
///         ],
///     )
///     .unwrap(),
/// )
/// .unwrap();
/// let q = "Q(x, y) :- R(x, y)".parse().unwrap();
///
/// // Rank by a weight on x (heaviest last), ties by the lex order x, y.
/// let mut w = VarWeights::new();
/// w.set("x", Value::Int(1), 500);
/// w.set("x", Value::Int(2), 5);
/// let order = [Symbol::new("x"), Symbol::new("y")];
/// let idx = WeightedCqIndex::build(&q, &db, &order, &w).unwrap();
///
/// // Weighted rank 0 is the lightest answer: x=3 carries weight 0.
/// let mut scratch = AccessScratch::new();
/// let lightest = idx.ranked_access_into(0, &mut scratch).unwrap();
/// assert_eq!(lightest, &[Value::Int(3), Value::Int(20)]);
/// assert_eq!(idx.max_weight(), Some(500));
/// assert_eq!(idx.weight_range_count(0..100), 2); // weights 0 and 5
/// ```
#[derive(Debug)]
pub struct WeightedCqIndex {
    index: OrderedCqIndex,
    /// Block directory, sorted by `(weight, lex_lo)`.
    blocks: Vec<WeightBlock>,
    /// Block ids sorted by `lex_lo` (inversion: lex rank → block).
    lex_blocks: Vec<u32>,
    /// The weighted variable set `W`, in weight-assignment order.
    weighted: Vec<Symbol>,
}

impl WeightedCqIndex {
    /// Builds the weighted index for a free-connex CQ under the variable
    /// order `order` (weighted comparison primary, lexicographic
    /// tie-break) with per-variable weights `weights`.
    ///
    /// Rejects intractable weighted orders with a structured witness
    /// ([`rae_query::QueryError::IntractableWeightedOrder`] and friends,
    /// wrapped in [`CoreError::Query`]) *before* any index work, and
    /// weight sums overflowing `u128` as [`CoreError::WeightOverflow`].
    pub fn build(
        cq: &ConjunctiveQuery,
        db: &Database,
        order: &[Symbol],
        weights: &VarWeights,
    ) -> Result<Self> {
        Self::build_with(cq, db, order, weights, BuildOptions::default())
    }

    /// [`WeightedCqIndex::build`] with explicit preprocessing options.
    pub fn build_with(
        cq: &ConjunctiveQuery,
        db: &Database,
        order: &[Symbol],
        weights: &VarWeights,
        options: BuildOptions,
    ) -> Result<Self> {
        Self::build_budgeted(cq, db, order, weights, options, &Budget::unlimited())
    }

    /// [`WeightedCqIndex::build_with`] under a resource [`Budget`]
    /// (deadline, memory cap, cancellation), probed once per weight block
    /// on top of the underlying ordered build's own probes.
    pub fn build_budgeted(
        cq: &ConjunctiveQuery,
        db: &Database,
        order: &[Symbol],
        weights: &VarWeights,
        options: BuildOptions,
        budget: &Budget<'_>,
    ) -> Result<Self> {
        crate::error::catch_build("WeightedCqIndex::build", || {
            let weighted: Vec<Symbol> = weights.weighted_vars().cloned().collect();
            classify_weighted_order(cq, order, &weighted).map_err(CoreError::Query)?;
            let index = OrderedCqIndex::build_budgeted(cq, db, order, options, budget)?;
            let (blocks, lex_blocks) = Self::build_blocks(&index, weights, budget)?;
            Ok(WeightedCqIndex {
                index,
                blocks,
                lex_blocks,
                weighted,
            })
        })
    }

    /// Walks the distinct `W`-prefix valuations in lex order (one
    /// `prefix_bounds` descent per block — the directory is output-block
    /// sensitive, not answer sensitive), then sorts by `(weight, lex_lo)`
    /// and prefix-sums `wstart`.
    fn build_blocks(
        index: &OrderedCqIndex,
        weights: &VarWeights,
        budget: &Budget<'_>,
    ) -> Result<(Vec<WeightBlock>, Vec<u32>)> {
        let wlen = weights.len();
        let count = index.count();
        let mut blocks: Vec<WeightBlock> = Vec::new();
        let mut scratch = AccessScratch::new();
        let mut prefix: Vec<Value> = Vec::with_capacity(wlen);
        let mut at: Weight = 0;
        while at < count {
            budget.check("weighted/blocks")?;
            // Copy the block's W-prefix out of the scratch borrow, summing
            // its weight, before descending for the block end.
            let weight = {
                let answer = index
                    .ordered_access_into(at, &mut scratch)
                    .expect("rank below count");
                prefix.clear();
                let mut w: u128 = 0;
                for (p, &h) in index.order_to_head()[..wlen].iter().enumerate() {
                    let value = &answer[h];
                    w = w
                        .checked_add(weights.weight_of(&index.order()[p], value))
                        .ok_or(CoreError::WeightOverflow)?;
                    prefix.push(value.clone());
                }
                w
            };
            let (lt, le) = index.prefix_bounds(&prefix)?;
            debug_assert_eq!(lt, at, "block walk must land on block starts");
            debug_assert!(le > at, "blocks are non-empty");
            blocks.push(WeightBlock {
                weight,
                lex_lo: at,
                len: le - at,
                wstart: 0,
            });
            at = le;
        }
        crate::error::ensure_u32("weighted blocks", blocks.len())?;
        // lex_blocks inverts the sort: blocks were discovered in lex_lo
        // order, so pre-sort ids are lex positions; record where each
        // lex position lands.
        blocks.sort_by_key(|b| (b.weight, b.lex_lo));
        let mut wstart: Weight = 0;
        for b in blocks.iter_mut() {
            b.wstart = wstart;
            // Σ len = count ≤ u128 by construction; checked anyway.
            wstart = wstart
                .checked_add(b.len)
                .ok_or_else(|| crate::error::rank_overflow("weighted block prefix sums"))?;
        }
        let mut lex_blocks: Vec<u32> = (0..blocks.len() as u32).collect();
        lex_blocks.sort_by_key(|&i| blocks[i as usize].lex_lo);
        Ok((blocks, lex_blocks))
    }

    /// The underlying lexicographic ordered index (tie-break order).
    #[inline]
    pub fn index(&self) -> &OrderedCqIndex {
        &self.index
    }

    /// The number of answers — O(1).
    #[inline]
    pub fn count(&self) -> Weight {
        self.index.count()
    }

    /// The head attributes, in answer-tuple order.
    pub fn head(&self) -> &[Symbol] {
        self.index.head()
    }

    /// The realized variable order (tie-break order; its `W`-prefix
    /// carries the weights).
    pub fn order(&self) -> &[Symbol] {
        self.index.order()
    }

    /// The weighted variable set `W`.
    pub fn weighted_vars(&self) -> &[Symbol] {
        &self.weighted
    }

    /// Number of distinct `W`-valuations (= weight blocks).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The block holding weighted rank `k`, or `None` past the end.
    #[inline]
    fn block_of_rank(&self, k: Weight) -> Option<&WeightBlock> {
        if k >= self.count() {
            return None;
        }
        let i = self.blocks.partition_point(|b| b.wstart + b.len <= k);
        Some(&self.blocks[i])
    }

    /// The block holding lexicographic rank `lex` (which must be in
    /// range: callers obtained it from an inverted access).
    #[inline]
    fn block_of_lex(&self, lex: Weight) -> &WeightBlock {
        let i = self
            .lex_blocks
            .partition_point(|&b| self.blocks[b as usize].lex_lo <= lex);
        debug_assert!(i > 0, "lex rank below every block");
        &self.blocks[self.lex_blocks[i - 1] as usize]
    }

    /// The answer of weighted rank `k` (tuple in head order), or `None`
    /// when `k ≥ count()` — O(log n).
    pub fn ranked_access(&self, k: Weight) -> Option<Vec<Value>> {
        let blk = self.block_of_rank(k)?;
        self.index.ordered_access(blk.lex_lo + (k - blk.wstart))
    }

    /// Allocation-free [`WeightedCqIndex::ranked_access`]: writes into
    /// `scratch` and returns a borrow.
    pub fn ranked_access_into<'s>(
        &self,
        k: Weight,
        scratch: &'s mut AccessScratch,
    ) -> Option<&'s [Value]> {
        let blk = self.block_of_rank(k)?;
        self.index
            .ordered_access_into(blk.lex_lo + (k - blk.wstart), scratch)
    }

    /// The weighted rank of `answer` (head order), or `None` when it is
    /// not an answer — O(log n).
    pub fn ranked_inverted_access(&self, answer: &[Value]) -> Option<Weight> {
        let lex = self.index.ordered_inverted_access(answer)?;
        let blk = self.block_of_lex(lex);
        Some(blk.wstart + (lex - blk.lex_lo))
    }

    /// Allocation-free [`WeightedCqIndex::ranked_inverted_access`].
    pub fn ranked_inverted_access_of(
        &self,
        answer: &[Value],
        scratch: &mut AccessScratch,
    ) -> Option<Weight> {
        let lex = self.index.ordered_inverted_access_of(answer, scratch)?;
        let blk = self.block_of_lex(lex);
        Some(blk.wstart + (lex - blk.lex_lo))
    }

    /// The weight of the answer at weighted rank `k`, or `None` past the
    /// end — O(log blocks), no answer materialized.
    pub fn weight_at(&self, k: Weight) -> Option<u128> {
        self.block_of_rank(k).map(|b| b.weight)
    }

    /// The weight of `answer`, or `None` when it is not an answer —
    /// O(log n), allocation-free.
    pub fn weight_of(&self, answer: &[Value], scratch: &mut AccessScratch) -> Option<u128> {
        let lex = self.index.ordered_inverted_access_of(answer, scratch)?;
        Some(self.block_of_lex(lex).weight)
    }

    /// The contiguous weighted-rank window of all answers whose weight
    /// falls in `weights` (half-open) — O(log blocks). Contiguity is what
    /// the `(weight, lex_lo)` block sort buys.
    pub fn weight_window(&self, weights: Range<u128>) -> Range<Weight> {
        let lo = self.blocks.partition_point(|b| b.weight < weights.start);
        let hi = self.blocks.partition_point(|b| b.weight < weights.end);
        let at = |i: usize| -> Weight {
            if i == self.blocks.len() {
                self.count()
            } else {
                self.blocks[i].wstart
            }
        };
        at(lo)..at(hi.max(lo))
    }

    /// The number of answers whose weight falls in `weights` (half-open)
    /// — O(log blocks), without enumerating them.
    pub fn weight_range_count(&self, weights: Range<u128>) -> Weight {
        let w = self.weight_window(weights);
        w.end - w.start
    }

    /// The smallest answer weight, or `None` when there are no answers —
    /// O(1) (min aggregate of the dichotomy paper's tractable case).
    pub fn min_weight(&self) -> Option<u128> {
        self.blocks.first().map(|b| b.weight)
    }

    /// The largest answer weight, or `None` when there are no answers —
    /// O(1).
    pub fn max_weight(&self) -> Option<u128> {
        self.blocks.last().map(|b| b.weight)
    }

    /// A minimum-weight answer (the lexicographically least among them),
    /// or `None` when there are no answers — O(log n).
    pub fn min_answer(&self) -> Option<Vec<Value>> {
        self.ranked_access(0)
    }

    /// Allocation-free [`WeightedCqIndex::min_answer`].
    pub fn min_answer_into<'s>(&self, scratch: &'s mut AccessScratch) -> Option<&'s [Value]> {
        self.ranked_access_into(0, scratch)
    }

    /// A maximum-weight answer (the lexicographically greatest among
    /// them), or `None` when there are no answers — O(log n).
    pub fn max_answer(&self) -> Option<Vec<Value>> {
        self.ranked_access(self.count().checked_sub(1)?)
    }

    /// Allocation-free [`WeightedCqIndex::max_answer`].
    pub fn max_answer_into<'s>(&self, scratch: &'s mut AccessScratch) -> Option<&'s [Value]> {
        self.ranked_access_into(self.count().checked_sub(1)?, scratch)
    }

    /// Mints a style-tagged [`RankWindow`] over this index's **weighted**
    /// rank space, clamping out-of-bounds ends.
    pub fn rank_window(&self, ranks: Range<Weight>) -> RankWindow {
        let lo = ranks.start.min(self.count());
        let hi = ranks.end.min(self.count()).max(lo);
        RankWindow::new(lo..hi, OrderStyle::Weighted, self.order().to_vec())
    }

    /// A constant-delay scan of one weight block's answers (all answers
    /// sharing the weighted rank window's weight) in lexicographic order.
    /// Weighted rank windows are unions of lex-contiguous blocks, so a
    /// general weighted window scan chains block scans; single-block scans
    /// are the building block and what the samplers need.
    pub fn enumerate_block(&self, block: usize) -> OrderedEnumeration<'_> {
        let b = &self.blocks[block];
        self.index.range(b.lex_lo..b.lex_lo + b.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use rae_query::QueryError;
    use std::cmp::Ordering;

    fn db_ab() -> Database {
        let mut db = Database::new();
        add(
            &mut db,
            "R",
            rel_int(
                &["a", "b"],
                &[&[1, 10], &[1, 11], &[2, 10], &[3, 12], &[3, 10]],
            ),
        );
        db
    }

    fn weights_x() -> VarWeights {
        let mut w = VarWeights::new();
        w.set("x", Value::Int(1), 100);
        w.set("x", Value::Int(2), 7);
        // x=3 left at the implicit 0.
        w
    }

    /// Naive oracle: sort all answers by (weight, lex) and compare every
    /// rank in both directions.
    fn check_weighted(idx: &WeightedCqIndex, cq: &ConjunctiveQuery, db: &Database, w: &VarWeights) {
        let expected = rae_query::naive_eval(cq, db).unwrap();
        let mut rows: Vec<Vec<Value>> = expected.rows().map(<[Value]>::to_vec).collect();
        let head = idx.head().to_vec();
        rows.sort_by(|a, b| {
            let wa = w.answer_weight(&head, a).unwrap();
            let wb = w.answer_weight(&head, b).unwrap();
            wa.cmp(&wb).then_with(|| idx.order_to_head_cmp(a, b))
        });
        assert_eq!(idx.count() as usize, rows.len());
        let mut scratch = AccessScratch::new();
        for (k, row) in rows.iter().enumerate() {
            let got = idx.ranked_access(k as Weight).unwrap();
            assert_eq!(&got, row, "weighted rank {k}");
            assert_eq!(
                idx.ranked_inverted_access(row),
                Some(k as Weight),
                "inverted weighted rank {k}"
            );
            assert_eq!(
                idx.ranked_inverted_access_of(row, &mut scratch),
                Some(k as Weight)
            );
            assert_eq!(
                idx.weight_at(k as Weight),
                Some(w.answer_weight(&head, row).unwrap())
            );
        }
        assert!(idx.ranked_access(idx.count()).is_none());
    }

    impl WeightedCqIndex {
        /// Test helper: lexicographic comparison under the realized order.
        fn order_to_head_cmp(&self, a: &[Value], b: &[Value]) -> Ordering {
            self.index.order_cmp(a, b)
        }
    }

    #[test]
    fn single_relation_weighted_ranks_match_oracle() {
        let db = db_ab();
        let cq = cq("Q(x, y) :- R(x, y)");
        let w = weights_x();
        let idx = WeightedCqIndex::build(&cq, &db, &syms(&["x", "y"]), &w).unwrap();
        check_weighted(&idx, &cq, &db, &w);
        // Three distinct x values ⇒ three blocks.
        assert_eq!(idx.block_count(), 3);
        assert_eq!(idx.min_weight(), Some(0));
        assert_eq!(idx.max_weight(), Some(100));
        // min block: x=3 (weight 0), lex-least of them is (3, 10).
        assert_eq!(
            idx.min_answer().unwrap(),
            vec![Value::Int(3), Value::Int(10)]
        );
        // max block: x=1 (weight 100), lex-greatest is (1, 11).
        assert_eq!(
            idx.max_answer().unwrap(),
            vec![Value::Int(1), Value::Int(11)]
        );
        // weight window / count.
        assert_eq!(idx.weight_range_count(0..1), 2); // the two x=3 rows
        assert_eq!(idx.weight_range_count(0..8), 3); // + the x=2 row
        assert_eq!(idx.weight_range_count(7..100), 1);
        assert_eq!(idx.weight_range_count(101..u128::MAX), 0);
        assert_eq!(idx.weight_window(0..u128::MAX), 0..idx.count());
    }

    #[test]
    fn empty_weight_set_degenerates_to_lex_with_one_block() {
        let db = db_ab();
        let cq = cq("Q(x, y) :- R(x, y)");
        let w = VarWeights::new();
        let idx = WeightedCqIndex::build(&cq, &db, &syms(&["x", "y"]), &w).unwrap();
        check_weighted(&idx, &cq, &db, &w);
        assert_eq!(idx.block_count(), 1);
        assert_eq!(idx.min_weight(), Some(0));
        assert_eq!(idx.max_weight(), Some(0));
    }

    #[test]
    fn empty_result_set_has_no_blocks() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a", "b"], &[]));
        let cq = cq("Q(x, y) :- R(x, y)");
        let idx = WeightedCqIndex::build(&cq, &db, &syms(&["x", "y"]), &weights_x()).unwrap();
        assert_eq!(idx.count(), 0);
        assert_eq!(idx.block_count(), 0);
        assert!(idx.ranked_access(0).is_none());
        assert!(idx.min_weight().is_none());
        assert!(idx.max_answer().is_none());
        assert_eq!(idx.weight_range_count(0..u128::MAX), 0);
    }

    #[test]
    fn intractable_weighted_order_is_rejected_with_witness() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a"], &[&[1]]));
        add(&mut db, "S", rel_int(&["b"], &[&[2]]));
        let cq = cq("Q(x, y) :- R(x), S(y)");
        let mut w = VarWeights::new();
        w.set("x", Value::Int(1), 1);
        w.set("y", Value::Int(2), 1);
        match WeightedCqIndex::build(&cq, &db, &syms(&["x", "y"]), &w) {
            Err(CoreError::Query(QueryError::IntractableWeightedOrder { left, right })) => {
                assert_ne!(left, right);
            }
            other => panic!("expected X+Y rejection, got {other:?}"),
        }
    }

    #[test]
    fn weight_overflow_during_block_walk_is_structured() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a", "b"], &[&[1, 2]]));
        let cq = cq("Q(x, y) :- R(x, y)");
        let mut w = VarWeights::new();
        w.set("x", Value::Int(1), u128::MAX);
        w.set("y", Value::Int(2), 1);
        match WeightedCqIndex::build(&cq, &db, &syms(&["x", "y"]), &w) {
            Err(CoreError::WeightOverflow) => {}
            other => panic!("expected WeightOverflow, got {other:?}"),
        }
    }

    #[test]
    fn join_query_weighted_on_shared_prefix() {
        let mut db = Database::new();
        add(
            &mut db,
            "R",
            rel_int(&["a", "b"], &[&[1, 10], &[1, 11], &[2, 10], &[3, 12]]),
        );
        add(
            &mut db,
            "S",
            rel_int(&["b", "c"], &[&[10, 0], &[11, 0], &[12, 1], &[10, 5]]),
        );
        let cq = cq("Q(x, y, z) :- R(x, y), S(y, z)");
        let mut w = VarWeights::new();
        w.set("y", Value::Int(10), 50);
        w.set("y", Value::Int(11), 3);
        w.set("x", Value::Int(1), 1000);
        let idx = WeightedCqIndex::build(&cq, &db, &syms(&["x", "y", "z"]), &w).unwrap();
        check_weighted(&idx, &cq, &db, &w);
        // Weighting a non-prefix of the order is rejected structurally.
        match WeightedCqIndex::build(&cq, &db, &syms(&["z", "x", "y"]), &w) {
            Err(CoreError::Query(QueryError::WeightedOrderInterleaved { .. })) => {}
            other => panic!("expected interleaving rejection, got {other:?}"),
        }
    }

    #[test]
    fn rank_windows_carry_their_style() {
        let db = db_ab();
        let cq = cq("Q(x, y) :- R(x, y)");
        let idx = WeightedCqIndex::build(&cq, &db, &syms(&["x", "y"]), &weights_x()).unwrap();
        let ww = idx.rank_window(1..100);
        assert_eq!(ww.style(), OrderStyle::Weighted);
        assert_eq!(ww.ranks(), 1..idx.count());
        let lw = idx.index().rank_window(0..2);
        assert_eq!(lw.style(), OrderStyle::Lexicographic);
        assert_eq!(lw.order(), idx.order());
    }
}
