//! Elias-Fano encoding of a node's startIndex (DESIGN.md §16).
//!
//! Algorithm 2's startIndex is, per bucket, a non-decreasing prefix-sum
//! array of answer weights. Because every row's weight is at least 1, the
//! *global* cumulative sequence `g[i] = (sum of totals of earlier
//! buckets) + startIndex[i]` is strictly increasing — exactly the shape
//! Elias-Fano compresses to `n·(2 + ⌈log₂(u/n)⌉)` bits plus a small
//! select directory, while still answering `g(i)` in O(1). Per-bucket
//! startIndex values are recovered as `g(i) − g(first row of bucket)`,
//! and `rank_leq` (the binary search a rank descent performs inside one
//! bucket) runs on `g` directly since the bucket base shifts both sides
//! equally.
//!
//! The store picks this encoding per node only when the cumulative total
//! fits `u64` and the encoded size beats the compact `u64` layout; the
//! compact/wide encodings remain as fallbacks with byte-identical rank
//! semantics. Columns are [`Col`]s, so a borrowed snapshot serves rank
//! descents straight from file bytes.
//!
//! Layout: `low_bits = ⌊log₂(u/n)⌋` low-order bits of each value packed
//! into `lower`; the remaining high bits as a unary-coded bitvector
//! `upper` (bit `high(i) + i` set for each `i`); `samples[k]` caches the
//! bit position of set bit `64k` so `select1` scans at most a few words.

use crate::column::Col;

/// Select-directory granularity: one cached position per this many set
/// bits. `select1` scans from the nearest sample; with `low_bits` chosen
/// as ⌊log₂(u/n)⌋ the upper bitvector has density ≥ 1/3, so the scan is
/// bounded by a handful of words.
const SAMPLE_EVERY: usize = 64;

/// An Elias-Fano-encoded strictly increasing `u64` sequence, answering
/// `get(i)` in O(1) via a sampled `select1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EfStarts {
    len: usize,
    low_bits: u32,
    lower: Col<u64>,
    upper: Col<u64>,
    samples: Col<u64>,
}

impl EfStarts {
    /// Encodes a strictly increasing sequence, or `None` when the
    /// encoding would not beat the compact `u64` layout (8 bytes/row).
    /// Callers guarantee monotonicity (debug-asserted).
    pub fn encode(global: &[u64]) -> Option<EfStarts> {
        let n = global.len();
        if n == 0 {
            return None;
        }
        debug_assert!(
            global.windows(2).all(|w| w[0] < w[1]),
            "EF input not strictly increasing"
        );
        let last = global[n - 1];
        // Universe size; `last` may be u64::MAX so compute in u128.
        let u = last as u128 + 1;
        let low_bits = (u / n as u128).checked_ilog2().unwrap_or(0).min(63);
        let high_last = last >> low_bits;
        let upper_bits = (n as u64).checked_add(high_last)?.checked_add(1)?;
        let upper_words = upper_bits.div_ceil(64) as usize;
        let lower_words = (n as u64 * low_bits as u64).div_ceil(64) as usize;
        let sample_words = n.div_ceil(SAMPLE_EVERY);
        let encoded_bytes = (upper_words + lower_words + sample_words) * 8 + 24;
        if encoded_bytes >= n * 8 {
            return None;
        }

        let mut lower = vec![0u64; lower_words];
        let mut upper = vec![0u64; upper_words];
        let mut samples = Vec::with_capacity(sample_words);
        let low_mask = if low_bits == 0 {
            0
        } else {
            u64::MAX >> (64 - low_bits)
        };
        for (i, &v) in global.iter().enumerate() {
            if low_bits > 0 {
                let low = v & low_mask;
                let bit = i as u64 * low_bits as u64;
                let (word, shift) = ((bit / 64) as usize, (bit % 64) as u32);
                lower[word] |= low << shift;
                if shift as u64 + low_bits as u64 > 64 {
                    lower[word + 1] |= low >> (64 - shift);
                }
            }
            let pos = (v >> low_bits) + i as u64;
            upper[(pos / 64) as usize] |= 1u64 << (pos % 64);
            if i % SAMPLE_EVERY == 0 {
                samples.push(pos);
            }
        }
        Some(EfStarts {
            len: n,
            low_bits,
            lower: Col::Owned(lower),
            upper: Col::Owned(upper),
            samples: Col::Owned(samples),
        })
    }

    /// Reassembles an encoding from decoded (possibly borrowed) columns,
    /// fully validating structure so `get` can never read out of bounds
    /// or return values from a malformed bitvector: column lengths must
    /// match `len`/`low_bits` exactly, the upper bitvector must contain
    /// exactly `len` set bits with none at or beyond the top, and every
    /// sample must equal the position of set bit `64k`.
    pub fn from_parts(
        len: usize,
        low_bits: u32,
        lower: Col<u64>,
        upper: Col<u64>,
        samples: Col<u64>,
    ) -> Result<EfStarts, String> {
        if len == 0 {
            return Err("EF sequence cannot be empty".into());
        }
        if low_bits > 63 {
            return Err(format!("EF low_bits {low_bits} out of range"));
        }
        // u128: a hostile `len` from the wire must not overflow the
        // expected-size computation into a spurious match.
        let want_lower = usize::try_from((len as u128 * low_bits as u128).div_ceil(64))
            .map_err(|_| "EF lower array size overflows".to_string())?;
        if lower.len() != want_lower {
            return Err(format!(
                "EF lower array has {} words, expected {want_lower}",
                lower.len()
            ));
        }
        if samples.len() != len.div_ceil(SAMPLE_EVERY) {
            return Err(format!(
                "EF sample directory has {} entries, expected {}",
                samples.len(),
                len.div_ceil(SAMPLE_EVERY)
            ));
        }
        // One linear scan of the upper bitvector: count set bits, check
        // each 64th against the sample directory.
        let mut seen = 0usize;
        for (w, &word) in upper.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let tz = bits.trailing_zeros();
                bits &= bits - 1;
                if seen >= len {
                    return Err(format!("EF upper bitvector has more than {len} set bits"));
                }
                if seen.is_multiple_of(SAMPLE_EVERY) {
                    let pos = w as u64 * 64 + tz as u64;
                    if samples[seen / SAMPLE_EVERY] != pos {
                        return Err(format!(
                            "EF sample {} is {} but set bit {seen} is at {pos}",
                            seen / SAMPLE_EVERY,
                            samples[seen / SAMPLE_EVERY]
                        ));
                    }
                }
                seen += 1;
            }
        }
        if seen != len {
            return Err(format!(
                "EF upper bitvector has {seen} set bits, expected {len}"
            ));
        }
        Ok(EfStarts {
            len,
            low_bits,
            lower,
            upper,
            samples,
        })
    }

    /// Number of encoded values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty (never true for a validated
    /// encoding, but the conventional pair of `len`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The encoding parameters and columns, in wire order — what the
    /// store serializes.
    pub fn parts(&self) -> (usize, u32, &Col<u64>, &Col<u64>, &Col<u64>) {
        (
            self.len,
            self.low_bits,
            &self.lower,
            &self.upper,
            &self.samples,
        )
    }

    /// Position of the `i`-th set bit of the upper bitvector (0-based).
    /// `i < len` required; validation guaranteed at least `len` set bits,
    /// so the scan terminates in bounds.
    #[inline]
    fn select1(&self, i: usize) -> u64 {
        let upper = self.upper.as_slice();
        let start = self.samples[i / SAMPLE_EVERY];
        let mut remaining = (i % SAMPLE_EVERY) as u32;
        let mut w = (start / 64) as usize;
        // Mask off bits before the sampled position in its word.
        let mut word = upper[w] & (u64::MAX << (start % 64));
        loop {
            let ones = word.count_ones();
            if ones > remaining {
                let mut bits = word;
                for _ in 0..remaining {
                    bits &= bits - 1;
                }
                return w as u64 * 64 + bits.trailing_zeros() as u64;
            }
            remaining -= ones;
            w += 1;
            word = upper[w];
        }
    }

    /// The `i`-th value of the global cumulative sequence.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        let high = self.select1(i) - i as u64;
        (high << self.low_bits) | self.low(i)
    }

    #[inline]
    fn low(&self, i: usize) -> u64 {
        if self.low_bits == 0 {
            return 0;
        }
        let lower = self.lower.as_slice();
        let bit = i as u64 * self.low_bits as u64;
        let (word, shift) = ((bit / 64) as usize, (bit % 64) as u32);
        let mut v = lower[word] >> shift;
        if shift + self.low_bits > 64 && word + 1 < lower.len() {
            v |= lower[word + 1] << (64 - shift);
        }
        v & (u64::MAX >> (64 - self.low_bits))
    }

    /// Count of positions `k` in `start..end` (a bucket's row range) with
    /// `g(k) − g(start) ≤ j` — the Elias-Fano form of the compact
    /// layout's `rank_leq`, identical semantics bucket-by-bucket. `j` is
    /// a full `u128` answer rank; comparison happens in `u128` so wide-j
    /// overflow boundaries behave exactly like the compact fallback.
    pub fn rank_leq(&self, start: usize, end: usize, j: u128) -> usize {
        debug_assert!(start <= end && end <= self.len);
        if start >= end {
            return 0;
        }
        let base = self.get(start);
        // partition_point over the bucket's rows.
        let mut lo = start;
        let mut hi = end;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            // checked_sub: on valid data g is increasing so g(mid) ≥ base;
            // a malformed (yet checksum-valid) file must degrade to a
            // wrong count that semantic validation rejects, never a panic.
            if self.get(mid).checked_sub(base).map(u128::from) <= Some(j) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo - start
    }

    /// Sequentially decodes the full global sequence (owned loads expand
    /// EF back to the compact layout). One linear pass over the upper
    /// bitvector — no per-element `select1`.
    pub fn decode_all(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        let mut i = 0usize;
        for (w, &word) in self.upper.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let pos = w as u64 * 64 + bits.trailing_zeros() as u64;
                bits &= bits - 1;
                let high = pos - i as u64;
                out.push((high << self.low_bits) | self.low(i));
                i += 1;
            }
        }
        debug_assert_eq!(i, self.len);
        out
    }

    /// Whether every column is a zero-copy view into a snapshot buffer.
    pub fn is_borrowed(&self) -> bool {
        self.lower.is_borrowed() && self.upper.is_borrowed() && self.samples.is_borrowed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strictly_increasing(seed: u64, n: usize, gap: u64) -> Vec<u64> {
        let mut state = seed | 1;
        let mut v = 0u64;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                v = v + 1 + (state >> 33) % gap;
                v
            })
            .collect()
    }

    #[test]
    fn encode_get_round_trips() {
        for gap in [1u64, 7, 1000, 1 << 40] {
            let g = strictly_increasing(42, 500, gap);
            let Some(ef) = EfStarts::encode(&g) else {
                // High-gap sequences may be unprofitable; that's a valid
                // outcome, not a failure.
                assert!(gap >= 1 << 40);
                continue;
            };
            for (i, &v) in g.iter().enumerate() {
                assert_eq!(ef.get(i), v, "gap {gap} index {i}");
            }
            assert_eq!(ef.decode_all(), g);
        }
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let g = strictly_increasing(7, 300, 9);
        let ef = EfStarts::encode(&g).unwrap();
        let (len, low_bits, lower, upper, samples) = ef.parts();
        let re = EfStarts::from_parts(len, low_bits, lower.clone(), upper.clone(), samples.clone())
            .unwrap();
        assert_eq!(re, ef);

        // A cleared upper bit is caught by the popcount check.
        let mut bad_upper: Vec<u64> = upper.as_slice().to_vec();
        for w in bad_upper.iter_mut() {
            if *w != 0 {
                *w &= *w - 1;
                break;
            }
        }
        assert!(EfStarts::from_parts(
            len,
            low_bits,
            lower.clone(),
            Col::Owned(bad_upper),
            samples.clone()
        )
        .is_err());

        // A corrupted sample is caught by the directory check.
        let mut bad_samples: Vec<u64> = samples.as_slice().to_vec();
        bad_samples[0] ^= 1;
        assert!(EfStarts::from_parts(
            len,
            low_bits,
            lower.clone(),
            upper.clone(),
            Col::Owned(bad_samples)
        )
        .is_err());
    }

    #[test]
    fn rank_leq_matches_partition_point() {
        let g = strictly_increasing(99, 400, 5);
        let ef = EfStarts::encode(&g).unwrap();
        let buckets = [(0usize, 50usize), (50, 51), (51, 400), (120, 120)];
        for &(start, end) in &buckets {
            let base = if start < end { g[start] } else { 0 };
            for j in [0u128, 1, 3, 17, 1 << 20, u128::MAX] {
                let expect = g[start..end]
                    .iter()
                    .filter(|&&v| (v - base) as u128 <= j)
                    .count();
                assert_eq!(
                    ef.rank_leq(start, end, j),
                    expect,
                    "bucket {start}..{end} j {j}"
                );
            }
        }
    }

    #[test]
    fn dense_sequence_is_profitable() {
        // Consecutive integers: the canonical dense case, ~2 bits/value.
        let g: Vec<u64> = (1..=4096).collect();
        let ef = EfStarts::encode(&g).unwrap();
        let (_, _, lower, upper, samples) = ef.parts();
        let bytes = (lower.len() + upper.len() + samples.len()) * 8;
        assert!(
            bytes * 4 < g.len() * 8,
            "EF should be ≤ 1/4 of compact here"
        );
        assert_eq!(ef.decode_all(), g);
    }
}
