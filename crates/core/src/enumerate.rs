//! Constant-delay sequential enumeration (Theorem 4.1, upper bound).
//!
//! The access routine of Algorithm 3 gives `Enum⟨lin, log⟩` by calling
//! `access(0), access(1), …` (Fact 3.5) — every step pays a binary search.
//! The Bagan–Durand–Grandjean bound is stronger: free-connex CQs are in
//! `Enum⟨lin, const⟩`. This module provides that enumerator: an
//! odometer-style cursor holding one current row per join-tree node and
//! advancing the least-significant position on each step. The delay is
//! bounded by the join-tree size — a constant in data complexity — and the
//! emitted order is exactly the index's access order (verified by tests).

// Sanctioned panics: cursors only dereference bucket rows the index itself emitted.
#![allow(clippy::expect_used)]

use crate::index::{BucketView, CqIndex};
use crate::weight::Weight;
use rae_data::Value;

/// A constant-delay cursor over the answers of a [`CqIndex`], in the
/// index's enumeration order.
///
/// [`CqSequential::next_ref`] is the allocation-free lending interface: it
/// advances the cursor and returns a borrow of an internal answer buffer.
/// The `Iterator` implementation wraps it, cloning the buffer into an owned
/// `Vec<Value>` per item for callers that need ownership.
#[derive(Debug, Clone)]
pub struct CqSequential<'a> {
    index: &'a CqIndex,
    /// Current row id per node (meaningful only while `state == Running`).
    rows: Vec<u32>,
    /// Reused answer buffer backing [`CqSequential::next_ref`].
    answer: Vec<Value>,
    state: State,
    emitted: Weight,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// `rows` holds the first answer, not yet emitted.
    Fresh,
    /// `rows` holds the last emitted answer.
    Running,
    Done,
}

impl<'a> CqSequential<'a> {
    /// Positions the cursor before the first answer.
    pub fn new(index: &'a CqIndex) -> Self {
        let node_count = index.node_count();
        let mut cursor = CqSequential {
            index,
            rows: vec![0; node_count],
            answer: vec![Value::Int(0); index.arity()],
            state: State::Done,
            emitted: 0,
        };
        if index.count() > 0 {
            for &root in index.plan().roots() {
                let bucket = index.root_bucket(root).expect("non-empty index");
                cursor.reset_subtree(root, bucket.start);
            }
            cursor.state = State::Fresh;
        }
        cursor
    }

    /// The cursor's position: answers before the cursor plus answers
    /// emitted (equals the number emitted when the cursor started at 0;
    /// after [`CqSequential::seek`]`(j)` it starts at `j`).
    pub fn emitted(&self) -> Weight {
        self.emitted
    }

    /// Positions the cursor so the next [`CqSequential::next_ref`] returns
    /// answer `j` of the enumeration order, in O(log n) (one access-style
    /// descent). Returns `false` (and exhausts the cursor) when
    /// `j ≥ count()`.
    ///
    /// This is what lets a ranked/paginated scan start mid-stream and then
    /// proceed with constant delay (see `crate::ordered`).
    pub fn seek(&mut self, j: Weight) -> bool {
        let index = self.index;
        if j >= index.count() {
            self.state = State::Done;
            return false;
        }
        // Peel the root digits least-significant-first (the last root is
        // least significant, matching `SplitIndex`).
        let mut rest = j;
        for &root in index.plan().roots().iter().rev() {
            let bucket = index.root_bucket(root).expect("non-empty index");
            let digit = rest % bucket.total;
            rest /= bucket.total;
            self.seek_subtree(root, bucket, digit);
        }
        debug_assert_eq!(rest, 0, "seek index exceeded the root product");
        self.state = State::Fresh;
        self.emitted = j;
        true
    }

    /// Positions `node`'s subtree on sub-answer `sub` of `bucket` (the
    /// Algorithm 3 descent, writing rows instead of values).
    fn seek_subtree(&mut self, node: usize, bucket: BucketView, sub: Weight) {
        let index = self.index;
        debug_assert!(sub < bucket.total);
        // First row whose startIndex exceeds `sub`, minus one: the owner.
        let (mut lo, mut hi) = (bucket.start, bucket.end);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if index.row_start(node, mid) <= sub {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let row = lo - 1;
        self.rows[node] = row;
        let mut remainder = sub - index.row_start(node, row);
        for (child_pos, &child) in index.plan().children(node).iter().enumerate().rev() {
            let cb = index.child_bucket(node, row, child_pos);
            self.seek_subtree(child, cb, remainder % cb.total);
            remainder /= cb.total;
        }
        debug_assert_eq!(remainder, 0, "seek index exceeded the subtree weight");
    }

    /// Sets `node`'s row to `row` and every descendant to the first row of
    /// its matching bucket.
    ///
    /// `self.index` is copied to a local first so the recursion can borrow
    /// the plan's child lists directly (they live as long as the index, not
    /// as long as `&mut self`) — no `to_vec` on the per-answer path.
    fn reset_subtree(&mut self, node: usize, row: u32) {
        let index = self.index;
        self.rows[node] = row;
        for (child_pos, &child) in index.plan().children(node).iter().enumerate() {
            let bucket = index.child_bucket(node, row, child_pos);
            self.reset_subtree(child, bucket.start);
        }
    }

    /// Advances the sub-answer rooted at `node` within the node's current
    /// bucket; returns `false` on overflow (the subtree wrapped around).
    fn advance_subtree(&mut self, node: usize, bucket_start: u32, bucket_end: u32) -> bool {
        // Children are digits with the last child least significant
        // (Algorithm 3's SplitIndex convention).
        let index = self.index;
        let children = index.plan().children(node);
        let row = self.rows[node];
        for (child_pos, &child) in children.iter().enumerate().rev() {
            let bucket = index.child_bucket(node, row, child_pos);
            if self.advance_subtree(child, bucket.start, bucket.end) {
                // Everything after `child` already wrapped; reset it.
                for (later_pos, &later) in children.iter().enumerate().skip(child_pos + 1) {
                    let later_bucket = index.child_bucket(node, row, later_pos);
                    self.reset_subtree(later, later_bucket.start);
                }
                return true;
            }
        }
        // All children wrapped: advance this node's own row.
        if row + 1 < bucket_end {
            self.reset_subtree(node, row + 1);
            true
        } else {
            self.rows[node] = bucket_start;
            false
        }
    }

    /// Advances to the next answer; returns `false` when exhausted.
    fn advance(&mut self) -> bool {
        let index = self.index;
        let roots = index.plan().roots();
        for (pos, &root) in roots.iter().enumerate().rev() {
            let bucket = index.root_bucket(root).expect("non-empty index");
            if self.advance_subtree(root, bucket.start, bucket.end) {
                for &later in roots.iter().skip(pos + 1) {
                    let later_bucket = index.root_bucket(later).expect("non-empty");
                    self.reset_subtree(later, later_bucket.start);
                }
                return true;
            }
        }
        false
    }

    fn fill_answer(&mut self) {
        for node in 0..self.index.node_count() {
            self.index
                .write_row_values(node, self.rows[node], &mut self.answer);
        }
    }

    /// Advances to the next answer and returns a borrow of it, or `None`
    /// when exhausted — the constant-delay, zero-allocation interface.
    ///
    /// The returned slice is valid until the next call; clone it (or use the
    /// `Iterator` impl) to keep answers.
    pub fn next_ref(&mut self) -> Option<&[Value]> {
        match self.state {
            State::Done => None,
            State::Fresh => {
                self.state = State::Running;
                self.emitted += 1;
                self.fill_answer();
                Some(&self.answer)
            }
            State::Running => {
                if self.advance() {
                    self.emitted += 1;
                    self.fill_answer();
                    Some(&self.answer)
                } else {
                    self.state = State::Done;
                    None
                }
            }
        }
    }
}

impl Iterator for CqSequential<'_> {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        self.next_ref().map(<[Value]>::to_vec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = usize::try_from(self.index.count() - self.emitted).unwrap_or(usize::MAX);
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use rae_data::Database;
    use rae_query::parser::parse_cq;

    fn db() -> Database {
        let mut db = Database::new();
        add(
            &mut db,
            "R",
            rel_int(&["a", "b"], &[&[1, 1], &[2, 1], &[3, 2], &[4, 9]]),
        );
        add(
            &mut db,
            "S",
            rel_int(
                &["b", "c"],
                &[&[1, 10], &[1, 11], &[2, 20], &[2, 21], &[2, 22], &[9, 0]],
            ),
        );
        add(&mut db, "T", rel_int(&["d"], &[&[100], &[200]]));
        db
    }

    fn check_matches_access_order(query: &str) {
        let db = db();
        let cq = parse_cq(query).unwrap();
        let idx = built(&cq, &db);
        let via_access: Vec<Vec<Value>> = idx.enumerate().collect();
        let via_cursor: Vec<Vec<Value>> = CqSequential::new(&idx).collect();
        assert_eq!(
            via_cursor, via_access,
            "sequential order must equal the access order for {query}"
        );
    }

    #[test]
    fn matches_access_order_on_path_join() {
        check_matches_access_order("Q(x, y, z) :- R(x, y), S(y, z)");
    }

    #[test]
    fn matches_access_order_on_projection() {
        check_matches_access_order("Q(x, y) :- R(x, y), S(y, z)");
    }

    #[test]
    fn matches_access_order_on_star() {
        check_matches_access_order("Q(x, y, z, d) :- R(x, y), S(y, z), T(d)");
    }

    #[test]
    fn matches_access_order_on_cross_product() {
        check_matches_access_order("Q(x, d) :- R(x, y), T(d)");
    }

    #[test]
    fn empty_index_yields_nothing() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a", "b"], &[]));
        let cq = cq("Q(x, y) :- R(x, y)");
        let idx = built(&cq, &db);
        let mut cursor = CqSequential::new(&idx);
        assert!(cursor.next().is_none());
        assert!(cursor.next().is_none());
    }

    #[test]
    fn boolean_query_emits_single_empty_tuple() {
        let db = db();
        let cq = cq("Q() :- R(x, y), S(y, z)");
        let idx = built(&cq, &db);
        let all: Vec<Vec<Value>> = CqSequential::new(&idx).collect();
        assert_eq!(all, vec![Vec::<Value>::new()]);
    }

    #[test]
    fn seek_resumes_anywhere_in_the_order() {
        let db = db();
        let cq = cq("Q(x, y, z, d) :- R(x, y), S(y, z), T(d)");
        let idx = built(&cq, &db);
        let all: Vec<Vec<Value>> = idx.enumerate().collect();
        let mut cursor = CqSequential::new(&idx);
        for start in [0, 1, idx.count() / 2, idx.count() - 1] {
            assert!(cursor.seek(start));
            assert_eq!(cursor.emitted(), start);
            for (offset, expected) in all.iter().skip(start as usize).take(3).enumerate() {
                let got = cursor.next_ref().expect("in range");
                assert_eq!(got, expected.as_slice(), "seek({start})+{offset}");
            }
        }
        // Out of range exhausts the cursor.
        assert!(!cursor.seek(idx.count()));
        assert!(cursor.next_ref().is_none());
        // But it can be revived by another in-range seek.
        assert!(cursor.seek(0));
        assert_eq!(cursor.next_ref().unwrap(), all[0].as_slice());
    }

    #[test]
    fn size_hint_tracks_progress() {
        let db = db();
        let cq = cq("Q(x, y, z) :- R(x, y), S(y, z)");
        let idx = built(&cq, &db);
        let n = idx.count() as usize;
        let mut cursor = CqSequential::new(&idx);
        assert_eq!(cursor.size_hint(), (n, Some(n)));
        cursor.next();
        assert_eq!(cursor.size_hint(), (n - 1, Some(n - 1)));
    }
}
