//! REnum(CQ): random-order enumeration of a free-connex CQ (Theorem 3.7).
//!
//! Composes the lazy Fisher–Yates shuffle (Algorithm 1) with random access
//! (Algorithm 3): linear preprocessing, O(log n) delay, provably uniform
//! permutation of the answers.

// Sanctioned panics: the shuffle only draws indices below `count`, so access cannot miss.
#![allow(clippy::expect_used)]

use crate::index::CqIndex;
use crate::scratch::AccessScratch;
use crate::shuffle::LazyShuffle;
use crate::weight::Weight;
use rae_data::Value;
use rand::Rng;

/// An iterator emitting every answer of a [`CqIndex`] exactly once, in
/// uniformly random order.
///
/// Internally reuses one [`AccessScratch`] across all accesses, so the only
/// allocation per emitted answer is the owned `Vec<Value>` the iterator
/// yields. [`CqShuffle::next_ref`] avoids even that.
#[derive(Debug)]
pub struct CqShuffle<'a, R: Rng> {
    index: &'a CqIndex,
    shuffle: LazyShuffle<R>,
    scratch: AccessScratch,
}

impl<'a, R: Rng> CqShuffle<'a, R> {
    /// Starts a fresh random permutation over `index`.
    pub fn new(index: &'a CqIndex, rng: R) -> Self {
        CqShuffle {
            index,
            shuffle: LazyShuffle::new(index.count(), rng),
            scratch: AccessScratch::new(),
        }
    }

    /// Answers not yet emitted.
    pub fn remaining(&self) -> Weight {
        self.shuffle.remaining()
    }

    /// Advances to the next answer of the permutation and returns a borrow
    /// of it — the zero-allocation interface (amortized; the lazy shuffle's
    /// sparse map still grows by O(1) entries per step).
    pub fn next_ref(&mut self) -> Option<&[Value]> {
        let j = self.shuffle.next()?;
        Some(
            self.index
                .access_into(j, &mut self.scratch)
                .expect("shuffle stays in range"),
        )
    }
}

impl<R: Rng> Iterator for CqShuffle<'_, R> {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        self.next_ref().map(<[Value]>::to_vec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.shuffle.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use rae_data::{Database, Relation, Schema};

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    fn small_index() -> (CqIndex, Database) {
        let mut db = Database::new();
        add(
            &mut db,
            "R",
            Relation::from_rows(
                Schema::new(["a", "b"]).unwrap(),
                (0..4i64).map(|i| vec![Value::Int(i), Value::Int(i % 2)]),
            )
            .unwrap(),
        );
        add(
            &mut db,
            "S",
            Relation::from_rows(
                Schema::new(["b", "c"]).unwrap(),
                (0..3i64).map(|i| vec![Value::Int(i % 2), Value::Int(i * 10)]),
            )
            .unwrap(),
        );
        let cq = cq("Q(x, y, z) :- R(x, y), S(y, z)");
        let idx = built(&cq, &db);
        (idx, db)
    }

    #[test]
    fn emits_every_answer_exactly_once() {
        let (idx, _db) = small_index();
        let shuffle = idx.random_permutation(StdRng::seed_from_u64(1));
        let mut got: Vec<Vec<Value>> = shuffle.collect();
        assert_eq!(got.len() as Weight, idx.count());
        got.sort();
        got.dedup();
        assert_eq!(got.len() as Weight, idx.count(), "duplicates emitted");
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let (idx, _db) = small_index();
        let a: Vec<Vec<Value>> = idx.random_permutation(StdRng::seed_from_u64(1)).collect();
        let b: Vec<Vec<Value>> = idx.random_permutation(StdRng::seed_from_u64(2)).collect();
        assert_eq!(a.len(), b.len());
        assert_ne!(a, b, "two seeds should almost surely give different orders");
    }

    #[test]
    fn first_answer_is_uniform() {
        let (idx, _db) = small_index();
        let n = idx.count();
        assert!(n >= 4);
        let mut counts: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
        let trials = 3000usize;
        let mut seed_rng = StdRng::seed_from_u64(99);
        for _ in 0..trials {
            let seed = rand::Rng::gen::<u64>(&mut seed_rng);
            let mut shuffle = idx.random_permutation(StdRng::seed_from_u64(seed));
            let first = shuffle.next().unwrap();
            *counts.entry(first).or_insert(0) += 1;
        }
        assert_eq!(counts.len() as Weight, n, "every answer must appear first");
        let expected = trials as f64 / n as f64;
        for (ans, count) in counts {
            let ratio = count as f64 / expected;
            assert!(
                (0.7..=1.3).contains(&ratio),
                "answer {ans:?} first {count} times (expected ≈{expected:.0})"
            );
        }
    }

    #[test]
    fn empty_index_yields_nothing() {
        let mut db = Database::new();
        add(
            &mut db,
            "R",
            Relation::from_rows(Schema::new(["a", "b"]).unwrap(), Vec::new()).unwrap(),
        );
        let cq = cq("Q(x, y) :- R(x, y)");
        let idx = built(&cq, &db);
        let mut shuffle = idx.random_permutation(StdRng::seed_from_u64(0));
        assert!(shuffle.next().is_none());
    }
}
