//! Algorithm 5 / Theorem 5.4 — REnum(UCQ): random-order enumeration of a
//! union of free-connex CQs with expected logarithmic delay.
//!
//! Every iteration samples a member CQ weighted by its remaining answer
//! count, samples an element of that member uniformly, determines the
//! element's *providers* (members still containing it) and its *owner* (the
//! provider with the least index), deletes the element from the non-owners,
//! and emits it only when it was reached through its owner — otherwise the
//! iteration *rejects*. Each element is rejected at most once overall, which
//! gives the amortized-constant and expected-constant iteration bounds of
//! Lemma 5.2.

use crate::delset::DeletableSet;
use crate::index::CqIndex;
use crate::scratch::AccessScratch;
use crate::weight::Weight;
use crate::Result;
use rae_data::{Database, Value};
use rae_query::UnionQuery;
use rand::Rng;
use std::sync::Arc;

/// One step of Algorithm 5: either an emitted answer or a rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UcqEvent {
    /// A fresh answer, uniform among those not yet emitted.
    Answer(Vec<Value>),
    /// A rejected iteration (the element was reached via a non-owner; it has
    /// now been deleted from all non-owners and will not be rejected again).
    Rejected,
}

/// Random-order enumeration of a union of free-connex CQs.
///
/// The iterator interface yields answers only; use
/// [`UcqShuffle::next_event`] to observe rejections (the Figure 5
/// experiment measures the time they consume).
#[derive(Debug)]
pub struct UcqShuffle<R: Rng> {
    members: Vec<Member>,
    rng: R,
    rejections: u64,
    emitted: u64,
    /// Lines 6–7 of Algorithm 5. Disabling turns the "each answer rejected
    /// at most once" amortization off — kept as an ablation knob for the
    /// benchmark harness; always `true` in normal use.
    delete_on_rejection: bool,
    /// Scratch for producing the sampled element (holds the element between
    /// access and emission).
    element_scratch: AccessScratch,
    /// Scratch for the providers' inverted-access probes.
    probe_scratch: AccessScratch,
    /// Reused provider list `(member, index-in-member)`.
    providers: Vec<(usize, Weight)>,
}

#[derive(Debug)]
struct Member {
    index: Arc<CqIndex>,
    set: DeletableSet,
}

impl<R: Rng> UcqShuffle<R> {
    /// Builds the per-disjunct indexes (with inverted access) and starts the
    /// enumeration. Linear preprocessing in `|D|` per disjunct.
    pub fn build(ucq: &UnionQuery, db: &Database, rng: R) -> Result<Self> {
        let mut indexes = Vec::with_capacity(ucq.len());
        for d in ucq.disjuncts() {
            let idx = CqIndex::build(d, db)?;
            idx.prepare_inverted_access();
            indexes.push(Arc::new(idx));
        }
        Ok(Self::from_indexes(indexes, rng))
    }

    /// Starts the enumeration over pre-built member indexes. All members
    /// must share the same head arity (guaranteed when they come from one
    /// [`UnionQuery`]).
    pub fn from_indexes(indexes: Vec<Arc<CqIndex>>, rng: R) -> Self {
        let members = indexes
            .into_iter()
            .map(|index| {
                let set = DeletableSet::new(index.count());
                Member { index, set }
            })
            .collect();
        UcqShuffle {
            members,
            rng,
            rejections: 0,
            emitted: 0,
            delete_on_rejection: true,
            element_scratch: AccessScratch::new(),
            probe_scratch: AccessScratch::new(),
            providers: Vec::new(),
        }
    }

    /// Ablation knob: disables the deletion of rejected elements from
    /// non-owner members (Algorithm 5, lines 6–7). The permutation stays
    /// uniform, but shared answers can then be rejected repeatedly, losing
    /// the amortized-constant guarantee of Lemma 5.2.
    pub fn with_rejection_deletion(mut self, enabled: bool) -> Self {
        self.delete_on_rejection = enabled;
        self
    }

    /// Total remaining (not yet emitted) indices across members, counting an
    /// answer shared by `k` members up to `k` times until its duplicates are
    /// discovered and deleted.
    pub fn remaining_indices(&self) -> Weight {
        self.members.iter().map(|m| m.set.remaining()).sum()
    }

    /// Number of rejected iterations so far.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Number of answers emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Runs one iteration of Algorithm 5.
    ///
    /// Returns `None` once every answer has been emitted.
    pub fn next_event(&mut self) -> Option<UcqEvent> {
        let total: Weight = self.remaining_indices();
        if total == 0 {
            return None;
        }

        // Line 2: choose a member weighted by its remaining count.
        let mut pick = self.rng.gen_range(0..total);
        let mut chosen = 0usize;
        for (i, m) in self.members.iter().enumerate() {
            let c = m.set.remaining();
            if pick < c {
                chosen = i;
                break;
            }
            pick -= c;
        }

        // Line 3: sample an element of the chosen member uniformly. The
        // element lives in `element_scratch` — rejected iterations never
        // materialize an owned answer.
        let chosen_idx = self.members[chosen]
            .set
            .sample(&mut self.rng)
            .expect("chosen member is non-empty");
        self.members[chosen]
            .index
            .access_into(chosen_idx, &mut self.element_scratch)
            .expect("sampled index is in range");

        // Line 4: providers — members that still contain the element.
        self.providers.clear();
        for (i, m) in self.members.iter().enumerate() {
            if let Some(idx) = m
                .index
                .inverted_access_of(self.element_scratch.answer(), &mut self.probe_scratch)
            {
                if m.set.contains(idx) {
                    self.providers.push((i, idx));
                }
            }
        }
        debug_assert!(self.providers.iter().any(|&(i, _)| i == chosen));

        // Line 5: the owner is the provider with the minimum index.
        let &(owner, owner_idx) = self.providers.first().expect("chosen is a provider");

        // Lines 6–7: delete from all non-owners.
        if self.delete_on_rejection || owner == chosen {
            for p in 1..self.providers.len() {
                let (i, idx) = self.providers[p];
                debug_assert_ne!(i, owner);
                self.members[i].set.delete(idx);
            }
        }

        // Lines 8–9: emit only when reached through the owner.
        if owner == chosen {
            self.members[owner].set.delete(owner_idx);
            self.emitted += 1;
            Some(UcqEvent::Answer(self.element_scratch.answer().to_vec()))
        } else {
            self.rejections += 1;
            Some(UcqEvent::Rejected)
        }
    }
}

impl<R: Rng> Iterator for UcqShuffle<R> {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        loop {
            match self.next_event()? {
                UcqEvent::Answer(a) => return Some(a),
                UcqEvent::Rejected => continue,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_data::{Relation, Schema};
    use rae_query::naive_eval_union;
    use rae_query::parser::parse_ucq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    fn rel_int(attrs: &[&str], rows: &[&[i64]]) -> Relation {
        Relation::from_rows(
            Schema::new(attrs.iter().copied()).unwrap(),
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect()),
        )
        .unwrap()
    }

    fn overlapping_db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            "R",
            rel_int(&["a", "b"], &[&[1, 1], &[1, 2], &[2, 1], &[3, 3]]),
        )
        .unwrap();
        db.add_relation(
            "S",
            rel_int(&["a", "b"], &[&[1, 1], &[2, 1], &[4, 4], &[5, 1]]),
        )
        .unwrap();
        db
    }

    fn union() -> UnionQuery {
        parse_ucq("Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y).").unwrap()
    }

    #[test]
    fn emits_union_without_duplicates() {
        let db = overlapping_db();
        let u = union();
        let shuffle = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(3)).unwrap();
        let mut got: Vec<Vec<Value>> = shuffle.collect();
        let expected = naive_eval_union(&u, &db).unwrap();
        assert_eq!(got.len(), expected.len());
        got.sort();
        got.dedup();
        assert_eq!(got.len(), expected.len(), "duplicates emitted");
        for row in expected.rows() {
            assert!(got.iter().any(|g| g.as_slice() == row));
        }
    }

    #[test]
    fn each_shared_answer_rejected_at_most_once() {
        let db = overlapping_db();
        let u = union();
        let mut shuffle = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(17)).unwrap();
        let mut events = 0usize;
        while shuffle.next_event().is_some() {
            events += 1;
        }
        // Shared answers: (1,1) and (2,1) ⇒ at most 2 rejections; total
        // iterations ≤ answers + shared.
        assert!(shuffle.rejections() <= 2, "too many rejections");
        assert_eq!(shuffle.emitted(), 6);
        assert!(events <= 8);
    }

    #[test]
    fn disjoint_union_never_rejects() {
        let mut db = Database::new();
        db.add_relation("R", rel_int(&["a"], &[&[1], &[2]]))
            .unwrap();
        db.add_relation("S", rel_int(&["a"], &[&[3], &[4]]))
            .unwrap();
        let u = parse_ucq("Q1(x) :- R(x). Q2(x) :- S(x).").unwrap();
        let mut shuffle = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(0)).unwrap();
        while shuffle.next_event().is_some() {}
        assert_eq!(shuffle.rejections(), 0);
        assert_eq!(shuffle.emitted(), 4);
    }

    #[test]
    fn identical_members_emit_once() {
        let mut db = Database::new();
        db.add_relation("R", rel_int(&["a"], &[&[1], &[2], &[3]]))
            .unwrap();
        db.add_relation("S", rel_int(&["a"], &[&[1], &[2], &[3]]))
            .unwrap();
        let u = parse_ucq("Q1(x) :- R(x). Q2(x) :- S(x).").unwrap();
        let got: Vec<Vec<Value>> = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(5))
            .unwrap()
            .collect();
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn permutation_is_uniform_over_answers() {
        // Q1 ∪ Q2 with 2+2 disjoint answers; the first emitted answer must be
        // uniform over all 4.
        let mut db = Database::new();
        db.add_relation("R", rel_int(&["a"], &[&[1], &[2]]))
            .unwrap();
        db.add_relation("S", rel_int(&["a"], &[&[3], &[4]]))
            .unwrap();
        let u = parse_ucq("Q1(x) :- R(x). Q2(x) :- S(x).").unwrap();
        let mut counts: BTreeMap<i64, usize> = BTreeMap::new();
        let mut seed_rng = StdRng::seed_from_u64(1234);
        let trials = 4000usize;
        for _ in 0..trials {
            let seed = rand::Rng::gen::<u64>(&mut seed_rng);
            let mut s = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(seed)).unwrap();
            let first = s.next().unwrap();
            *counts.entry(first[0].as_int().unwrap()).or_insert(0) += 1;
        }
        for (v, c) in counts {
            assert!(
                (800..=1200).contains(&c),
                "answer {v} first {c} times (expected ≈1000)"
            );
        }
    }

    #[test]
    fn shared_answers_not_overrepresented() {
        // (1) is in both members, (2) and (3) in one each. A biased sampler
        // would emit (1) first about half the time; the correct algorithm
        // emits each answer first with probability 1/3.
        let mut db = Database::new();
        db.add_relation("R", rel_int(&["a"], &[&[1], &[2]]))
            .unwrap();
        db.add_relation("S", rel_int(&["a"], &[&[1], &[3]]))
            .unwrap();
        let u = parse_ucq("Q1(x) :- R(x). Q2(x) :- S(x).").unwrap();
        let mut counts: BTreeMap<i64, usize> = BTreeMap::new();
        let mut seed_rng = StdRng::seed_from_u64(77);
        let trials = 6000usize;
        for _ in 0..trials {
            let seed = rand::Rng::gen::<u64>(&mut seed_rng);
            let mut s = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(seed)).unwrap();
            let first = s.next().unwrap();
            *counts.entry(first[0].as_int().unwrap()).or_insert(0) += 1;
        }
        let expected = trials as f64 / 3.0;
        for (v, c) in counts {
            let ratio = c as f64 / expected;
            assert!(
                (0.85..=1.15).contains(&ratio),
                "answer {v} first {c} times (expected ≈{expected:.0})"
            );
        }
    }

    #[test]
    fn three_way_union_matches_naive() {
        let mut db = Database::new();
        db.add_relation("R", rel_int(&["a", "b"], &[&[1, 1], &[2, 2]]))
            .unwrap();
        db.add_relation("S", rel_int(&["a", "b"], &[&[2, 2], &[3, 3]]))
            .unwrap();
        db.add_relation("T", rel_int(&["a", "b"], &[&[3, 3], &[1, 1], &[4, 4]]))
            .unwrap();
        let u =
            parse_ucq("Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y). Q3(x, y) :- T(x, y).").unwrap();
        let expected = naive_eval_union(&u, &db).unwrap();
        let mut got: Vec<Vec<Value>> = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(2))
            .unwrap()
            .collect();
        got.sort();
        got.dedup();
        assert_eq!(got.len(), expected.len());
    }

    #[test]
    fn ablation_disabling_deletion_stays_correct_but_rejects_more() {
        let db = overlapping_db();
        let u = union();
        let expected = naive_eval_union(&u, &db).unwrap();

        let mut with_del = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(3)).unwrap();
        let mut without_del = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(3))
            .unwrap()
            .with_rejection_deletion(false);
        let mut got = Vec::new();
        while let Some(ev) = without_del.next_event() {
            if let UcqEvent::Answer(a) = ev {
                got.push(a);
            }
        }
        while with_del.next_event().is_some() {}

        got.sort();
        got.dedup();
        assert_eq!(got.len(), expected.len(), "ablation must stay correct");
        // The deletion rule bounds rejections by the number of shared
        // answers; without it rejections can only be ≥.
        assert!(without_del.rejections() >= with_del.rejections());
    }

    #[test]
    fn empty_union_enumerates_nothing() {
        let mut db = Database::new();
        db.add_relation("R", rel_int(&["a"], &[])).unwrap();
        db.add_relation("S", rel_int(&["a"], &[])).unwrap();
        let u = parse_ucq("Q1(x) :- R(x). Q2(x) :- S(x).").unwrap();
        let mut s = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(0)).unwrap();
        assert!(s.next_event().is_none());
    }
}
