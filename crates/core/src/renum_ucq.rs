//! Algorithm 5 / Theorem 5.4 — REnum(UCQ): random-order enumeration of a
//! union of free-connex CQs with expected logarithmic delay.
//!
//! Every iteration samples a member CQ weighted by its remaining answer
//! count, samples an element of that member uniformly, determines the
//! element's *providers* (members still containing it) and its *owner* (the
//! provider with the least index), deletes the element from the non-owners,
//! and emits it only when it was reached through its owner — otherwise the
//! iteration *rejects*. Each element is rejected at most once overall, which
//! gives the amortized-constant and expected-constant iteration bounds of
//! Lemma 5.2.

// Sanctioned panics: each `expect` names an Algorithm 5 invariant (provenance indexes point
// at live members); violation is a bug, not a recoverable state.
#![allow(clippy::expect_used)]

use crate::delset::DeletableSet;
use crate::error::CoreError;
use crate::index::CqIndex;
use crate::ordered::{OrderedCqIndex, OrderedEnumeration};
use crate::scratch::AccessScratch;
use crate::weight::Weight;
use crate::Result;
use rae_data::{Database, Symbol, Value};
use rae_query::UnionQuery;
use rand::Rng;
use std::cmp::Ordering;
use std::sync::Arc;

/// One step of Algorithm 5: either an emitted answer or a rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UcqEvent {
    /// A fresh answer, uniform among those not yet emitted.
    Answer(Vec<Value>),
    /// A rejected iteration (the element was reached via a non-owner; it has
    /// now been deleted from all non-owners and will not be rejected again).
    Rejected,
}

/// Random-order enumeration of a union of free-connex CQs.
///
/// The iterator interface yields answers only; use
/// [`UcqShuffle::next_event`] to observe rejections (the Figure 5
/// experiment measures the time they consume).
#[derive(Debug)]
pub struct UcqShuffle<R: Rng> {
    members: Vec<Member>,
    rng: R,
    rejections: u64,
    emitted: u64,
    /// Lines 6–7 of Algorithm 5. Disabling turns the "each answer rejected
    /// at most once" amortization off — kept as an ablation knob for the
    /// benchmark harness; always `true` in normal use.
    delete_on_rejection: bool,
    /// Scratch for producing the sampled element (holds the element between
    /// access and emission).
    element_scratch: AccessScratch,
    /// Scratch for the providers' inverted-access probes.
    probe_scratch: AccessScratch,
    /// Reused provider list `(member, index-in-member)`.
    providers: Vec<(usize, Weight)>,
}

#[derive(Debug)]
struct Member {
    index: Arc<CqIndex>,
    set: DeletableSet,
}

impl<R: Rng> UcqShuffle<R> {
    /// Builds the per-disjunct indexes (with inverted access) and starts the
    /// enumeration. Linear preprocessing in `|D|` per disjunct.
    pub fn build(ucq: &UnionQuery, db: &Database, rng: R) -> Result<Self> {
        let mut indexes = Vec::with_capacity(ucq.len());
        for d in ucq.disjuncts() {
            let idx = CqIndex::build(d, db)?;
            idx.prepare_inverted_access();
            indexes.push(Arc::new(idx));
        }
        Ok(Self::from_indexes(indexes, rng))
    }

    /// Starts the enumeration over pre-built member indexes. All members
    /// must share the same head arity (guaranteed when they come from one
    /// [`UnionQuery`]).
    pub fn from_indexes(indexes: Vec<Arc<CqIndex>>, rng: R) -> Self {
        let members = indexes
            .into_iter()
            .map(|index| {
                let set = DeletableSet::new(index.count());
                Member { index, set }
            })
            .collect();
        UcqShuffle {
            members,
            rng,
            rejections: 0,
            emitted: 0,
            delete_on_rejection: true,
            element_scratch: AccessScratch::new(),
            probe_scratch: AccessScratch::new(),
            providers: Vec::new(),
        }
    }

    /// Ablation knob: disables the deletion of rejected elements from
    /// non-owner members (Algorithm 5, lines 6–7). The permutation stays
    /// uniform, but shared answers can then be rejected repeatedly, losing
    /// the amortized-constant guarantee of Lemma 5.2.
    pub fn with_rejection_deletion(mut self, enabled: bool) -> Self {
        self.delete_on_rejection = enabled;
        self
    }

    /// Total remaining (not yet emitted) indices across members, counting an
    /// answer shared by `k` members up to `k` times until its duplicates are
    /// discovered and deleted.
    pub fn remaining_indices(&self) -> Weight {
        self.members.iter().map(|m| m.set.remaining()).sum()
    }

    /// Number of rejected iterations so far.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Number of answers emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Runs one iteration of Algorithm 5.
    ///
    /// Returns `None` once every answer has been emitted.
    pub fn next_event(&mut self) -> Option<UcqEvent> {
        let total: Weight = self.remaining_indices();
        if total == 0 {
            return None;
        }

        // Line 2: choose a member weighted by its remaining count.
        let mut pick = self.rng.gen_range(0..total);
        let mut chosen = 0usize;
        for (i, m) in self.members.iter().enumerate() {
            let c = m.set.remaining();
            if pick < c {
                chosen = i;
                break;
            }
            pick -= c;
        }

        // Line 3: sample an element of the chosen member uniformly. The
        // element lives in `element_scratch` — rejected iterations never
        // materialize an owned answer.
        let chosen_idx = self.members[chosen]
            .set
            .sample(&mut self.rng)
            .expect("chosen member is non-empty");
        self.members[chosen]
            .index
            .access_into(chosen_idx, &mut self.element_scratch)
            .expect("sampled index is in range");

        // Line 4: providers — members that still contain the element.
        self.providers.clear();
        for (i, m) in self.members.iter().enumerate() {
            if let Some(idx) = m
                .index
                .inverted_access_of(self.element_scratch.answer(), &mut self.probe_scratch)
            {
                if m.set.contains(idx) {
                    self.providers.push((i, idx));
                }
            }
        }
        debug_assert!(self.providers.iter().any(|&(i, _)| i == chosen));

        // Line 5: the owner is the provider with the minimum index.
        let &(owner, owner_idx) = self.providers.first().expect("chosen is a provider");

        // Lines 6–7: delete from all non-owners.
        if self.delete_on_rejection || owner == chosen {
            for p in 1..self.providers.len() {
                let (i, idx) = self.providers[p];
                debug_assert_ne!(i, owner);
                self.members[i].set.delete(idx);
            }
        }

        // Lines 8–9: emit only when reached through the owner.
        if owner == chosen {
            self.members[owner].set.delete(owner_idx);
            self.emitted += 1;
            Some(UcqEvent::Answer(self.element_scratch.answer().to_vec()))
        } else {
            self.rejections += 1;
            Some(UcqEvent::Rejected)
        }
    }
}

impl<R: Rng> Iterator for UcqShuffle<R> {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        loop {
            match self.next_event()? {
                UcqEvent::Answer(a) => return Some(a),
                UcqEvent::Rejected => continue,
            }
        }
    }
}

/// Ordered enumeration of a **general** union of free-connex CQs: one
/// [`OrderedCqIndex`] per disjunct (each may use a different join-tree
/// layout, as long as every one realizes the same variable order), merged
/// by a duplicate-eliminating k-way merge. Delay is O(m) per answer —
/// constant in data complexity — and the merge buffers are reused, so
/// steady-state production via [`OrderedUnionEnumeration::next_ref`]
/// allocates nothing.
///
/// This is the ordered counterpart of [`UcqShuffle`]: the same union class
/// (no shared-template requirement), trading random order for `ORDER BY`.
/// For ranked *random access* over unions see
/// [`crate::mcucq::OrderedMcUcqIndex`], which needs the mc-UCQ template
/// restriction.
#[derive(Debug)]
pub struct OrderedUcq {
    members: Vec<OrderedCqIndex>,
}

impl OrderedUcq {
    /// Builds one ordered index per disjunct, all realizing `order`.
    ///
    /// Fails like [`OrderedCqIndex::build`] when any disjunct is outside
    /// the tractable class or cannot realize the order.
    pub fn build(ucq: &UnionQuery, db: &Database, order: &[Symbol]) -> Result<Self> {
        let members = ucq
            .disjuncts()
            .iter()
            .map(|d| OrderedCqIndex::build(d, db, order))
            .collect::<Result<Vec<_>>>()?;
        Ok(OrderedUcq { members })
    }

    /// The per-disjunct ordered indexes.
    pub fn members(&self) -> &[OrderedCqIndex] {
        &self.members
    }

    /// Scans the whole union in order (duplicates eliminated).
    pub fn enumerate(&self) -> Result<OrderedUnionEnumeration<'_>> {
        OrderedUnionEnumeration::from_members(&self.members)
    }

    /// Scans every union answer matching a prefix of order values, in
    /// order: each member contributes only its own O(log n) rank window.
    pub fn enumerate_prefix(&self, prefix: &[Value]) -> Result<OrderedUnionEnumeration<'_>> {
        OrderedUnionEnumeration::from_windows(
            self.members
                .iter()
                .map(|m| Ok((m, m.enumerate_prefix(prefix)?)))
                .collect::<Result<Vec<_>>>()?,
        )
    }
}

/// One member stream of an ordered union merge.
#[derive(Debug)]
struct MergeMember<'a> {
    window: OrderedEnumeration<'a>,
    /// The member's next (not yet emitted) answer; reused across steps.
    current: Vec<Value>,
    exhausted: bool,
}

impl MergeMember<'_> {
    fn advance(&mut self) {
        match self.window.next_ref() {
            Some(ans) => {
                self.current.clear();
                self.current.extend(ans.iter().cloned());
            }
            None => self.exhausted = true,
        }
    }
}

/// Validates that every member shares one head layout **and** one realized
/// variable order — the precondition of every positional union structure
/// (the k-way merge and [`crate::RankedUcq`]'s rank algebra both compare
/// and emit tuples positionally, so permuted heads would silently mix
/// layouts). Returns the shared order-significant head positions; the
/// unified rejection is [`CoreError::MismatchedOrders`].
pub(crate) fn ensure_shared_layout<'a>(
    members: impl IntoIterator<Item = &'a OrderedCqIndex>,
) -> Result<Vec<usize>> {
    let mut first: Option<&OrderedCqIndex> = None;
    for index in members {
        match first {
            None => first = Some(index),
            Some(f) if f.order() != index.order() || f.head() != index.head() => {
                let layout = |i: &OrderedCqIndex| {
                    i.head()
                        .iter()
                        .chain(i.order())
                        .map(Symbol::to_string)
                        .collect::<Vec<_>>()
                };
                return Err(CoreError::MismatchedOrders {
                    expected: layout(f),
                    got: layout(index),
                });
            }
            Some(_) => {}
        }
    }
    Ok(first
        .map(|f| f.order_to_head().to_vec())
        .unwrap_or_default())
}

/// A duplicate-eliminating k-way merge over member streams that share one
/// lexicographic order (see [`OrderedUcq`]).
#[derive(Debug)]
pub struct OrderedUnionEnumeration<'a> {
    members: Vec<MergeMember<'a>>,
    /// Order-significant head positions (shared by all members).
    cmp_positions: Vec<usize>,
    /// The answer being emitted (backs [`OrderedUnionEnumeration::next_ref`]).
    answer: Vec<Value>,
}

impl<'a> OrderedUnionEnumeration<'a> {
    /// Merges the full streams of `members`.
    ///
    /// Errors with [`CoreError::MismatchedOrders`] unless all members share
    /// one variable order.
    pub fn from_members(
        members: impl IntoIterator<Item = &'a OrderedCqIndex>,
    ) -> Result<OrderedUnionEnumeration<'a>> {
        Self::from_windows(members.into_iter().map(|m| (m, m.enumerate())).collect())
    }

    /// Merges caller-chosen rank windows, one per member (used for prefix
    /// scans and union rank windows; the windows must cover
    /// order-contiguous, aligned ranges for the merged stream to be
    /// meaningful).
    pub(crate) fn from_windows(
        windows: Vec<(&'a OrderedCqIndex, OrderedEnumeration<'a>)>,
    ) -> Result<OrderedUnionEnumeration<'a>> {
        let cmp_positions = ensure_shared_layout(windows.iter().map(|&(index, _)| index))?;
        let mut members: Vec<MergeMember<'a>> = windows
            .into_iter()
            .map(|(_, window)| MergeMember {
                window,
                current: Vec::new(),
                exhausted: false,
            })
            .collect();
        for m in &mut members {
            m.advance();
        }
        Ok(OrderedUnionEnumeration {
            members,
            cmp_positions,
            answer: Vec::new(),
        })
    }

    fn cmp_key(&self, a: &[Value], b: &[Value]) -> Ordering {
        for &p in &self.cmp_positions {
            match a[p].cmp(&b[p]) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// The next union answer (smallest unemitted under the shared order) as
    /// a borrow of the merge buffer — zero allocations in steady state.
    pub fn next_ref(&mut self) -> Option<&[Value]> {
        // The smallest member head becomes the answer...
        let mut best: Option<usize> = None;
        for (i, m) in self.members.iter().enumerate() {
            if m.exhausted {
                continue;
            }
            best = match best {
                Some(b)
                    if self.cmp_key(&self.members[b].current, &m.current) != Ordering::Greater =>
                {
                    Some(b)
                }
                _ => Some(i),
            };
        }
        let best = best?;
        self.answer.clear();
        let (answer, members) = (&mut self.answer, &mut self.members);
        answer.extend(members[best].current.iter().cloned());
        // ... and every member holding it advances (duplicate elimination;
        // the order covers all free variables, so order-key equality is
        // tuple equality).
        for i in 0..self.members.len() {
            if !self.members[i].exhausted
                && self.cmp_key(&self.members[i].current, &self.answer) == Ordering::Equal
            {
                self.members[i].advance();
            }
        }
        Some(&self.answer)
    }
}

impl Iterator for OrderedUnionEnumeration<'_> {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        self.next_ref().map(<[Value]>::to_vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    fn overlapping_db() -> Database {
        db_of([
            (
                "R",
                rel_int(&["a", "b"], &[&[1, 1], &[1, 2], &[2, 1], &[3, 3]]),
            ),
            (
                "S",
                rel_int(&["a", "b"], &[&[1, 1], &[2, 1], &[4, 4], &[5, 1]]),
            ),
        ])
    }

    fn union() -> UnionQuery {
        ucq("Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y).")
    }

    #[test]
    fn emits_union_without_duplicates() {
        let db = overlapping_db();
        let u = union();
        let shuffle = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(3)).unwrap();
        let mut got: Vec<Vec<Value>> = shuffle.collect();
        let expected = naive_union(&u, &db);
        assert_eq!(got.len(), expected.len());
        got.sort();
        got.dedup();
        assert_eq!(got.len(), expected.len(), "duplicates emitted");
        for row in expected.rows() {
            assert!(got.iter().any(|g| g.as_slice() == row));
        }
    }

    #[test]
    fn each_shared_answer_rejected_at_most_once() {
        let db = overlapping_db();
        let u = union();
        let mut shuffle = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(17)).unwrap();
        let mut events = 0usize;
        while shuffle.next_event().is_some() {
            events += 1;
        }
        // Shared answers: (1,1) and (2,1) ⇒ at most 2 rejections; total
        // iterations ≤ answers + shared.
        assert!(shuffle.rejections() <= 2, "too many rejections");
        assert_eq!(shuffle.emitted(), 6);
        assert!(events <= 8);
    }

    #[test]
    fn disjoint_union_never_rejects() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a"], &[&[1], &[2]]));
        add(&mut db, "S", rel_int(&["a"], &[&[3], &[4]]));
        let u = ucq("Q1(x) :- R(x). Q2(x) :- S(x).");
        let mut shuffle = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(0)).unwrap();
        while shuffle.next_event().is_some() {}
        assert_eq!(shuffle.rejections(), 0);
        assert_eq!(shuffle.emitted(), 4);
    }

    #[test]
    fn identical_members_emit_once() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a"], &[&[1], &[2], &[3]]));
        add(&mut db, "S", rel_int(&["a"], &[&[1], &[2], &[3]]));
        let u = ucq("Q1(x) :- R(x). Q2(x) :- S(x).");
        let got: Vec<Vec<Value>> = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(5))
            .unwrap()
            .collect();
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn permutation_is_uniform_over_answers() {
        // Q1 ∪ Q2 with 2+2 disjoint answers; the first emitted answer must be
        // uniform over all 4.
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a"], &[&[1], &[2]]));
        add(&mut db, "S", rel_int(&["a"], &[&[3], &[4]]));
        let u = ucq("Q1(x) :- R(x). Q2(x) :- S(x).");
        let mut counts: BTreeMap<i64, usize> = BTreeMap::new();
        let mut seed_rng = StdRng::seed_from_u64(1234);
        let trials = 4000usize;
        for _ in 0..trials {
            let seed = rand::Rng::gen::<u64>(&mut seed_rng);
            let mut s = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(seed)).unwrap();
            let first = s.next().unwrap();
            *counts.entry(first[0].as_int().unwrap()).or_insert(0) += 1;
        }
        for (v, c) in counts {
            assert!(
                (800..=1200).contains(&c),
                "answer {v} first {c} times (expected ≈1000)"
            );
        }
    }

    #[test]
    fn shared_answers_not_overrepresented() {
        // (1) is in both members, (2) and (3) in one each. A biased sampler
        // would emit (1) first about half the time; the correct algorithm
        // emits each answer first with probability 1/3.
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a"], &[&[1], &[2]]));
        add(&mut db, "S", rel_int(&["a"], &[&[1], &[3]]));
        let u = ucq("Q1(x) :- R(x). Q2(x) :- S(x).");
        let mut counts: BTreeMap<i64, usize> = BTreeMap::new();
        let mut seed_rng = StdRng::seed_from_u64(77);
        let trials = 6000usize;
        for _ in 0..trials {
            let seed = rand::Rng::gen::<u64>(&mut seed_rng);
            let mut s = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(seed)).unwrap();
            let first = s.next().unwrap();
            *counts.entry(first[0].as_int().unwrap()).or_insert(0) += 1;
        }
        let expected = trials as f64 / 3.0;
        for (v, c) in counts {
            let ratio = c as f64 / expected;
            assert!(
                (0.85..=1.15).contains(&ratio),
                "answer {v} first {c} times (expected ≈{expected:.0})"
            );
        }
    }

    #[test]
    fn three_way_union_matches_naive() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a", "b"], &[&[1, 1], &[2, 2]]));
        add(&mut db, "S", rel_int(&["a", "b"], &[&[2, 2], &[3, 3]]));
        add(
            &mut db,
            "T",
            rel_int(&["a", "b"], &[&[3, 3], &[1, 1], &[4, 4]]),
        );
        let u = ucq("Q1(x, y) :- R(x, y). Q2(x, y) :- S(x, y). Q3(x, y) :- T(x, y).");
        let expected = naive_union(&u, &db);
        let mut got: Vec<Vec<Value>> = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(2))
            .unwrap()
            .collect();
        got.sort();
        got.dedup();
        assert_eq!(got.len(), expected.len());
    }

    #[test]
    fn ablation_disabling_deletion_stays_correct_but_rejects_more() {
        let db = overlapping_db();
        let u = union();
        let expected = naive_union(&u, &db);

        let mut with_del = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(3)).unwrap();
        let mut without_del = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(3))
            .unwrap()
            .with_rejection_deletion(false);
        let mut got = Vec::new();
        while let Some(ev) = without_del.next_event() {
            if let UcqEvent::Answer(a) = ev {
                got.push(a);
            }
        }
        while with_del.next_event().is_some() {}

        got.sort();
        got.dedup();
        assert_eq!(got.len(), expected.len(), "ablation must stay correct");
        // The deletion rule bounds rejections by the number of shared
        // answers; without it rejections can only be ≥.
        assert!(without_del.rejections() >= with_del.rejections());
    }

    fn sorted_union(u: &UnionQuery, db: &Database, order: &[&str]) -> Vec<Vec<Value>> {
        let expected = naive_union(u, db);
        let head = u.head().to_vec();
        let positions: Vec<usize> = order
            .iter()
            .map(|v| head.iter().position(|h| h.as_str() == *v).unwrap())
            .collect();
        let mut rows: Vec<Vec<Value>> = expected.rows().map(<[Value]>::to_vec).collect();
        rows.sort_by(|a, b| {
            positions
                .iter()
                .map(|&p| a[p].cmp(&b[p]))
                .find(|o| *o != Ordering::Equal)
                .unwrap_or(Ordering::Equal)
        });
        rows
    }

    #[test]
    fn ordered_union_merge_matches_naive_sorted() {
        let db = overlapping_db();
        let u = union();
        for order in [&["x", "y"], &["y", "x"]] {
            let syms: Vec<Symbol> = order.iter().map(Symbol::new).collect();
            let ou = OrderedUcq::build(&u, &db, &syms).unwrap();
            let got: Vec<Vec<Value>> = ou.enumerate().unwrap().collect();
            assert_eq!(got, sorted_union(&u, &db, order), "order {order:?}");
        }
    }

    #[test]
    fn ordered_union_prefix_scan_matches_filtered_naive() {
        let db = overlapping_db();
        let u = union();
        let syms: Vec<Symbol> = ["y", "x"].iter().map(Symbol::new).collect();
        let ou = OrderedUcq::build(&u, &db, &syms).unwrap();
        let all = sorted_union(&u, &db, &["y", "x"]);
        // Prefix y = 1: answers whose second head position (y) is 1.
        let got: Vec<Vec<Value>> = ou.enumerate_prefix(&[Value::Int(1)]).unwrap().collect();
        let expected: Vec<Vec<Value>> = all
            .iter()
            .filter(|a| a[1] == Value::Int(1))
            .cloned()
            .collect();
        assert_eq!(got, expected);
        assert!(!got.is_empty());
        // Empty prefix = everything; missing value = nothing.
        assert_eq!(ou.enumerate_prefix(&[]).unwrap().count(), all.len());
        assert_eq!(ou.enumerate_prefix(&[Value::Int(999)]).unwrap().count(), 0);
    }

    #[test]
    fn ordered_union_next_ref_reuses_buffers() {
        let db = overlapping_db();
        let u = union();
        let syms: Vec<Symbol> = ["x", "y"].iter().map(Symbol::new).collect();
        let ou = OrderedUcq::build(&u, &db, &syms).unwrap();
        let mut merge = ou.enumerate().unwrap();
        let mut seen = 0usize;
        let mut prev: Option<Vec<Value>> = None;
        while let Some(ans) = merge.next_ref() {
            if let Some(p) = &prev {
                assert!(p.as_slice() < ans, "merge must be strictly increasing");
            }
            prev = Some(ans.to_vec());
            seen += 1;
        }
        assert_eq!(seen, naive_union(&u, &db).len());
    }

    #[test]
    fn mismatched_member_orders_are_rejected() {
        let db = overlapping_db();
        let u = union();
        let xy: Vec<Symbol> = ["x", "y"].iter().map(Symbol::new).collect();
        let yx: Vec<Symbol> = ["y", "x"].iter().map(Symbol::new).collect();
        let a = OrderedCqIndex::build(&u.disjuncts()[0], &db, &xy).unwrap();
        let b = OrderedCqIndex::build(&u.disjuncts()[1], &db, &yx).unwrap();
        assert!(matches!(
            OrderedUnionEnumeration::from_members([&a, &b]),
            Err(CoreError::MismatchedOrders { .. })
        ));
    }

    #[test]
    fn mismatched_member_heads_are_rejected() {
        // Same variable order, permuted heads: the merge compares tuples
        // positionally, so this must be refused, not silently mixed.
        let db = overlapping_db();
        let q_xy = cq("Q(x, y) :- R(x, y)");
        let q_yx = cq("Q(y, x) :- S(x, y)");
        let order: Vec<Symbol> = ["x", "y"].iter().map(Symbol::new).collect();
        let a = OrderedCqIndex::build(&q_xy, &db, &order).unwrap();
        let b = OrderedCqIndex::build(&q_yx, &db, &order).unwrap();
        assert_ne!(a.head(), b.head());
        assert_eq!(a.order(), b.order());
        assert!(matches!(
            OrderedUnionEnumeration::from_members([&a, &b]),
            Err(CoreError::MismatchedOrders { .. })
        ));
    }

    #[test]
    fn empty_union_enumerates_nothing() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a"], &[]));
        add(&mut db, "S", rel_int(&["a"], &[]));
        let u = ucq("Q1(x) :- R(x). Q2(x) :- S(x).");
        let mut s = UcqShuffle::build(&u, &db, StdRng::seed_from_u64(0)).unwrap();
        assert!(s.next_event().is_none());
    }
}
