//! Lexicographic direct access and ranked enumeration (DESIGN.md §11).
//!
//! The plain [`CqIndex`] already enumerates in *a* lexicographic order: the
//! one induced by its join-tree layout. This module turns that from an
//! accident of layout into an API: given any realizable variable order `L`
//! over the free variables (PODS 2021 tractability, classified by
//! [`rae_query::realize_order`]), [`OrderedCqIndex`] builds the index over a
//! reoriented plan with per-node column-sort priorities so that
//!
//! * [`OrderedCqIndex::ordered_access`]`(k)` returns the `k`-th answer
//!   **under `ORDER BY L`** in O(log n) — it *is* Algorithm 3's access;
//! * [`OrderedCqIndex::ordered_inverted_access`] returns an answer's rank
//!   under `L` — it *is* Algorithm 4's inverted access;
//! * [`OrderedCqIndex::range_of_prefix`] / [`OrderedCqIndex::range_count`]
//!   resolve a prefix of `L`-values to its contiguous rank range in
//!   O(log n), via a rank descent over the per-bucket startIndex prefix
//!   sums (no answer is materialized);
//! * [`OrderedCqIndex::range`] scans any rank window with constant delay
//!   ([`OrderedEnumeration`] = the Theorem 4.1 cursor plus an O(log n)
//!   [`crate::CqSequential::seek`]).
//!
//! All of it inherits the zero-allocation discipline: the `*_into`/`*_of`
//! variants and the range machinery perform no steady-state heap
//! allocations (covered by `tests/zero_alloc.rs`).

// Sanctioned panics: each `expect` names a realization invariant (the adjusted order is
// realizable, so every level has a sorted run); violation is a bug.
#![allow(clippy::expect_used)]

use crate::error::CoreError;
use crate::index::{BucketView, BuildOptions, CqIndex};
use crate::scratch::AccessScratch;
use crate::weight::Weight;
use crate::Result;
use rae_data::{Database, Relation, Symbol, Value};
use rae_faults::Budget;
use rae_query::{realize_order, validate_order, ConjunctiveQuery, LexPlan};
use rae_yannakakis::{reduce_to_full_acyclic, FullAcyclicJoin};
use std::cmp::Ordering;
use std::ops::Range;

/// Random access, inverted access, range counting, and constant-delay range
/// scans under a caller-chosen lexicographic variable order (Theorem 4.3
/// machinery over a PODS-2021-compatible join-tree layout).
///
/// ```
/// use rae_core::{AccessScratch, OrderedCqIndex};
/// use rae_data::{Database, Relation, Schema, Symbol, Value};
///
/// let mut db = Database::new();
/// db.add_relation(
///     "R",
///     Relation::from_rows(
///         Schema::new(["a", "b"]).unwrap(),
///         vec![
///             vec![Value::Int(1), Value::Int(10)],
///             vec![Value::Int(2), Value::Int(10)],
///             vec![Value::Int(1), Value::Int(20)],
///         ],
///     )
///     .unwrap(),
/// )
/// .unwrap();
/// let q = "Q(x, y) :- R(x, y)".parse().unwrap();
///
/// // ORDER BY y, x — not the schema order.
/// let order = [Symbol::new("y"), Symbol::new("x")];
/// let idx = OrderedCqIndex::build(&q, &db, &order).unwrap();
///
/// // ordered_access(k) is the k-th answer under the requested order.
/// let mut scratch = AccessScratch::new();
/// let first = idx.ordered_access_into(0, &mut scratch).unwrap();
/// assert_eq!(first, &[Value::Int(1), Value::Int(10)]); // smallest y, then x
/// assert_eq!(idx.ordered_inverted_access(&[Value::Int(1), Value::Int(20)]), Some(2));
///
/// // Range counting over an order prefix: how many answers have y = 10?
/// assert_eq!(idx.range_count(&[Value::Int(10)]).unwrap(), 2);
/// ```
#[derive(Debug)]
pub struct OrderedCqIndex {
    index: CqIndex,
    /// The requested order over the free variables.
    order: Vec<Symbol>,
    /// `order_to_head[p]` = head position of the `p`-th order variable.
    order_to_head: Vec<usize>,
    /// Per plan node: the columns introducing new attributes as
    /// `(bag column, order position)`, most significant first.
    node_new: Vec<Vec<(usize, usize)>>,
}

impl OrderedCqIndex {
    /// Builds the ordered index for a free-connex CQ under the
    /// lexicographic variable order `order` (a permutation of the head).
    ///
    /// Fails with [`rae_query::QueryError::UnrealizableOrder`] (wrapped in
    /// [`CoreError::Query`]) when no reorientation of the query's
    /// free-connex join tree realizes the order, naming an offending
    /// variable pair, and with
    /// [`rae_query::QueryError::OrderVariableMismatch`] when `order` is not
    /// a permutation of the head variables.
    pub fn build(cq: &ConjunctiveQuery, db: &Database, order: &[Symbol]) -> Result<Self> {
        Self::build_with(cq, db, order, BuildOptions::default())
    }

    /// [`OrderedCqIndex::build`] with explicit preprocessing options
    /// (threads / sort ablation, as for [`CqIndex::from_parts_with`]).
    pub fn build_with(
        cq: &ConjunctiveQuery,
        db: &Database,
        order: &[Symbol],
        options: BuildOptions,
    ) -> Result<Self> {
        Self::build_budgeted(cq, db, order, options, &Budget::unlimited())
    }

    /// [`OrderedCqIndex::build_with`] under a resource [`Budget`] (deadline,
    /// memory cap, cancellation), threaded through the underlying
    /// [`CqIndex`] build; see [`CqIndex::from_parts_budgeted`].
    pub fn build_budgeted(
        cq: &ConjunctiveQuery,
        db: &Database,
        order: &[Symbol],
        options: BuildOptions,
        budget: &Budget<'_>,
    ) -> Result<Self> {
        // Catch here so panics in the reduction (ahead of the inner
        // `CqIndex` boundary) also convert to `BuildPanicked`.
        crate::error::catch_build("OrderedCqIndex::build", || {
            let fj = reduce_to_full_acyclic(cq, db)?;
            Self::from_full_join_budgeted(fj, order, options, budget)
        })
    }

    /// Builds the ordered index from an already-reduced full acyclic join.
    pub fn from_full_join(
        fj: FullAcyclicJoin,
        order: &[Symbol],
        options: BuildOptions,
    ) -> Result<Self> {
        Self::from_full_join_budgeted(fj, order, options, &Budget::unlimited())
    }

    /// [`OrderedCqIndex::from_full_join`] under a resource [`Budget`].
    pub fn from_full_join_budgeted(
        fj: FullAcyclicJoin,
        order: &[Symbol],
        options: BuildOptions,
        budget: &Budget<'_>,
    ) -> Result<Self> {
        validate_order(&fj.head, order).map_err(CoreError::Query)?;
        let lex = realize_order(&fj.plan, order)?;
        let relations = lex.derive_relations(fj.relations)?;
        Self::from_lex_parts(&lex, relations, fj.head, options, budget)
    }

    /// Builds from a realized [`LexPlan`] and relations already derived for
    /// its node layout (the mc-UCQ builder's entry point).
    pub(crate) fn from_lex_parts(
        lex: &LexPlan,
        relations: Vec<Relation>,
        head: Vec<Symbol>,
        options: BuildOptions,
        budget: &Budget<'_>,
    ) -> Result<Self> {
        let index = CqIndex::from_parts_lex(
            lex.plan.clone(),
            relations,
            head,
            &lex.priorities,
            options,
            budget,
        )?;
        let order_to_head = lex
            .order
            .iter()
            .map(|v| {
                index
                    .head()
                    .iter()
                    .position(|h| h == v)
                    .expect("order validated against the head")
            })
            .collect();
        Ok(OrderedCqIndex {
            index,
            order: lex.order.clone(),
            order_to_head,
            node_new: lex.new_cols.clone(),
        })
    }

    /// The underlying [`CqIndex`] (its access order is the requested lex
    /// order; all its raw accessors remain available).
    #[inline]
    pub fn index(&self) -> &CqIndex {
        &self.index
    }

    /// The number of answers — O(1).
    #[inline]
    pub fn count(&self) -> Weight {
        self.index.count()
    }

    /// The head attributes, in answer-tuple order.
    pub fn head(&self) -> &[Symbol] {
        self.index.head()
    }

    /// The realized lexicographic variable order.
    pub fn order(&self) -> &[Symbol] {
        &self.order
    }

    /// Head position of each order variable (`order()[p]` lives at answer
    /// position `order_to_head()[p]`).
    pub fn order_to_head(&self) -> &[usize] {
        &self.order_to_head
    }

    /// The `k`-th answer under the requested order (tuple in head order), or
    /// `None` when `k ≥ count()` — O(log n).
    pub fn ordered_access(&self, k: Weight) -> Option<Vec<Value>> {
        self.index.access(k)
    }

    /// Allocation-free [`OrderedCqIndex::ordered_access`]: writes into
    /// `scratch` and returns a borrow.
    pub fn ordered_access_into<'s>(
        &self,
        k: Weight,
        scratch: &'s mut AccessScratch,
    ) -> Option<&'s [Value]> {
        self.index.access_into(k, scratch)
    }

    /// The rank of `answer` (head order) under the requested order, or
    /// `None` when it is not an answer — O(log n).
    pub fn ordered_inverted_access(&self, answer: &[Value]) -> Option<Weight> {
        self.index.inverted_access(answer)
    }

    /// Allocation-free [`OrderedCqIndex::ordered_inverted_access`].
    pub fn ordered_inverted_access_of(
        &self,
        answer: &[Value],
        scratch: &mut AccessScratch,
    ) -> Option<Weight> {
        self.index.inverted_access_of(answer, scratch)
    }

    /// Compares two answers (head order) by the requested lexicographic
    /// order.
    pub fn order_cmp(&self, a: &[Value], b: &[Value]) -> Ordering {
        for &h in &self.order_to_head {
            match a[h].cmp(&b[h]) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// The ranks bracketing a prefix of order values: `(lt, le)` where `lt`
    /// answers compare strictly below the prefix and `le` compare below or
    /// equal on the covered positions. O(log n), allocation-free, no answer
    /// materialized.
    ///
    /// `prefix[p]` is the required value of `order()[p]`; a full-arity
    /// prefix brackets a single candidate answer.
    ///
    /// The rank sums are checked: overflow of the `u128` rank space
    /// surfaces as [`CoreError::CapacityExceeded`] instead of a debug
    /// panic / release wraparound. For an index this crate built the sums
    /// are bounded by the (build-checked) answer count, so the error is
    /// defense-in-depth, not an expected outcome.
    ///
    /// # Panics
    /// When `prefix` is longer than the arity.
    pub fn prefix_bounds(&self, prefix: &[Value]) -> Result<(Weight, Weight)> {
        assert!(
            prefix.len() <= self.order.len(),
            "prefix longer than the variable order"
        );
        self.bounds(prefix.len(), &|p| &prefix[p])
    }

    /// `(lt, le)` ranks of a full tuple given in **head** order (used by
    /// the union structures to rank candidate answers of other members).
    pub(crate) fn tuple_bounds(&self, tuple: &[Value]) -> Result<(Weight, Weight)> {
        debug_assert_eq!(tuple.len(), self.index.arity());
        self.bounds(self.order.len(), &|p| &tuple[self.order_to_head[p]])
    }

    /// The contiguous rank range of all answers matching a prefix of order
    /// values (`ORDER BY`-prefix point lookup; empty prefix ⇒ everything).
    pub fn range_of_prefix(&self, prefix: &[Value]) -> Result<Range<Weight>> {
        let (lt, le) = self.prefix_bounds(prefix)?;
        Ok(lt..le)
    }

    /// The number of answers matching a prefix of order values — O(log n),
    /// without enumerating them.
    pub fn range_count(&self, prefix: &[Value]) -> Result<Weight> {
        let (lt, le) = self.prefix_bounds(prefix)?;
        Ok(le - lt)
    }

    /// A constant-delay scan over a rank window `[range.start, range.end)`
    /// of the order (out-of-bounds ends are clamped to `count()`).
    pub fn range(&self, range: Range<Weight>) -> OrderedEnumeration<'_> {
        let lo = range.start.min(self.count());
        let hi = range.end.min(self.count()).max(lo);
        let mut seq = self.index.sequential();
        if hi > lo {
            seq.seek(lo);
        }
        OrderedEnumeration {
            seq,
            remaining: hi - lo,
        }
    }

    /// A constant-delay scan of every answer matching a prefix of order
    /// values, in order.
    pub fn enumerate_prefix(&self, prefix: &[Value]) -> Result<OrderedEnumeration<'_>> {
        Ok(self.range(self.range_of_prefix(prefix)?))
    }

    /// Mints a style-tagged [`RankWindow`](crate::weighted::RankWindow)
    /// over this index's **lexicographic** order, clamping out-of-bounds
    /// ends. Window consumers (the samplers in `rae-sampler`) check the
    /// tag, so a window minted here cannot silently be served against a
    /// weighted order or vice versa.
    pub fn rank_window(&self, ranks: Range<Weight>) -> crate::weighted::RankWindow {
        let lo = ranks.start.min(self.count());
        let hi = ranks.end.min(self.count()).max(lo);
        crate::weighted::RankWindow::new(
            lo..hi,
            crate::weighted::OrderStyle::Lexicographic,
            self.order.clone(),
        )
    }

    /// A constant-delay scan of all answers in the requested order.
    pub fn enumerate(&self) -> OrderedEnumeration<'_> {
        self.range(0..self.count())
    }

    /// The `(lt, le)` rank pair for `covered` order positions whose bound
    /// values are produced by `bound`. Implements the mixed-radix rank
    /// combine over roots (first root most significant).
    ///
    /// Every sum/product is checked: for an index this crate built,
    /// `lt + eq ≤ Π bucket totals` at each combine step and the build
    /// already verified that product fits `u128` (`checked_product`), so
    /// overflow here is unreachable — the checks keep a violated invariant
    /// (corrupt archive, future bug) from wrapping silently in release.
    fn bounds<'v>(
        &self,
        covered: usize,
        bound: &dyn Fn(usize) -> &'v Value,
    ) -> Result<(Weight, Weight)> {
        let over = || crate::error::rank_overflow("rank-descent sums");
        if self.index.count() == 0 {
            return Ok((0, 0));
        }
        let mut lt: Weight = 0;
        let mut eq: Weight = 1;
        for &root in self.index.plan().roots() {
            let bucket = self.index.root_bucket(root).expect("non-empty index");
            let (l, le) = self.node_bounds(root, bucket, covered, bound)?;
            lt = lt
                .checked_mul(bucket.total)
                .and_then(|t| t.checked_add(eq.checked_mul(l)?))
                .ok_or_else(over)?;
            eq = eq.checked_mul(le - l).ok_or_else(over)?;
        }
        let up = lt.checked_add(eq).ok_or_else(over)?;
        Ok((lt, up))
    }

    /// The `(lt, le)` rank pair of one node's bucket: how many of the
    /// bucket's subtree answers compare strictly below / below-or-equal on
    /// the covered order positions of this subtree. A node's covered new
    /// columns are always a prefix of its new-column list (order positions
    /// are preorder-consecutive), so within the bucket — whose rows are
    /// value-sorted by exactly those columns — the boundaries are two
    /// binary searches over the startIndex prefix sums.
    fn node_bounds<'v>(
        &self,
        node: usize,
        bucket: BucketView,
        covered: usize,
        bound: &dyn Fn(usize) -> &'v Value,
    ) -> Result<(Weight, Weight)> {
        let over = || crate::error::rank_overflow("rank-descent sums");
        let new = &self.node_new[node];
        let rel = self.index.node_relation(node);
        let c = new.iter().take_while(|&&(_, pos)| pos < covered).count();
        let cmp_row = |r: u32| -> Ordering {
            for &(col, pos) in &new[..c] {
                match rel.row(r as usize)[col].cmp(bound(pos)) {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            Ordering::Equal
        };
        // Total weight of rows before `r` in the bucket = r's startIndex.
        let weight_before = |r: u32| -> Weight {
            if r == bucket.end {
                bucket.total
            } else {
                self.index.row_start(node, r)
            }
        };
        // First row comparing >= the bound on the covered columns.
        let (mut lo, mut hi) = (bucket.start, bucket.end);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if cmp_row(mid) == Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let lt = weight_before(lo);
        if c < new.len() {
            // The covered prefix ends inside this node's block: children are
            // entirely uncovered, so every equal row counts fully toward le.
            let (mut lo2, mut hi2) = (lo, bucket.end);
            while lo2 < hi2 {
                let mid = lo2 + (hi2 - lo2) / 2;
                if cmp_row(mid) == Ordering::Greater {
                    hi2 = mid;
                } else {
                    lo2 = mid + 1;
                }
            }
            return Ok((lt, weight_before(lo2)));
        }
        // Node fully covered: bucket rows are distinct on (pAtts ∪ new) =
        // all columns, so at most one row compares equal; descend into its
        // children (uncovered children report (0, total), keeping `eq`
        // multiplicative).
        if lo == bucket.end || cmp_row(lo) != Ordering::Equal {
            return Ok((lt, lt));
        }
        let row = lo;
        let mut clt: Weight = 0;
        let mut ceq: Weight = 1;
        for (child_pos, &child) in self.index.plan().children(node).iter().enumerate() {
            let cb = self.index.child_bucket(node, row, child_pos);
            let (l, le) = self.node_bounds(child, cb, covered, bound)?;
            clt = clt
                .checked_mul(cb.total)
                .and_then(|t| t.checked_add(ceq.checked_mul(l)?))
                .ok_or_else(over)?;
            ceq = ceq.checked_mul(le - l).ok_or_else(over)?;
        }
        let below = lt.checked_add(clt).ok_or_else(over)?;
        let upto = below.checked_add(ceq).ok_or_else(over)?;
        Ok((below, upto))
    }
}

// ----------------------------------------------------------------------
// Archive round-trip (DESIGN.md §15).
// ----------------------------------------------------------------------

impl OrderedCqIndex {
    /// Extracts the process-independent raw parts: the underlying
    /// [`CqIndex`] archive plus the realized order metadata.
    pub fn to_archive(&self) -> crate::archive::OrderedCqIndexArchive {
        crate::archive::OrderedCqIndexArchive {
            index: self.index.to_archive(),
            order: self.order.clone(),
            node_new: self
                .node_new
                .iter()
                .map(|cols| {
                    cols.iter()
                        .map(|&(col, pos)| (col as u32, pos as u32))
                        .collect()
                })
                .collect(),
        }
    }

    /// Reconstructs an ordered index from archived raw parts, re-checking
    /// — on top of everything [`CqIndex::from_archive`] validates — that
    /// the order is a permutation of the head, that the new-column lists
    /// partition the order positions across the plan exactly once, and
    /// that every bucket's rows are actually sorted on its new columns
    /// (what [`OrderedCqIndex::ordered_access`]'s binary searches rely
    /// on). Violations surface as [`CoreError::InvalidArchive`].
    pub fn from_archive(archive: crate::archive::OrderedCqIndexArchive) -> Result<Self> {
        crate::error::catch_build("OrderedCqIndex::from_archive", move || {
            Self::from_archive_phases(archive)
        })
    }

    fn from_archive_phases(a: crate::archive::OrderedCqIndexArchive) -> Result<Self> {
        use crate::archive::invalid;
        let index = CqIndex::from_archive(a.index)?;
        validate_order(index.head(), &a.order).map_err(CoreError::Query)?;
        let order_to_head: Vec<usize> =
            a.order
                .iter()
                .map(|v| {
                    index.head().iter().position(|h| h == v).ok_or_else(|| {
                        invalid(format!("order variable {v} is not a head variable"))
                    })
                })
                .collect::<Result<_>>()?;
        let plan = index.plan();
        let n = plan.node_count();
        if a.node_new.len() != n {
            return Err(invalid(format!(
                "{} new-column lists for {n} plan nodes",
                a.node_new.len()
            )));
        }
        let mut node_new: Vec<Vec<(usize, usize)>> = Vec::with_capacity(n);
        let mut position_owner = vec![false; a.order.len()];
        for (node, cols) in a.node_new.iter().enumerate() {
            let bag = plan.bag(node);
            let key_cols = plan.parent_shared_cols(node);
            // The bag splits exactly into pAtts and introduced columns.
            if cols.len() + key_cols.len() != bag.len() {
                return Err(invalid(format!(
                    "node {node}: {} new columns + {} pAtts do not cover arity {}",
                    cols.len(),
                    key_cols.len(),
                    bag.len()
                )));
            }
            let mut live = Vec::with_capacity(cols.len());
            let mut last_pos: Option<usize> = None;
            for &(col, pos) in cols {
                let (col, pos) = (col as usize, pos as usize);
                if col >= bag.len() || pos >= a.order.len() {
                    return Err(invalid(format!(
                        "node {node}: new column ({col}, {pos}) out of range"
                    )));
                }
                if key_cols.contains(&col) {
                    return Err(invalid(format!(
                        "node {node}: column {col} is a pAtts key, not introduced here"
                    )));
                }
                if bag[col] != a.order[pos] {
                    return Err(invalid(format!(
                        "node {node}: column {col} does not carry order variable {pos}"
                    )));
                }
                if last_pos.is_some_and(|p| p >= pos) {
                    return Err(invalid(format!(
                        "node {node}: new columns are not most-significant-first"
                    )));
                }
                last_pos = Some(pos);
                if std::mem::replace(&mut position_owner[pos], true) {
                    return Err(invalid(format!(
                        "order position {pos} introduced at two nodes"
                    )));
                }
                live.push((col, pos));
            }
            node_new.push(live);
        }
        if let Some(pos) = position_owner.iter().position(|&owned| !owned) {
            return Err(invalid(format!(
                "order position {pos} is introduced at no node"
            )));
        }
        // Within every bucket, rows must be sorted on the node's new
        // columns, and no two rows may coincide on all of them (they would
        // be duplicate rows: the bucket fixes the pAtts and the new columns
        // are the rest of the bag).
        for (node, cols) in node_new.iter().enumerate() {
            let rel = index.node_relation(node);
            for bucket_id in 0..index.bucket_count(node) {
                let b = index.bucket(node, bucket_id as u32);
                for r in b.start..b.end.saturating_sub(1) {
                    let (prev, next) = (rel.row(r as usize), rel.row(r as usize + 1));
                    let cmp = cols
                        .iter()
                        .map(|&(col, _)| prev[col].cmp(&next[col]))
                        .find(|c| *c != Ordering::Equal)
                        .unwrap_or(Ordering::Equal);
                    match cmp {
                        Ordering::Greater => {
                            return Err(invalid(format!(
                                "node {node}: bucket {bucket_id} rows out of order on the \
                                 realized order columns"
                            )));
                        }
                        Ordering::Equal => {
                            return Err(invalid(format!(
                                "node {node}: bucket {bucket_id} holds duplicate rows"
                            )));
                        }
                        Ordering::Less => {}
                    }
                }
            }
        }
        Ok(OrderedCqIndex {
            index,
            order: a.order,
            order_to_head,
            node_new,
        })
    }
}

/// A constant-delay cursor over a rank window of an ordered index
/// ([`OrderedCqIndex::range`]): the Theorem 4.1 sequential enumerator
/// seeked to the window start. Zero heap allocations per answer via
/// [`OrderedEnumeration::next_ref`].
#[derive(Debug, Clone)]
pub struct OrderedEnumeration<'a> {
    seq: crate::enumerate::CqSequential<'a>,
    remaining: Weight,
}

impl OrderedEnumeration<'_> {
    /// Answers left in the window.
    pub fn remaining(&self) -> Weight {
        self.remaining
    }

    /// The next answer of the window as a borrow of the cursor's buffer
    /// (zero-allocation), or `None` when the window is exhausted.
    pub fn next_ref(&mut self) -> Option<&[Value]> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.seq.next_ref()
    }
}

impl Iterator for OrderedEnumeration<'_> {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        self.next_ref().map(<[Value]>::to_vec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    use rae_query::QueryError;

    fn example_4_4_db() -> Database {
        let mut db = Database::new();
        add(
            &mut db,
            "R1",
            rel_str(
                &["v", "w", "x"],
                &[
                    &["a1", "b1", "c1"],
                    &["a1", "b1", "c2"],
                    &["a2", "b2", "c1"],
                    &["a2", "b2", "c2"],
                ],
            ),
        );
        add(
            &mut db,
            "R2",
            rel_str(
                &["w", "y"],
                &[&["b1", "d1"], &["b1", "d2"], &["b2", "d2"], &["b2", "d3"]],
            ),
        );
        add(
            &mut db,
            "R3",
            rel_str(
                &["x", "z"],
                &[&["c1", "e1"], &["c1", "e2"], &["c1", "e3"], &["c2", "e4"]],
            ),
        );
        db
    }

    /// Naive reference: materialize, sort by the order, compare every rank.
    fn check_order(cq: &ConjunctiveQuery, db: &Database, order: &[&str]) -> OrderedCqIndex {
        let order = syms(order);
        let idx = OrderedCqIndex::build(cq, db, &order).expect("order should be realizable");
        let expected = rae_query::naive_eval(cq, db).unwrap();
        let mut rows: Vec<Vec<Value>> = expected.rows().map(<[Value]>::to_vec).collect();
        let head = idx.head().to_vec();
        let positions: Vec<usize> = order
            .iter()
            .map(|v| head.iter().position(|h| h == v).unwrap())
            .collect();
        rows.sort_by(|a, b| {
            positions
                .iter()
                .map(|&p| a[p].cmp(&b[p]))
                .find(|o| *o != Ordering::Equal)
                .unwrap_or(Ordering::Equal)
        });
        assert_eq!(idx.count() as usize, rows.len(), "count mismatch");
        for (k, expected_row) in rows.iter().enumerate() {
            let got = idx.ordered_access(k as Weight).unwrap();
            assert_eq!(&got, expected_row, "rank {k} order {order:?}");
            assert_eq!(
                idx.ordered_inverted_access(expected_row),
                Some(k as Weight),
                "inverted rank {k}"
            );
        }
        assert!(idx.ordered_access(idx.count()).is_none());
        idx
    }

    #[test]
    fn example_4_4_all_realizable_orders_match_naive() {
        let cq = cq("Q(v, w, x, y, z) :- R1(v, w, x), R2(w, y), R3(x, z)");
        let db = example_4_4_db();
        // A portfolio of realizable orders over the {v,w,x}-{w,y}-{x,z}
        // tree, including reorderings inside the root bag and re-rooting.
        for order in [
            &["v", "w", "x", "y", "z"],
            &["x", "w", "v", "z", "y"],
            &["w", "x", "v", "y", "z"],
            &["v", "w", "x", "z", "y"],
            &["x", "v", "w", "z", "y"],
        ] {
            check_order(&cq, &db, order);
        }
    }

    #[test]
    fn unrealizable_order_is_a_structured_error() {
        let cq = cq("Q(v, w, x, y, z) :- R1(v, w, x), R2(w, y), R3(x, z)");
        let db = example_4_4_db();
        // y first: {w,y} would root, but then v,... the order y,v,... puts
        // two non-adjacent variables before their shared neighbor w.
        let err = OrderedCqIndex::build(&cq, &db, &syms(&["y", "v", "w", "x", "z"]));
        match err {
            Err(CoreError::Query(QueryError::UnrealizableOrder { .. })) => {}
            other => panic!("expected UnrealizableOrder, got {other:?}"),
        }
        // Not a permutation of the head.
        let err = OrderedCqIndex::build(&cq, &db, &syms(&["v", "w", "x", "y"]));
        assert!(matches!(
            err,
            Err(CoreError::Query(QueryError::OrderVariableMismatch { .. }))
        ));
    }

    #[test]
    fn range_count_matches_naive_filter() {
        let cq = cq("Q(v, w, x, y, z) :- R1(v, w, x), R2(w, y), R3(x, z)");
        let db = example_4_4_db();
        let order = syms(&["x", "w", "v", "z", "y"]);
        let idx = OrderedCqIndex::build(&cq, &db, &order).unwrap();
        let all: Vec<Vec<Value>> = idx.enumerate().collect();
        // Every prefix of every answer, plus some misses.
        for answer in &all {
            for p in 0..=order.len() {
                let prefix: Vec<Value> = idx.order_to_head()[..p]
                    .iter()
                    .map(|&h| answer[h].clone())
                    .collect();
                let expected = all
                    .iter()
                    .filter(|a| {
                        idx.order_to_head()[..p]
                            .iter()
                            .zip(prefix.iter())
                            .all(|(&h, v)| &a[h] == v)
                    })
                    .count() as Weight;
                assert_eq!(
                    idx.range_count(&prefix).unwrap(),
                    expected,
                    "prefix {prefix:?}"
                );
                // The range window scans exactly the matching answers.
                let window: Vec<Vec<Value>> = idx.enumerate_prefix(&prefix).unwrap().collect();
                assert_eq!(window.len() as Weight, expected);
                for w in &window {
                    assert!(idx.order_to_head()[..p]
                        .iter()
                        .zip(prefix.iter())
                        .all(|(&h, v)| &w[h] == v));
                }
            }
        }
        // Misses: values below/above/absent.
        assert_eq!(idx.range_count(&[Value::str("c0")]).unwrap(), 0);
        assert_eq!(idx.range_count(&[Value::str("zzz")]).unwrap(), 0);
        assert_eq!(idx.range_count(&[Value::Int(5)]).unwrap(), 0);
        assert_eq!(idx.range_count(&[]).unwrap(), idx.count());
    }

    #[test]
    fn range_windows_paginate_consistently() {
        let cq = cq("Q(v, w, x, y, z) :- R1(v, w, x), R2(w, y), R3(x, z)");
        let db = example_4_4_db();
        let idx = OrderedCqIndex::build(&cq, &db, &syms(&["v", "w", "x", "y", "z"])).unwrap();
        let all: Vec<Vec<Value>> = idx.enumerate().collect();
        assert_eq!(all.len() as Weight, idx.count());
        // Page through with window size 3; concatenation must equal `all`.
        let mut paged: Vec<Vec<Value>> = Vec::new();
        let mut at: Weight = 0;
        while at < idx.count() {
            paged.extend(idx.range(at..at + 3));
            at += 3;
        }
        assert_eq!(paged, all);
        // Clamping.
        assert_eq!(idx.range(idx.count()..idx.count() + 5).count(), 0);
        let tail: Vec<_> = idx.range(idx.count() - 1..Weight::MAX).collect();
        assert_eq!(tail.len(), 1);
        assert_eq!(&tail[0], all.last().unwrap());
    }

    #[test]
    fn cross_product_orders_interleave_components() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a"], &[&[3], &[1], &[2]]));
        add(&mut db, "S", rel_int(&["b"], &[&[20], &[10]]));
        let cq = cq("Q(x, y) :- R(x), S(y)");
        check_order(&cq, &db, &["x", "y"]);
        check_order(&cq, &db, &["y", "x"]);
    }

    #[test]
    fn filter_heavy_query_with_reversed_order() {
        // Self-join plus constant: exercises instantiate + fold paths.
        let mut db = Database::new();
        add(
            &mut db,
            "E",
            rel_int(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 4], &[2, 4], &[4, 1]]),
        );
        let cq = cq("Q(x, y, z) :- E(x, y), E(y, z)");
        for order in [
            &["x", "y", "z"],
            &["y", "x", "z"],
            &["y", "z", "x"],
            &["z", "y", "x"],
        ] {
            check_order(&cq, &db, order);
        }
    }

    #[test]
    fn boolean_query_has_trivial_order() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a"], &[&[1]]));
        let cq = cq("Q() :- R(x)");
        let idx = OrderedCqIndex::build(&cq, &db, &[]).unwrap();
        assert_eq!(idx.count(), 1);
        assert_eq!(idx.ordered_access(0).unwrap(), Vec::<Value>::new());
        assert_eq!(idx.range_count(&[]).unwrap(), 1);
    }

    #[test]
    fn empty_result_set() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a", "b"], &[]));
        let cq = cq("Q(x, y) :- R(x, y)");
        let idx = OrderedCqIndex::build(&cq, &db, &syms(&["y", "x"])).unwrap();
        assert_eq!(idx.count(), 0);
        assert!(idx.ordered_access(0).is_none());
        assert_eq!(idx.range_count(&[Value::Int(1)]).unwrap(), 0);
        assert_eq!(idx.enumerate().count(), 0);
    }

    #[test]
    fn projection_with_order_on_kept_vars() {
        let mut db = Database::new();
        add(
            &mut db,
            "R",
            rel_int(&["a", "b"], &[&[1, 10], &[1, 11], &[2, 10], &[3, 12]]),
        );
        add(
            &mut db,
            "S",
            rel_int(&["b", "c"], &[&[10, 0], &[11, 0], &[12, 1], &[13, 1]]),
        );
        let cq = cq("Q(x, y) :- R(x, y), S(y, z)");
        check_order(&cq, &db, &["x", "y"]);
        check_order(&cq, &db, &["y", "x"]);
    }
}
