//! Algorithms 2–4: the random-access data structure for free-connex CQs
//! (Theorem 4.3).
//!
//! Preprocessing ([`CqIndex::build`]):
//! 1. reduce the free-connex CQ to a full acyclic join over a join-tree plan
//!    (Proposition 4.2, implemented in `rae-yannakakis`);
//! 2. partition every node relation into *buckets* by the attributes shared
//!    with the parent (`pAtts`), sorting rows canonically by
//!    `(pAtts, full row)`;
//! 3. leaf-to-root, give every row a *weight* — the number of answers of the
//!    subtree below it (product of the matching child-bucket totals) — and a
//!    *startIndex*, the running weight sum within its bucket.
//!
//! Random access ([`CqIndex::access`]) descends root-to-leaf: binary search
//! for the row owning the requested index inside the current bucket, then
//! split the remainder across the children in mixed radix (`SplitIndex`).
//! Inverted access ([`CqIndex::inverted_access`]) runs the same walk guided
//! by the answer instead of the index, combining child indexes with
//! `CombineIndex`. Counting is O(1): the total weight at the (virtual) root.
//!
//! The enumeration order realized by `access` is the lexicographic order on
//! the DFS sequence of bag tuples; two indexes over the same [`TreePlan`]
//! whose node relations are subsets of one another therefore enumerate in
//! *compatible* orders (used by the mc-UCQ structure, Theorem 5.5).

// Sanctioned panics: each `expect` names a build-order invariant (weights and startIndex are
// filled bottom-up before any parent reads them); violation is a bug, not a
// recoverable state.
#![allow(clippy::expect_used)]

use crate::archive::{Buckets, CqIndexArchive, NodeArchive, Starts};
use crate::column::Col;
use crate::error::{catch_build, ensure_u32, CoreError};
use crate::renum_cq::CqShuffle;
use crate::scratch::AccessScratch;
use crate::weight::{checked_product, split_index, Weight};
use crate::Result;
use rae_data::{dict, CodeKeyMap, Database, Relation, SortAlgorithm, Symbol, Value, ValueCode};
use rae_faults::{degrade, fail_point, Budget};
use rae_query::{ConjunctiveQuery, TreePlan};
use rae_yannakakis::{
    full_reduce, reduce_to_full_acyclic, reduce_to_full_acyclic_with, FullAcyclicJoin,
    ReduceOptions,
};
use rand::Rng;
use std::ops::Range;
use std::sync::OnceLock;

/// Environment variable overriding the preprocessing thread count
/// (`1` forces the serial build; unset ⇒ available parallelism).
pub const BUILD_THREADS_ENV: &str = "RAE_BUILD_THREADS";

/// Builds below this many total input tuples always run serially: thread
/// spawn overhead dwarfs the work, and the tiny indexes of unit tests should
/// not fan out.
const MIN_PARALLEL_TUPLES: usize = 4096;

/// Smallest per-node row count worth chunking across threads in the
/// weights/child-bucket pass.
const MIN_PARALLEL_ROWS: usize = 8192;

/// Preprocessing configuration for [`CqIndex::from_parts_with`].
///
/// The build is **deterministic** for every configuration: serial and
/// parallel builds (any thread count, either sort algorithm) produce
/// byte-identical index artifacts — weights, startIndexes, buckets, row
/// orders, and child-bucket tables. The knobs only trade wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildOptions {
    /// Worker threads for the level-synchronous build. `0` = auto: the
    /// [`BUILD_THREADS_ENV`] environment variable if set, otherwise
    /// [`std::thread::available_parallelism`]. `1` = the serial path (no
    /// threads are spawned).
    pub threads: usize,
    /// Sort implementation for the canonical relation sorts (radix vs
    /// comparison ablation; see `rae_data::SortAlgorithm`).
    pub sort: SortAlgorithm,
}

impl BuildOptions {
    /// The fully serial configuration (today's single-threaded path).
    pub fn serial() -> Self {
        BuildOptions {
            threads: 1,
            sort: SortAlgorithm::default(),
        }
    }

    /// A configuration with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        BuildOptions {
            threads,
            sort: SortAlgorithm::default(),
        }
    }

    /// The effective thread count (resolving `0` through the environment
    /// and the machine's available parallelism).
    pub fn resolved_threads(&self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        if let Ok(raw) = std::env::var(BUILD_THREADS_ENV) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// A bucket of a node relation: a contiguous, canonically ordered row range
/// sharing one `pAtts` key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketView {
    /// First row id of the bucket.
    pub start: u32,
    /// One past the last row id.
    pub end: u32,
    /// Total weight (number of subtree answers) of the bucket.
    pub total: Weight,
    /// Maximum row weight in the bucket (used by Olken-style samplers).
    pub max_weight: Weight,
}

#[derive(Debug)]
struct NodeIndex {
    rel: Relation,
    /// Positions (in the bag) of the attributes shared with the parent.
    key_cols: Vec<usize>,
    /// Per-row subtree answer count (Algorithm 2's `w(t)`), always ≥ 1.
    /// Owned for fresh builds; a zero-copy snapshot view after a
    /// borrowed load (likewise for the other [`Col`]-typed tables).
    weights: Col<Weight>,
    /// Per-row start index within its bucket (Algorithm 2's
    /// `startIndex`) — compact/wide direct layouts or the succinct
    /// Elias-Fano encoding (see [`crate::archive::Starts`]).
    starts: Starts,
    buckets: Buckets,
    /// `pAtts` key (dictionary codes) → bucket id; probed with borrowed
    /// code slices, so no key is ever materialized on the lookup path.
    bucket_by_key: CodeKeyMap,
    /// Bucket id of each row.
    bucket_of_row: Col<u32>,
    /// `child_buckets[c][row]`: bucket id in child `c` matched by `row`.
    child_buckets: Vec<Col<u32>>,
    /// For each bag column, the head position it feeds.
    bag_to_head: Vec<usize>,
    /// Lazily built full-tuple-codes → row id lookup (Algorithm 4, line 4).
    /// The paper's implementation also builds this index only when inverted
    /// access is actually needed (Section 6.1).
    row_by_tuple: OnceLock<CodeKeyMap>,
}

impl NodeIndex {
    /// The startIndex of `row_id` within its bucket, resolving the
    /// bucket base only when the Elias-Fano layout needs it (the direct
    /// layouts skip the bucket lookup entirely).
    #[inline]
    fn start_of_row(&self, row_id: usize) -> Weight {
        match &self.starts {
            Starts::EliasFano(_) => {
                let first = self.buckets.at(self.bucket_of_row[row_id] as usize).start;
                self.starts.at(row_id, first as usize)
            }
            _ => self.starts.at(row_id, 0),
        }
    }

    fn row_lookup(&self) -> &CodeKeyMap {
        self.row_by_tuple.get_or_init(|| {
            // Row count was validated against u32 in `from_parts`. Sized to
            // the relation *after* reduction, so the table never re-grows,
            // and filled from the flat code mirror in one tight loop (no
            // per-row bounds-checked re-borrow of `rel`).
            let arity = self.rel.arity();
            let rows = self.rel.len();
            let mut map = CodeKeyMap::with_capacity(arity, rows);
            if arity == 0 {
                for i in 0..rows {
                    map.insert(&[], i as u32);
                }
            } else {
                for (i, key) in self.rel.codes().chunks_exact(arity).enumerate() {
                    map.insert(key, i as u32);
                }
            }
            map
        })
    }
}

/// The Theorem 4.3 structure: linear-time preprocessing, O(1) count,
/// O(log n) random access, O(1) inverted access for a free-connex CQ.
#[derive(Debug)]
pub struct CqIndex {
    plan: TreePlan,
    nodes: Vec<NodeIndex>,
    head: Vec<Symbol>,
    root_totals: Vec<Weight>,
    total: Weight,
    /// Dictionary generation the code-based lookup tables were built
    /// against; a later sweep invalidates them (see [`CqIndex::try_access`]).
    generation: rae_data::Generation,
}

impl CqIndex {
    /// Builds the index for a free-connex CQ over a database.
    ///
    /// Fails with a [`rae_query::QueryError::NotFreeConnex`] /
    /// [`rae_query::QueryError::NotAcyclic`] wrapped error when the query is
    /// outside the tractable class of Theorem 4.3.
    ///
    /// ```
    /// use rae_core::CqIndex;
    /// use rae_data::{Database, Relation, Schema, Value};
    ///
    /// let mut db = Database::new();
    /// db.add_relation(
    ///     "R",
    ///     Relation::from_rows(
    ///         Schema::new(["a", "b"]).unwrap(),
    ///         vec![
    ///             vec![Value::Int(1), Value::Int(10)],
    ///             vec![Value::Int(1), Value::Int(11)],
    ///             vec![Value::Int(2), Value::Int(10)],
    ///         ],
    ///     )
    ///     .unwrap(),
    /// )
    /// .unwrap();
    /// let q = "Q(x, y) :- R(x, y)".parse().unwrap();
    ///
    /// let index = CqIndex::build(&q, &db).unwrap();
    /// assert_eq!(index.count(), 3); // O(1)
    /// let answer = index.access(1).unwrap(); // O(log n)
    /// assert_eq!(index.inverted_access(&answer), Some(1)); // round-trips
    /// ```
    pub fn build(cq: &ConjunctiveQuery, db: &Database) -> Result<Self> {
        // The catch boundary sits here (not only around `from_parts`) so a
        // panic inside the Proposition 4.2 reduction also surfaces as a
        // structured `BuildPanicked` instead of unwinding into the caller.
        catch_build("CqIndex::build", || {
            let fj = reduce_to_full_acyclic(cq, db)?;
            Self::from_full_join(fj)
        })
    }

    /// [`CqIndex::build`] with explicit join-tree layout options (root
    /// orientation, subset folding). All layouts are correct; they differ in
    /// constant factors — the `ablation-fold` experiment quantifies this,
    /// and the sampling baselines use the fan-out layout (DESIGN.md §4).
    pub fn build_with(
        cq: &ConjunctiveQuery,
        db: &Database,
        options: ReduceOptions,
    ) -> Result<Self> {
        catch_build("CqIndex::build_with", || {
            let fj = reduce_to_full_acyclic_with(cq, db, options)?;
            Self::from_full_join(fj)
        })
    }

    /// Builds the index from an already-reduced full acyclic join.
    pub fn from_full_join(fj: FullAcyclicJoin) -> Result<Self> {
        Self::from_parts(fj.plan, fj.relations, fj.head)
    }

    /// Builds the index from raw parts: a plan, one relation per node (schema
    /// = bag), and the head attribute order.
    ///
    /// Every bag attribute must be a head attribute and vice versa (the
    /// structure enumerates distinct full-join tuples, so non-head bag
    /// attributes would produce duplicate answers). Relations are reduced
    /// and canonically sorted here, so any consistent input is accepted —
    /// this is the entry point the mc-UCQ builder uses with intersected
    /// relations.
    pub fn from_parts(plan: TreePlan, relations: Vec<Relation>, head: Vec<Symbol>) -> Result<Self> {
        Self::from_parts_with(plan, relations, head, BuildOptions::default())
    }

    /// [`CqIndex::from_parts`] with explicit preprocessing options: thread
    /// count for the level-synchronous parallel build and the sort
    /// implementation (see [`BuildOptions`] and DESIGN.md §10).
    ///
    /// The produced index is byte-identical for every option combination.
    pub fn from_parts_with(
        plan: TreePlan,
        relations: Vec<Relation>,
        head: Vec<Symbol>,
        options: BuildOptions,
    ) -> Result<Self> {
        Self::from_parts_budgeted(plan, relations, head, options, &Budget::unlimited())
    }

    /// [`CqIndex::from_parts_with`] under a resource [`Budget`]: the build
    /// checks the deadline/cancellation at every phase boundary and level,
    /// accounts its artifact tables against the memory cap, and degrades
    /// (radix→comparison sort) when optional scratch no longer fits.
    /// A breach surfaces as [`CoreError::BudgetExceeded`] naming the phase.
    ///
    /// The build is transactional: it consumes owned relations, so on any
    /// error — budget breach, injected fault, or a panic caught at this
    /// boundary — the source `Database` and the dictionary are observably
    /// unchanged.
    pub fn from_parts_budgeted(
        plan: TreePlan,
        relations: Vec<Relation>,
        head: Vec<Symbol>,
        options: BuildOptions,
        budget: &Budget<'_>,
    ) -> Result<Self> {
        Self::from_parts_inner(plan, relations, head, options, None, budget)
    }

    /// [`CqIndex::from_parts_with`] with an explicit sort priority per node:
    /// `priorities[i]` lists every bag column of node `i` exactly once,
    /// starting with the parent-shared columns. Node relations are sorted by
    /// that column priority instead of the default `(pAtts, schema order)`,
    /// which makes the access order the lexicographic order chosen by a
    /// `rae_query::LexPlan` (see `crate::ordered`).
    pub(crate) fn from_parts_lex(
        plan: TreePlan,
        relations: Vec<Relation>,
        head: Vec<Symbol>,
        priorities: &[Vec<usize>],
        options: BuildOptions,
        budget: &Budget<'_>,
    ) -> Result<Self> {
        assert_eq!(priorities.len(), plan.node_count(), "one priority per node");
        #[cfg(debug_assertions)]
        for (i, priority) in priorities.iter().enumerate() {
            let keys = plan.parent_shared_cols(i);
            let mut sorted = priority.clone();
            sorted.sort_unstable();
            debug_assert_eq!(sorted, (0..plan.bag(i).len()).collect::<Vec<_>>());
            let mut prefix = priority[..keys.len()].to_vec();
            prefix.sort_unstable();
            debug_assert_eq!(prefix, keys, "priority must start with pAtts");
        }
        Self::from_parts_inner(plan, relations, head, options, Some(priorities), budget)
    }

    /// The `catch_unwind` boundary shared by every build entry point: any
    /// panic inside the phases (own code, injected chaos fault, or a worker
    /// thread's panic re-thrown at its scope join) becomes a structured
    /// [`CoreError::BuildPanicked`] instead of unwinding through the public
    /// API.
    fn from_parts_inner(
        plan: TreePlan,
        relations: Vec<Relation>,
        head: Vec<Symbol>,
        options: BuildOptions,
        priorities: Option<&[Vec<usize>]>,
        budget: &Budget<'_>,
    ) -> Result<Self> {
        catch_build("CqIndex::from_parts", move || {
            Self::from_parts_phases(plan, relations, head, options, priorities, budget)
        })
    }

    fn from_parts_phases(
        plan: TreePlan,
        mut relations: Vec<Relation>,
        head: Vec<Symbol>,
        options: BuildOptions,
        priorities: Option<&[Vec<usize>]>,
        budget: &Budget<'_>,
    ) -> Result<Self> {
        assert_eq!(
            plan.node_count(),
            relations.len(),
            "one relation per plan node"
        );
        // Validate attribute coverage in both directions.
        for i in 0..plan.node_count() {
            for attr in plan.bag(i) {
                if !head.contains(attr) {
                    return Err(CoreError::UncoveredHeadAttribute(format!(
                        "bag attribute {attr} is not a head attribute"
                    )));
                }
            }
        }
        for attr in &head {
            if !(0..plan.node_count()).any(|i| plan.bag(i).binary_search(attr).is_ok()) {
                return Err(CoreError::UncoveredHeadAttribute(attr.to_string()));
            }
        }

        // Code-based preprocessing over a stale mirror would bake recycled
        // codes into the lookup tables; refuse up front (recoverable). The
        // generation is read BEFORE the staleness checks (same ordering as
        // `Relation::rehydrate`): a sweep landing after this read leaves the
        // index stamped behind the new generation, so it still reads as
        // stale instead of silently wrong.
        let generation = dict::current_generation();
        for rel in &relations {
            let coded = rel.arity() != 0 && !rel.codes().is_empty();
            if coded && rel.generation() != generation {
                return Err(CoreError::StaleGeneration {
                    built: rel.generation(),
                    current: generation,
                });
            }
        }

        // Serial below the parallel-worthwhile floor (also keeps unit-test
        // workloads from spawning threads for micro relations).
        let total_rows: usize = relations.iter().map(Relation::len).sum();
        let mut threads = if total_rows < MIN_PARALLEL_TUPLES {
            1
        } else {
            options.resolved_threads()
        };
        // Graceful degradation: a denied thread spawn (injected fault
        // standing in for resource exhaustion — `std::thread::scope` itself
        // aborts rather than reporting spawn failure) falls back to the
        // serial build, which produces byte-identical artifacts.
        if threads > 1 && rae_faults::eval_error("build/spawn") {
            degrade::record("build/spawn");
            threads = 1;
        }

        // Estimated working set: the coded mirrors the phases sort in place
        // plus the per-row artifact tables the build mints (weights 16B,
        // starts 16B, bucket/child ids ~8B per row). Checked against the
        // memory cap before the phases allocate anything.
        let total_slots: usize = relations.iter().map(|r| r.codes().len()).sum();
        let est_bytes = total_slots * 8 + total_rows * 40;
        budget.check_mem("build/sort", est_bytes)?;

        // Radix sorting needs transient scratch (~12B per value slot of the
        // largest relation). That scratch is optional: under memory-budget
        // pressure, degrade to the comparison sort (same byte-identical
        // order) instead of failing the build.
        let mut sort = options.sort;
        if !matches!(sort, SortAlgorithm::Comparison) {
            let scratch = relations.iter().map(|r| r.codes().len()).max().unwrap_or(0) * 12;
            if !budget.mem_allows(est_bytes + scratch) {
                degrade::record("sort/scratch");
                sort = SortAlgorithm::Comparison;
            }
        }

        // Phase 1 — set semantics (idempotent when already done). Each
        // relation sorts independently: the first parallel stage.
        par_for_each_indexed(&mut relations, threads, |_, rel| {
            rel.sort_dedup_with(sort);
        });

        // Phase 2 — global consistency via merge semijoins (edge-sequential:
        // each semijoin consumes its predecessor's reduction).
        budget.check("build/reduce")?;
        full_reduce(&plan, &mut relations)?;
        if relations.iter().any(Relation::is_empty) {
            for r in &mut relations {
                r.retain_rows(|_| false);
            }
        }

        let n = plan.node_count();

        // Phase 3 — canonical sort per node: `(pAtts, full row)` by default,
        // or an explicit full column priority for lex-ordered layouts (the
        // priority starts with the pAtts, so bucketing is unaffected).
        // Independent of the tree structure, so all nodes sort concurrently
        // (relations that full reduction left in a covered order skip
        // entirely via the `sorted_by` fingerprint).
        let sort_keys: Vec<Vec<usize>> = match priorities {
            Some(p) => p.to_vec(),
            None => (0..n).map(|i| plan.parent_shared_cols(i)).collect(),
        };
        budget.check("build/sort")?;
        par_for_each_indexed(&mut relations, threads, |i, rel| {
            rel.sort_by_key_then_row_with(&sort_keys[i], sort);
        });

        // Phase 4 — level-synchronous weights/buckets: group nodes by tree
        // depth and build every node of a level concurrently (all children
        // live in deeper, already-built levels). Within a level, leftover
        // threads chunk the row loops of large nodes.
        let mut depth = vec![0usize; n];
        for &node in plan.leaf_to_root().iter().rev() {
            if let Some(p) = plan.parent(node) {
                depth[node] = depth[p] + 1;
            }
        }
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); max_depth + 1];
        for &node in plan.leaf_to_root() {
            levels[depth[node]].push(node);
        }

        let mut nodes: Vec<Option<NodeIndex>> = (0..n).map(|_| None).collect();
        for level in levels.iter().rev() {
            budget.check("build/weights")?;
            let work: Vec<(usize, Relation)> = level
                .iter()
                .map(|&node| {
                    let rel = std::mem::take(&mut relations[node]);
                    (node, rel)
                })
                .collect();
            let built = build_level(&plan, work, &head, &nodes, threads, sort, &sort_keys)?;
            for (node, built_node) in built {
                nodes[node] = Some(built_node);
            }
        }

        let nodes: Vec<NodeIndex> = nodes.into_iter().map(|n| n.expect("built")).collect();
        let root_totals: Vec<Weight> = plan
            .roots()
            .iter()
            .map(|&r| nodes[r].buckets.first().map_or(0, |b| b.total))
            .collect();
        let total = if root_totals.contains(&0) {
            0
        } else {
            checked_product(root_totals.iter().copied()).ok_or(CoreError::WeightOverflow)?
        };

        Ok(CqIndex {
            plan,
            nodes,
            head,
            root_totals,
            total,
            generation,
        })
    }

    /// The number of answers `|Q(D)|` — O(1) (Theorem 4.3).
    #[inline]
    pub fn count(&self) -> Weight {
        self.total
    }

    /// Counts the answers using only the access routine, as in the proof of
    /// Theorem 3.7: binary-search for the first out-of-bound position with
    /// `O(log |Q(D)|)` access calls. Provided for parity with the paper
    /// (structures whose counts are not free get their counts this way);
    /// [`CqIndex::count`] is the O(1) version.
    pub fn count_via_access(&self) -> Weight {
        // Exponential search for an upper bound, then binary search.
        if self.access(0).is_none() {
            return 0;
        }
        let mut hi: Weight = 1;
        while self.access(hi).is_some() {
            hi = hi.saturating_mul(2);
        }
        let mut lo: Weight = hi / 2; // access(lo) is Some
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if self.access(mid).is_some() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    /// The head attributes, in answer order.
    pub fn head(&self) -> &[Symbol] {
        &self.head
    }

    /// The dictionary generation the index was built against.
    #[inline]
    pub fn generation(&self) -> rae_data::Generation {
        self.generation
    }

    /// Whether the index's lookup tables are still valid against the
    /// current dictionary generation. A sweep
    /// ([`rae_data::Database::advance_generation`]) after the build makes
    /// the index stale: inverted access translates probe values through the
    /// *current* dictionary, whose codes may have been recycled to mean
    /// different values than the ones baked into the tables.
    #[inline]
    pub fn is_current(&self) -> bool {
        self.generation == dict::current_generation()
    }

    /// Errors with [`CoreError::StaleGeneration`] unless the index is
    /// current (see [`CqIndex::is_current`]).
    pub fn verify_current(&self) -> Result<()> {
        if self.is_current() {
            Ok(())
        } else {
            Err(CoreError::StaleGeneration {
                built: self.generation,
                current: dict::current_generation(),
            })
        }
    }

    /// Generation-checked [`CqIndex::access`]: `Err` if the index is stale,
    /// `Ok(None)` if `j` is out of bounds.
    ///
    /// The unchecked hot-path methods stay free of the generation probe;
    /// steady-state serving loops that own the lifecycle can keep using
    /// them, while callers that interleave access with relation churn get
    /// the detected error here instead of silently wrong answers.
    pub fn try_access(&self, j: Weight) -> Result<Option<Vec<Value>>> {
        self.verify_current()?;
        Ok(self.access(j))
    }

    /// Generation-checked [`CqIndex::access_into`] (see
    /// [`CqIndex::try_access`]).
    pub fn try_access_into<'s>(
        &self,
        j: Weight,
        scratch: &'s mut AccessScratch,
    ) -> Result<Option<&'s [Value]>> {
        self.verify_current()?;
        Ok(self.access_into(j, scratch))
    }

    /// Generation-checked [`CqIndex::inverted_access`]: `Err` if the index
    /// is stale, `Ok(None)` for a non-answer.
    pub fn try_inverted_access(&self, answer: &[Value]) -> Result<Option<Weight>> {
        self.verify_current()?;
        Ok(self.inverted_access(answer))
    }

    /// The join-tree plan the index is built over.
    pub fn plan(&self) -> &TreePlan {
        &self.plan
    }

    /// Algorithm 3: the `j`-th answer (0-based) of the enumeration order, or
    /// `None` if `j ≥ count()`.
    ///
    /// Thin allocating wrapper over [`CqIndex::access_into`] (fresh scratch
    /// plus an owned result per call). Steady-state callers should hold an
    /// [`AccessScratch`] and use `access_into` directly: it performs zero
    /// heap allocations per answer.
    pub fn access(&self, j: Weight) -> Option<Vec<Value>> {
        let mut scratch = AccessScratch::new();
        self.access_into(j, &mut scratch).map(<[Value]>::to_vec)
    }

    /// Algorithm 3 without allocation: writes the `j`-th answer into
    /// `scratch` and returns a borrow of it, or `None` if `j ≥ count()`.
    ///
    /// The recursive descent of the paper is run as an explicit work-stack
    /// walk over `scratch`; all buffers (answer, stack, digit vector) are
    /// reused across calls, so after the first call on a given shape the
    /// routine allocates nothing.
    ///
    /// ```
    /// use rae_core::{AccessScratch, CqIndex};
    /// use rae_data::{Database, Relation, Schema, Value};
    ///
    /// let mut db = Database::new();
    /// let rel = Relation::from_rows(
    ///     Schema::new(["a"]).unwrap(),
    ///     (0..100).map(|i| vec![Value::Int(i)]),
    /// )
    /// .unwrap();
    /// db.add_relation("R", rel).unwrap();
    /// let index = CqIndex::build(&"Q(x) :- R(x)".parse().unwrap(), &db).unwrap();
    ///
    /// // One scratch, many accesses: zero heap allocations per answer once
    /// // the buffers are warm (verified by tests/zero_alloc.rs).
    /// let mut scratch = AccessScratch::new();
    /// for j in 0..index.count() {
    ///     let answer = index.access_into(j, &mut scratch).unwrap();
    ///     assert_eq!(answer, &[Value::Int(j as i64)]);
    /// }
    /// ```
    pub fn access_into<'s>(
        &self,
        j: Weight,
        scratch: &'s mut AccessScratch,
    ) -> Option<&'s [Value]> {
        if j >= self.total {
            return None;
        }
        scratch.reset_answer(self.head.len());
        scratch.stack.clear();
        let roots = self.plan.roots();
        if let [root] = roots {
            // Single root (the common case): the whole index is its digit.
            scratch.stack.push((*root as u32, 0, j));
        } else {
            split_index(j, &self.root_totals, &mut scratch.digits);
            for (&root, &digit) in roots.iter().zip(scratch.digits.iter()) {
                scratch.stack.push((root as u32, 0, digit));
            }
        }
        while let Some((node, bucket_id, sub_index)) = scratch.stack.pop() {
            let nd = &self.nodes[node as usize];
            let bucket = nd.buckets.at(bucket_id as usize);
            debug_assert!(sub_index < bucket.total);
            // Binary search: the last row of the bucket with startIndex ≤ j,
            // over the compact u64 layout whenever starts fit.
            let offset = nd
                .starts
                .rank_leq(bucket.start as usize, bucket.end as usize, sub_index);
            let row_id = bucket.start as usize + offset - 1;
            let mut remainder = sub_index - nd.starts.at(row_id, bucket.start as usize);
            debug_assert!(remainder < nd.weights[row_id]);

            let row = nd.rel.row(row_id);
            for (&head_pos, value) in nd.bag_to_head.iter().zip(row) {
                scratch.answer[head_pos].clone_from(value);
            }

            // SplitIndex inline: children are mixed-radix digits with the
            // last child least significant, so peeling digits in reverse
            // child order needs no radix/digit vectors at all.
            let children = self.plan.children(node as usize);
            for (c, &child) in children.iter().enumerate().rev() {
                let child_bucket = nd.child_buckets[c][row_id];
                let radix = self.nodes[child].buckets.at(child_bucket as usize).total;
                debug_assert!(radix > 0, "zero-weight bucket reached during access");
                scratch
                    .stack
                    .push((child as u32, child_bucket, remainder % radix));
                remainder /= radix;
            }
            debug_assert_eq!(remainder, 0, "index exceeded the subtree weight");
        }
        Some(&scratch.answer)
    }

    /// Algorithm 4: the position of `answer` in the enumeration order, or
    /// `None` if it is not an answer ("not-a-member").
    ///
    /// Thin allocating wrapper over [`CqIndex::inverted_access_of`]. The
    /// per-node tuple lookup tables are built lazily on first use (as in
    /// the paper's implementation); see [`CqIndex::prepare_inverted_access`].
    pub fn inverted_access(&self, answer: &[Value]) -> Option<Weight> {
        let mut scratch = AccessScratch::new();
        self.inverted_access_of(answer, &mut scratch)
    }

    /// Algorithm 4 without allocation: resolves the position of `answer`
    /// using the buffers in `scratch`.
    ///
    /// The answer is first translated to dictionary codes (a value the
    /// dictionary has never seen is definitively not an answer), then each
    /// node resolves its row by an allocation-free [`CodeKeyMap`] probe.
    /// Nodes are processed leaf-to-root so every node's mixed-radix digit is
    /// available when its parent combines them — no recursion, no per-node
    /// vectors.
    pub fn inverted_access_of(
        &self,
        answer: &[Value],
        scratch: &mut AccessScratch,
    ) -> Option<Weight> {
        if answer.len() != self.head.len() || self.total == 0 {
            return None;
        }
        scratch.answer_codes.clear();
        // One reader-lock acquisition for the whole tuple.
        if !dict::codes_of(answer, &mut scratch.answer_codes) {
            return None;
        }
        scratch.node_digits.clear();
        scratch.node_digits.resize(self.nodes.len(), 0);
        for &node in self.plan.leaf_to_root() {
            let nd = &self.nodes[node];
            scratch.key_codes.clear();
            for &head_pos in &nd.bag_to_head {
                scratch.key_codes.push(scratch.answer_codes[head_pos]);
            }
            let row_id = nd.row_lookup().get(&scratch.key_codes)? as usize;
            // CombineIndex inline over the children's digits (children were
            // all processed earlier in leaf-to-root order). The child's
            // matched row lives in the bucket this row points at whenever
            // `answer` is consistent, which the per-node lookups guarantee.
            let mut digit: Weight = 0;
            for (c, &child) in self.plan.children(node).iter().enumerate() {
                let child_bucket = nd.child_buckets[c][row_id];
                let radix = self.nodes[child].buckets.at(child_bucket as usize).total;
                let child_digit = scratch.node_digits[child];
                debug_assert!(child_digit < radix);
                digit = digit * radix + child_digit;
            }
            scratch.node_digits[node] = nd.start_of_row(row_id) + digit;
        }
        let mut index: Weight = 0;
        for (&root, &total) in self.plan.roots().iter().zip(self.root_totals.iter()) {
            let digit = scratch.node_digits[root];
            debug_assert!(digit < total);
            index = index * total + digit;
        }
        Some(index)
    }

    /// Whether `answer` is an answer (membership test via inverted access).
    pub fn contains(&self, answer: &[Value]) -> bool {
        self.inverted_access(answer).is_some()
    }

    /// Forces construction of the inverted-access lookup tables (otherwise
    /// built lazily on the first [`CqIndex::inverted_access`] call).
    pub fn prepare_inverted_access(&self) {
        for nd in &self.nodes {
            let _ = nd.row_lookup();
        }
    }

    /// Sequential enumeration in the index's order (Fact 3.5: random access
    /// yields enumeration by accessing 0, 1, 2, …) — O(log n) delay. For the
    /// constant-delay enumerator of Theorem 4.1 use [`CqIndex::sequential`].
    pub fn enumerate(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.total).map(move |j| self.access(j).expect("j < count"))
    }

    /// Constant-delay sequential enumeration (`Enum⟨lin, const⟩`,
    /// Theorem 4.1): an odometer cursor over the join tree emitting answers
    /// in the same order as [`CqIndex::enumerate`] without per-answer binary
    /// searches.
    pub fn sequential(&self) -> crate::enumerate::CqSequential<'_> {
        crate::enumerate::CqSequential::new(self)
    }

    /// A uniformly random permutation of the answers (Theorem 3.7:
    /// Fisher–Yates over random access), with O(log n) delay.
    pub fn random_permutation<R: Rng>(&self, rng: R) -> CqShuffle<'_, R> {
        CqShuffle::new(self, rng)
    }

    // ------------------------------------------------------------------
    // Raw structure accessors (used by the `rae-sampler` baselines and the
    // benchmark harness; not needed for ordinary query answering).
    // ------------------------------------------------------------------

    /// Number of plan nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The canonical (sorted) relation stored at a node.
    pub fn node_relation(&self, node: usize) -> &Relation {
        &self.nodes[node].rel
    }

    /// The subtree-answer weight of a row.
    pub fn row_weight(&self, node: usize, row: u32) -> Weight {
        self.nodes[node].weights[row as usize]
    }

    /// The single bucket of a root node, if the index is non-empty.
    pub fn root_bucket(&self, root: usize) -> Option<BucketView> {
        debug_assert!(self.plan.roots().contains(&root));
        self.nodes[root].buckets.first()
    }

    /// The bucket of child `child_pos` of `node` matched by `row`.
    pub fn child_bucket(&self, node: usize, row: u32, child_pos: usize) -> BucketView {
        let nd = &self.nodes[node];
        let child = self.plan.children(node)[child_pos];
        let bucket_id = nd.child_buckets[child_pos][row as usize];
        self.nodes[child].buckets.at(bucket_id as usize)
    }

    /// Writes the head values contributed by `row` of `node` into `answer`.
    pub fn write_row_values(&self, node: usize, row: u32, answer: &mut [Value]) {
        let nd = &self.nodes[node];
        let row = nd.rel.row(row as usize);
        for (col, &head_pos) in nd.bag_to_head.iter().enumerate() {
            answer[head_pos] = row[col].clone();
        }
    }

    /// The number of head attributes.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// The `pAtts` positions (within the node's bag) — empty for roots.
    pub fn node_key_cols(&self, node: usize) -> &[usize] {
        &self.nodes[node].key_cols
    }

    /// The id of the bucket containing `row` of `node`.
    pub fn bucket_of_row(&self, node: usize, row: u32) -> u32 {
        self.nodes[node].bucket_of_row[row as usize]
    }

    /// A bucket of `node` by id.
    pub fn bucket(&self, node: usize, bucket_id: u32) -> BucketView {
        self.nodes[node].buckets.at(bucket_id as usize)
    }

    /// Number of buckets of `node`.
    pub fn bucket_count(&self, node: usize) -> usize {
        self.nodes[node].buckets.len()
    }

    /// The startIndex of `row` within its bucket (Algorithm 2).
    pub fn row_start(&self, node: usize, row: u32) -> Weight {
        self.nodes[node].start_of_row(row as usize)
    }

    /// Whether every per-row artifact table (weights, starts, buckets,
    /// bucket ids, child links) is a zero-copy view into a snapshot
    /// buffer — true exactly for indexes reconstructed by the store's
    /// borrowed load path.
    pub fn storage_is_borrowed(&self) -> bool {
        !self.nodes.is_empty()
            && self.nodes.iter().all(|nd| {
                nd.weights.is_borrowed()
                    && nd.starts.is_borrowed()
                    && nd.buckets.is_borrowed()
                    && nd.bucket_of_row.is_borrowed()
                    && nd.child_buckets.iter().all(Col::is_borrowed)
            })
    }

    /// The startIndex layout name of `node` (`"compact"`, `"wide"`, or
    /// `"elias-fano"`) — test/bench introspection.
    pub fn starts_encoding(&self, node: usize) -> &'static str {
        self.nodes[node].starts.encoding()
    }
}

// ----------------------------------------------------------------------
// Level-synchronous build internals (DESIGN.md §10). Everything below is
// deterministic: worker assignment never influences any produced artifact.
// ----------------------------------------------------------------------

/// Runs `f(index, item)` over `items`, splitting the slice into contiguous
/// chunks across up to `threads` scoped worker threads (serial when
/// `threads <= 1` or there is at most one item).
fn par_for_each_indexed<T: Send>(
    items: &mut [T],
    threads: usize,
    f: impl Fn(usize, &mut T) + Sync,
) {
    if threads <= 1 || items.len() <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads.min(items.len()));
    std::thread::scope(|scope| {
        for (w, slice) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (j, item) in slice.iter_mut().enumerate() {
                    f(w * chunk + j, item);
                }
            });
        }
    });
}

/// Builds every node of one tree level. Nodes of a level are independent
/// (their children live in deeper levels, already present in `nodes`), so
/// with `threads > 1` they build concurrently; leftover parallelism goes to
/// row-chunking inside the nodes ([`compute_weights`]).
fn build_level(
    plan: &TreePlan,
    work: Vec<(usize, Relation)>,
    head: &[Symbol],
    nodes: &[Option<NodeIndex>],
    threads: usize,
    sort: SortAlgorithm,
    sort_keys: &[Vec<usize>],
) -> Result<Vec<(usize, NodeIndex)>> {
    let node_workers = threads.min(work.len());
    if node_workers <= 1 {
        // Single node (or serial): give the whole thread budget to the rows.
        return work
            .into_iter()
            .map(|(node, rel)| {
                Ok((
                    node,
                    build_node(
                        plan,
                        node,
                        rel,
                        head,
                        nodes,
                        threads,
                        sort,
                        &sort_keys[node],
                    )?,
                ))
            })
            .collect();
    }
    let inner_threads = (threads / node_workers).max(1);
    let mut shards: Vec<Vec<(usize, Relation)>> = (0..node_workers).map(|_| Vec::new()).collect();
    for (i, item) in work.into_iter().enumerate() {
        shards[i % node_workers].push(item);
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(node_workers);
        for shard in shards {
            handles.push(scope.spawn(move || -> Result<Vec<(usize, NodeIndex)>> {
                shard
                    .into_iter()
                    .map(|(node, rel)| {
                        Ok((
                            node,
                            build_node(
                                plan,
                                node,
                                rel,
                                head,
                                nodes,
                                inner_threads,
                                sort,
                                &sort_keys[node],
                            )?,
                        ))
                    })
                    .collect()
            }));
        }
        // Join every handle before reporting: an early `?` would leave
        // handles unjoined, and `thread::scope` re-throws the panic of any
        // unjoined worker at scope exit (bypassing this conversion).
        let mut built = Vec::new();
        let mut first_err: Option<CoreError> = None;
        let mut worker_panicked = false;
        for handle in handles {
            match handle.join() {
                Ok(Ok(part)) => built.extend(part),
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => worker_panicked = true,
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        if worker_panicked {
            return Err(CoreError::BuildPanicked {
                context: "build/node",
                message: "node build worker panicked".to_owned(),
            });
        }
        Ok(built)
    })
}

/// Builds one node's index artifacts: canonical sort (a fingerprint no-op
/// when phase 3 already sorted it), per-row subtree weights and child-bucket
/// ids, then the bucket table and startIndexes. `sort_key` is the node's
/// column-sort priority — the pAtts by default, a full lex priority for
/// ordered layouts (bucketing always uses the pAtts).
#[allow(clippy::too_many_arguments)]
fn build_node(
    plan: &TreePlan,
    node: usize,
    mut rel: Relation,
    head: &[Symbol],
    nodes: &[Option<NodeIndex>],
    threads: usize,
    sort: SortAlgorithm,
    sort_key: &[usize],
) -> Result<NodeIndex> {
    fail_point!("build/node", |site| Err(CoreError::FaultInjected { site }));
    let key_cols = plan.parent_shared_cols(node);
    rel.sort_by_key_then_row_with(sort_key, sort);

    let children = plan.children(node);
    // For each child: the positions in *this* bag holding the child's
    // pAtts attributes, in the child's key-column order.
    let probe_cols: Vec<Vec<usize>> = children
        .iter()
        .map(|&c| {
            plan.parent_shared_cols(c)
                .iter()
                .map(|&cc| {
                    let attr = &plan.bag(c)[cc];
                    plan.bag(node)
                        .binary_search(attr)
                        .expect("shared attribute occurs in parent bag")
                })
                .collect()
        })
        .collect();

    let row_count = rel.len();
    // Row and bucket ids are u32; oversized relations are a recoverable
    // error, not a panic.
    ensure_u32("rows", row_count)?;
    let (weights, child_buckets) =
        compute_weights(&rel, children, &probe_cols, nodes, row_count, threads)?;

    // Buckets: contiguous runs of equal pAtts keys (compared on dictionary
    // codes — equal codes ⟺ equal values). Sequential by nature (running
    // startIndex sums), but O(rows) with no hashing.
    let mut key_buf: Vec<ValueCode> = Vec::new();
    let mut starts: Vec<Weight> = vec![0; row_count];
    let mut buckets: Vec<BucketView> = Vec::new();
    let mut bucket_by_key = CodeKeyMap::with_capacity(key_cols.len(), 16);
    let mut bucket_of_row: Vec<u32> = vec![0; row_count];
    let mut row_id = 0usize;
    while row_id < row_count {
        let bucket_id = ensure_u32("buckets", buckets.len())?;
        let start = row_id;
        let mut running: Weight = 0;
        let mut max_weight: Weight = 0;
        while row_id < row_count && {
            let (cur, first) = (rel.row_codes(row_id), rel.row_codes(start));
            key_cols.iter().all(|&c| cur[c] == first[c])
        } {
            starts[row_id] = running;
            running = running
                .checked_add(weights[row_id])
                .ok_or(CoreError::WeightOverflow)?;
            max_weight = max_weight.max(weights[row_id]);
            bucket_of_row[row_id] = bucket_id;
            row_id += 1;
        }
        buckets.push(BucketView {
            start: start as u32,
            end: row_id as u32,
            total: running,
            max_weight,
        });
        key_buf.clear();
        key_buf.extend(key_cols.iter().map(|&c| rel.row_codes(start)[c]));
        bucket_by_key.insert(&key_buf, bucket_id);
    }

    let bag_to_head: Vec<usize> = plan
        .bag(node)
        .iter()
        .map(|attr| head.iter().position(|h| h == attr).expect("validated"))
        .collect();

    Ok(NodeIndex {
        rel,
        key_cols,
        weights: Col::Owned(weights),
        starts: Starts::from_weights(starts),
        buckets: Buckets::from_views(&buckets),
        bucket_by_key,
        bucket_of_row: Col::Owned(bucket_of_row),
        child_buckets: child_buckets.into_iter().map(Col::Owned).collect(),
        bag_to_head,
        row_by_tuple: OnceLock::new(),
    })
}

/// Per-row subtree weights and child-bucket ids (Algorithm 2's `w(t)`),
/// row-chunked across up to `threads` scoped workers for large nodes. Rows
/// are independent given the children's (already built) bucket tables, and
/// chunks concatenate in row order, so the result is chunking-invariant.
fn compute_weights(
    rel: &Relation,
    children: &[usize],
    probe_cols: &[Vec<usize>],
    nodes: &[Option<NodeIndex>],
    row_count: usize,
    threads: usize,
) -> Result<(Vec<Weight>, Vec<Vec<u32>>)> {
    fail_point!("build/weights", |site| Err(CoreError::FaultInjected {
        site
    }));
    if threads <= 1 || row_count < MIN_PARALLEL_ROWS || children.is_empty() {
        return weights_range(rel, children, probe_cols, nodes, 0..row_count);
    }
    let workers = threads.min(row_count.div_ceil(MIN_PARALLEL_ROWS)).max(1);
    let chunk = row_count.div_ceil(workers);
    let parts = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut start = 0usize;
        while start < row_count {
            let end = (start + chunk).min(row_count);
            handles.push(
                scope.spawn(move || weights_range(rel, children, probe_cols, nodes, start..end)),
            );
            start = end;
        }
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(CoreError::BuildPanicked {
                        context: "build/weights",
                        message: "weights worker panicked".to_owned(),
                    })
                })
            })
            .collect::<Vec<_>>()
    });
    let mut weights: Vec<Weight> = Vec::with_capacity(row_count);
    let mut child_buckets: Vec<Vec<u32>> = vec![Vec::with_capacity(row_count); children.len()];
    for part in parts {
        let (w, cb) = part?;
        weights.extend(w);
        for (acc, chunk_ids) in child_buckets.iter_mut().zip(cb) {
            acc.extend(chunk_ids);
        }
    }
    Ok((weights, child_buckets))
}

/// The weights/child-bucket loop over one row range, with the run-memoized
/// child probe: the canonical sort makes consecutive rows share probe keys,
/// so an unchanged key reuses the previous row's bucket id and skips the
/// hash probe (and the `key_buf` rebuild) entirely.
fn weights_range(
    rel: &Relation,
    children: &[usize],
    probe_cols: &[Vec<usize>],
    nodes: &[Option<NodeIndex>],
    range: Range<usize>,
) -> Result<(Vec<Weight>, Vec<Vec<u32>>)> {
    let mut key_buf: Vec<ValueCode> = Vec::new();
    let mut weights: Vec<Weight> = Vec::with_capacity(range.len());
    let mut child_buckets: Vec<Vec<u32>> = vec![Vec::with_capacity(range.len()); children.len()];
    for row_id in range.clone() {
        let row_codes = rel.row_codes(row_id);
        let prev_codes = (row_id > range.start).then(|| rel.row_codes(row_id - 1));
        let local_prev = row_id.wrapping_sub(range.start).wrapping_sub(1);
        let mut w: Weight = 1;
        for (c, &child) in children.iter().enumerate() {
            let child_node = nodes[child].as_ref().expect("children built first");
            let bucket_id = match prev_codes {
                Some(prev) if probe_cols[c].iter().all(|&cc| row_codes[cc] == prev[cc]) => {
                    child_buckets[c][local_prev]
                }
                _ => {
                    key_buf.clear();
                    key_buf.extend(probe_cols[c].iter().map(|&cc| row_codes[cc]));
                    child_node
                        .bucket_by_key
                        .get(&key_buf)
                        .expect("full reduction guarantees matching child buckets")
                }
            };
            child_buckets[c].push(bucket_id);
            let bucket_total = child_node.buckets.at(bucket_id as usize).total;
            w = w
                .checked_mul(bucket_total)
                .ok_or(CoreError::WeightOverflow)?;
        }
        debug_assert!(w >= 1);
        weights.push(w);
    }
    Ok((weights, child_buckets))
}

// ----------------------------------------------------------------------
// Archive round-trip (DESIGN.md §15): process-independent raw parts for
// durable snapshots. `to_archive` is a walk; `from_archive` re-validates
// every invariant the access algorithms rely on before serving answers.
// ----------------------------------------------------------------------

impl CqIndex {
    /// Extracts the process-independent raw parts of this index: a
    /// deduplicated value table (in first-occurrence order of the
    /// deterministic node/row/column walk) plus flat table-reference
    /// columns and the per-row artifact tables. Dictionary codes never
    /// leave the process; the archive is byte-stable across processes for
    /// the same logical index.
    pub fn to_archive(&self) -> CqIndexArchive {
        let mut values: Vec<Value> = Vec::new();
        let mut position: std::collections::HashMap<Value, u32> = std::collections::HashMap::new();
        let nodes = self
            .nodes
            .iter()
            .map(|nd| {
                let arity = nd.rel.arity();
                let rows = nd.rel.len();
                let mut refs = Vec::with_capacity(if arity == 0 { 0 } else { rows * arity });
                if arity != 0 {
                    for v in nd.rel.values() {
                        let next = values.len();
                        let r = *position.entry(v.clone()).or_insert_with(|| {
                            values.push(v.clone());
                            // Distinct values are bounded by the dictionary's
                            // u32 code space, so the narrowing cannot wrap.
                            next as u32
                        });
                        refs.push(r);
                    }
                }
                // Col clones are cheap for borrowed tables (an Arc bump):
                // archiving a borrowed-loaded index copies nothing but the
                // value table.
                NodeArchive {
                    rows: rows as u32,
                    refs: Col::Owned(refs),
                    weights: nd.weights.clone(),
                    starts: nd.starts.clone(),
                    buckets: nd.buckets.clone(),
                    bucket_of_row: nd.bucket_of_row.clone(),
                    child_buckets: nd.child_buckets.clone(),
                }
            })
            .collect();
        CqIndexArchive {
            values,
            bags: (0..self.plan.node_count())
                .map(|i| self.plan.bag(i).to_vec())
                .collect(),
            parent: (0..self.plan.node_count())
                .map(|i| self.plan.parent(i))
                .collect(),
            head: self.head.clone(),
            nodes,
        }
    }

    /// Reconstructs an index from its archived raw parts without re-running
    /// any build phase (no sorting, no semijoin reduction, no weight
    /// aggregation): one dictionary intern per *distinct* value, one pass
    /// per node to re-check the structural invariants, and a rebuild of the
    /// code-keyed bucket lookup tables.
    ///
    /// Every violation — forest shape, running intersection, bucket
    /// partition, startIndex prefix sums, weight products over child
    /// buckets, key consistency along tree edges — surfaces as
    /// [`CoreError::InvalidArchive`]; a checksum-valid but logically broken
    /// artifact is refused, never served.
    pub fn from_archive(archive: CqIndexArchive) -> Result<Self> {
        catch_build("CqIndex::from_archive", move || {
            Self::from_archive_phases(archive)
        })
    }

    fn from_archive_phases(a: CqIndexArchive) -> Result<Self> {
        use crate::archive::invalid;
        let n = a.bags.len();
        if a.parent.len() != n || a.nodes.len() != n {
            return Err(invalid(format!(
                "plan shape mismatch: {n} bags, {} parent pointers, {} nodes",
                a.parent.len(),
                a.nodes.len()
            )));
        }
        // `TreePlan::new` asserts (panics) on malformed parent pointers, so
        // the forest shape is pre-validated here where it can be refused.
        for (i, p) in a.parent.iter().enumerate() {
            if let Some(p) = p {
                if *p >= n {
                    return Err(invalid(format!(
                        "node {i} parent {p} out of range (node count {n})"
                    )));
                }
            }
        }
        for start in 0..n {
            let mut cur = start;
            let mut steps = 0usize;
            while let Some(p) = a.parent[cur] {
                cur = p;
                steps += 1;
                if steps > n {
                    return Err(invalid("parent pointers form a cycle"));
                }
            }
        }
        let mut bag_sets = Vec::with_capacity(n);
        for (i, bag) in a.bags.iter().enumerate() {
            let set: std::collections::BTreeSet<Symbol> = bag.iter().cloned().collect();
            if set.len() != bag.len() {
                return Err(invalid(format!("node {i} bag has duplicate attributes")));
            }
            bag_sets.push(set);
        }
        // Running-intersection violations surface as the structured
        // QueryError this returns.
        let plan = TreePlan::new(bag_sets, a.parent.clone()).map_err(CoreError::Query)?;
        for i in 0..n {
            if plan.bag(i) != a.bags[i].as_slice() {
                return Err(invalid(format!(
                    "node {i} bag is not in canonical sorted order"
                )));
            }
        }
        // Head coverage in both directions, as in `from_parts`.
        for i in 0..n {
            for attr in plan.bag(i) {
                if !a.head.contains(attr) {
                    return Err(CoreError::UncoveredHeadAttribute(format!(
                        "bag attribute {attr} is not a head attribute"
                    )));
                }
            }
        }
        for attr in &a.head {
            if !(0..n).any(|i| plan.bag(i).binary_search(attr).is_ok()) {
                return Err(CoreError::UncoveredHeadAttribute(attr.to_string()));
            }
        }

        // Intern the value table once (rehydrate discipline: the generation
        // is read BEFORE any code is produced, so a racing sweep leaves the
        // index observably stale, never silently wrong).
        let generation = dict::current_generation();
        let mut table_codes = Vec::with_capacity(a.values.len());
        for v in &a.values {
            table_codes.push(dict::intern(v).map_err(CoreError::from)?);
        }

        let mut arch_nodes: Vec<Option<NodeArchive>> = a.nodes.into_iter().map(Some).collect();
        let mut nodes: Vec<Option<NodeIndex>> = (0..n).map(|_| None).collect();
        for &node in plan.leaf_to_root() {
            let arch = arch_nodes[node]
                .take()
                .ok_or_else(|| invalid("leaf-to-root order revisited a node"))?;
            let built = validate_archived_node(
                &plan,
                node,
                arch,
                &a.head,
                &a.values,
                &table_codes,
                generation,
                &nodes,
            )?;
            nodes[node] = Some(built);
        }
        let nodes: Vec<NodeIndex> = nodes
            .into_iter()
            .map(|n| n.ok_or_else(|| invalid("plan traversal missed a node")))
            .collect::<Result<_>>()?;
        let root_totals: Vec<Weight> = plan
            .roots()
            .iter()
            .map(|&r| nodes[r].buckets.first().map_or(0, |b| b.total))
            .collect();
        let total = if root_totals.contains(&0) {
            0
        } else {
            checked_product(root_totals.iter().copied()).ok_or(CoreError::WeightOverflow)?
        };
        Ok(CqIndex {
            plan,
            nodes,
            head: a.head,
            root_totals,
            total,
            generation,
        })
    }
}

/// Validates one archived node against its (already validated) children and
/// assembles the live [`NodeIndex`]. Checks, in order: table shapes, the
/// bucket partition, per-bucket key grouping, startIndex prefix sums and
/// bucket totals, and the Algorithm 2 weight invariant — every row weight
/// equals the product of its matched child-bucket totals, and each matched
/// child bucket carries exactly the row's shared attribute values.
#[allow(clippy::too_many_arguments)]
fn validate_archived_node(
    plan: &TreePlan,
    node: usize,
    arch: NodeArchive,
    head: &[Symbol],
    values: &[Value],
    table_codes: &[ValueCode],
    generation: rae_data::Generation,
    nodes: &[Option<NodeIndex>],
) -> Result<NodeIndex> {
    use crate::archive::invalid;
    let bag = plan.bag(node);
    let arity = bag.len();
    let rows = arch.rows as usize;
    let schema = rae_data::Schema::new(bag.iter().cloned()).map_err(CoreError::from)?;
    if arity != 0 && arch.refs.len() != rows * arity {
        return Err(invalid(format!(
            "node {node}: {} refs for {rows} rows of arity {arity}",
            arch.refs.len()
        )));
    }
    let rel = Relation::from_value_table(schema, values, table_codes, &arch.refs, rows, generation)
        .map_err(CoreError::from)?;
    let key_cols = plan.parent_shared_cols(node);
    let bag_to_head: Vec<usize> = bag
        .iter()
        .map(|attr| {
            head.iter()
                .position(|h| h == attr)
                .ok_or_else(|| CoreError::UncoveredHeadAttribute(attr.to_string()))
        })
        .collect::<Result<_>>()?;
    if arch.weights.len() != rows || arch.starts.len() != rows || arch.bucket_of_row.len() != rows {
        return Err(invalid(format!(
            "node {node}: per-row tables do not match the row count"
        )));
    }
    let children = plan.children(node);
    if arch.child_buckets.len() != children.len() {
        return Err(invalid(format!(
            "node {node}: {} child-bucket columns for {} children",
            arch.child_buckets.len(),
            children.len()
        )));
    }
    for cb in &arch.child_buckets {
        if cb.len() != rows {
            return Err(invalid(format!(
                "node {node}: child-bucket column does not match the row count"
            )));
        }
    }
    // For each child: (child key column, own bag column) pairs linking the
    // shared attributes along the tree edge. Running intersection makes the
    // binary search total.
    let mut link_cols: Vec<Vec<(usize, usize)>> = Vec::with_capacity(children.len());
    for &child in children {
        let child_bag = plan.bag(child);
        let pairs = plan
            .parent_shared_cols(child)
            .into_iter()
            .map(|child_col| {
                let own = bag
                    .binary_search(&child_bag[child_col])
                    .map_err(|_| invalid("running intersection violated on a tree edge"))?;
                Ok((child_col, own))
            })
            .collect::<Result<Vec<_>>>()?;
        link_cols.push(pairs);
    }
    if rows == 0 && !arch.buckets.is_empty() {
        return Err(invalid(format!("node {node}: buckets over zero rows")));
    }
    if key_cols.is_empty() && arch.buckets.len() > 1 {
        return Err(invalid(format!(
            "node {node}: multiple buckets with an empty pAtts key"
        )));
    }
    {
        // SoA shape: all four bucket columns must be parallel before any
        // `at(i)` assembles a view (decoders enforce this too; re-checked
        // here for hand-built archives).
        let nb = arch.buckets.len();
        if arch.buckets.end.len() != nb
            || arch.buckets.total.len() != nb
            || arch.buckets.max_weight.len() != nb
        {
            return Err(invalid(format!(
                "node {node}: bucket table columns are not parallel"
            )));
        }
    }
    // The Elias-Fano layout answers random `at` through two select1
    // probes; validation visits every row exactly once, so decode the
    // global sequence up front and index it flat — the comparisons are
    // identical, the cost linear.
    let ef_global: Option<Vec<u64>> = match &arch.starts {
        Starts::EliasFano(ef) => Some(ef.decode_all()),
        _ => None,
    };
    let mut expected_start: u32 = 0;
    for (bid, b) in arch.buckets.iter().enumerate() {
        if b.start != expected_start || b.end <= b.start || b.end as usize > rows {
            return Err(invalid(format!(
                "node {node}: bucket {bid} [{}, {}) breaks the row partition",
                b.start, b.end
            )));
        }
        expected_start = b.end;
        let first_codes = rel.row_codes(b.start as usize);
        let mut total: Weight = 0;
        let mut max_weight: Weight = 0;
        for r in b.start..b.end {
            let i = r as usize;
            if arch.bucket_of_row[i] != bid as u32 {
                return Err(invalid(format!(
                    "node {node}: row {i} bucket id disagrees with the bucket table"
                )));
            }
            let codes = rel.row_codes(i);
            if key_cols.iter().any(|&c| codes[c] != first_codes[c]) {
                return Err(invalid(format!(
                    "node {node}: bucket {bid} rows do not share a pAtts key"
                )));
            }
            let start_at = match &ef_global {
                // Same value `Starts::at` computes for this layout
                // (bucket-relative via wrapping subtraction), without the
                // per-row select1 probes.
                Some(g) => Weight::from(g[i].wrapping_sub(g[b.start as usize])),
                None => arch.starts.at(i, b.start as usize),
            };
            if start_at != total {
                return Err(invalid(format!(
                    "node {node}: row {i} startIndex breaks the prefix sum"
                )));
            }
            let w = arch.weights[i];
            let mut product: Weight = 1;
            for (c, &child) in children.iter().enumerate() {
                let child_node = nodes[child]
                    .as_ref()
                    .ok_or_else(|| invalid("child visited after parent"))?;
                let cb_id = arch.child_buckets[c][i] as usize;
                let cb = child_node.buckets.get(cb_id).ok_or_else(|| {
                    invalid(format!(
                        "node {node}: row {i} references child bucket {cb_id} out of range"
                    ))
                })?;
                let child_codes = child_node.rel.row_codes(cb.start as usize);
                if link_cols[c]
                    .iter()
                    .any(|&(child_col, own_col)| child_codes[child_col] != codes[own_col])
                {
                    return Err(invalid(format!(
                        "node {node}: row {i} linked to child bucket {cb_id} with a \
                         different shared-attribute key"
                    )));
                }
                product = product
                    .checked_mul(cb.total)
                    .ok_or(CoreError::WeightOverflow)?;
            }
            if w != product {
                return Err(invalid(format!(
                    "node {node}: row {i} weight {w} does not equal the product of \
                     its child bucket totals ({product})"
                )));
            }
            total = total.checked_add(w).ok_or(CoreError::WeightOverflow)?;
            max_weight = max_weight.max(w);
        }
        if b.total != total || b.max_weight != max_weight {
            return Err(invalid(format!(
                "node {node}: bucket {bid} total/max disagree with its rows"
            )));
        }
    }
    if expected_start as usize != rows {
        return Err(invalid(format!(
            "node {node}: buckets cover {expected_start} of {rows} rows"
        )));
    }
    let mut bucket_by_key = CodeKeyMap::with_capacity(key_cols.len(), arch.buckets.len());
    let mut key_buf: Vec<ValueCode> = Vec::with_capacity(key_cols.len());
    for (bid, b) in arch.buckets.iter().enumerate() {
        key_buf.clear();
        let codes = rel.row_codes(b.start as usize);
        key_buf.extend(key_cols.iter().map(|&c| codes[c]));
        if bucket_by_key.insert(&key_buf, bid as u32).is_some() {
            return Err(invalid(format!(
                "node {node}: two buckets share one pAtts key"
            )));
        }
    }
    // Tables move (not copy) into the live node: for a borrowed archive
    // these stay zero-copy views into the snapshot file.
    Ok(NodeIndex {
        rel,
        key_cols,
        weights: arch.weights,
        starts: arch.starts,
        buckets: arch.buckets,
        bucket_by_key,
        bucket_of_row: arch.bucket_of_row,
        child_buckets: arch.child_buckets,
        bag_to_head,
        row_by_tuple: OnceLock::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    /// The database of the paper's Example 4.4.
    fn example_4_4_db() -> Database {
        let mut db = Database::new();
        add(
            &mut db,
            "R1",
            rel_str(
                &["v", "w", "x"],
                &[
                    &["a1", "b1", "c1"],
                    &["a1", "b1", "c2"],
                    &["a2", "b2", "c1"],
                    &["a2", "b2", "c2"],
                ],
            ),
        );
        add(
            &mut db,
            "R2",
            rel_str(
                &["w", "y"],
                &[&["b1", "d1"], &["b1", "d2"], &["b2", "d2"], &["b2", "d3"]],
            ),
        );
        add(
            &mut db,
            "R3",
            rel_str(
                &["x", "z"],
                &[&["c1", "e1"], &["c1", "e2"], &["c1", "e3"], &["c2", "e4"]],
            ),
        );
        db
    }

    fn example_4_4_index() -> CqIndex {
        let cq = cq("Q(v, w, x, y, z) :- R1(v, w, x), R2(w, y), R3(x, z)");
        built(&cq, &example_4_4_db())
    }

    #[test]
    fn example_4_4() {
        // Reproduces the paper's worked example end to end.
        let idx = example_4_4_index();
        assert_eq!(idx.count(), 16);

        // Access(13) = (a2, b2, c1, d3, e3).
        let ans = at(&idx, 13);
        let expected: Vec<Value> = ["a2", "b2", "c1", "d3", "e3"]
            .iter()
            .map(Value::str)
            .collect();
        assert_eq!(ans, expected);

        // InvertedAccess(a2, b2, c1, d3, e3) = 13.
        assert_eq!(idx.inverted_access(&expected), Some(13));

        // Out of bounds.
        assert!(idx.access(16).is_none());
        assert!(idx.access(Weight::MAX).is_none());
    }

    #[test]
    fn example_4_4_weights_and_starts() {
        // The paper's table: R1 weights (6, 2, 6, 2), startIndex (0, 6, 8, 14).
        let idx = example_4_4_index();
        let root = idx.plan().roots()[0];
        let weights: Vec<Weight> = (0..4).map(|r| idx.row_weight(root, r)).collect();
        assert_eq!(weights, vec![6, 2, 6, 2]);
        let starts: Vec<Weight> = (0..4).map(|r| idx.row_start(root, r)).collect();
        assert_eq!(starts, vec![0, 6, 8, 14]);
    }

    #[test]
    fn count_via_access_matches_o1_count() {
        let idx = example_4_4_index();
        assert_eq!(idx.count_via_access(), idx.count());
        // Empty index.
        let mut db = Database::new();
        add(
            &mut db,
            "R",
            Relation::from_rows(rae_data::Schema::new(["a", "b"]).unwrap(), Vec::new()).unwrap(),
        );
        let cq = cq("Q(x, y) :- R(x, y)");
        let empty = built(&cq, &db);
        assert_eq!(empty.count_via_access(), 0);
        // Singleton.
        db.set_relation("R", rel_int(&["a", "b"], &[&[1, 2]]));
        let mut db1 = Database::new();
        add(&mut db1, "R", rel_int(&["a", "b"], &[&[1, 2]]));
        let one = built(&cq, &db1);
        assert_eq!(one.count_via_access(), 1);
    }

    #[test]
    fn access_inverted_roundtrip_all_positions() {
        let idx = example_4_4_index();
        for j in 0..idx.count() {
            let ans = at(&idx, j);
            assert_eq!(idx.inverted_access(&ans), Some(j), "roundtrip at {j}");
        }
    }

    #[test]
    fn enumeration_matches_naive_answers() {
        let cq = cq("Q(v, w, x, y, z) :- R1(v, w, x), R2(w, y), R3(x, z)");
        let db = example_4_4_db();
        let idx = built(&cq, &db);
        let expected = naive(&cq, &db);
        let mut got: Vec<Vec<Value>> = idx.enumerate().collect();
        got.sort();
        got.dedup();
        assert_eq!(got.len() as Weight, idx.count());
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(expected.rows()) {
            assert_eq!(g.as_slice(), e);
        }
    }

    #[test]
    fn non_answers_are_rejected_by_inverted_access() {
        let idx = example_4_4_index();
        // Locally valid pieces, globally inconsistent combination: (a1,…,c2)
        // exists but e1 only pairs with c1.
        let bogus: Vec<Value> = ["a1", "b1", "c2", "d1", "e1"]
            .iter()
            .map(Value::str)
            .collect();
        assert_eq!(idx.inverted_access(&bogus), None);
        // Wrong arity.
        assert_eq!(idx.inverted_access(&[Value::str("a1")]), None);
        // Unknown constant.
        let unknown: Vec<Value> = ["zz", "b1", "c1", "d1", "e1"]
            .iter()
            .map(Value::str)
            .collect();
        assert_eq!(idx.inverted_access(&unknown), None);
    }

    #[test]
    fn projection_query_index_matches_naive() {
        let mut db = Database::new();
        add(
            &mut db,
            "R",
            rel_int(&["a", "b"], &[&[1, 10], &[1, 11], &[2, 10], &[3, 12]]),
        );
        add(
            &mut db,
            "S",
            rel_int(&["b", "c"], &[&[10, 0], &[11, 0], &[12, 1], &[13, 1]]),
        );
        let cq = cq("Q(x, y) :- R(x, y), S(y, z)");
        let idx = built(&cq, &db);
        let expected = naive(&cq, &db);
        assert_eq!(idx.count() as usize, expected.len());
        for j in 0..idx.count() {
            let ans = at(&idx, j);
            assert!(expected.contains_row(&ans), "access({j}) not an answer");
            assert_eq!(idx.inverted_access(&ans), Some(j));
        }
    }

    #[test]
    fn empty_result_index() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a", "b"], &[&[1, 10]]));
        add(&mut db, "S", rel_int(&["b", "c"], &[&[99, 0]]));
        let cq = cq("Q(x, y) :- R(x, y), S(y, z)");
        let idx = built(&cq, &db);
        assert_eq!(idx.count(), 0);
        assert!(idx.access(0).is_none());
        assert_eq!(idx.inverted_access(&[Value::Int(1), Value::Int(10)]), None);
    }

    #[test]
    fn boolean_query_index() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a", "b"], &[&[1, 10]]));
        add(&mut db, "S", rel_int(&["b", "c"], &[&[10, 0]]));
        let cq = cq("Q() :- R(x, y), S(y, z)");
        let idx = built(&cq, &db);
        assert_eq!(idx.count(), 1);
        assert_eq!(at(&idx, 0), Vec::<Value>::new());
        assert_eq!(idx.inverted_access(&[]), Some(0));
        assert!(idx.access(1).is_none());
    }

    #[test]
    fn cross_product_index() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a"], &[&[1], &[2], &[3]]));
        add(&mut db, "S", rel_int(&["b"], &[&[10], &[20]]));
        let cq = cq("Q(x, y) :- R(x), S(y)");
        let idx = built(&cq, &db);
        assert_eq!(idx.count(), 6);
        let mut seen: Vec<Vec<Value>> = idx.enumerate().collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6);
        for j in 0..6 {
            let ans = at(&idx, j);
            assert_eq!(idx.inverted_access(&ans), Some(j));
        }
    }

    #[test]
    fn not_free_connex_is_rejected() {
        let mut db = Database::new();
        add(&mut db, "R", rel_int(&["a", "b"], &[&[1, 10]]));
        add(&mut db, "S", rel_int(&["b", "c"], &[&[10, 0]]));
        let cq = cq("Q(x, z) :- R(x, y), S(y, z)");
        assert!(matches!(
            CqIndex::build(&cq, &db),
            Err(CoreError::Query(rae_query::QueryError::NotFreeConnex(_)))
        ));
    }

    #[test]
    fn enumeration_order_is_lexicographic_on_dfs_attrs() {
        // With sorted node relations the realized order must be the
        // lexicographic order on the DFS attribute sequence.
        let idx = example_4_4_index();
        let dfs_attrs = idx.plan().attrs_dfs();
        let positions: Vec<usize> = dfs_attrs
            .iter()
            .map(|a| idx.head().iter().position(|h| h == a).unwrap())
            .collect();
        let mut prev: Option<Vec<Value>> = None;
        for j in 0..idx.count() {
            let ans = at(&idx, j);
            let key: Vec<Value> = positions.iter().map(|&p| ans[p].clone()).collect();
            if let Some(prev_key) = &prev {
                assert!(prev_key < &key, "order violated at position {j}");
            }
            prev = Some(key);
        }
    }

    #[test]
    fn compatible_orders_for_sub_relations() {
        // Build the same query over D and over a selection of D; shared
        // answers must appear in the same relative order (DESIGN.md §3).
        let db = example_4_4_db();
        let mut db_sel = Database::new();
        db_sel
            .add_relation(
                "R1",
                rel_str(
                    &["v", "w", "x"],
                    &[&["a1", "b1", "c1"], &["a2", "b2", "c1"]],
                ),
            )
            .unwrap();
        db_sel
            .add_relation(
                "R2",
                rel_str(&["w", "y"], &[&["b1", "d2"], &["b2", "d2"], &["b2", "d3"]]),
            )
            .unwrap();
        db_sel
            .add_relation(
                "R3",
                rel_str(&["x", "z"], &[&["c1", "e1"], &["c1", "e3"], &["c2", "e4"]]),
            )
            .unwrap();
        let cq = cq("Q(v, w, x, y, z) :- R1(v, w, x), R2(w, y), R3(x, z)");
        let big = built(&cq, &db);
        let small = built(&cq, &db_sel);
        assert!(big.plan().same_shape(small.plan()));
        // The small enumeration must be a subsequence of the big one.
        let big_seq: Vec<Vec<Value>> = big.enumerate().collect();
        let small_seq: Vec<Vec<Value>> = small.enumerate().collect();
        let mut big_iter = big_seq.iter();
        for item in &small_seq {
            assert!(
                big_iter.any(|b| b == item),
                "small enumeration is not a subsequence of the big one"
            );
        }
    }

    #[test]
    fn rank_leq_wide_j_on_compact_layout_counts_every_row() {
        // The `Err(_) => end - start` fallback: a probe weight above
        // u64::MAX can never be exceeded by a compact (u64) startIndex, so
        // every row in the range qualifies. Lock in that overflow behavior.
        let compact = Starts::from_weights(vec![0, 5, 9, 14]);
        assert!(matches!(compact, Starts::Compact(_)));
        let wide_j: Weight = Weight::from(u64::MAX) + 1;
        assert_eq!(compact.rank_leq(0, 4, wide_j), 4);
        assert_eq!(compact.rank_leq(1, 3, wide_j), 2); // sub-range too
        assert_eq!(compact.rank_leq(2, 2, wide_j), 0); // empty range
                                                       // Weight::MAX goes through the same fallback.
        assert_eq!(compact.rank_leq(0, 4, Weight::MAX), 4);
        // Control: an in-range probe still binary-searches normally.
        assert_eq!(compact.rank_leq(0, 4, 9), 3);
    }

    #[test]
    fn rank_leq_wide_layout_handles_beyond_u64_starts() {
        // Starts that do not fit u64 force the wide layout; ranks must be
        // exact on both sides of the u64 boundary.
        let big: Weight = Weight::from(u64::MAX) + 7;
        let wide = Starts::from_weights(vec![0, 10, big]);
        assert!(matches!(wide, Starts::Wide(_)));
        assert_eq!(wide.rank_leq(0, 3, 9), 1);
        assert_eq!(wide.rank_leq(0, 3, Weight::from(u64::MAX)), 2);
        assert_eq!(wide.rank_leq(0, 3, big), 3);
        assert_eq!(wide.at(2, 0), big);
    }

    #[test]
    fn parallel_build_options_produce_identical_artifacts() {
        // Byte-level determinism across thread counts and sort algorithms
        // on the worked example (the large-scale suite lives in
        // tests/parallel_build_determinism.rs).
        let cq = cq("Q(v, w, x, y, z) :- R1(v, w, x), R2(w, y), R3(x, z)");
        let fj = reduce_to_full_acyclic(&cq, &example_4_4_db()).unwrap();
        let baseline = CqIndex::from_parts_with(
            fj.plan.clone(),
            fj.relations.clone(),
            fj.head.clone(),
            BuildOptions::serial(),
        )
        .unwrap();
        for (threads, sort) in [
            (2, SortAlgorithm::Auto),
            (8, SortAlgorithm::Radix),
            (1, SortAlgorithm::Radix),
            (4, SortAlgorithm::Comparison),
        ] {
            let other = CqIndex::from_parts_with(
                fj.plan.clone(),
                fj.relations.clone(),
                fj.head.clone(),
                BuildOptions { threads, sort },
            )
            .unwrap();
            assert_eq!(other.count(), baseline.count());
            for node in 0..baseline.node_count() {
                assert_eq!(other.node_relation(node), baseline.node_relation(node));
                assert_eq!(
                    other.node_relation(node).codes(),
                    baseline.node_relation(node).codes()
                );
                assert_eq!(other.bucket_count(node), baseline.bucket_count(node));
                for row in 0..baseline.node_relation(node).len() as u32 {
                    assert_eq!(other.row_weight(node, row), baseline.row_weight(node, row));
                    assert_eq!(other.row_start(node, row), baseline.row_start(node, row));
                    assert_eq!(
                        other.bucket_of_row(node, row),
                        baseline.bucket_of_row(node, row)
                    );
                }
            }
            for j in 0..baseline.count() {
                assert_eq!(other.access(j), baseline.access(j));
            }
        }
    }

    #[test]
    fn self_join_index() {
        let mut db = Database::new();
        add(
            &mut db,
            "E",
            rel_int(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 4], &[2, 4]]),
        );
        let cq = cq("Q(x, y, z) :- E(x, y), E(y, z)");
        let idx = built(&cq, &db);
        let expected = naive(&cq, &db);
        assert_eq!(idx.count() as usize, expected.len());
        for j in 0..idx.count() {
            assert!(expected.contains_row(&at(&idx, j)));
        }
    }
}
