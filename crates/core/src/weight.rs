//! Answer-count weights and mixed-radix index arithmetic.
//!
//! The paper's `SplitIndex` (Algorithm 3, line 12) and `CombineIndex`
//! (Algorithm 4, line 10) treat an index into the answers below a tuple as a
//! mixed-radix number whose digits are the indexes into the children's
//! buckets, with the **last child least significant**:
//!
//! ```text
//! CombineIndex(w1, j1, …, wm, jm) = jm + wm · CombineIndex(w1, j1, …, w(m-1), j(m-1))
//! ```

/// Answer counts and answer positions.
///
/// `u128` instead of `u64`: counts are products of relation cardinalities
/// along a join tree and can overflow 64 bits on adversarial inputs.
pub type Weight = u128;

/// Splits `index` into one sub-index per radix (the paper's `SplitIndex`).
///
/// `radices[i]` is the weight of child `i`'s bucket; the produced
/// `digits[i] ∈ [0, radices[i])`. The last radix is least significant.
/// The caller guarantees `index < ∏ radices`.
///
/// Digits are written into `out` (cleared first) to avoid allocation on the
/// access hot path.
#[inline]
pub fn split_index(mut index: Weight, radices: &[Weight], out: &mut Vec<Weight>) {
    out.clear();
    out.resize(radices.len(), 0);
    for (slot, &radix) in out.iter_mut().zip(radices.iter()).rev() {
        debug_assert!(radix > 0, "zero-weight bucket reached during access");
        *slot = index % radix;
        index /= radix;
    }
    debug_assert_eq!(index, 0, "index exceeded the product of radices");
}

/// Recombines digits into an index (the paper's `CombineIndex`); inverse of
/// [`split_index`].
#[inline]
pub fn combine_index(radices: &[Weight], digits: &[Weight]) -> Weight {
    debug_assert_eq!(radices.len(), digits.len());
    let mut index: Weight = 0;
    for (&radix, &digit) in radices.iter().zip(digits.iter()) {
        debug_assert!(digit < radix);
        index = index * radix + digit;
    }
    index
}

/// Checked product of weights, for preprocessing-time totals.
pub fn checked_product(factors: impl IntoIterator<Item = Weight>) -> Option<Weight> {
    let mut acc: Weight = 1;
    for f in factors {
        acc = acc.checked_mul(f)?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_combine_roundtrip() {
        let radices = [4u128, 3, 5];
        let mut digits = Vec::new();
        for index in 0..60u128 {
            split_index(index, &radices, &mut digits);
            assert_eq!(combine_index(&radices, &digits), index);
        }
    }

    #[test]
    fn last_digit_is_least_significant() {
        // Matches the worked Example 4.4: splitting 5 over radices (2, 3)
        // puts 5 mod 3 = 2 in the last slot and ⌊5/3⌋ = 1 in the first.
        let mut digits = Vec::new();
        split_index(5, &[2, 3], &mut digits);
        assert_eq!(digits, vec![1, 2]);
    }

    #[test]
    fn empty_radices() {
        let mut digits = Vec::new();
        split_index(0, &[], &mut digits);
        assert!(digits.is_empty());
        assert_eq!(combine_index(&[], &[]), 0);
    }

    #[test]
    fn single_radix_is_identity() {
        let mut digits = Vec::new();
        split_index(7, &[10], &mut digits);
        assert_eq!(digits, vec![7]);
        assert_eq!(combine_index(&[10], &[7]), 7);
    }

    #[test]
    fn checked_product_detects_overflow() {
        assert_eq!(checked_product([2u128, 3, 5]), Some(30));
        assert_eq!(checked_product([u128::MAX, 2]), None);
        assert_eq!(checked_product(std::iter::empty()), Some(1));
    }

    #[test]
    fn combine_matches_paper_example() {
        // Example 4.4: CombineIndex(2, 1, 3, 2) = 2 + 3·1 = 5.
        assert_eq!(combine_index(&[2, 3], &[1, 2]), 5);
    }
}
