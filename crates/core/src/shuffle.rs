//! Algorithm 1: the lazy Fisher–Yates shuffle.
//!
//! Generates a uniformly random permutation of `0..n` with O(1) preprocessing
//! and O(1) delay (Proposition 3.6). The conceptual array `a` (where an
//! uninitialized cell `a[k]` holds `k`) is simulated with a hash map, so the
//! memory used is proportional to the number of elements *emitted so far*,
//! never to `n` upfront.

use crate::weight::Weight;
use rae_data::FxHashMap;
use rand::Rng;

/// A lazily materialized Fisher–Yates shuffle of `0..n`.
///
/// Iterating yields each value exactly once, and every ordering of `0..n`
/// has probability `1/n!` — the definition of a random permutation used
/// throughout the paper.
#[derive(Debug)]
pub struct LazyShuffle<R: Rng> {
    n: Weight,
    next: Weight,
    /// Sparse view of the conceptual array: absent key `k` means `a[k] = k`.
    slots: FxHashMap<Weight, Weight>,
    rng: R,
}

impl<R: Rng> LazyShuffle<R> {
    /// Creates a shuffle of `0..n`.
    pub fn new(n: Weight, rng: R) -> Self {
        LazyShuffle {
            n,
            next: 0,
            slots: FxHashMap::default(),
            rng,
        }
    }

    /// How many values have been emitted so far.
    pub fn emitted(&self) -> Weight {
        self.next
    }

    /// How many values remain.
    pub fn remaining(&self) -> Weight {
        self.n - self.next
    }
}

impl<R: Rng> Iterator for LazyShuffle<R> {
    type Item = Weight;

    fn next(&mut self) -> Option<Weight> {
        if self.next >= self.n {
            return None;
        }
        let i = self.next;
        let j = self.rng.gen_range(i..self.n);
        // a[i] is never read again once position i is emitted, so its slot
        // can be reclaimed; only a[j] (the value moved backwards) persists.
        let a_i = self.slots.remove(&i).unwrap_or(i);
        let out = if j == i {
            a_i
        } else {
            let a_j = self.slots.get(&j).copied().unwrap_or(j);
            self.slots.insert(j, a_i);
            a_j
        };
        self.next += 1;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = usize::try_from(self.remaining()).unwrap_or(usize::MAX);
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    #[test]
    fn emits_each_value_exactly_once() {
        for n in [0u128, 1, 2, 7, 100] {
            let shuffle = LazyShuffle::new(n, StdRng::seed_from_u64(42));
            let mut seen: Vec<Weight> = shuffle.collect();
            assert_eq!(seen.len(), n as usize);
            seen.sort_unstable();
            assert_eq!(seen, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn permutation_distribution_is_uniform() {
        // All 6 permutations of 0..3 should appear with roughly equal
        // frequency. With 6000 trials each expectation is 1000; allow ±20%.
        let mut counts: BTreeMap<Vec<Weight>, usize> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..6000 {
            let seed = rng.gen::<u64>();
            let perm: Vec<Weight> = LazyShuffle::new(3, StdRng::seed_from_u64(seed)).collect();
            *counts.entry(perm).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 6, "all 6 permutations must occur");
        for (perm, count) in counts {
            assert!(
                (800..=1200).contains(&count),
                "permutation {perm:?} occurred {count} times (expected ≈1000)"
            );
        }
    }

    #[test]
    fn first_element_is_uniform() {
        let mut counts = [0usize; 5];
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5000 {
            let seed = rng.gen::<u64>();
            let mut s = LazyShuffle::new(5, StdRng::seed_from_u64(seed));
            counts[s.next().unwrap() as usize] += 1;
        }
        for (value, &count) in counts.iter().enumerate() {
            assert!(
                (850..=1150).contains(&count),
                "value {value} drawn first {count} times (expected ≈1000)"
            );
        }
    }

    #[test]
    fn memory_stays_sparse() {
        let mut s = LazyShuffle::new(1_000_000, StdRng::seed_from_u64(3));
        for _ in 0..100 {
            s.next();
        }
        // At most one slot per emission survives.
        assert!(s.slots.len() <= 100);
    }

    #[test]
    fn counters_track_progress() {
        let mut s = LazyShuffle::new(10, StdRng::seed_from_u64(1));
        assert_eq!(s.remaining(), 10);
        s.next();
        s.next();
        assert_eq!(s.emitted(), 2);
        assert_eq!(s.remaining(), 8);
        assert_eq!(s.size_hint(), (8, Some(8)));
    }

    #[test]
    fn works_beyond_u64_range() {
        // Indices above u64::MAX exercise the u128 sampling path.
        let n = (u64::MAX as u128) + 1000;
        let mut s = LazyShuffle::new(n, StdRng::seed_from_u64(5));
        let v = s.next().unwrap();
        assert!(v < n);
    }
}
