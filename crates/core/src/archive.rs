//! Plain-data archives of the built index structures (DESIGN.md §15–16).
//!
//! An archive is the process-independent raw-parts form of an index: a
//! deduplicated value table plus flat `u32` *table-reference* columns and
//! the precomputed per-row artifact tables (weights, startIndex prefix
//! sums, bucket tables, child-bucket links). Dictionary codes never appear
//! in an archive — they are process-local, so serialized rows reference
//! positions in the archive's own value table instead, which is what makes
//! the on-disk byte image (and hence `rae-store`'s `artifact_digest`)
//! stable across processes.
//!
//! Every numeric table is a [`Col`]: owned for fresh builds and owned
//! snapshot decodes, *borrowed* for zero-copy loads where the table is a
//! validated view straight into the snapshot file. The same
//! `from_archive` validation path serves both — a borrowed archive passes
//! through identical semantic checks before any answer is served.
//!
//! `to_archive` walks the live structure; `from_archive` is the validated
//! single-copy reconstruction path: it re-interns the value table (one
//! intern per *distinct* value), rebuilds the code-keyed lookup tables,
//! and re-checks every structural invariant the access algorithms rely on
//! — forest shape, running intersection, bucket partition, startIndex
//! prefix sums, weight products over child buckets, and (for ordered
//! layouts) within-bucket sort order — surfacing any violation as
//! [`crate::CoreError::InvalidArchive`] rather than serving wrong answers.
//!
//! The expensive phases of a build (sorting, semijoin reduction, weight
//! aggregation) are all absent from this path, which is why a cold-start
//! load is an order of magnitude cheaper than a rebuild (`BENCH_6.json`)
//! — and why the borrowed path, which skips the table copies as well, is
//! cheaper still.

use crate::column::Col;
use crate::ef::EfStarts;
use crate::index::BucketView;
use crate::weight::Weight;
use rae_data::{Symbol, Value};

/// Per-row startIndex storage of one node (Algorithm 2), shared between
/// the live index and its archive. Compact `u64` whenever every start
/// fits (always, short of more than 2^64 answers below one bucket) —
/// half the cache traffic per binary-search probe; the `u128` layout is
/// the overflow fallback; the Elias-Fano layout is a succinct encoding of
/// the *global* cumulative sequence, selected per node by the store when
/// it beats the compact bytes, with byte-identical rank semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Starts {
    /// Every start fits `u64` (the overwhelmingly common case).
    Compact(Col<u64>),
    /// Overflow fallback: full `u128` starts.
    Wide(Col<Weight>),
    /// Succinct rank/select encoding of the global cumulative starts;
    /// per-bucket starts are recovered relative to the bucket's first
    /// row (see [`crate::ef`]).
    EliasFano(EfStarts),
}

impl Starts {
    /// Chooses the narrowest direct layout for freshly built starts
    /// (Elias-Fano is only ever introduced by the store's encoder).
    pub fn from_weights(starts: Vec<Weight>) -> Self {
        match starts
            .iter()
            .map(|&s| u64::try_from(s).ok())
            .collect::<Option<Vec<u64>>>()
        {
            Some(compact) => Starts::Compact(Col::Owned(compact)),
            None => Starts::Wide(Col::Owned(starts)),
        }
    }

    /// Number of stored starts.
    pub fn len(&self) -> usize {
        match self {
            Starts::Compact(v) => v.len(),
            Starts::Wide(v) => v.len(),
            Starts::EliasFano(ef) => ef.len(),
        }
    }

    /// Whether no starts are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The startIndex of row `i` *within its bucket*. `bucket_first` is
    /// the bucket's first row id — only the Elias-Fano layout (which
    /// stores global cumulative values) reads it; direct layouts ignore
    /// it, so callers that know the layout may pass 0.
    #[inline]
    pub fn at(&self, i: usize, bucket_first: usize) -> Weight {
        match self {
            Starts::Compact(v) => Weight::from(v[i]),
            Starts::Wide(v) => v[i],
            // wrapping_sub: g is increasing on any archive that passes
            // validation, so this never wraps for a served index; on a
            // malformed candidate it yields a wrong value the validator
            // then rejects, instead of a debug-profile overflow panic.
            Starts::EliasFano(ef) => Weight::from(ef.get(i).wrapping_sub(ef.get(bucket_first))),
        }
    }

    /// Number of rows in `[start, end)` (one bucket's row range — `start`
    /// must be the bucket's first row) whose startIndex is ≤ `j`: the
    /// Algorithm 3 binary search, identical semantics across layouts.
    #[inline]
    pub fn rank_leq(&self, start: usize, end: usize, j: Weight) -> usize {
        match self {
            Starts::Compact(v) => match u64::try_from(j) {
                Ok(j64) => v[start..end].partition_point(|&s| s <= j64),
                // Every compact start fits u64 < j: all rows qualify.
                Err(_) => end - start,
            },
            Starts::Wide(v) => v[start..end].partition_point(|&s| s <= j),
            Starts::EliasFano(ef) => ef.rank_leq(start, end, j),
        }
    }

    /// Whether the storage is a zero-copy view into a snapshot buffer.
    pub fn is_borrowed(&self) -> bool {
        match self {
            Starts::Compact(v) => v.is_borrowed(),
            Starts::Wide(v) => v.is_borrowed(),
            Starts::EliasFano(ef) => ef.is_borrowed(),
        }
    }

    /// The layout name (test/bench introspection).
    pub fn encoding(&self) -> &'static str {
        match self {
            Starts::Compact(_) => "compact",
            Starts::Wide(_) => "wide",
            Starts::EliasFano(_) => "elias-fano",
        }
    }
}

/// The bucket table of one node in struct-of-arrays form: four parallel
/// [`Col`]s, so a borrowed snapshot serves bucket lookups without
/// materializing per-bucket structs. A partition of `0..rows` by `pAtts`
/// key; rows of [`BucketView`] are assembled on access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Buckets {
    /// First row id of each bucket.
    pub start: Col<u32>,
    /// One past the last row id of each bucket.
    pub end: Col<u32>,
    /// Total subtree-answer weight of each bucket.
    pub total: Col<Weight>,
    /// Maximum row weight of each bucket (Olken-style samplers).
    pub max_weight: Col<Weight>,
}

impl Buckets {
    /// Assembles a bucket table from four parallel columns, refusing
    /// length mismatches (a decoder-level shape error).
    pub fn from_cols(
        start: Col<u32>,
        end: Col<u32>,
        total: Col<Weight>,
        max_weight: Col<Weight>,
    ) -> Result<Self, String> {
        let n = start.len();
        if end.len() != n || total.len() != n || max_weight.len() != n {
            return Err(format!(
                "bucket table columns disagree: {n} starts, {} ends, {} totals, {} maxima",
                end.len(),
                total.len(),
                max_weight.len()
            ));
        }
        Ok(Buckets {
            start,
            end,
            total,
            max_weight,
        })
    }

    /// A bucket table from built views (the fresh-build path).
    pub fn from_views(views: &[BucketView]) -> Self {
        Buckets {
            start: Col::Owned(views.iter().map(|b| b.start).collect()),
            end: Col::Owned(views.iter().map(|b| b.end).collect()),
            total: Col::Owned(views.iter().map(|b| b.total).collect()),
            max_weight: Col::Owned(views.iter().map(|b| b.max_weight).collect()),
        }
    }

    /// Number of buckets.
    #[inline]
    pub fn len(&self) -> usize {
        self.start.len()
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start.is_empty()
    }

    /// The bucket at index `i` (panics out of range, like slice indexing).
    #[inline]
    pub fn at(&self, i: usize) -> BucketView {
        BucketView {
            start: self.start[i],
            end: self.end[i],
            total: self.total[i],
            max_weight: self.max_weight[i],
        }
    }

    /// The bucket at index `i`, or `None` out of range.
    #[inline]
    pub fn get(&self, i: usize) -> Option<BucketView> {
        (i < self.len()).then(|| self.at(i))
    }

    /// The first bucket, if any.
    #[inline]
    pub fn first(&self) -> Option<BucketView> {
        self.get(0)
    }

    /// Iterates the buckets in order.
    pub fn iter(&self) -> impl Iterator<Item = BucketView> + '_ {
        (0..self.len()).map(|i| self.at(i))
    }

    /// Whether every column is a zero-copy view into a snapshot buffer.
    pub fn is_borrowed(&self) -> bool {
        self.start.is_borrowed()
            && self.end.is_borrowed()
            && self.total.is_borrowed()
            && self.max_weight.is_borrowed()
    }
}

/// The raw parts of one join-tree node. Each table is a [`Col`]; a
/// borrowed archive's columns point into the snapshot file and are moved
/// (not copied) into the live [`crate::CqIndex`] after validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeArchive {
    /// Row count (disambiguates arity-0 nodes, whose `refs` are empty).
    pub rows: u32,
    /// Flat row-major value-table references (`rows × arity`).
    pub refs: Col<u32>,
    /// Per-row subtree answer count (Algorithm 2's `w(t)`).
    pub weights: Col<Weight>,
    /// Per-row start index within its bucket.
    pub starts: Starts,
    /// The bucket table (a partition of `0..rows`).
    pub buckets: Buckets,
    /// Bucket id of each row.
    pub bucket_of_row: Col<u32>,
    /// `child_buckets[c][row]`: bucket id in child `c` matched by `row`.
    pub child_buckets: Vec<Col<u32>>,
}

/// The raw parts of a [`crate::CqIndex`]: plan shape, head, value table,
/// and one [`NodeArchive`] per plan node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CqIndexArchive {
    /// Deduplicated value table every node's `refs` index into, in
    /// first-occurrence order of the node walk (deterministic).
    pub values: Vec<Value>,
    /// Sorted attribute bag of each plan node.
    pub bags: Vec<Vec<Symbol>>,
    /// Parent pointer of each plan node (`None` = root).
    pub parent: Vec<Option<usize>>,
    /// Head attributes in answer-tuple order.
    pub head: Vec<Symbol>,
    /// Per-node raw parts, in plan-node order.
    pub nodes: Vec<NodeArchive>,
}

/// The raw parts of an [`crate::OrderedCqIndex`]: the underlying index
/// archive plus the realized order metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedCqIndexArchive {
    /// The underlying index archive (its layout realizes the order).
    pub index: CqIndexArchive,
    /// The realized lexicographic variable order.
    pub order: Vec<Symbol>,
    /// Per plan node: `(bag column, order position)` of the columns that
    /// introduce new order variables, most significant first.
    pub node_new: Vec<Vec<(u32, u32)>>,
}

/// The raw parts of an [`crate::OrderedMcUcqIndex`]: one ordered archive
/// per non-empty member subset, all over one shared ordered layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedMcUcqArchive {
    /// Number of union members.
    pub m: u32,
    /// Head attributes in answer-tuple order.
    pub head: Vec<Symbol>,
    /// `structs[mask]` for non-empty masks; `structs[0]` is `None`.
    pub structs: Vec<Option<OrderedCqIndexArchive>>,
}

/// Shorthand constructor for [`crate::CoreError::InvalidArchive`].
pub(crate) fn invalid(detail: impl Into<String>) -> crate::CoreError {
    crate::CoreError::InvalidArchive(detail.into())
}
