//! Plain-data archives of the built index structures (DESIGN.md §15).
//!
//! An archive is the process-independent raw-parts form of an index: a
//! deduplicated value table plus flat `u32` *table-reference* columns and
//! the precomputed per-row artifact tables (weights, startIndex prefix
//! sums, bucket tables, child-bucket links). Dictionary codes never appear
//! in an archive — they are process-local, so serialized rows reference
//! positions in the archive's own value table instead, which is what makes
//! the on-disk byte image (and hence `rae-store`'s `artifact_digest`)
//! stable across processes.
//!
//! `to_archive` walks the live structure; `from_archive` is the validated
//! single-copy reconstruction path: it re-interns the value table (one
//! intern per *distinct* value), rebuilds the code-keyed lookup tables,
//! and re-checks every structural invariant the access algorithms rely on
//! — forest shape, running intersection, bucket partition, startIndex
//! prefix sums, weight products over child buckets, and (for ordered
//! layouts) within-bucket sort order — surfacing any violation as
//! [`crate::CoreError::InvalidArchive`] rather than serving wrong answers.
//!
//! The expensive phases of a build (sorting, semijoin reduction, weight
//! aggregation) are all absent from this path, which is why a cold-start
//! load is an order of magnitude cheaper than a rebuild (`BENCH_6.json`).

use crate::weight::Weight;
use rae_data::{Symbol, Value};

/// Per-row startIndex storage of one node, mirroring the in-memory
/// compact/wide split (`u64` unless some start exceeds `u64::MAX`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StartsArchive {
    /// Every start fits `u64` (the overwhelmingly common case).
    Compact(Vec<u64>),
    /// Overflow fallback: full `u128` starts.
    Wide(Vec<Weight>),
}

impl StartsArchive {
    /// Number of stored starts.
    pub fn len(&self) -> usize {
        match self {
            StartsArchive::Compact(v) => v.len(),
            StartsArchive::Wide(v) => v.len(),
        }
    }

    /// Whether no starts are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The startIndex of row `i`.
    pub fn at(&self, i: usize) -> Weight {
        match self {
            StartsArchive::Compact(v) => Weight::from(v[i]),
            StartsArchive::Wide(v) => v[i],
        }
    }
}

/// One bucket of a node: a contiguous row range sharing a `pAtts` key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketArchive {
    /// First row id of the bucket.
    pub start: u32,
    /// One past the last row id.
    pub end: u32,
    /// Total subtree-answer weight of the bucket.
    pub total: Weight,
    /// Maximum row weight in the bucket.
    pub max_weight: Weight,
}

/// The raw parts of one join-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeArchive {
    /// Row count (disambiguates arity-0 nodes, whose `refs` are empty).
    pub rows: u32,
    /// Flat row-major value-table references (`rows × arity`).
    pub refs: Vec<u32>,
    /// Per-row subtree answer count (Algorithm 2's `w(t)`).
    pub weights: Vec<Weight>,
    /// Per-row start index within its bucket.
    pub starts: StartsArchive,
    /// The bucket table (a partition of `0..rows`).
    pub buckets: Vec<BucketArchive>,
    /// Bucket id of each row.
    pub bucket_of_row: Vec<u32>,
    /// `child_buckets[c][row]`: bucket id in child `c` matched by `row`.
    pub child_buckets: Vec<Vec<u32>>,
}

/// The raw parts of a [`crate::CqIndex`]: plan shape, head, value table,
/// and one [`NodeArchive`] per plan node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CqIndexArchive {
    /// Deduplicated value table every node's `refs` index into, in
    /// first-occurrence order of the node walk (deterministic).
    pub values: Vec<Value>,
    /// Sorted attribute bag of each plan node.
    pub bags: Vec<Vec<Symbol>>,
    /// Parent pointer of each plan node (`None` = root).
    pub parent: Vec<Option<usize>>,
    /// Head attributes in answer-tuple order.
    pub head: Vec<Symbol>,
    /// Per-node raw parts, in plan-node order.
    pub nodes: Vec<NodeArchive>,
}

/// The raw parts of an [`crate::OrderedCqIndex`]: the underlying index
/// archive plus the realized order metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedCqIndexArchive {
    /// The underlying index archive (its layout realizes the order).
    pub index: CqIndexArchive,
    /// The realized lexicographic variable order.
    pub order: Vec<Symbol>,
    /// Per plan node: `(bag column, order position)` of the columns that
    /// introduce new order variables, most significant first.
    pub node_new: Vec<Vec<(u32, u32)>>,
}

/// The raw parts of an [`crate::OrderedMcUcqIndex`]: one ordered archive
/// per non-empty member subset, all over one shared ordered layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedMcUcqArchive {
    /// Number of union members.
    pub m: u32,
    /// Head attributes in answer-tuple order.
    pub head: Vec<Symbol>,
    /// `structs[mask]` for non-empty masks; `structs[0]` is `None`.
    pub structs: Vec<Option<OrderedCqIndexArchive>>,
}

/// Shorthand constructor for [`crate::CoreError::InvalidArchive`].
pub(crate) fn invalid(detail: impl Into<String>) -> crate::CoreError {
    crate::CoreError::InvalidArchive(detail.into())
}
