//! Lemma 5.3: a set supporting sampling, membership testing, deletion, and
//! counting over the indices `0..n` of an enumeration problem.
//!
//! The structure is the deletion-capable variant of the Algorithm 1 shuffle
//! described in Section 5.1: a conceptual array `a` whose prefix
//! `a[0..deleted]` holds deleted indices and whose suffix holds the
//! remaining ones, plus the reverse index `b`. Both arrays are simulated
//! with hash maps (identity by default), so construction is O(1).

use crate::weight::Weight;
use rae_data::FxHashMap;
use rand::Rng;

/// A deletable set over the index universe `0..n`.
///
/// All operations are O(1) expected time. `sample` draws uniformly among the
/// non-deleted indices *with* replacement — Algorithm 5 performs its own
/// rejection/deletion bookkeeping on top.
#[derive(Debug, Clone)]
pub struct DeletableSet {
    n: Weight,
    deleted: Weight,
    /// Sparse position → original index (identity where absent).
    a: FxHashMap<Weight, Weight>,
    /// Sparse original index → position (identity where absent).
    b: FxHashMap<Weight, Weight>,
}

impl DeletableSet {
    /// Creates the full set `{0, …, n−1}`.
    pub fn new(n: Weight) -> Self {
        DeletableSet {
            n,
            deleted: 0,
            a: FxHashMap::default(),
            b: FxHashMap::default(),
        }
    }

    #[inline]
    fn a_at(&self, pos: Weight) -> Weight {
        self.a.get(&pos).copied().unwrap_or(pos)
    }

    #[inline]
    fn b_at(&self, original: Weight) -> Weight {
        self.b.get(&original).copied().unwrap_or(original)
    }

    /// Number of non-deleted indices (the paper's `Count`).
    pub fn remaining(&self) -> Weight {
        self.n - self.deleted
    }

    /// The size of the original universe.
    pub fn universe(&self) -> Weight {
        self.n
    }

    /// Uniformly samples a non-deleted index (with replacement), or `None`
    /// if the set is empty (the paper's `Sample`).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<Weight> {
        if self.deleted >= self.n {
            return None;
        }
        let pos = rng.gen_range(self.deleted..self.n);
        Some(self.a_at(pos))
    }

    /// Whether `original` (which must be `< n`) is still in the set (the
    /// paper's `Test`, modulo the inverted-access lookup done by callers).
    pub fn contains(&self, original: Weight) -> bool {
        original < self.n && self.b_at(original) >= self.deleted
    }

    /// Unordered random access over the survivors: the `k`-th non-deleted
    /// index in the structure's *arbitrary-but-fixed* permuted order (the
    /// suffix `a[deleted..n]`), or `None` when `k ≥ remaining()`. O(1).
    ///
    /// Between two deletions the map `k ↦ select(k)` is a bijection onto
    /// the survivors, so a caller can drain or paginate the live set in
    /// constant time per element — the serving layer uses this for plain
    /// (order-free) access over a tombstoned snapshot. The order is a
    /// byproduct of the deletion history, not the enumeration order;
    /// rank-sensitive callers go through the ordered index instead.
    pub fn select(&self, k: Weight) -> Option<Weight> {
        if k >= self.remaining() {
            return None;
        }
        Some(self.a_at(self.deleted + k))
    }

    /// Deletes `original`; returns `false` if it was already deleted or out
    /// of range (the paper's `Delete`).
    pub fn delete(&mut self, original: Weight) -> bool {
        if original >= self.n {
            return false;
        }
        let pos = self.b_at(original);
        if pos < self.deleted {
            return false;
        }
        let boundary = self.deleted;
        let at_boundary = self.a_at(boundary);
        // Swap a[pos] ↔ a[boundary]; maintain b.
        self.a.insert(pos, at_boundary);
        self.b.insert(at_boundary, pos);
        self.a.insert(boundary, original);
        self.b.insert(original, boundary);
        self.deleted += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_and_membership() {
        let mut s = DeletableSet::new(5);
        assert_eq!(s.remaining(), 5);
        assert!(s.contains(0));
        assert!(s.contains(4));
        assert!(!s.contains(5));

        assert!(s.delete(2));
        assert!(!s.contains(2));
        assert_eq!(s.remaining(), 4);

        // Double delete is a no-op.
        assert!(!s.delete(2));
        assert_eq!(s.remaining(), 4);
    }

    #[test]
    fn sample_never_returns_deleted() {
        let mut s = DeletableSet::new(10);
        for i in [0u128, 3, 5, 7, 9] {
            s.delete(i);
        }
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..1000 {
            let v = s.sample(&mut rng).unwrap();
            assert!(s.contains(v), "sampled deleted index {v}");
        }
    }

    #[test]
    fn sample_is_uniform_over_survivors() {
        let mut s = DeletableSet::new(6);
        s.delete(1);
        s.delete(4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 6];
        for _ in 0..4000 {
            counts[s.sample(&mut rng).unwrap() as usize] += 1;
        }
        assert_eq!(counts[1], 0);
        assert_eq!(counts[4], 0);
        for &i in &[0usize, 2, 3, 5] {
            assert!(
                (830..=1170).contains(&counts[i]),
                "index {i} sampled {} times (expected ≈1000)",
                counts[i]
            );
        }
    }

    #[test]
    fn delete_everything_then_sample_none() {
        let mut s = DeletableSet::new(3);
        for i in 0..3u128 {
            assert!(s.delete(i));
        }
        assert_eq!(s.remaining(), 0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.sample(&mut rng), None);
    }

    #[test]
    fn interleaved_delete_and_sample() {
        let mut s = DeletableSet::new(100);
        let mut rng = StdRng::seed_from_u64(12);
        let mut alive: std::collections::BTreeSet<u128> = (0..100).collect();
        for step in 0..99 {
            let v = s.sample(&mut rng).unwrap();
            assert!(alive.contains(&v), "step {step}: sampled dead index {v}");
            s.delete(v);
            alive.remove(&v);
            assert_eq!(s.remaining() as usize, alive.len());
        }
    }

    #[test]
    fn select_is_a_bijection_onto_survivors() {
        let mut s = DeletableSet::new(12);
        for i in [11u128, 0, 5, 6] {
            assert!(s.delete(i));
        }
        let mut seen: Vec<u128> = (0..s.remaining()).map(|k| s.select(k).unwrap()).collect();
        assert_eq!(s.select(s.remaining()), None, "select past the end");
        seen.sort_unstable();
        let expected: Vec<u128> = (0..12).filter(|i| ![11, 0, 5, 6].contains(i)).collect();
        assert_eq!(seen, expected, "select must cover exactly the survivors");
        // Between deletions the order is fixed: repeated calls agree.
        for k in 0..s.remaining() {
            assert_eq!(s.select(k), s.select(k));
        }
    }

    #[test]
    fn empty_universe() {
        let s = DeletableSet::new(0);
        assert_eq!(s.remaining(), 0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.sample(&mut rng), None);
        assert!(!s.contains(0));
    }

    #[test]
    fn sparse_memory_use() {
        let mut s = DeletableSet::new(1_000_000_000);
        for i in 0..50u128 {
            s.delete(i * 1000);
        }
        assert!(s.a.len() <= 100 && s.b.len() <= 100);
        assert_eq!(s.remaining(), 1_000_000_000 - 50);
    }
}
