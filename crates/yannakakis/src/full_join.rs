//! Proposition 4.2: reducing a free-connex CQ to a full acyclic join.
//!
//! Given a free-connex CQ `Q` and a database `D`, compute in (near-)linear
//! time a full acyclic join `Q'` and database `D'` such that
//! `Q(D) = Q'(D')` and `D'` is globally consistent w.r.t. `Q'`:
//!
//! 1. instantiate every atom (constants, repeated variables, self-joins);
//! 2. full-reduce over a GYO join tree of the body (remove dangling tuples);
//! 3. project every atom onto its free variables (free-connexity makes this
//!    lossless — see DESIGN.md §3 for the argument);
//! 4. build a GYO join tree of the projected hypergraph (free-connexity
//!    guarantees acyclicity; re-verified defensively);
//! 5. fold nodes whose bag is contained in their parent's bag into the
//!    parent (they only filter), and full-reduce once more.

use crate::instantiate::instantiate_atom;
use crate::reduce::full_reduce;
use crate::semijoin::semijoin_filter;
use crate::Result;
use rae_data::{Database, Relation, Schema, Symbol};
use rae_query::{
    classify, gyo_reduce, gyo_reduce_with, Atom, ConjunctiveQuery, CqClass, Hypergraph, QueryError,
    RootPreference, TreePlan,
};
use std::collections::BTreeSet;

/// A full acyclic join equivalent to a free-connex CQ over a database.
///
/// `relations[i]` has schema exactly `plan.bag(i)` and the natural join over
/// the plan's nodes (cross product across forest components) equals the
/// original `Q(D)`, projected/ordered by `head`.
#[derive(Debug, Clone)]
pub struct FullAcyclicJoin {
    /// The join-tree plan (a forest; components are cross-producted).
    pub plan: TreePlan,
    /// One globally consistent relation per plan node.
    pub relations: Vec<Relation>,
    /// The original head variables, in output order.
    pub head: Vec<Symbol>,
}

impl FullAcyclicJoin {
    /// Materializes the full answer set (over `head`, sorted, set semantics).
    ///
    /// Exponential output in the worst case — intended for tests and small
    /// examples, not for the enumeration path.
    pub fn materialize(&self) -> Result<Relation> {
        let mut db = Database::new();
        let mut atoms = Vec::new();
        for i in 0..self.plan.node_count() {
            let name = format!("__node{i}");
            db.set_relation(name.as_str(), self.relations[i].clone());
            atoms.push(Atom::new(name.as_str(), self.plan.bag(i).iter().cloned()));
        }
        if self.head.is_empty() {
            // Boolean query: answers are {()} iff the join is non-empty.
            let schema = Schema::new(Vec::<Symbol>::new())?;
            let mut out = Relation::new(schema);
            if self.relations.iter().all(|r| !r.is_empty()) {
                out.push_row(vec![])?;
            }
            return Ok(out);
        }
        let cq = ConjunctiveQuery::new("__materialize", self.head.iter().cloned(), atoms)?;
        rae_query::naive_eval(&cq, &db)
    }
}

/// Tuning knobs for the Proposition 4.2 pipeline. The defaults give the
/// layout the enumeration structures want; the benchmark harness builds its
/// sampling baselines with `SmallestAtom` + `fold_subset_nodes: false` to
/// mirror the fan-out walk of Zhao-et-al-style join samplers (DESIGN.md §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceOptions {
    /// Join-tree orientation (see [`RootPreference`]).
    pub root_preference: RootPreference,
    /// Fold nodes whose bag is contained in the parent's bag into the
    /// parent (they only filter). Shrinks trees and speeds up every
    /// operation; disable to keep one node per atom.
    pub fold_subset_nodes: bool,
}

impl Default for ReduceOptions {
    fn default() -> Self {
        ReduceOptions {
            root_preference: RootPreference::LargestAtom,
            fold_subset_nodes: true,
        }
    }
}

/// Runs the Proposition 4.2 pipeline with default options. Fails with
/// [`QueryError::NotAcyclic`] / [`QueryError::NotFreeConnex`] when the query
/// is outside the tractable class.
pub fn reduce_to_full_acyclic(cq: &ConjunctiveQuery, db: &Database) -> Result<FullAcyclicJoin> {
    reduce_to_full_acyclic_with(cq, db, ReduceOptions::default())
}

/// [`reduce_to_full_acyclic`] with explicit layout options.
pub fn reduce_to_full_acyclic_with(
    cq: &ConjunctiveQuery,
    db: &Database,
    options: ReduceOptions,
) -> Result<FullAcyclicJoin> {
    match classify(cq) {
        CqClass::FreeConnex => {}
        CqClass::AcyclicNonFreeConnex => return Err(QueryError::NotFreeConnex(cq.name().clone())),
        CqClass::Cyclic => return Err(QueryError::NotAcyclic(cq.name().clone())),
    }

    // 1. Instantiate atoms.
    let mut rels: Vec<Relation> = cq
        .body()
        .iter()
        .map(|a| instantiate_atom(a, db))
        .collect::<Result<_>>()?;

    // 2. Full reduction over the body join tree. Atoms with no variables
    //    (all-constant) have empty bags and cannot be plan nodes with other
    //    atoms; treat an unsatisfied one as a global "no answers".
    let body_bags: Vec<BTreeSet<Symbol>> = cq.body().iter().map(|a| a.var_set()).collect();
    let body_h = Hypergraph::new(body_bags.clone());
    let body_forest = gyo_reduce(&body_h).expect("classified acyclic");
    let body_plan = TreePlan::from_forest(&body_h, &body_forest)?;
    full_reduce(&body_plan, &mut rels)?;

    // Any empty relation ⇒ no answers at all (components without shared
    // variables do not propagate emptiness through semijoins, so enforce the
    // rule globally).
    if rels.iter().any(Relation::is_empty) {
        for r in &mut rels {
            r.retain_rows(|_| false);
        }
    }

    let head: Vec<Symbol> = cq.head().to_vec();
    let head_set: BTreeSet<Symbol> = head.iter().cloned().collect();

    // Boolean query: a single empty-bag node holding the empty tuple iff the
    // reduced join is non-empty.
    if head.is_empty() {
        let nonempty = !rels.is_empty() && rels.iter().all(|r| !r.is_empty());
        let mut rel = Relation::new(Schema::new(Vec::<Symbol>::new())?);
        if nonempty {
            rel.push_row(vec![])?;
        }
        let plan = TreePlan::new(vec![BTreeSet::new()], vec![None])?;
        return Ok(FullAcyclicJoin {
            plan,
            relations: vec![rel],
            head,
        });
    }

    // 3. Project every atom onto its free variables; drop atoms whose free
    //    bag is empty (after reduction they are pure filters, already
    //    accounted for — including the all-empty case handled above).
    let mut proj_bags: Vec<BTreeSet<Symbol>> = Vec::new();
    let mut proj_rels: Vec<Relation> = Vec::new();
    for (bag, rel) in body_bags.iter().zip(rels.iter()) {
        let free_bag: BTreeSet<Symbol> = bag.intersection(&head_set).cloned().collect();
        if free_bag.is_empty() {
            continue;
        }
        let schema = Schema::new(free_bag.iter().cloned())?;
        let cols = rel.schema().positions(schema.attrs())?;
        let mut projected = rel.project(&cols, schema)?;
        projected.sort_dedup();
        proj_bags.push(free_bag);
        proj_rels.push(projected);
    }
    debug_assert!(
        head_set
            .iter()
            .all(|v| proj_bags.iter().any(|b| b.contains(v))),
        "safety guarantees every head variable survives projection"
    );

    // 4. Join tree of the projected hypergraph.
    let proj_h = Hypergraph::new(proj_bags.clone());
    let proj_forest = gyo_reduce_with(&proj_h, options.root_preference)
        .ok_or_else(|| QueryError::NotFreeConnex(cq.name().clone()))?;
    let mut parent = proj_forest.parent;

    // 5. Fold subset nodes into their parents: if bag(i) ⊆ bag(parent(i)),
    //    the node only filters the parent — semijoin and remove it.
    let n = proj_bags.len();
    let mut removed = vec![false; n];
    let mut changed = options.fold_subset_nodes;
    while changed {
        changed = false;
        for i in 0..n {
            if removed[i] {
                continue;
            }
            let Some(p) = parent[i] else { continue };
            debug_assert!(!removed[p]);
            if proj_bags[i].is_subset(&proj_bags[p]) {
                // Filter the parent by this node on all of bag(i).
                let child_cols: Vec<usize> = (0..proj_rels[i].arity()).collect();
                let parent_cols: Vec<usize> = {
                    let parent_schema = proj_rels[p].schema().clone();
                    proj_rels[i]
                        .schema()
                        .attrs()
                        .iter()
                        .map(|a| parent_schema.position(a).expect("subset bag"))
                        .collect()
                };
                let (child_rel, parent_rel) = if i < p {
                    let (l, r) = proj_rels.split_at_mut(p);
                    (&l[i], &mut r[0])
                } else {
                    let (l, r) = proj_rels.split_at_mut(i);
                    (&r[0] as &Relation, &mut l[p])
                };
                semijoin_filter(parent_rel, &parent_cols, child_rel, &child_cols);
                // Reattach i's children to p and drop i.
                for q in parent.iter_mut() {
                    if *q == Some(i) {
                        *q = Some(p);
                    }
                }
                removed[i] = true;
                changed = true;
            }
        }
    }

    // Compact the surviving nodes.
    let mut remap = vec![usize::MAX; n];
    let mut bags = Vec::new();
    let mut relations: Vec<Relation> = Vec::new();
    for i in 0..n {
        if !removed[i] {
            remap[i] = bags.len();
            bags.push(proj_bags[i].clone());
            relations.push(std::mem::replace(
                &mut proj_rels[i],
                Relation::new(Schema::new(Vec::<Symbol>::new())?),
            ));
        }
    }
    let parent: Vec<Option<usize>> = (0..n)
        .filter(|&i| !removed[i])
        .map(|i| parent[i].map(|p| remap[p]))
        .collect();

    let plan = TreePlan::new(bags, parent)?;

    // 6. Defensive second reduction: projections of a globally consistent
    //    database are already consistent (DESIGN.md §3), but the subset folds
    //    above may have filtered parents, so re-reduce to restore the
    //    invariant cheaply.
    full_reduce(&plan, &mut relations)?;
    if relations.iter().any(Relation::is_empty) {
        for r in &mut relations {
            r.retain_rows(|_| false);
        }
    }

    Ok(FullAcyclicJoin {
        plan,
        relations,
        head,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_data::Value;
    use rae_query::{naive_eval, parser::parse_cq};

    fn rel(attrs: &[&str], rows: &[&[i64]]) -> Relation {
        Relation::from_rows(
            Schema::new(attrs.iter().copied()).unwrap(),
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect()),
        )
        .unwrap()
    }

    fn check_equals_naive(q: &str, db: &Database) {
        let cq = parse_cq(q).unwrap();
        let fj = reduce_to_full_acyclic(&cq, db).unwrap();
        let expected = naive_eval(&cq, db).unwrap();
        let got = fj.materialize().unwrap();
        assert_eq!(
            got, expected,
            "full-join materialization must match naive evaluation for {q}"
        );
    }

    fn db_paths() -> Database {
        let mut db = Database::new();
        db.add_relation(
            "R",
            rel(&["a", "b"], &[&[1, 10], &[1, 11], &[2, 10], &[3, 12]]),
        )
        .unwrap();
        db.add_relation(
            "S",
            rel(
                &["a", "b"],
                &[&[10, 100], &[11, 100], &[12, 101], &[13, 101]],
            ),
        )
        .unwrap();
        db.add_relation("T", rel(&["a"], &[&[100], &[102]]))
            .unwrap();
        db
    }

    #[test]
    fn full_join_query_matches_naive() {
        check_equals_naive("Q(x, y, z) :- R(x, y), S(y, z)", &db_paths());
    }

    #[test]
    fn projected_free_connex_matches_naive() {
        // Project away the tail of the path: Q(x,y) :- R(x,y), S(y,z).
        check_equals_naive("Q(x, y) :- R(x, y), S(y, z)", &db_paths());
    }

    #[test]
    fn deeper_existential_subtree_matches_naive() {
        check_equals_naive("Q(x, y) :- R(x, y), S(y, z), T(z)", &db_paths());
    }

    #[test]
    fn single_atom_projection_matches_naive() {
        check_equals_naive("Q(x) :- R(x, y)", &db_paths());
    }

    #[test]
    fn cross_product_matches_naive() {
        check_equals_naive("Q(x, u) :- R(x, y), T(u)", &db_paths());
    }

    #[test]
    fn boolean_query_nonempty() {
        let cq = parse_cq("Q() :- R(x, y), S(y, z)").unwrap();
        let fj = reduce_to_full_acyclic(&cq, &db_paths()).unwrap();
        assert_eq!(fj.materialize().unwrap().len(), 1);
    }

    #[test]
    fn boolean_query_empty() {
        let cq = parse_cq("Q() :- R(x, y), S(y, z), T(z)").unwrap();
        let mut db = db_paths();
        db.set_relation("T", rel(&["a"], &[&[9999]]));
        let fj = reduce_to_full_acyclic(&cq, &db).unwrap();
        assert!(fj.materialize().unwrap().is_empty());
    }

    #[test]
    fn empty_component_empties_everything() {
        // T is in a separate component; making it empty must kill all answers.
        let mut db = db_paths();
        db.set_relation("T", rel(&["a"], &[]));
        let cq = parse_cq("Q(x, u) :- R(x, y), T(u)").unwrap();
        let fj = reduce_to_full_acyclic(&cq, &db).unwrap();
        assert!(fj.materialize().unwrap().is_empty());
        assert!(fj.relations.iter().all(Relation::is_empty));
    }

    #[test]
    fn non_free_connex_is_rejected() {
        let cq = parse_cq("Q(x, z) :- R(x, y), S(y, z)").unwrap();
        assert!(matches!(
            reduce_to_full_acyclic(&cq, &db_paths()),
            Err(QueryError::NotFreeConnex(_))
        ));
    }

    #[test]
    fn cyclic_is_rejected() {
        let mut db = db_paths();
        db.add_relation("U", rel(&["a", "b"], &[&[1, 100]]))
            .unwrap();
        let cq = parse_cq("Q(x, y, z) :- R(x, y), S(y, z), U(x, z)").unwrap();
        assert!(matches!(
            reduce_to_full_acyclic(&cq, &db),
            Err(QueryError::NotAcyclic(_))
        ));
    }

    #[test]
    fn relations_are_globally_consistent_after_pipeline() {
        let cq = parse_cq("Q(x, y) :- R(x, y), S(y, z)").unwrap();
        let fj = reduce_to_full_acyclic(&cq, &db_paths()).unwrap();
        assert!(crate::reduce::is_globally_consistent(
            &fj.plan,
            &fj.relations
        ));
    }

    #[test]
    fn subset_bags_are_folded() {
        // Q(x,y) :- R(x,y), S2(x,y), with S2 having the same variables: the
        // plan should fold to a single node whose relation is the
        // intersection.
        let mut db = Database::new();
        db.add_relation("R", rel(&["a", "b"], &[&[1, 2], &[3, 4]]))
            .unwrap();
        db.add_relation("S2", rel(&["a", "b"], &[&[1, 2], &[5, 6]]))
            .unwrap();
        let cq = parse_cq("Q(x, y) :- R(x, y), S2(x, y)").unwrap();
        let fj = reduce_to_full_acyclic(&cq, &db).unwrap();
        assert_eq!(fj.plan.node_count(), 1);
        assert_eq!(fj.relations[0].len(), 1);
        check_equals_naive("Q(x, y) :- R(x, y), S2(x, y)", &db);
    }

    #[test]
    fn constants_and_self_joins_match_naive() {
        let mut db = Database::new();
        db.add_relation("E", rel(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 1], &[2, 2]]))
            .unwrap();
        // Two-step reachability (self-join), full head.
        check_equals_naive("Q(x, y, z) :- E(x, y), E(y, z)", &db);
        // With a constant selection.
        check_equals_naive("Q(x, y) :- E(x, y), E(y, 2)", &db);
    }

    #[test]
    fn example_4_4_shape_and_count() {
        // The worked example from the paper, Section 4.
        let mut db = Database::new();
        db.add_relation(
            "R1",
            Relation::from_rows(
                Schema::new(["v", "w", "x"]).unwrap(),
                vec![
                    vec![Value::str("a1"), Value::str("b1"), Value::str("c1")],
                    vec![Value::str("a1"), Value::str("b1"), Value::str("c2")],
                    vec![Value::str("a2"), Value::str("b2"), Value::str("c1")],
                    vec![Value::str("a2"), Value::str("b2"), Value::str("c2")],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.add_relation(
            "R2",
            Relation::from_rows(
                Schema::new(["v", "y"]).unwrap(),
                vec![
                    vec![Value::str("b1"), Value::str("d1")],
                    vec![Value::str("b1"), Value::str("d2")],
                    vec![Value::str("b2"), Value::str("d2")],
                    vec![Value::str("b2"), Value::str("d3")],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.add_relation(
            "R3",
            Relation::from_rows(
                Schema::new(["w", "z"]).unwrap(),
                vec![
                    vec![Value::str("c1"), Value::str("e1")],
                    vec![Value::str("c1"), Value::str("e2")],
                    vec![Value::str("c1"), Value::str("e3")],
                    vec![Value::str("c2"), Value::str("e4")],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        // Note: in the paper R2 joins on w (the b-values) and R3 on x (the
        // c-values) of R1.
        let cq = parse_cq("Q(v, w, x, y, z) :- R1(v, w, x), R2(w, y), R3(x, z)").unwrap();
        let fj = reduce_to_full_acyclic(&cq, &db).unwrap();
        let ans = fj.materialize().unwrap();
        assert_eq!(ans.len(), 16, "the example has 16 answers");
        check_equals_naive("Q(v, w, x, y, z) :- R1(v, w, x), R2(w, y), R3(x, z)", &db);
    }
}
