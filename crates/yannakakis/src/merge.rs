//! Merge (sort-based) semijoin over dictionary-code projections.
//!
//! The hash semijoin ([`crate::semijoin_filter`]) pays one hash probe per
//! left row and one insert per right row, each touching a hash table in
//! random order. The merge semijoin instead radix-sorts both sides' key
//! projections by raw code order (any fixed total order on codes works for
//! equality matching) and resolves membership with a single linear merge:
//! every memory access after the sort is sequential, and consecutive equal
//! keys on either side are consumed as a run (run-length dedup), so
//! duplicate keys cost one comparison per run, not per row.
//!
//! This is the semijoin used by [`crate::full_reduce`] — the sort-based
//! preprocessing pipeline of DESIGN.md §10.

use rae_data::{with_sort_scratch, Relation, ValueCode};
use std::cell::RefCell;
use std::cmp::Ordering;

/// Reusable projection/mask buffers (thread-local; see [`merge_scratch`]).
#[derive(Default)]
struct MergeScratch {
    left_keys: Vec<ValueCode>,
    right_keys: Vec<ValueCode>,
    left_rows: Vec<u32>,
    right_rows: Vec<u32>,
    mask: Vec<bool>,
}

thread_local! {
    static MERGE_SCRATCH: RefCell<MergeScratch> = RefCell::new(MergeScratch::default());
}

/// Reduces `left` to the rows whose key (values at `left_cols`) occurs among
/// the keys of `right` at `right_cols` — the semijoin `left ⋉ right` — via
/// sort-merge on dictionary codes.
///
/// Produces exactly the same relation state as [`crate::semijoin_filter`]
/// (surviving rows keep their order, so the left relation's sort fingerprint
/// stays valid). When `left` is empty no right-side work happens at all.
///
/// # Panics
/// Panics if the column lists have different lengths.
pub fn merge_semijoin_filter(
    left: &mut Relation,
    left_cols: &[usize],
    right: &Relation,
    right_cols: &[usize],
) {
    assert_eq!(
        left_cols.len(),
        right_cols.len(),
        "semijoin column lists must have equal length"
    );
    if left.is_empty() {
        return; // nothing can survive; skip building any right-side structure
    }
    if left_cols.is_empty() {
        // Joining on no attributes: keep left iff right is non-empty.
        if right.is_empty() {
            left.retain_rows(|_| false);
        }
        return;
    }
    if right.is_empty() {
        left.retain_rows(|_| false);
        return;
    }
    let width = left_cols.len();
    let n = left.len();
    let m = right.len();
    assert!(
        n <= u32::MAX as usize && m <= u32::MAX as usize,
        "relation too large for u32 row ids"
    );

    MERGE_SCRATCH.with(|cell| {
        let MergeScratch {
            left_keys,
            right_keys,
            left_rows,
            right_rows,
            mask,
        } = &mut *cell.borrow_mut();

        // Project both sides' keys into flat code buffers and sort the row
        // ids by key. Raw code order, not value order: equal codes are equal
        // values, which is all the merge needs.
        project_keys(left, left_cols, left_keys);
        project_keys(right, right_cols, right_keys);
        left_rows.clear();
        left_rows.extend(0..n as u32);
        right_rows.clear();
        right_rows.extend(0..m as u32);
        with_sort_scratch(|s| {
            s.sort_rows_by_code_keys(left_keys, width, left_rows);
            s.sort_rows_by_code_keys(right_keys, width, right_rows);
        });

        // Linear merge with run-length handling of equal keys on both sides.
        mask.clear();
        mask.resize(n, false);
        let left_key = |i: usize| &left_keys[left_rows[i] as usize * width..][..width];
        let right_key = |i: usize| &right_keys[right_rows[i] as usize * width..][..width];
        let (mut li, mut ri) = (0usize, 0usize);
        while li < n && ri < m {
            match left_key(li).cmp(right_key(ri)) {
                Ordering::Less => {
                    // Skip the whole run of this (unmatched) left key.
                    let key = left_key(li);
                    li += 1;
                    while li < n && left_key(li) == key {
                        li += 1;
                    }
                }
                Ordering::Greater => {
                    // Skip the run of this right key (dedup of duplicates).
                    let key = right_key(ri);
                    ri += 1;
                    while ri < m && right_key(ri) == key {
                        ri += 1;
                    }
                }
                Ordering::Equal => {
                    let key = right_key(ri);
                    while li < n && left_key(li) == key {
                        mask[left_rows[li] as usize] = true;
                        li += 1;
                    }
                    ri += 1;
                    while ri < m && right_key(ri) == key {
                        ri += 1;
                    }
                }
            }
        }
        left.retain_by_index(mask);
    });
}

/// Writes the `cols` projection of every row's codes into `out` (row-major).
fn project_keys(rel: &Relation, cols: &[usize], out: &mut Vec<ValueCode>) {
    out.clear();
    out.reserve(rel.len() * cols.len());
    let arity = rel.arity();
    for row in rel.codes().chunks_exact(arity) {
        out.extend(cols.iter().map(|&c| row[c]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semijoin::semijoin_filter;
    use rae_data::{Schema, Value};

    fn rel(attrs: &[&str], rows: &[&[i64]]) -> Relation {
        Relation::from_rows(
            Schema::new(attrs.iter().copied()).unwrap(),
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect()),
        )
        .unwrap()
    }

    #[test]
    fn filters_non_matching_rows() {
        let mut left = rel(&["x", "y"], &[&[1, 10], &[2, 20], &[3, 30]]);
        let right = rel(&["y", "z"], &[&[10, 0], &[30, 0]]);
        merge_semijoin_filter(&mut left, &[1], &right, &[0]);
        assert_eq!(left.len(), 2);
        assert!(left.contains_row(&[Value::Int(1), Value::Int(10)]));
        assert!(left.contains_row(&[Value::Int(3), Value::Int(30)]));
    }

    #[test]
    fn empty_right_empties_left() {
        let mut left = rel(&["x"], &[&[1], &[2]]);
        let right = rel(&["x"], &[]);
        merge_semijoin_filter(&mut left, &[0], &right, &[0]);
        assert!(left.is_empty());
    }

    #[test]
    fn empty_left_is_a_no_op() {
        let mut left = rel(&["x"], &[]);
        let right = rel(&["x"], &[&[1], &[2]]);
        merge_semijoin_filter(&mut left, &[0], &right, &[0]);
        assert!(left.is_empty());
    }

    #[test]
    fn disjoint_attributes_keep_left_iff_right_nonempty() {
        let mut left = rel(&["x"], &[&[1], &[2]]);
        let right = rel(&["y"], &[&[5]]);
        merge_semijoin_filter(&mut left, &[], &right, &[]);
        assert_eq!(left.len(), 2);

        let empty_right = rel(&["y"], &[]);
        merge_semijoin_filter(&mut left, &[], &empty_right, &[]);
        assert!(left.is_empty());
    }

    #[test]
    fn composite_key_semijoin_with_duplicates() {
        let mut left = rel(
            &["a", "b", "c"],
            &[&[1, 2, 0], &[1, 3, 0], &[2, 2, 0], &[1, 2, 9], &[1, 2, 9]],
        );
        let right = rel(&["a", "b"], &[&[1, 2], &[2, 2], &[1, 2], &[1, 2]]);
        merge_semijoin_filter(&mut left, &[0, 1], &right, &[0, 1]);
        assert_eq!(left.len(), 4);
        assert!(!left.contains_row(&[Value::Int(1), Value::Int(3), Value::Int(0)]));
    }

    #[test]
    fn matches_hash_semijoin_on_pseudorandom_inputs() {
        // Differential: merge vs hash on a few hundred pseudorandom shapes.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move |bound: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % bound
        };
        for case in 0..60 {
            let n = next(40) as usize;
            let m = next(40) as usize;
            let domain = 1 + next(12) as i64;
            let lrows: Vec<Vec<i64>> = (0..n)
                .map(|_| vec![next(domain as u64) as i64, next(domain as u64) as i64])
                .collect();
            let rrows: Vec<Vec<i64>> = (0..m)
                .map(|_| vec![next(domain as u64) as i64, next(domain as u64) as i64])
                .collect();
            let lslices: Vec<&[i64]> = lrows.iter().map(|r| r.as_slice()).collect();
            let rslices: Vec<&[i64]> = rrows.iter().map(|r| r.as_slice()).collect();
            let mut merge_left = rel(&["a", "b"], &lslices);
            let mut hash_left = merge_left.clone();
            let right = rel(&["b", "c"], &rslices);
            let (lc, rc): (&[usize], &[usize]) = if case % 2 == 0 {
                (&[1], &[0])
            } else {
                (&[0, 1], &[0, 1])
            };
            merge_semijoin_filter(&mut merge_left, lc, &right, rc);
            semijoin_filter(&mut hash_left, lc, &right, rc);
            assert_eq!(merge_left, hash_left, "case {case} diverged");
        }
    }
}
