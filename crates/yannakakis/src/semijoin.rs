//! Semijoin filters.

use rae_data::{CodeKeyMap, Relation};

/// Reduces `left` to the rows whose key (values at `left_cols`) occurs among
/// the keys of `right` at `right_cols` — the semijoin `left ⋉ right`.
///
/// Runs in one pass over each relation. Keys are compared via dictionary
/// codes: the right side is loaded into a [`CodeKeyMap`] and every left row
/// probes with a borrowed code slice — no per-row key allocation.
///
/// # Panics
/// Panics if the column lists have different lengths.
pub fn semijoin_filter(
    left: &mut Relation,
    left_cols: &[usize],
    right: &Relation,
    right_cols: &[usize],
) {
    assert_eq!(
        left_cols.len(),
        right_cols.len(),
        "semijoin column lists must have equal length"
    );
    if left.is_empty() {
        // Nothing can survive: skip building the right-side key map entirely.
        return;
    }
    if left_cols.is_empty() {
        // Joining on no attributes: keep left iff right is non-empty.
        if right.is_empty() {
            left.retain_rows(|_| false);
        }
        return;
    }
    let width = right_cols.len();
    let mut keys = CodeKeyMap::with_capacity(width, right.len());
    let mut scratch: Vec<u32> = Vec::with_capacity(width);
    let mut last: Vec<u32> = Vec::with_capacity(width);
    for i in 0..right.len() {
        let codes = right.row_codes(i);
        scratch.clear();
        scratch.extend(right_cols.iter().map(|&c| codes[c]));
        // Best-effort dedup: when the sort order makes equal projection
        // keys adjacent (always for schema-prefix projections, commonly for
        // leading columns), consecutive repeats skip the hash insert.
        // Non-adjacent duplicates still insert; CodeKeyMap::insert is
        // idempotent, so this is purely a fast path.
        if i > 0 && scratch == last {
            continue;
        }
        keys.insert(&scratch, 0);
        std::mem::swap(&mut last, &mut scratch);
    }
    let mut mask = vec![false; left.len()];
    for (i, keep) in mask.iter_mut().enumerate() {
        let codes = left.row_codes(i);
        scratch.clear();
        scratch.extend(left_cols.iter().map(|&c| codes[c]));
        *keep = keys.contains(&scratch);
    }
    left.retain_by_index(&mask);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_data::{Schema, Value};

    fn rel(attrs: &[&str], rows: &[&[i64]]) -> Relation {
        Relation::from_rows(
            Schema::new(attrs.iter().copied()).unwrap(),
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect()),
        )
        .unwrap()
    }

    #[test]
    fn filters_non_matching_rows() {
        let mut left = rel(&["x", "y"], &[&[1, 10], &[2, 20], &[3, 30]]);
        let right = rel(&["y", "z"], &[&[10, 0], &[30, 0]]);
        semijoin_filter(&mut left, &[1], &right, &[0]);
        assert_eq!(left.len(), 2);
        assert!(left.contains_row(&[Value::Int(1), Value::Int(10)]));
        assert!(left.contains_row(&[Value::Int(3), Value::Int(30)]));
    }

    #[test]
    fn empty_right_empties_left() {
        let mut left = rel(&["x"], &[&[1], &[2]]);
        let right = rel(&["x"], &[]);
        semijoin_filter(&mut left, &[0], &right, &[0]);
        assert!(left.is_empty());
    }

    #[test]
    fn disjoint_attributes_keep_left_iff_right_nonempty() {
        let mut left = rel(&["x"], &[&[1], &[2]]);
        let right = rel(&["y"], &[&[5]]);
        semijoin_filter(&mut left, &[], &right, &[]);
        assert_eq!(left.len(), 2);

        let empty_right = rel(&["y"], &[]);
        semijoin_filter(&mut left, &[], &empty_right, &[]);
        assert!(left.is_empty());
    }

    #[test]
    fn composite_key_semijoin() {
        let mut left = rel(&["a", "b", "c"], &[&[1, 2, 0], &[1, 3, 0], &[2, 2, 0]]);
        let right = rel(&["a", "b"], &[&[1, 2], &[2, 2]]);
        semijoin_filter(&mut left, &[0, 1], &right, &[0, 1]);
        assert_eq!(left.len(), 2);
        assert!(!left.contains_row(&[Value::Int(1), Value::Int(3), Value::Int(0)]));
    }
}
