//! Atom instantiation: from an atom over a stored relation to a materialized
//! relation over the atom's *variables*.

use crate::Result;
use rae_data::{Database, Relation, Schema, Value};
use rae_query::{Atom, QueryError, Term};

/// Materializes the sub-relation of `db` matched by `atom`:
///
/// * rows whose values disagree with a constant term are dropped,
/// * rows violating repeated-variable equality are dropped,
/// * columns are projected (and reordered) onto the atom's distinct
///   variables in **sorted variable order** (the canonical bag layout used
///   by join-tree plans),
/// * duplicates are removed (set semantics).
///
/// Self-joins are handled naturally: each atom instantiates its own copy.
pub fn instantiate_atom(atom: &Atom, db: &Database) -> Result<Relation> {
    let stored = db.relation(&atom.relation)?;
    if stored.arity() != atom.terms.len() {
        return Err(QueryError::AtomArityMismatch {
            relation: atom.relation.clone(),
            relation_arity: stored.arity(),
            atom_arity: atom.terms.len(),
        });
    }

    // Sorted distinct variables define the output schema.
    let vars = atom.var_set();
    let schema = Schema::new(vars.iter().cloned())?;

    // For each output variable, the first column of the atom where it occurs.
    let var_first_col: Vec<usize> = schema
        .attrs()
        .iter()
        .map(|v| {
            atom.terms
                .iter()
                .position(|t| t.as_var() == Some(v))
                .expect("schema variables come from the atom")
        })
        .collect();

    // Constant checks: (column, value).
    let const_checks: Vec<(usize, &Value)> = atom
        .terms
        .iter()
        .enumerate()
        .filter_map(|(i, t)| match t {
            Term::Const(c) => Some((i, c)),
            Term::Var(_) => None,
        })
        .collect();

    // Repeated-variable checks: (first column, other column).
    let mut eq_checks: Vec<(usize, usize)> = Vec::new();
    for (i, t) in atom.terms.iter().enumerate() {
        if let Term::Var(v) = t {
            let first = atom
                .terms
                .iter()
                .position(|u| u.as_var() == Some(v))
                .expect("var occurs");
            if first != i {
                eq_checks.push((first, i));
            }
        }
    }

    let mut out = Relation::new(schema);
    'rows: for row in stored.rows() {
        for &(col, value) in &const_checks {
            if &row[col] != value {
                continue 'rows;
            }
        }
        for &(a, b) in &eq_checks {
            if row[a] != row[b] {
                continue 'rows;
            }
        }
        out.push_row(var_first_col.iter().map(|&c| row[c].clone()).collect())?;
    }
    out.sort_dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_data::Symbol;
    use rae_query::Term;

    fn db() -> Database {
        let mut db = Database::new();
        let rel = Relation::from_rows(
            Schema::new(["a", "b", "c"]).unwrap(),
            vec![
                vec![Value::Int(1), Value::Int(1), Value::str("x")],
                vec![Value::Int(1), Value::Int(2), Value::str("y")],
                vec![Value::Int(2), Value::Int(2), Value::str("x")],
                vec![Value::Int(1), Value::Int(2), Value::str("y")], // duplicate
            ],
        )
        .unwrap();
        db.add_relation("R", rel).unwrap();
        db
    }

    #[test]
    fn plain_variables_project_in_sorted_order() {
        // Atom R(q, p, s): output schema must be (p, q, s) sorted.
        let atom = Atom::new("R", ["q", "p", "s"]);
        let rel = instantiate_atom(&atom, &db()).unwrap();
        assert_eq!(
            rel.schema().attrs(),
            &[Symbol::new("p"), Symbol::new("q"), Symbol::new("s")]
        );
        assert_eq!(rel.len(), 3); // duplicate removed
                                  // p is column b of the source, q is column a.
        assert!(rel.contains_row(&[Value::Int(2), Value::Int(1), Value::str("y")]));
    }

    #[test]
    fn constants_filter_rows() {
        let atom = Atom::with_terms(
            "R",
            vec![Term::var("x"), Term::Const(Value::Int(2)), Term::var("s")],
        );
        let rel = instantiate_atom(&atom, &db()).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.schema().attrs(), &[Symbol::new("s"), Symbol::new("x")]);
    }

    #[test]
    fn string_constants_filter_rows() {
        let atom = Atom::with_terms(
            "R",
            vec![Term::var("x"), Term::var("y"), Term::Const(Value::str("x"))],
        );
        let rel = instantiate_atom(&atom, &db()).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let atom = Atom::with_terms("R", vec![Term::var("v"), Term::var("v"), Term::var("s")]);
        let rel = instantiate_atom(&atom, &db()).unwrap();
        // Only rows with a == b: (1,1,"x") and (2,2,"x").
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.schema().attrs(), &[Symbol::new("s"), Symbol::new("v")]);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let atom = Atom::new("R", ["x", "y"]);
        assert!(matches!(
            instantiate_atom(&atom, &db()),
            Err(QueryError::AtomArityMismatch { .. })
        ));
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let atom = Atom::new("Nope", ["x", "y", "z"]);
        assert!(instantiate_atom(&atom, &db()).is_err());
    }

    #[test]
    fn all_constant_atom_yields_arity_zero_relation() {
        let atom = Atom::with_terms(
            "R",
            vec![
                Term::Const(Value::Int(1)),
                Term::Const(Value::Int(2)),
                Term::Const(Value::str("y")),
            ],
        );
        let rel = instantiate_atom(&atom, &db()).unwrap();
        assert_eq!(rel.arity(), 0);
        assert_eq!(rel.len(), 1); // satisfied: contains the empty tuple once
    }

    #[test]
    fn all_constant_atom_unsatisfied_is_empty() {
        let atom = Atom::with_terms(
            "R",
            vec![
                Term::Const(Value::Int(9)),
                Term::Const(Value::Int(9)),
                Term::Const(Value::str("?")),
            ],
        );
        let rel = instantiate_atom(&atom, &db()).unwrap();
        assert_eq!(rel.arity(), 0);
        assert!(rel.is_empty());
    }
}
