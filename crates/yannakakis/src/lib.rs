#![warn(missing_docs)]

//! # rae-yannakakis
//!
//! The classical machinery the paper's Proposition 4.2 builds on:
//!
//! * atom instantiation — materializing the matching sub-relation of an atom
//!   (applying constant selections and repeated-variable filters, projecting
//!   onto its variables),
//! * semijoin filters — a hash variant and a sort-merge variant over
//!   dictionary-code projections — and the Yannakakis *full reduction* over
//!   a join tree (removing all dangling tuples, yielding a globally
//!   consistent database); `full_reduce` uses the merge semijoin,
//! * the Proposition 4.2 pipeline: reducing a free-connex CQ `Q` over `D` to
//!   a *full* acyclic join `Q'` over `D'` with `Q(D) = Q'(D')`.

pub mod full_join;
pub mod instantiate;
pub mod merge;
pub mod reduce;
pub mod semijoin;

pub use full_join::{
    reduce_to_full_acyclic, reduce_to_full_acyclic_with, FullAcyclicJoin, ReduceOptions,
};
pub use instantiate::instantiate_atom;
pub use merge::merge_semijoin_filter;
pub use reduce::full_reduce;
pub use semijoin::semijoin_filter;

/// Result alias reusing the query-layer error.
pub type Result<T> = std::result::Result<T, rae_query::QueryError>;
