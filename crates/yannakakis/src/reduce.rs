//! Yannakakis full reduction over a join-tree plan.

use crate::merge::merge_semijoin_filter;
use crate::semijoin::semijoin_filter;
use crate::Result;
use rae_data::{Relation, Symbol};
use rae_query::TreePlan;

/// Removes all dangling tuples from `rels` (one relation per plan node, with
/// schema equal to the node's bag) by a bottom-up followed by a top-down
/// semijoin pass along the tree edges — Yannakakis' *full reduction*.
///
/// After this call the relations are **globally consistent**: every remaining
/// tuple participates in at least one answer of the full join over the plan.
/// Runs in time linear in the total number of tuples (two semijoins per
/// edge).
pub fn full_reduce(plan: &TreePlan, rels: &mut [Relation]) -> Result<()> {
    // Chaos site: fails the reduction before it filters anything, so the
    // caller sees a transient error with the relations untouched.
    rae_faults::fail_point!("yannakakis/reduce", |site| Err(
        rae_query::QueryError::Data(rae_data::DataError::FaultInjected { site })
    ));
    assert_eq!(
        plan.node_count(),
        rels.len(),
        "one relation per plan node required"
    );
    for (i, rel) in rels.iter().enumerate() {
        debug_assert_eq!(
            rel.schema().attrs(),
            plan.bag(i),
            "relation schema must equal the node bag"
        );
    }

    // Shared columns per edge, computed once.
    let shared: Vec<Option<(Vec<usize>, Vec<usize>)>> = (0..plan.node_count())
        .map(|i| {
            plan.parent(i).map(|p| {
                let child_cols = plan.parent_shared_cols(i);
                let attrs: Vec<Symbol> =
                    child_cols.iter().map(|&c| plan.bag(i)[c].clone()).collect();
                let parent_cols: Vec<usize> = attrs
                    .iter()
                    .map(|a| {
                        plan.bag(p)
                            .binary_search(a)
                            .expect("shared attribute occurs in parent bag")
                    })
                    .collect();
                (child_cols, parent_cols)
            })
        })
        .collect();

    // Bottom-up: reduce each parent by its children. Sort-merge semijoins
    // (DESIGN.md §10): sequential passes instead of per-row hash probes.
    for &node in plan.leaf_to_root() {
        if let (Some(p), Some((child_cols, parent_cols))) = (plan.parent(node), &shared[node]) {
            let (child_rel, parent_rel) = borrow_two(rels, node, p);
            merge_semijoin_filter(parent_rel, parent_cols, child_rel, child_cols);
        }
    }

    // Top-down: reduce each child by its parent.
    for &node in plan.leaf_to_root().iter().rev() {
        if let (Some(p), Some((child_cols, parent_cols))) = (plan.parent(node), &shared[node]) {
            let (child_rel, parent_rel) = borrow_two(rels, node, p);
            merge_semijoin_filter(child_rel, child_cols, parent_rel, parent_cols);
        }
    }

    Ok(())
}

/// Splits `rels` into disjoint mutable/shared references at indices `a`, `b`.
fn borrow_two(rels: &mut [Relation], a: usize, b: usize) -> (&mut Relation, &mut Relation) {
    assert_ne!(a, b);
    if a < b {
        let (left, right) = rels.split_at_mut(b);
        (&mut left[a], &mut right[0])
    } else {
        let (left, right) = rels.split_at_mut(a);
        (&mut right[0], &mut left[b])
    }
}

/// Checks global consistency: every tuple of every relation extends to a full
/// answer of the join over the plan. Exponential fan-out in the worst case —
/// tests only.
pub fn is_globally_consistent(plan: &TreePlan, rels: &[Relation]) -> bool {
    // A tuple of node i is consistent iff for every child c there is a tuple
    // of c agreeing on the shared attributes that is itself (recursively)
    // consistent, and symmetrically towards the parent. After a correct full
    // reduction, it suffices to check each edge's pairwise consistency.
    for i in 0..plan.node_count() {
        if let Some(p) = plan.parent(i) {
            let child_cols = plan.parent_shared_cols(i);
            let attrs: Vec<Symbol> = child_cols.iter().map(|&c| plan.bag(i)[c].clone()).collect();
            let parent_cols: Vec<usize> = attrs
                .iter()
                .map(|a| plan.bag(p).binary_search(a).expect("shared attr"))
                .collect();
            // Every child tuple must have a matching parent tuple and vice
            // versa (pairwise consistency in both directions).
            let mut child = rels[i].clone();
            semijoin_filter(&mut child, &child_cols, &rels[p], &parent_cols);
            if child.len() != rels[i].len() {
                return false;
            }
            let mut parent = rels[p].clone();
            semijoin_filter(&mut parent, &parent_cols, &rels[i], &child_cols);
            if parent.len() != rels[p].len() {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_data::{Schema, Value};
    use std::collections::BTreeSet;

    fn rel(attrs: &[&str], rows: &[&[i64]]) -> Relation {
        Relation::from_rows(
            Schema::new(attrs.iter().copied()).unwrap(),
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect()),
        )
        .unwrap()
    }

    fn bag(vs: &[&str]) -> BTreeSet<rae_data::Symbol> {
        vs.iter().map(rae_data::Symbol::new).collect()
    }

    #[test]
    fn path_reduction_removes_dangling() {
        // R(a,b) — S(b,c) — T(c,d), chain join tree rooted at R.
        let plan = TreePlan::new(
            vec![bag(&["a", "b"]), bag(&["b", "c"]), bag(&["c", "d"])],
            vec![None, Some(0), Some(1)],
        )
        .unwrap();
        let mut rels = vec![
            rel(&["a", "b"], &[&[1, 10], &[2, 20], &[3, 30]]),
            rel(&["b", "c"], &[&[10, 100], &[20, 200], &[40, 400]]),
            rel(&["c", "d"], &[&[100, 7], &[300, 7]]),
        ];
        full_reduce(&plan, &mut rels).unwrap();
        // Only the a=1 chain survives: (1,10)-(10,100)-(100,7).
        assert_eq!(rels[0].len(), 1);
        assert_eq!(rels[1].len(), 1);
        assert_eq!(rels[2].len(), 1);
        assert!(is_globally_consistent(&plan, &rels));
    }

    #[test]
    fn empty_leaf_propagates_everywhere() {
        let plan = TreePlan::new(
            vec![bag(&["a", "b"]), bag(&["b", "c"])],
            vec![None, Some(0)],
        )
        .unwrap();
        let mut rels = vec![rel(&["a", "b"], &[&[1, 10]]), rel(&["b", "c"], &[])];
        full_reduce(&plan, &mut rels).unwrap();
        assert!(rels[0].is_empty());
        assert!(rels[1].is_empty());
    }

    #[test]
    fn star_reduction() {
        // Root R(v,w) with children S(v,x), T(w,y).
        let plan = TreePlan::new(
            vec![bag(&["v", "w"]), bag(&["v", "x"]), bag(&["w", "y"])],
            vec![None, Some(0), Some(0)],
        )
        .unwrap();
        let mut rels = vec![
            rel(&["v", "w"], &[&[1, 1], &[1, 2], &[2, 1]]),
            rel(&["v", "x"], &[&[1, 5]]),
            rel(&["w", "y"], &[&[1, 6], &[2, 6]]),
        ];
        full_reduce(&plan, &mut rels).unwrap();
        // v must be 1; w may be 1 or 2.
        assert_eq!(rels[0].len(), 2);
        assert!(is_globally_consistent(&plan, &rels));
    }

    #[test]
    fn forest_components_reduce_independently() {
        let plan = TreePlan::new(vec![bag(&["a"]), bag(&["b"])], vec![None, None]).unwrap();
        let mut rels = vec![rel(&["a"], &[&[1]]), rel(&["b"], &[])];
        full_reduce(&plan, &mut rels).unwrap();
        // No shared variables: reduction cannot propagate emptiness across
        // components (callers handle the any-empty ⇒ all-empty rule).
        assert_eq!(rels[0].len(), 1);
        assert!(rels[1].is_empty());
    }

    #[test]
    fn already_consistent_input_is_untouched() {
        let plan = TreePlan::new(
            vec![bag(&["a", "b"]), bag(&["b", "c"])],
            vec![None, Some(0)],
        )
        .unwrap();
        let mut rels = vec![
            rel(&["a", "b"], &[&[1, 10], &[2, 10]]),
            rel(&["b", "c"], &[&[10, 0], &[10, 1]]),
        ];
        let before = rels.clone();
        full_reduce(&plan, &mut rels).unwrap();
        assert_eq!(rels, before);
    }
}
