//! The churn benchmark report must be well-formed and show bounded
//! dictionary memory. Runs in its own process (it sweeps the process-wide
//! dictionary), with a small configuration so the test stays fast.

use rae_bench::churn::churn_json;
use rae_tpch::ChurnConfig;

#[test]
fn churn_json_is_well_formed_and_bounded() {
    let cfg = ChurnConfig {
        cycles: 10,
        orders_per_cycle: 300,
        seed: 42,
        threads: 2,
    };
    let json = churn_json(&cfg);
    assert!(json.contains("\"schema\": \"rae-bench-churn-v1\""));
    assert!(json.contains("\"cycle\": 9"), "all 10 cycles reported");
    assert!(json.contains("\"stale_previous_index_detected\": true"));
    assert!(!json.contains("\"stale_previous_index_detected\": false"));
    assert!(
        json.contains("\"dictionary_memory_bounded\": true"),
        "slot high-water mark must plateau:\n{json}"
    );
    let open = json.matches('{').count();
    let close = json.matches('}').count();
    assert_eq!(open, close, "balanced braces");
}
