//! Smoke versions of the figure generators under `cargo bench`, so every
//! figure path is continuously exercised end to end (at sf 0.001).

use criterion::{criterion_group, criterion_main, Criterion};
use rae_bench::figures::{fig1, fig4, fig5};
use rae_bench::BenchConfig;
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    let cfg = BenchConfig::smoke();
    let mut group = c.benchmark_group("figures_smoke");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("fig8_q3", |b| {
        b.iter(|| std::hint::black_box(fig1::fig8(&cfg)))
    });
    group.bench_function("fig4a", |b| {
        b.iter(|| std::hint::black_box(fig4::fig4a(&cfg)))
    });
    group.bench_function("fig5", |b| {
        b.iter(|| std::hint::black_box(fig5::fig5(&cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
