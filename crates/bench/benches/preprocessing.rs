//! Preprocessing (Algorithm 2 + Proposition 4.2) throughput per benchmark
//! query — the linear-time phase of Theorem 4.3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rae_core::{CqIndex, McUcqIndex};
use rae_tpch::{generate, prepare_selections, queries, TpchScale};
use std::time::Duration;

fn bench_cq_preprocessing(c: &mut Criterion) {
    let db = generate(&TpchScale::from_sf(0.002), 42);
    let mut group = c.benchmark_group("cq_preprocessing");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for (name, cq) in queries::all_cqs() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cq, |b, cq| {
            b.iter(|| std::hint::black_box(CqIndex::build(cq, &db).expect("builds")));
        });
    }
    group.finish();
}

fn bench_mcucq_preprocessing(c: &mut Criterion) {
    let mut db = generate(&TpchScale::from_sf(0.002), 42);
    prepare_selections(&mut db).expect("selections");
    let mut group = c.benchmark_group("mcucq_preprocessing");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for (name, ucq) in queries::all_ucqs() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &ucq, |b, ucq| {
            b.iter(|| std::hint::black_box(McUcqIndex::build(ucq, &db).expect("builds")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cq_preprocessing, bench_mcucq_preprocessing);
criterion_main!(benches);
