//! Per-answer delay of the three random-order enumerators: REnum(CQ)
//! (O(log n)), REnum(UCQ) (expected O(log n)), REnum(mcUCQ) (O(log² n)).

use criterion::{criterion_group, criterion_main, Criterion};
use rae_core::{CqIndex, McUcqIndex, UcqShuffle};
use rae_tpch::{generate, prepare_selections, queries, TpchScale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_shuffles(c: &mut Criterion) {
    let mut db = generate(&TpchScale::from_sf(0.002), 42);
    prepare_selections(&mut db).expect("selections");

    let mut group = c.benchmark_group("random_order_delay");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    // REnum(CQ) on Q3: delay per emitted answer (fresh shuffle per batch).
    let idx = CqIndex::build(&queries::q3(), &db).expect("builds");
    let batch = (idx.count() / 10).max(1) as usize;
    group.bench_function("renum_cq_q3", |b| {
        b.iter(|| {
            let shuffle = idx.random_permutation(StdRng::seed_from_u64(1));
            std::hint::black_box(shuffle.take(batch).count())
        });
    });

    // REnum(UCQ) on Q7S ∪ Q7C (build excluded from the measured region).
    let ucq = queries::q7s_q7c();
    group.bench_function("renum_ucq_q7s_q7c", |b| {
        b.iter_with_setup(
            || UcqShuffle::build(&ucq, &db, StdRng::seed_from_u64(1)).expect("builds"),
            |shuffle| std::hint::black_box(shuffle.take(batch).count()),
        );
    });

    // REnum(mcUCQ) on the same union.
    let mc = McUcqIndex::build(&ucq, &db).expect("builds");
    let mc_batch = (mc.count() / 10).max(1) as usize;
    group.bench_function("renum_mcucq_q7s_q7c", |b| {
        b.iter(|| {
            let shuffle = mc.random_permutation(StdRng::seed_from_u64(1));
            std::hint::black_box(shuffle.take(mc_batch).count())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_shuffles);
criterion_main!(benches);
