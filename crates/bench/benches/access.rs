//! Random-access latency (Algorithm 3) and inverted-access latency
//! (Algorithm 4) across growing database sizes — the O(log n) / O(1)
//! claims of Theorem 4.3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rae_core::{AccessScratch, CqIndex};
use rae_tpch::{generate, queries, TpchScale};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn bench_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("cq_access");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for sf_milli in [1u64, 4, 16] {
        let sf = sf_milli as f64 / 1000.0;
        let db = generate(&TpchScale::from_sf(sf), 42);
        let idx = CqIndex::build(&queries::q3(), &db).expect("builds");
        let n = idx.count();
        // Seed-style baseline: recursive descent with per-node Vec allocs,
        // reproduced in rae_bench::baseline over the same arrays.
        group.bench_with_input(
            BenchmarkId::new("access_seed_baseline", sf_milli),
            &idx,
            |b, idx| {
                let mut rng = StdRng::seed_from_u64(7);
                b.iter(|| {
                    let j = rng.gen_range(0..n);
                    std::hint::black_box(rae_bench::baseline::access_seed_style(idx, j))
                });
            },
        );
        // Today's allocating wrapper (fresh scratch per call) …
        group.bench_with_input(BenchmarkId::new("access", sf_milli), &idx, |b, idx| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                let j = rng.gen_range(0..n);
                std::hint::black_box(idx.access(j))
            });
        });
        // … versus the zero-allocation scratch path.
        group.bench_with_input(BenchmarkId::new("access_into", sf_milli), &idx, |b, idx| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut scratch = AccessScratch::new();
            b.iter(|| {
                let j = rng.gen_range(0..n);
                std::hint::black_box(idx.access_into(j, &mut scratch).is_some())
            });
        });
        idx.prepare_inverted_access();
        group.bench_with_input(
            BenchmarkId::new("inverted_access_seed_baseline", sf_milli),
            &idx,
            |b, idx| {
                let inv = rae_bench::baseline::SeedInvertedAccess::new(idx);
                let mut rng = StdRng::seed_from_u64(7);
                let mut scratch = AccessScratch::new();
                b.iter(|| {
                    let j = rng.gen_range(0..n);
                    let ans = idx.access_into(j, &mut scratch).expect("in range");
                    std::hint::black_box(inv.inverted_access(ans))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("inverted_access", sf_milli),
            &idx,
            |b, idx| {
                let mut rng = StdRng::seed_from_u64(7);
                b.iter(|| {
                    let j = rng.gen_range(0..n);
                    let ans = idx.access(j).expect("in range");
                    std::hint::black_box(idx.inverted_access(&ans))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("inverted_access_of", sf_milli),
            &idx,
            |b, idx| {
                let mut rng = StdRng::seed_from_u64(7);
                let mut scratch = AccessScratch::new();
                let mut probe = AccessScratch::new();
                b.iter(|| {
                    let j = rng.gen_range(0..n);
                    let ans = idx.access_into(j, &mut scratch).expect("in range");
                    std::hint::black_box(idx.inverted_access_of(ans, &mut probe))
                });
            },
        );
    }
    group.finish();
}

fn bench_count(c: &mut Criterion) {
    let db = generate(&TpchScale::from_sf(0.004), 42);
    let idx = CqIndex::build(&queries::q9(), &db).expect("builds");
    c.bench_function("cq_count_is_o1", |b| {
        b.iter(|| std::hint::black_box(idx.count()))
    });
}

criterion_group!(benches, bench_access, bench_count);
criterion_main!(benches);
