//! Sequential enumeration: access-based (`Enum⟨lin, log⟩`, Fact 3.5) vs the
//! constant-delay odometer cursor (`Enum⟨lin, const⟩`, Theorem 4.1).

use criterion::{criterion_group, criterion_main, Criterion};
use rae_core::CqIndex;
use rae_tpch::{generate, queries, TpchScale};
use std::time::Duration;

fn bench_enumeration(c: &mut Criterion) {
    let db = generate(&TpchScale::from_sf(0.002), 42);
    let idx = CqIndex::build(&queries::q3(), &db).expect("builds");
    let k = (idx.count() / 4).max(1) as usize;

    let mut group = c.benchmark_group("sequential_enumeration");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    group.bench_function("access_based_log_delay", |b| {
        b.iter(|| std::hint::black_box(idx.enumerate().take(k).count()))
    });
    group.bench_function("cursor_const_delay", |b| {
        b.iter(|| std::hint::black_box(idx.sequential().take(k).count()))
    });
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
