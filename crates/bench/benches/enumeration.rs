//! Sequential enumeration: access-based (`Enum⟨lin, log⟩`, Fact 3.5) vs the
//! constant-delay odometer cursor (`Enum⟨lin, const⟩`, Theorem 4.1).

use criterion::{criterion_group, criterion_main, Criterion};
use rae_core::CqIndex;
use rae_tpch::{generate, queries, TpchScale};
use std::time::Duration;

fn bench_enumeration(c: &mut Criterion) {
    let db = generate(&TpchScale::from_sf(0.002), 42);
    let idx = CqIndex::build(&queries::q3(), &db).expect("builds");
    let k = (idx.count() / 4).max(1) as usize;

    let mut group = c.benchmark_group("sequential_enumeration");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    group.bench_function("access_based_log_delay", |b| {
        b.iter(|| std::hint::black_box(idx.enumerate().take(k).count()))
    });
    group.bench_function("access_into_log_delay", |b| {
        let mut scratch = rae_core::AccessScratch::new();
        b.iter(|| {
            let mut emitted = 0usize;
            for j in 0..(k as rae_core::Weight) {
                if idx.access_into(j, &mut scratch).is_some() {
                    emitted += 1;
                }
            }
            std::hint::black_box(emitted)
        })
    });
    group.bench_function("cursor_const_delay", |b| {
        b.iter(|| std::hint::black_box(idx.sequential().take(k).count()))
    });
    group.bench_function("cursor_const_delay_next_ref", |b| {
        b.iter(|| {
            let mut cursor = idx.sequential();
            let mut emitted = 0usize;
            while emitted < k && cursor.next_ref().is_some() {
                emitted += 1;
            }
            std::hint::black_box(emitted)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
