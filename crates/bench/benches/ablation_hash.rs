//! Ablation: the hand-rolled FxHash maps (rae-data) vs std's SipHash maps on
//! the workloads that dominate preprocessing — bucket-key and tuple-key
//! insert/lookup. Justifies vendoring FxHash (DESIGN.md §5).

use criterion::{criterion_group, criterion_main, Criterion};
use rae_data::{FxHashMap, Value};
use std::collections::HashMap;
use std::time::Duration;

type Key = Box<[Value]>;

fn keys(n: usize) -> Vec<Key> {
    (0..n)
        .map(|i| vec![Value::Int(i as i64), Value::Int((i * 31) as i64 % 1024)].into_boxed_slice())
        .collect()
}

fn bench_hash(c: &mut Criterion) {
    let keys = keys(20_000);
    let mut group = c.benchmark_group("hash_ablation");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    group.bench_function("fx_insert_lookup", |b| {
        b.iter(|| {
            let mut map: FxHashMap<&Key, u32> = FxHashMap::default();
            for (i, k) in keys.iter().enumerate() {
                map.insert(k, i as u32);
            }
            let mut hits = 0u32;
            for k in &keys {
                hits += map[k];
            }
            std::hint::black_box(hits)
        });
    });

    group.bench_function("siphash_insert_lookup", |b| {
        b.iter(|| {
            let mut map: HashMap<&Key, u32> = HashMap::new();
            for (i, k) in keys.iter().enumerate() {
                map.insert(k, i as u32);
            }
            let mut hits = 0u32;
            for k in &keys {
                hits += map[k];
            }
            std::hint::black_box(hits)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_hash);
criterion_main!(benches);
