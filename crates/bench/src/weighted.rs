//! The weighted ranked-access performance report (`BENCH_7.json`).
//!
//! `repro weighted` measures what the DESIGN.md §17 block directory costs
//! and buys on TPC-H Q3 under a sum-of-weights order (randomized
//! per-customer weights over the ⟨ck, …⟩ order): the weighted build
//! overhead on top of the underlying ordered build, steady-state
//! nanoseconds per `ranked_access_into` / `ranked_inverted_access` /
//! `weight_range_count` op, and the one-shot materialize-then-sort
//! baseline those logarithmic ops replace. Before anything is timed the
//! index is checked rank-by-rank against that baseline on a stride of
//! ranks — a divergence **panics**, so every recorded number is for a
//! verified index.

use rae_core::{AccessScratch, OrderedCqIndex, Weight, WeightedCqIndex};
use rae_data::{Symbol, Value, VarWeights};
use rae_tpch::{generate, queries, TpchScale};
use std::cmp::Ordering;
use std::fmt::Write as _;
use std::time::Instant;

/// Median wall-clock nanoseconds of `run()` over `samples` rounds.
fn median_ns<T>(samples: u32, mut run: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let out = run();
            let ns = start.elapsed().as_nanos() as f64;
            drop(out);
            ns
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// A deterministic pseudo-random weight per customer key.
fn weight_of_key(i: usize) -> u128 {
    ((i as u128).wrapping_mul(2_654_435_761) % 997) + 1
}

/// Runs the weighted-access benchmark and renders `BENCH_7.json`'s
/// contents.
pub fn weighted_json(cfg: &crate::BenchConfig) -> String {
    let db = generate(&TpchScale::from_sf(cfg.sf), cfg.seed);
    let q3 = queries::q3();
    // ORDER BY ck first — the weighted variable must be an order prefix.
    let order: Vec<Symbol> = ["ck", "ok", "pk", "sk", "ln"]
        .iter()
        .map(Symbol::new)
        .collect();

    let t = Instant::now();
    let ordered = OrderedCqIndex::build(&q3, &db, &order).expect("q3 ordered build");
    let ordered_build_ns = t.elapsed().as_nanos() as f64;
    let answers = ordered.count();
    let rows: usize = (0..ordered.index().node_count())
        .map(|n| ordered.index().node_relation(n).len())
        .sum();

    // Randomized per-customer weights, one entry per distinct ck.
    let ck_pos = ordered.order_to_head()[0];
    let mut weights = VarWeights::new();
    let mut at: Weight = 0;
    let mut customers = 0usize;
    while at < answers {
        let row = ordered.ordered_access(at).expect("at < count");
        let ck = row[ck_pos].clone();
        let window = ordered
            .range_of_prefix(std::slice::from_ref(&ck))
            .expect("prefix of the built order");
        weights.set("ck", ck, weight_of_key(customers));
        customers += 1;
        at = window.end;
    }

    let build_ns = median_ns(5, || {
        WeightedCqIndex::build(&q3, &db, &order, &weights).expect("weighted build")
    });
    let idx = WeightedCqIndex::build(&q3, &db, &order, &weights).expect("weighted build");

    // The baseline the directory replaces: materialize every answer, score
    // it, sort by (weight, lex). Also the correctness oracle.
    let head = q3.head().to_vec();
    let order_pos: Vec<usize> = order
        .iter()
        .map(|v| head.iter().position(|h| h == v).expect("order ⊆ head"))
        .collect();
    let sort_all = || {
        let mut all: Vec<(u128, Vec<Value>)> = (0..answers)
            .map(|k| {
                let row = ordered.ordered_access(k).expect("k < count");
                let w = weights.answer_weight(&head, &row).expect("fits u128");
                (w, row)
            })
            .collect();
        all.sort_by(|a, b| {
            a.0.cmp(&b.0).then_with(|| {
                order_pos
                    .iter()
                    .map(|&p| a.1[p].cmp(&b.1[p]))
                    .find(|o| *o != Ordering::Equal)
                    .unwrap_or(Ordering::Equal)
            })
        });
        all
    };
    let naive_sort_ns = median_ns(3, sort_all);

    // Verification gate: a stride of ranks must agree with the oracle in
    // both directions before any per-op number is recorded.
    let oracle = sort_all();
    let stride = (oracle.len() / 256).max(1);
    for (k, (w, expected)) in oracle.iter().enumerate().step_by(stride) {
        let k = k as Weight;
        assert_eq!(
            idx.ranked_access(k).as_ref(),
            Some(expected),
            "WEIGHTED RANK {k} DIVERGED FROM THE SORT BASELINE — this is a bug"
        );
        assert_eq!(idx.weight_at(k), Some(*w));
        assert_eq!(idx.ranked_inverted_access(expected), Some(k));
    }

    // Steady-state per-op costs (batched; scratch warm).
    let mut scratch = AccessScratch::new();
    idx.ranked_access_into(0, &mut scratch).expect("non-empty");
    let ops: Weight = 4096;
    let access_ns = median_ns(5, || {
        for i in 0..ops {
            let k = (i * 2_654_435_761) % answers;
            std::hint::black_box(idx.ranked_access_into(k, &mut scratch).expect("k < count"));
        }
    }) / ops as f64;
    let probes: Vec<Vec<Value>> = (0..64)
        .map(|i| idx.ranked_access(i * (answers / 64)).expect("in range"))
        .collect();
    let inverted_ns = median_ns(5, || {
        for p in &probes {
            std::hint::black_box(idx.ranked_inverted_access(p).expect("an answer"));
        }
    }) / probes.len() as f64;
    let (wlo, whi) = (
        idx.min_weight().expect("non-empty"),
        idx.max_weight().expect("non-empty"),
    );
    let band_ns = median_ns(5, || {
        for i in 0..ops {
            let a = wlo + (i * 37) % (whi - wlo + 1);
            std::hint::black_box(idx.weight_range_count(wlo..a));
        }
    }) / ops as f64;

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"rae-bench-weighted-v1\",");
    let _ = writeln!(
        out,
        "  \"config\": {{ \"sf\": {}, \"seed\": {}, \"query\": \"Q3\", \
         \"order\": \"ck, ok, pk, sk, ln\", \"weighted_vars\": \"ck\" }},",
        cfg.sf, cfg.seed
    );
    let _ = writeln!(
        out,
        "  \"instance\": {{ \"base_rows\": {}, \"answers\": {}, \
         \"customers\": {}, \"weight_blocks\": {} }},",
        rows,
        answers,
        customers,
        idx.block_count()
    );
    let _ = writeln!(
        out,
        "  \"build\": {{ \"ordered_build_ns\": {:.0}, \"weighted_build_ns\": {:.0}, \
         \"weighted_overhead\": {:.3}, \"naive_sort_ns\": {:.0} }},",
        ordered_build_ns,
        build_ns,
        build_ns / ordered_build_ns,
        naive_sort_ns
    );
    let _ = writeln!(
        out,
        "  \"per_op_ns\": {{ \"ranked_access\": {:.0}, \"ranked_inverted_access\": {:.0}, \
         \"weight_range_count\": {:.0} }}",
        access_ns, inverted_ns, band_ns
    );
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchConfig;

    #[test]
    fn weighted_report_renders_and_verifies() {
        let json = weighted_json(&BenchConfig::smoke());
        assert!(json.contains("\"schema\": \"rae-bench-weighted-v1\""));
        assert!(json.contains("weighted_overhead"));
        assert!(json.contains("ranked_inverted_access"));
    }
}
