//! The zero-cost-when-disabled proof (`BENCH_4.json`).
//!
//! The failpoint macros compile to nothing unless the workspace is built
//! with `--features failpoints`, and every budget probe on a hot path is
//! amortized (one check per [`rae_core::budgeted::CHECK_INTERVAL`] items or
//! coarser). `repro robustness` makes both claims measurable:
//!
//! * **Zero cost when disabled** — this binary is compiled *without* the
//!   `failpoints` feature, so the instrumented access and build paths are
//!   re-measured here and compared against the figures recorded *before*
//!   the instrumentation existed (`BENCH_1.json` access, `BENCH_3.json`
//!   build). The ratios must sit within run-to-run noise.
//! * **Budget checks are cheap** — the same drain is timed bare and wrapped
//!   in [`rae_core::Budgeted`] with an unlimited budget; the overhead is
//!   reported as a percentage and expected to stay under 2%.
//!
//! ```json
//! {
//!   "schema": "rae-bench-robustness-v1",
//!   "config": { "sf": ..., "seed": ..., "query": "q3", "answers": ...,
//!                "failpoints_compiled": false },
//!   "zero_cost": { "access_scratch_ns": ..., "bench1_access_scratch_ns": ...,
//!                   "access_ratio": ..., "build_ns": ..., "bench3_build_ns": ...,
//!                   "build_ratio": ... },
//!   "budget_overhead": { "drain_bare_ns_per_answer": ...,
//!                         "drain_budgeted_ns_per_answer": ...,
//!                         "overhead_pct": ..., "within_2pct": true }
//! }
//! ```
//!
//! Recorded reference figures are read back from `BENCH_1.json` /
//! `BENCH_3.json` in the working directory; when absent the ratios are
//! `null` and only the in-process measurements are emitted.

use crate::preprocessing::shuffled;
use crate::setup::BenchConfig;
use rae_core::{AccessScratch, Budgeted, BuildOptions, CqIndex, Weight};
use rae_data::Relation;
use rae_faults::Budget;
use rae_tpch::queries;
use rae_yannakakis::{reduce_to_full_acyclic, FullAcyclicJoin};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Median per-op nanoseconds of `op`, over `samples` timed batches.
fn median_ns(mut op: impl FnMut(), batch: u32, samples: u32) -> f64 {
    for _ in 0..batch {
        op(); // warm-up
    }
    let mut per_op: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                op();
            }
            start.elapsed().as_nanos() as f64 / f64::from(batch)
        })
        .collect();
    per_op.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    per_op[per_op.len() / 2]
}

fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.2}")
    } else {
        "null".to_string()
    }
}

fn json_opt(value: Option<f64>) -> String {
    value.map_or_else(|| "null".to_string(), json_f64)
}

/// Pulls the first `"key": <number>` after `anchor` out of a recorded
/// report, tolerating absence of the file, the anchor, or the key.
fn recorded(path: &str, anchor: &str, key: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let from = text.find(anchor)? + anchor.len();
    let tail = &text[from..];
    let at = tail.find(&format!("\"{key}\":"))? + key.len() + 3;
    let num: String = tail[at..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Builds the report described in the module docs and returns it as a JSON
/// string (the `repro` binary writes it to `BENCH_4.json`).
pub fn robustness_json(cfg: &BenchConfig) -> String {
    let db = cfg.build_db();
    let q3 = queries::q3();

    let idx = CqIndex::build(&q3, &db).expect("q3 builds");
    let n = idx.count();
    assert!(n > 0, "bench query has answers");

    // --- random access (instrumented path, failpoints compiled out) ------
    let samples = 30u32;
    let batch = 2000u32;
    let mut scratch = AccessScratch::new();
    let mut rng = StdRng::seed_from_u64(7);
    let access_ns = {
        let scratch = &mut scratch;
        median_ns(
            || {
                let j = rng.gen_range(0..n);
                std::hint::black_box(idx.access_into(j, scratch).is_some());
            },
            batch,
            samples,
        )
    };

    // --- budget probe overhead on a full drain ----------------------------
    // Paired samples (bare drain, then budgeted drain, back to back) so
    // machine drift cancels; the reported overhead is the median pairwise
    // ratio, which is far more stable than comparing two medians.
    let budget = Budget::unlimited();
    let drain_bare = || {
        let mut produced: Weight = 0;
        let start = Instant::now();
        for row in idx.enumerate() {
            std::hint::black_box(&row);
            produced += 1;
        }
        let ns = start.elapsed().as_nanos() as f64;
        assert_eq!(produced, n);
        ns
    };
    let drain_budgeted = || {
        let mut produced: Weight = 0;
        let start = Instant::now();
        for row in Budgeted::new(idx.enumerate(), &budget, "bench/drain") {
            std::hint::black_box(&row.expect("unlimited budget never breaches"));
            produced += 1;
        }
        let ns = start.elapsed().as_nanos() as f64;
        assert_eq!(produced, n);
        ns
    };
    drain_bare();
    drain_budgeted(); // warm-up both paths
    let pairs = 25u32;
    let mut bares = Vec::new();
    let mut budgeteds = Vec::new();
    let mut ratios: Vec<f64> = (0..pairs)
        .map(|_| {
            let b = drain_bare();
            let w = drain_budgeted();
            bares.push(b);
            budgeteds.push(w);
            w / b
        })
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let med = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    };
    let bare_ns = med(&mut bares) / n as f64;
    let budgeted_ns = med(&mut budgeteds) / n as f64;
    let overhead_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;

    // --- build time, measured exactly like BENCH_3's serial_ns: the
    // from_parts pipeline over shuffled, pre-reduced inputs ---------------
    let fj: FullAcyclicJoin = reduce_to_full_acyclic(&q3, &db).expect("q3 reduces");
    let shuffled_rels: Vec<Relation> = fj.relations.iter().map(shuffled).collect();
    let build_runs = 9;
    let mut build_times: Vec<f64> = (0..build_runs)
        .map(|_| {
            let rels = shuffled_rels.clone();
            let start = Instant::now();
            let idx = CqIndex::from_parts_with(
                fj.plan.clone(),
                rels,
                fj.head.clone(),
                BuildOptions::serial(),
            )
            .expect("q3 index builds");
            let ns = start.elapsed().as_nanos() as f64;
            std::hint::black_box(&idx);
            ns
        })
        .collect();
    build_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let build_ns = build_times[build_times.len() / 2];

    // --- recorded references ----------------------------------------------
    let bench1_access = recorded("BENCH_1.json", "\"access\"", "scratch_ns");
    let bench3_build = recorded("BENCH_3.json", &format!("\"sf\": {}", cfg.sf), "serial_ns");
    let access_ratio = bench1_access.map(|r| access_ns / r);
    let build_ratio = bench3_build.map(|r| build_ns / r);

    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"rae-bench-robustness-v1\",\n");
    let _ = writeln!(
        out,
        "  \"config\": {{ \"sf\": {}, \"seed\": {}, \"query\": \"q3\", \"answers\": {n}, \"failpoints_compiled\": {} }},",
        cfg.sf,
        cfg.seed,
        cfg!(feature = "failpoints"),
    );
    let _ = writeln!(
        out,
        "  \"zero_cost\": {{\n    \"access_scratch_ns\": {},\n    \"bench1_access_scratch_ns\": {},\n    \"access_ratio\": {},\n    \"build_ns\": {},\n    \"bench3_build_ns\": {},\n    \"build_ratio\": {}\n  }},",
        json_f64(access_ns),
        json_opt(bench1_access),
        json_opt(access_ratio),
        json_f64(build_ns),
        json_opt(bench3_build),
        json_opt(build_ratio),
    );
    let _ = writeln!(
        out,
        "  \"budget_overhead\": {{\n    \"drain_bare_ns_per_answer\": {},\n    \"drain_budgeted_ns_per_answer\": {},\n    \"overhead_pct\": {},\n    \"within_2pct\": {}\n  }}",
        json_f64(bare_ns),
        json_f64(budgeted_ns),
        json_f64(overhead_pct),
        overhead_pct < 2.0,
    );
    out.push('}');
    out
}
