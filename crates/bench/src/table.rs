//! Minimal fixed-width text tables for the harness reports.

use std::fmt;

/// A text table with a title, a header row, optional note lines, and
/// auto-sized columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
    }

    /// Appends a free-form note rendered under the table.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }

        writeln!(f, "## {}", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for c in 0..cols {
                write!(f, " {:width$} |", cells[c], width = widths[c])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        write!(f, "|")?;
        for width in &widths {
            write!(f, "{:-<w$}|", "", w = width + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["query", "time"]);
        t.row(vec!["Q0".into(), "1.5".into()]);
        t.row(vec!["Q10".into(), "12.25".into()]);
        t.note("all times in seconds");
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| Q10   | 12.25 |"));
        assert!(s.contains("note: all times"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
