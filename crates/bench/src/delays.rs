//! Per-answer delay recording for the Figures 2/3/7 experiments.

use rae_core::CqIndex;
use rae_sampler::{EwSampler, WithoutReplacement};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Records the delay (ns) before each of the first `k` answers of a fresh
/// `REnum(CQ)` run (Fisher–Yates over random access).
pub fn renum_cq_delays(index: &CqIndex, k: usize, seed: u64) -> Vec<u64> {
    let mut shuffle = index.random_permutation(StdRng::seed_from_u64(seed));
    let mut delays = Vec::with_capacity(k);
    for _ in 0..k {
        let t = Instant::now();
        let item = shuffle.next();
        let dt = t.elapsed().as_nanos() as u64;
        if item.is_none() {
            break;
        }
        delays.push(dt);
    }
    delays
}

/// Records the delay (ns) before each of the first `k` *distinct* answers of
/// a `Sample(EW)` run (with-replacement sampling + duplicate elimination) —
/// duplicates make late delays grow, which is the effect the paper's delay
/// plots visualize.
pub fn sample_ew_delays(index: &CqIndex, k: usize, seed: u64) -> Vec<u64> {
    let sampler = EwSampler::new(index);
    let mut wr = WithoutReplacement::new(sampler);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut delays = Vec::with_capacity(k);
    for _ in 0..k {
        let t = Instant::now();
        let item = wr.next_distinct(&mut rng);
        let dt = t.elapsed().as_nanos() as u64;
        if item.is_none() {
            break;
        }
        delays.push(dt);
    }
    delays
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::BenchConfig;
    use rae_tpch::queries;

    #[test]
    fn delay_vectors_have_requested_length() {
        let db = BenchConfig::smoke().build_db();
        let idx = CqIndex::build(&queries::q0(), &db).unwrap();
        let n = idx.count() as usize;
        let k = (n / 2).max(1);
        assert_eq!(renum_cq_delays(&idx, k, 1).len(), k);
        assert_eq!(sample_ew_delays(&idx, k, 1).len(), k);
        // Requesting more than available stops at n.
        assert_eq!(renum_cq_delays(&idx, n + 10, 1).len(), n);
    }
}
