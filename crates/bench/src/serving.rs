//! The concurrent serving benchmark (`BENCH_5.json`).
//!
//! `repro serving` measures the `rae-serve` snapshot-swap lifecycle over
//! the churn workload, in three sections:
//!
//! * **Throughput scaling** — reader threads drain seeded ordered-access
//!   probes against a fixed published snapshot, once with 1 reader and
//!   once with N (≥ 4 where the hardware allows); the published structure
//!   is lock-free on the read path, so the scale factor should track the
//!   core count, not collapse onto a lock.
//! * **Latency under churn** — the same N readers keep probing (and
//!   asserting the access↔inverted-access bijection per probe) while the
//!   single writer commits batched inserts/deletes and periodically folds
//!   the delta into a fresh base. Per-probe latencies are recorded and
//!   summarized as [`BoxStats`] plus p50/p99.
//! * **Seeded chaos variant** — the same churn loop with the workspace
//!   fault schedule armed (only when this binary is compiled with
//!   `--features failpoints`; the plain binary records the section with
//!   `faults_fired: 0`). Every writer failure must be structured and
//!   transient, readers must never observe a torn snapshot, and the
//!   post-run folded snapshot must digest identically to a fault-free
//!   fold-and-rebuild oracle over the same logical rows.
//!
//! ```json
//! {
//!   "schema": "rae-bench-serving-v1",
//!   "config": { "seed": ..., "orders": ..., "readers": ...,
//!               "failpoints_compiled": ... },
//!   "throughput": { "single_reader_ops_per_sec": ...,
//!                   "multi_reader_ops_per_sec": ..., "scale": ... },
//!   "latency_under_churn": { "commits": ..., "folds": ..., "samples": ...,
//!       "p50_ns": ..., "p99_ns": ..., "mean_ns": ..., "sd_ns": ...,
//!       "q1_ns": ..., "q3_ns": ..., "whisker_hi_ns": ... },
//!   "chaos": { "seed": ..., "commits": ..., "retries": ...,
//!              "faults_fired": ..., "reader_checks": ...,
//!              "digest_matches_oracle": true }
//! }
//! ```
//!
//! # Panics
//! Panics if a serving invariant breaks mid-run (torn snapshot, permanent
//! error under injection, digest divergence): the benchmark doubles as an
//! end-to-end check, and a silently wrong report would be worse than a
//! crash.

use crate::stats::BoxStats;
use rae_core::{OrderedCqIndex, Weight};
use rae_data::{Database, Relation, Schema, Symbol, Value};
use rae_serve::{enumeration_digest, AdmissionPolicy, Batch, ServeWriter, ServingIndex};
use rae_tpch::churn::{ingest_cycle, ChurnConfig, CHURN_QUERY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Mirror of the served logical rows, advanced in lockstep with the
/// committed batches (commits are idempotent set mutations, so a retried
/// commit still converges onto the mirror).
struct Mirror {
    orders: Vec<Vec<Value>>,
    lines: Vec<Vec<Value>>,
    fresh: i64,
}

impl Mirror {
    fn next_batch(&mut self, rng: &mut StdRng, tag: &str) -> Batch {
        let mut batch = Batch::new();
        for _ in 0..2 {
            if self.orders.len() > 8 {
                let i = rng.gen_range(0..self.orders.len());
                batch.delete("churn_orders", self.orders.swap_remove(i));
            }
            if self.lines.len() > 8 {
                let i = rng.gen_range(0..self.lines.len());
                batch.delete("churn_lineitem", self.lines.swap_remove(i));
            }
        }
        for _ in 0..3 {
            self.fresh += 1;
            let f = self.fresh;
            let o = Value::Int(8_000_000_000 + f);
            let orow = vec![o.clone(), Value::str(format!("{tag}-{f}"))];
            batch.insert("churn_orders", orow.clone());
            self.orders.push(orow);
            let lrow = vec![o, Value::Int(f)];
            batch.insert("churn_lineitem", lrow.clone());
            self.lines.push(lrow);
        }
        batch
    }

    /// Fault-free fold-and-rebuild oracle digest over the mirrored rows.
    fn oracle_digest(&self, query: &rae_query::ConjunctiveQuery, order: &[Symbol]) -> u64 {
        let mut db = Database::new();
        db.add_relation(
            "churn_orders",
            Relation::from_rows(
                Schema::new(["co_orderkey", "co_custtag"]).expect("schema"),
                self.orders.iter().cloned(),
            )
            .expect("orders relation"),
        )
        .expect("orders slot");
        db.add_relation(
            "churn_lineitem",
            Relation::from_rows(
                Schema::new(["cl_orderkey", "cl_partkey"]).expect("schema"),
                self.lines.iter().cloned(),
            )
            .expect("lineitem relation"),
        )
        .expect("lineitem slot");
        let idx = OrderedCqIndex::build(query, &db, order).expect("oracle builds");
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut e = idx.enumerate();
        while let Some(row) = e.next_ref() {
            rows.push(row.to_vec());
        }
        enumeration_digest(rows.iter().map(Vec::as_slice))
    }
}

/// One reader thread probing random live ranks until `stop`; returns
/// per-probe latencies (ns) when `record` is set, and the probe count.
/// Every probe asserts the access↔inverted-access bijection, so a torn
/// snapshot panics the thread (and thus the run).
fn reader_loop(
    idx: &ServingIndex,
    stop: &AtomicBool,
    seed: u64,
    record: bool,
) -> (Vec<u64>, usize) {
    let mut reader = idx.reader();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples: Vec<u64> = Vec::new();
    let mut probes = 0usize;
    while !stop.load(Ordering::Relaxed) {
        let snap = reader.refresh();
        let n = snap.count();
        if n == 0 {
            std::thread::yield_now();
            continue;
        }
        let k: Weight = rng.gen_range(0..n);
        let start = Instant::now();
        let row = snap.ordered_access(k).expect("rank below count resolves");
        let back = snap.ordered_inverted_access(&row);
        let elapsed = start.elapsed().as_nanos() as u64;
        assert_eq!(back, Some(k), "torn snapshot: rank {k} does not round-trip");
        if record {
            samples.push(elapsed);
        }
        probes += 1;
    }
    (samples, probes)
}

/// Spawns `readers` probe threads for `window`, returning total probes and
/// all recorded samples.
fn run_readers(
    idx: &ServingIndex,
    readers: usize,
    window: Duration,
    seed: u64,
    record: bool,
    mut writer_tick: impl FnMut(),
) -> (Vec<u64>, usize) {
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..readers)
        .map(|r| {
            let idx = idx.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("rae-serve-bench-{r}"))
                .spawn(move || reader_loop(&idx, &stop, seed ^ (r as u64 + 1), record))
                .expect("spawn reader")
        })
        .collect();
    let deadline = Instant::now() + window;
    while Instant::now() < deadline {
        writer_tick();
    }
    stop.store(true, Ordering::Relaxed);
    let mut samples = Vec::new();
    let mut probes = 0usize;
    for h in handles {
        let (s, p) = h.join().expect("reader thread panicked — torn snapshot");
        samples.extend(s);
        probes += p;
    }
    (samples, probes)
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
}

/// Runs the serving benchmark and renders `BENCH_5.json`'s contents. The
/// churn scale is fixed (the serving overlay is the object under test, not
/// the generator), so only the seed of [`crate::BenchConfig`] is used.
pub fn serving_json(cfg: &crate::BenchConfig) -> String {
    let seed = cfg.seed;
    let churn_cfg = ChurnConfig {
        cycles: 1,
        orders_per_cycle: 512,
        seed,
        threads: 2,
    };
    let query: rae_query::ConjunctiveQuery = CHURN_QUERY.parse().expect("churn query parses");
    let order: Vec<Symbol> = ["o", "t", "p"].into_iter().map(Symbol::new).collect();

    let mut db = Database::new();
    ingest_cycle(&mut db, 0, &churn_cfg).expect("ingest");
    let (mut w, idx) =
        ServeWriter::new(query.clone(), &db, &order, AdmissionPolicy::default()).expect("writer");
    assert!(w.is_delta_overlay(), "churn query takes the overlay path");
    // The serving row state is set-semantic (a second copy of a row is a
    // no-op), so the mirror must dedup the generated rows — the churn
    // generator can emit duplicate lineitems.
    let dedup = |mut rows: Vec<Vec<Value>>| {
        rows.sort_unstable();
        rows.dedup();
        rows
    };
    let mut mirror = Mirror {
        orders: dedup(
            db.relation("churn_orders")
                .expect("orders")
                .rows()
                .map(<[Value]>::to_vec)
                .collect(),
        ),
        lines: dedup(
            db.relation("churn_lineitem")
                .expect("lineitem")
                .rows()
                .map(<[Value]>::to_vec)
                .collect(),
        ),
        fresh: 0,
    };

    let readers = std::thread::available_parallelism().map_or(4, |n| n.get().clamp(4, 8));
    let window = Duration::from_millis(250);

    // --- throughput scaling (static snapshot, no writer) -------------------
    let (_, single) = run_readers(&idx, 1, window, seed ^ 0x51, false, || {
        std::thread::sleep(Duration::from_millis(5));
    });
    let (_, multi) = run_readers(&idx, readers, window, seed ^ 0x52, false, || {
        std::thread::sleep(Duration::from_millis(5));
    });
    let secs = window.as_secs_f64();
    let single_ops = single as f64 / secs;
    let multi_ops = multi as f64 / secs;
    let scale = if single > 0 {
        multi as f64 / single as f64
    } else {
        0.0
    };

    // --- latency under churn ----------------------------------------------
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1A7E);
    let mut commits = 0usize;
    let mut folds = 0usize;
    let (mut samples, _) = run_readers(&idx, readers, window, seed ^ 0x53, true, || {
        let batch = mirror.next_batch(&mut rng, "churn");
        w.commit(&batch).expect("fault-free commit");
        commits += 1;
        if commits.is_multiple_of(8) {
            w.fold_now().expect("fault-free fold");
            folds += 1;
        }
    });
    samples.sort_unstable();
    let stats = BoxStats::from_samples(&samples);
    let p50 = percentile(&samples, 0.50);
    let p99 = percentile(&samples, 0.99);

    // --- seeded chaos variant ----------------------------------------------
    let (chaos_commits, chaos_retries, faults_fired, reader_checks) =
        chaos_churn(&mut w, &idx, &mut mirror, seed);

    // Post-run: fold everything and compare against the fault-free oracle.
    w.fold_now().expect("final fold");
    let folded = idx.snapshot();
    let oracle = mirror.oracle_digest(&query, w.order());
    assert_eq!(
        folded.digest(),
        oracle,
        "post-run folded snapshot must digest-match the fold-and-rebuild oracle"
    );
    assert_eq!(folded.tombstone_count(), 0, "fold drains tombstones");
    assert_eq!(folded.delta_count(), 0, "fold drains the delta");

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"rae-bench-serving-v1\",");
    let _ = writeln!(
        out,
        "  \"config\": {{ \"seed\": {seed}, \"orders\": {}, \"readers\": {readers}, \
         \"window_ms\": {}, \"failpoints_compiled\": {} }},",
        churn_cfg.orders_per_cycle,
        window.as_millis(),
        cfg!(feature = "failpoints")
    );
    let _ = writeln!(
        out,
        "  \"throughput\": {{ \"single_reader_ops_per_sec\": {single_ops:.0}, \
         \"multi_reader_ops_per_sec\": {multi_ops:.0}, \"scale\": {scale:.2} }},"
    );
    let _ = writeln!(
        out,
        "  \"latency_under_churn\": {{ \"commits\": {commits}, \"folds\": {folds}, \
         \"samples\": {}, \"p50_ns\": {p50:.0}, \"p99_ns\": {p99:.0}, \
         \"mean_ns\": {:.0}, \"sd_ns\": {:.0}, \"q1_ns\": {:.0}, \"q3_ns\": {:.0}, \
         \"whisker_hi_ns\": {:.0} }},",
        stats.count, stats.mean, stats.sd, stats.q1, stats.q3, stats.whisker_hi
    );
    let _ = writeln!(
        out,
        "  \"chaos\": {{ \"seed\": {seed}, \"commits\": {chaos_commits}, \
         \"retries\": {chaos_retries}, \"faults_fired\": {faults_fired}, \
         \"reader_checks\": {reader_checks}, \"digest_matches_oracle\": true }}"
    );
    let _ = writeln!(out, "}}");
    out
}

/// The chaos churn loop: commits and folds retried through transient
/// failures while readers assert snapshot integrity. With failpoints
/// compiled out this is simply a second fault-free churn round (the
/// schedule install is gated), so the section is always recorded.
fn chaos_churn(
    w: &mut ServeWriter,
    idx: &ServingIndex,
    mirror: &mut Mirror,
    seed: u64,
) -> (usize, usize, usize, usize) {
    // Per-hit probability sized for this workload: a fold over the
    // ~1.5k-row cohort makes thousands of failpoint hits (interning +
    // build nodes), so the per-attempt fault expectation must stay well
    // below 1 for the retry loops to converge.
    #[cfg(feature = "failpoints")]
    let _guard = rae_faults::install(rae_faults::FaultSchedule::chaos(seed, 0.0002));
    #[cfg(feature = "failpoints")]
    let _quiet = {
        // Panic-kind faults are expected; keep the run's output readable.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        scopeguard(prev)
    };

    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0);
    let mut retries = 0usize;
    let commits = 16usize;
    for round in 0..commits {
        let batch = mirror.next_batch(&mut rng, "chaos");
        retry_transient(&mut retries, || w.commit(&batch));
        if round % 5 == 4 {
            retry_transient(&mut retries, || w.fold_now());
        }
    }

    // A bounded reader sweep over the chaotically-published snapshot.
    let mut reader = idx.reader();
    let snap = reader.refresh();
    let n = snap.count();
    let mut checks = 0usize;
    let mut k: Weight = 0;
    while k < n {
        let row = snap.ordered_access(k).expect("rank below count resolves");
        assert_eq!(
            snap.ordered_inverted_access(&row),
            Some(k),
            "torn snapshot after chaos at rank {k}"
        );
        checks += 1;
        k += (n / 64).max(1);
    }

    #[cfg(feature = "failpoints")]
    let fired = rae_faults::fired().len();
    #[cfg(not(feature = "failpoints"))]
    let fired = 0usize;
    (commits, retries, fired, checks)
}

/// Retries `op` until it succeeds, panicking on any permanent error —
/// under injection every structured failure must be transient. Unwinding
/// attempts (Panic-kind faults at entry failpoints) also count as retries.
fn retry_transient<T>(retries: &mut usize, mut op: impl FnMut() -> rae_serve::Result<T>) -> T {
    use rae_faults::Transient;
    for _ in 0..256 {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut op)) {
            Ok(Ok(v)) => return v,
            Ok(Err(e)) => {
                assert!(
                    e.is_transient(),
                    "permanent serving error under injected faults: {e}"
                );
                *retries += 1;
            }
            Err(_) => *retries += 1,
        }
    }
    panic!("serving operation did not converge within 256 chaotic attempts");
}

/// Restores the previous panic hook on drop.
#[cfg(feature = "failpoints")]
#[allow(deprecated)] // PanicInfo is the only hook type namable on older toolchains
struct HookGuard(
    #[allow(clippy::type_complexity)] // std::panic::take_hook's exact return type
    Option<Box<dyn Fn(&std::panic::PanicInfo<'_>) + Sync + Send>>,
);

#[cfg(feature = "failpoints")]
#[allow(deprecated)]
fn scopeguard(prev: Box<dyn Fn(&std::panic::PanicInfo<'_>) + Sync + Send>) -> HookGuard {
    HookGuard(Some(prev))
}

#[cfg(feature = "failpoints")]
impl Drop for HookGuard {
    fn drop(&mut self) {
        // `set_hook` from a panicking thread is itself a (non-unwinding)
        // panic; if the run is already failing, keep the quiet hook and
        // let the original panic surface.
        if std::thread::panicking() {
            return;
        }
        if let Some(prev) = self.0.take() {
            std::panic::set_hook(prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentile_interpolates() {
        let s = [10u64, 20, 30, 40];
        assert_eq!(percentile(&s, 0.0), 10.0);
        assert_eq!(percentile(&s, 1.0), 40.0);
        assert_eq!(percentile(&s, 0.5), 25.0);
        assert!(percentile(&[], 0.5).abs() < f64::EPSILON);
    }
}
