//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--sf <scale>] [--seed <seed>] <command> [<command> ...]
//!
//! commands:
//!   fig1 fig2 fig3 fig4a fig4b fig5 fig6 fig7 fig8
//!   rs-note ablation-delete ablation-binary
//!   all          every figure + ablations (at the configured scale)
//! ```
//!
//! The default scale factor is 0.01 (≈130k tuples, seconds per figure);
//! the paper used sf 5 on a large server. Shapes, not absolute numbers, are
//! the reproduction target — see EXPERIMENTS.md.

use rae_bench::alloc_counter::CountingAllocator;
use rae_bench::figures::{ablation, fig1, fig23, fig4, fig5, rs_note};
use rae_bench::BenchConfig;
use std::io::Write;

/// Counting allocator so `bench-json` can report exact per-answer
/// allocation counts (one relaxed atomic increment per alloc; negligible).
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn main() {
    let mut cfg = BenchConfig::default();
    let mut commands: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sf" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing value for --sf"));
                cfg.sf = v.parse().unwrap_or_else(|_| usage("invalid --sf value"));
            }
            "--seed" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing value for --seed"));
                cfg.seed = v.parse().unwrap_or_else(|_| usage("invalid --seed value"));
            }
            "--help" | "-h" => usage(""),
            cmd => commands.push(cmd.to_string()),
        }
    }
    if commands.is_empty() {
        usage("no command given");
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for command in &commands {
        let report = run_command(command, &cfg);
        writeln!(out, "{report}").expect("stdout");
    }
}

fn run_command(command: &str, cfg: &BenchConfig) -> String {
    match command {
        "fig1" => fig1::fig1(cfg),
        "fig2" => fig23::fig2(cfg),
        "fig3" => fig23::fig3(cfg),
        "fig4a" => fig4::fig4a(cfg),
        "fig4b" => fig4::fig4b(cfg),
        "fig5" => fig5::fig5(cfg),
        "fig6" => fig1::fig6(cfg),
        "fig7" => fig23::fig7(cfg),
        "fig8" => fig1::fig8(cfg),
        "rs-note" => rs_note::rs_note(cfg),
        "bench-json" => {
            let json = rae_bench::perf_report::bench_json(cfg);
            std::fs::write("BENCH_1.json", &json).expect("write BENCH_1.json");
            eprintln!("[repro] wrote BENCH_1.json");
            json
        }
        "preprocessing" => {
            // Measures the sort-based build pipeline (radix vs comparison,
            // serial vs parallel) and asserts serial/parallel determinism —
            // a digest divergence panics, failing the CI smoke step.
            let json = rae_bench::preprocessing::preprocessing_json(cfg);
            std::fs::write("BENCH_3.json", &json).expect("write BENCH_3.json");
            eprintln!("[repro] wrote BENCH_3.json");
            json
        }
        "churn" => {
            // Runs last-in-process safely: each command builds its own
            // database, so the generation sweeps cannot stale-out other
            // commands' relations retroactively — but keep it isolated from
            // `all` regardless.
            let churn_cfg = rae_tpch::ChurnConfig {
                seed: cfg.seed,
                ..Default::default()
            };
            let json = rae_bench::churn::churn_json(&churn_cfg);
            std::fs::write("BENCH_2.json", &json).expect("write BENCH_2.json");
            eprintln!("[repro] wrote BENCH_2.json");
            json
        }
        "robustness" => {
            // The zero-cost-when-disabled proof: re-measures the
            // instrumented access/build paths (failpoints compiled out in
            // this binary) against the recorded BENCH_1/BENCH_3 figures and
            // times the amortized budget probes.
            let json = rae_bench::robustness::robustness_json(cfg);
            std::fs::write("BENCH_4.json", &json).expect("write BENCH_4.json");
            eprintln!("[repro] wrote BENCH_4.json");
            json
        }
        "serving" => {
            // Multi-threaded serving over the churn workload: throughput
            // scaling, tail latency under churn, and the seeded chaos
            // variant (armed only when this binary carries `failpoints`).
            // Invariant breaks (torn snapshot, digest divergence) panic.
            let json = rae_bench::serving::serving_json(cfg);
            std::fs::write("BENCH_5.json", &json).expect("write BENCH_5.json");
            eprintln!("[repro] wrote BENCH_5.json");
            json
        }
        "persistence" => {
            // Cold-start load vs full rebuild of Q3's ordered index at two
            // scales, plus snapshot size and the checksum-validation share
            // of the load. A loaded digest diverging from the in-memory
            // build panics, failing the CI step.
            let json = rae_bench::persistence::persistence_json(cfg);
            std::fs::write("BENCH_6.json", &json).expect("write BENCH_6.json");
            eprintln!("[repro] wrote BENCH_6.json");
            json
        }
        "weighted" => {
            // Weighted ranked access (DESIGN.md §17): build overhead of the
            // block directory over the ordered index, per-op costs for the
            // weighted rank operations, and the materialize-then-sort
            // baseline they replace. A rank diverging from that baseline
            // panics, failing the CI step.
            let json = rae_bench::weighted::weighted_json(cfg);
            std::fs::write("BENCH_7.json", &json).expect("write BENCH_7.json");
            eprintln!("[repro] wrote BENCH_7.json");
            json
        }
        "ablation-delete" => ablation::ablation_delete(cfg),
        "ablation-fold" => ablation::ablation_fold(cfg),
        "ablation-binary" => ablation::ablation_binary(cfg),
        "all" => {
            let parts = [
                "fig1",
                "fig2",
                "fig3",
                "fig4a",
                "fig4b",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "rs-note",
                "ablation-delete",
                "ablation-binary",
                "ablation-fold",
            ];
            let mut out = String::new();
            for p in parts {
                eprintln!("[repro] running {p} ...");
                out.push_str(&run_command(p, cfg));
                out.push('\n');
            }
            out
        }
        other => usage(&format!("unknown command: {other}")),
    }
}

fn usage(message: &str) -> ! {
    if !message.is_empty() {
        eprintln!("error: {message}\n");
    }
    eprintln!(
        "usage: repro [--sf <scale>] [--seed <seed>] <command> [<command> ...]\n\
         commands: fig1 fig2 fig3 fig4a fig4b fig5 fig6 fig7 fig8\n\
         \u{20}         rs-note ablation-delete ablation-binary ablation-fold\n\
         \u{20}         bench-json (writes BENCH_1.json) churn (writes BENCH_2.json)\n\
         \u{20}         preprocessing (writes BENCH_3.json) robustness (writes BENCH_4.json)\n\
         \u{20}         serving (writes BENCH_5.json) persistence (writes BENCH_6.json)\n\
         \u{20}         weighted (writes BENCH_7.json) all"
    );
    std::process::exit(if message.is_empty() { 0 } else { 2 });
}
