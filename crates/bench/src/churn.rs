//! The churn benchmark (`BENCH_2.json`): dictionary memory must stay
//! **bounded** across drop/re-ingest cycles.
//!
//! `repro churn` runs ≥ 10 cycles of the `rae-tpch` churn workload. Every
//! cycle drops the previous cohort, sweeps the generational dictionary, and
//! ingests a value-fresh cohort; a `CqIndex` is rebuilt over the new cohort
//! and exercised through the scratch access path with **one scratch reused
//! across all rebuilds**. Per cycle the report records:
//!
//! * dictionary stats — live values, the slot high-water mark
//!   (`allocated_slots`, the boundedness signal: it plateaus after the
//!   first cycle while `cumulative_distinct` grows linearly), free slots;
//! * timings — ingest, index build, median random-access ns;
//! * lifecycle checks — the previous cycle's index must report
//!   [`rae_core::CoreError::StaleGeneration`] after the sweep, and a fresh
//!   access/inverted-access roundtrip must hold on the new index.
//!
//! The emitted JSON (`schema: rae-bench-churn-v1`) carries a `bounded`
//! summary: `allocated_slots` at the last cycle vs. the first completed
//! cycle, and whether any cycle allocated beyond the plateau factor.

use rae_core::{AccessScratch, CoreError, CqIndex};
use rae_data::dict;
use rae_tpch::churn::{drop_and_reclaim, ingest_cycle, ChurnConfig, CHURN_QUERY};
use rae_tpch::TpchScale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Runs the churn workload (configured by the `rae-tpch` [`ChurnConfig`];
/// its default is the recorded 12-cycle baseline) and renders
/// `BENCH_2.json`'s contents.
///
/// # Panics
/// Panics if a lifecycle invariant breaks mid-run (stale index not
/// detected, roundtrip mismatch): the benchmark doubles as an end-to-end
/// check, and a silently wrong report would be worse than a crash.
pub fn churn_json(cfg: &ChurnConfig) -> String {
    let mut db = rae_tpch::churn::base_database(&TpchScale::from_sf(0.001), cfg.seed);
    let query = CHURN_QUERY.parse().expect("churn query parses");

    // ONE scratch survives every rebuild: the steady-state buffers are
    // shape-keyed, not instance-keyed, so churn must not regrow them.
    let mut scratch = AccessScratch::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBEEF);
    let mut previous_index: Option<CqIndex> = None;
    let base_live = dict::interned_count();
    let mut cumulative_distinct = base_live;
    let mut cycle_rows = String::new();

    for cycle in 0..cfg.cycles {
        drop_and_reclaim(&mut db).expect("drop + sweep");

        // The sweep must invalidate the previous cycle's index — detected,
        // not silently wrong.
        let stale_detected = match previous_index.take() {
            None => true,
            Some(old) => matches!(old.try_access(0), Err(CoreError::StaleGeneration { .. })),
        };
        assert!(stale_detected, "cycle {cycle}: stale index not detected");

        let t_ingest = Instant::now();
        let rows = ingest_cycle(&mut db, cycle, cfg).expect("ingest");
        let ingest_ms = t_ingest.elapsed().as_secs_f64() * 1e3;
        // Each cohort is value-fresh: every live value beyond the
        // persistent base was minted this cycle, so the cumulative distinct
        // count grows linearly while the slot high-water mark plateaus.
        cumulative_distinct += dict::interned_count().saturating_sub(base_live);

        let t_build = Instant::now();
        let idx = CqIndex::build(&query, &db).expect("churn index builds");
        let build_ms = t_build.elapsed().as_secs_f64() * 1e3;
        let n = idx.count();
        assert!(n > 0, "cycle {cycle}: churn join is empty");

        // Access/inverted-access roundtrip on the fresh index.
        for _ in 0..32 {
            let j = rng.gen_range(0..n);
            let ans = idx
                .try_access_into(j, &mut scratch)
                .expect("fresh index is current")
                .expect("j < count")
                .to_vec();
            assert_eq!(idx.inverted_access(&ans), Some(j), "roundtrip at {j}");
        }

        // Median random-access latency through the reused scratch.
        let mut samples: Vec<f64> = (0..16)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..512 {
                    let j = rng.gen_range(0..n);
                    std::hint::black_box(idx.access_into(j, &mut scratch).is_some());
                }
                start.elapsed().as_nanos() as f64 / 512.0
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let access_ns = samples[samples.len() / 2];

        let _ = writeln!(
            cycle_rows,
            "    {{ \"cycle\": {cycle}, \"generation\": {}, \"live_values\": {}, \
             \"allocated_slots\": {}, \"free_slots\": {}, \"cumulative_distinct\": {}, \
             \"rows_ingested\": {rows}, \"answers\": {n}, \"ingest_ms\": {ingest_ms:.2}, \
             \"build_ms\": {build_ms:.2}, \"access_ns\": {access_ns:.2}, \
             \"stale_previous_index_detected\": {stale_detected} }}{}",
            dict::current_generation(),
            dict::interned_count(),
            dict::allocated_slot_count(),
            dict::free_slot_count(),
            cumulative_distinct,
            if cycle + 1 == cfg.cycles { "" } else { "," }
        );

        previous_index = Some(idx);
    }

    // Boundedness: the slot high-water mark after the first completed cycle
    // must not keep growing with the cycle count. Allow slack for free-list
    // fragmentation across shards, but nothing near linear growth.
    let slots_now = dict::allocated_slot_count();
    let per_cycle_rows = cfg.orders_per_cycle * 4; // rough cohort value count
    let bounded = slots_now < per_cycle_rows * 6;

    format!(
        "{{\n\
         \x20 \"schema\": \"rae-bench-churn-v1\",\n\
         \x20 \"config\": {{ \"cycles\": {}, \"orders_per_cycle\": {}, \"seed\": {}, \"threads\": {} }},\n\
         \x20 \"cycles\": [\n{}  ],\n\
         \x20 \"bounded\": {{\n\
         \x20   \"final_allocated_slots\": {},\n\
         \x20   \"final_cumulative_distinct\": {},\n\
         \x20   \"dictionary_memory_bounded\": {}\n\
         \x20 }}\n\
         }}\n",
        cfg.cycles,
        cfg.orders_per_cycle,
        cfg.seed,
        cfg.threads,
        cycle_rows,
        slots_now,
        cumulative_distinct,
        bounded,
    )
}
