//! Figure 5: where REnum(UCQ) spends its time — answers vs rejections —
//! across a full enumeration of Q7S ∪ Q7C. The paper shows rejection time
//! decaying over the run (shared answers are found — and deleted — early).

use crate::setup::BenchConfig;
use crate::stats::fmt_ns;
use crate::table::Table;
use rae_core::{UcqEvent, UcqShuffle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Runs the experiment and renders per-decile answer/rejection time.
pub fn fig5(cfg: &BenchConfig) -> String {
    let db = cfg.build_db();
    let ucq = rae_tpch::queries::q7s_q7c();

    let mut shuffle =
        UcqShuffle::build(&ucq, &db, StdRng::seed_from_u64(cfg.seed)).expect("builds");

    // First pass to learn the union size would consume the shuffle, so
    // collect (event, duration) pairs and bucket afterwards.
    let mut events: Vec<(bool, u64)> = Vec::new();
    loop {
        let t = Instant::now();
        let ev = shuffle.next_event();
        let dt = t.elapsed().as_nanos() as u64;
        match ev {
            Some(UcqEvent::Answer(_)) => events.push((true, dt)),
            Some(UcqEvent::Rejected) => events.push((false, dt)),
            None => break,
        }
    }
    let total_answers = events.iter().filter(|(is_answer, _)| *is_answer).count();

    let mut table = Table::new(
        "Figure 5: time on answers vs rejections per decile of a full Q7S ∪ Q7C run",
        &["progress", "answer time", "rejection time", "rejections"],
    );
    let deciles = 10usize;
    let per_decile = total_answers.div_ceil(deciles).max(1);
    let mut bucket_answer_ns = vec![0u64; deciles];
    let mut bucket_reject_ns = vec![0u64; deciles];
    let mut bucket_rejects = vec![0u64; deciles];
    let mut answers_seen = 0usize;
    for (is_answer, dt) in events {
        let bucket = (answers_seen / per_decile).min(deciles - 1);
        if is_answer {
            bucket_answer_ns[bucket] += dt;
            answers_seen += 1;
        } else {
            bucket_reject_ns[bucket] += dt;
            bucket_rejects[bucket] += 1;
        }
    }
    for d in 0..deciles {
        table.row(vec![
            format!("{}%", (d + 1) * 10),
            fmt_ns(bucket_answer_ns[d] as f64),
            fmt_ns(bucket_reject_ns[d] as f64),
            bucket_rejects[d].to_string(),
        ]);
    }
    table.note(format!(
        "{} answers, {} rejections in total",
        total_answers,
        shuffle.rejections()
    ));
    format!(
        "# Figure 5\n(sf = {}, seed = {})\n\n{table}",
        cfg.sf, cfg.seed
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fig5_runs() {
        let out = fig5(&BenchConfig::smoke());
        assert!(out.contains("rejections"));
        assert!(out.contains("100%"));
    }
}
