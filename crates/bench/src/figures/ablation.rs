//! Ablations of the design choices called out in DESIGN.md §7.

use crate::setup::BenchConfig;
use crate::stats::{fmt_dur, fmt_ns};
use crate::table::Table;
use rae_core::{CqIndex, McUcqIndex, RankStrategy, UcqShuffle};
use rae_query::RootPreference;
use rae_yannakakis::ReduceOptions;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Ablation: Algorithm 5 with vs without the delete-on-rejection rule
/// (lines 6–7). Deletion is what bounds each answer to one rejection and
/// makes the Figure 5 rejection time decay.
pub fn ablation_delete(cfg: &BenchConfig) -> String {
    let db = cfg.build_db();
    let mut table = Table::new(
        "Ablation: Algorithm 5 deletion-on-rejection",
        &["union", "variant", "answers", "rejections", "enumerate"],
    );
    for (name, ucq) in rae_tpch::queries::all_ucqs() {
        for (variant, delete) in [("with deletion", true), ("without deletion", false)] {
            let mut shuffle = UcqShuffle::build(&ucq, &db, StdRng::seed_from_u64(cfg.seed))
                .expect("builds")
                .with_rejection_deletion(delete);
            let t = Instant::now();
            let mut answers = 0u64;
            while let Some(ev) = shuffle.next_event() {
                if matches!(ev, rae_core::UcqEvent::Answer(_)) {
                    answers += 1;
                }
            }
            table.row(vec![
                name.to_string(),
                variant.into(),
                answers.to_string(),
                shuffle.rejections().to_string(),
                fmt_dur(t.elapsed()),
            ]);
        }
    }
    table.note("deletion bounds rejections by the number of shared answers (Lemma 5.2)");
    format!(
        "# Ablation: UCQ rejection deletion\n(sf = {}, seed = {})\n\n{table}",
        cfg.sf, cfg.seed
    )
}

/// Ablation: mc-UCQ rank computation by binary search (the Theorem 5.5 log²
/// routine) vs a linear scan of the intersection index.
pub fn ablation_binary(cfg: &BenchConfig) -> String {
    let db = cfg.build_db();
    let mut table = Table::new(
        "Ablation: mc-UCQ rank via binary search vs linear scan",
        &["union", "strategy", "accesses", "mean access time"],
    );
    let accesses = 512usize;
    for (name, ucq) in rae_tpch::queries::all_ucqs() {
        for (label, strategy) in [
            ("binary search (paper)", RankStrategy::BinarySearch),
            ("linear scan", RankStrategy::LinearScan),
        ] {
            let mut mc = McUcqIndex::build(&ucq, &db).expect("mc-compatible");
            mc.set_rank_strategy(strategy);
            let n = mc.count();
            if n == 0 {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let positions: Vec<u128> = (0..accesses).map(|_| rng.gen_range(0..n)).collect();
            let t = Instant::now();
            for &j in &positions {
                std::hint::black_box(mc.access(j));
            }
            let per_access = t.elapsed().as_nanos() as f64 / accesses as f64;
            table.row(vec![
                name.to_string(),
                label.into(),
                accesses.to_string(),
                fmt_ns(per_access),
            ]);
        }
    }
    table.note("the gap grows with |Q_i ∩ Q_j|; disjoint unions never call the rank routine");
    format!(
        "# Ablation: mc-UCQ rank strategy\n(sf = {}, seed = {})\n\n{table}",
        cfg.sf, cfg.seed
    )
}

/// Ablation: join-tree layout — our default fan-in layout with subset
/// folding vs the per-atom fan-out layout the samplers use. Quantifies why
/// the default layout is the right one for the enumeration structures.
pub fn ablation_fold(cfg: &BenchConfig) -> String {
    let db = cfg.build_db();
    let mut table = Table::new(
        "Ablation: join-tree layout (orientation × subset folding)",
        &["query", "layout", "nodes", "build", "mean access"],
    );
    let layouts: [(&str, ReduceOptions); 3] = [
        (
            "fan-in + folded (default)",
            ReduceOptions {
                root_preference: RootPreference::LargestAtom,
                fold_subset_nodes: true,
            },
        ),
        (
            "fan-in, unfolded",
            ReduceOptions {
                root_preference: RootPreference::LargestAtom,
                fold_subset_nodes: false,
            },
        ),
        (
            "fan-out, unfolded (sampler layout)",
            ReduceOptions {
                root_preference: RootPreference::SmallestAtom,
                fold_subset_nodes: false,
            },
        ),
    ];
    let accesses = 2048usize;
    for (name, cq) in rae_tpch::queries::all_cqs() {
        for (label, options) in layouts {
            let t = Instant::now();
            let idx = CqIndex::build_with(&cq, &db, options).expect("builds");
            let build = t.elapsed();
            let n = idx.count();
            if n == 0 {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let positions: Vec<u128> = (0..accesses).map(|_| rng.gen_range(0..n)).collect();
            let t = Instant::now();
            for &j in &positions {
                std::hint::black_box(idx.access(j));
            }
            let per_access = t.elapsed().as_nanos() as f64 / accesses as f64;
            table.row(vec![
                name.into(),
                label.into(),
                idx.node_count().to_string(),
                fmt_dur(build),
                fmt_ns(per_access),
            ]);
        }
    }
    table.note("all layouts produce identical answer sets; only constants differ");
    format!(
        "# Ablation: join-tree layout\n(sf = {}, seed = {})\n\n{table}",
        cfg.sf, cfg.seed
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_ablation_delete_runs() {
        let out = ablation_delete(&BenchConfig::smoke());
        assert!(out.contains("without deletion"));
    }

    #[test]
    fn smoke_ablation_binary_runs() {
        let out = ablation_binary(&BenchConfig::smoke());
        assert!(out.contains("binary search"));
    }

    #[test]
    fn smoke_ablation_fold_runs() {
        let out = ablation_fold(&BenchConfig::smoke());
        assert!(out.contains("fan-out"));
    }

    #[test]
    fn layouts_agree_on_counts_and_answers() {
        let db = BenchConfig::smoke().build_db();
        let cq = rae_tpch::queries::q3();
        let a = CqIndex::build(&cq, &db).unwrap();
        let b = CqIndex::build_with(
            &cq,
            &db,
            ReduceOptions {
                root_preference: RootPreference::SmallestAtom,
                fold_subset_nodes: false,
            },
        )
        .unwrap();
        assert_eq!(a.count(), b.count());
        // Same answer sets (different orders are fine).
        let mut xs: Vec<_> = a.enumerate().collect();
        let mut ys: Vec<_> = b.enumerate().collect();
        xs.sort();
        ys.sort();
        assert_eq!(xs, ys);
    }
}
