//! One module per paper artifact; each `run` returns the rendered tables.

pub mod ablation;
pub mod fig1;
pub mod fig23;
pub mod fig4;
pub mod fig5;
pub mod rs_note;
