//! Figures 2 and 3 (delay box plots) and the Figure 7 tables (delay mean /
//! SD / outlier percentages).

use crate::delays::{renum_cq_delays, sample_ew_delays};
use crate::setup::BenchConfig;
use crate::stats::{fmt_ns, BoxStats};
use crate::table::Table;
use rae_core::CqIndex;
use rae_query::{ConjunctiveQuery, RootPreference};
use rae_yannakakis::ReduceOptions;

/// The fan-out, per-atom layout the sampling baselines walk (see fig1).
fn sampler_index(cq: &ConjunctiveQuery, db: &rae_data::Database) -> CqIndex {
    CqIndex::build_with(
        cq,
        db,
        ReduceOptions {
            root_preference: RootPreference::SmallestAtom,
            fold_subset_nodes: false,
        },
    )
    .expect("benchmark query builds in fan-out layout")
}

/// Figure 2: the delay distribution over a full enumeration.
pub fn fig2(cfg: &BenchConfig) -> String {
    delay_report(
        cfg,
        1.0,
        "Figure 2: delay box-plot statistics over a FULL enumeration",
    )
}

/// Figure 3: the delay distribution when enumerating 50% of the answers.
pub fn fig3(cfg: &BenchConfig) -> String {
    delay_report(
        cfg,
        0.5,
        "Figure 3: delay box-plot statistics at 50% of the answers",
    )
}

/// Figure 7 (appendix): mean, standard deviation and outlier percentage at
/// 50% and 100% enumeration.
pub fn fig7(cfg: &BenchConfig) -> String {
    let db = cfg.build_db();
    let mut out = format!(
        "# Figure 7 (appendix): delay mean/SD/outliers\n(sf = {}, seed = {})\n\n",
        cfg.sf, cfg.seed
    );
    for (fraction, label) in [(0.5, "50% of answers"), (1.0, "full enumeration")] {
        let mut table = Table::new(
            format!("delays over {label}"),
            &["algorithm", "query", "mean", "SD", "outliers [%]"],
        );
        for (name, cq) in rae_tpch::queries::all_cqs() {
            let index = CqIndex::build(&cq, &db).expect("builds");
            let ew_index = sampler_index(&cq, &db);
            let k = ((index.count() as f64 * fraction) as usize).max(1);
            for (alg, delays) in [
                ("REnum(CQ)", renum_cq_delays(&index, k, cfg.seed)),
                ("Sample(EW)", sample_ew_delays(&ew_index, k, cfg.seed)),
            ] {
                let s = BoxStats::from_samples(&delays);
                table.row(vec![
                    alg.into(),
                    name.into(),
                    fmt_ns(s.mean),
                    fmt_ns(s.sd),
                    format!("{:.2}", s.outlier_pct),
                ]);
            }
        }
        out.push_str(&table.to_string());
        out.push('\n');
    }
    out
}

fn delay_report(cfg: &BenchConfig, fraction: f64, title: &str) -> String {
    let db = cfg.build_db();
    let mut table = Table::new(
        "per-answer delay statistics",
        &[
            "query",
            "algorithm",
            "whisker-",
            "Q1",
            "median",
            "Q3",
            "whisker+",
            "outliers [%]",
        ],
    );
    for (name, cq) in rae_tpch::queries::all_cqs() {
        let index = CqIndex::build(&cq, &db).expect("builds");
        let ew_index = sampler_index(&cq, &db);
        let k = ((index.count() as f64 * fraction) as usize).max(1);
        for (alg, delays) in [
            ("REnum(CQ)", renum_cq_delays(&index, k, cfg.seed)),
            ("Sample(EW)", sample_ew_delays(&ew_index, k, cfg.seed)),
        ] {
            let s = BoxStats::from_samples(&delays);
            table.row(vec![
                name.into(),
                alg.into(),
                fmt_ns(s.whisker_lo),
                fmt_ns(s.q1),
                fmt_ns(s.median),
                fmt_ns(s.q3),
                fmt_ns(s.whisker_hi),
                format!("{:.2}", s.outlier_pct),
            ]);
        }
    }
    format!(
        "# {title}\n(sf = {}, seed = {})\n\n{table}",
        cfg.sf, cfg.seed
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fig3_runs() {
        let out = fig3(&BenchConfig::smoke());
        assert!(out.contains("Q9"));
        assert!(out.contains("median"));
    }
}
