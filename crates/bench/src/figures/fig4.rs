//! Figure 4: UCQ enumeration — REnum(UCQ) and REnum(mcUCQ) versus the
//! cumulative cost of running REnum(CQ) on the member CQs separately.
//! (The latter is not a union algorithm — it produces duplicates and no
//! uniform union order — the paper uses it to measure the UCQ overhead.)

use crate::setup::{BenchConfig, PERCENT_LADDER_FULL};
use crate::stats::fmt_dur;
use crate::table::Table;
use rae_core::{CqIndex, McUcqIndex, UcqShuffle};
use rae_data::Database;
use rae_query::UnionQuery;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Figure 4a: total time of a full enumeration for the three benchmark UCQs.
pub fn fig4a(cfg: &BenchConfig) -> String {
    let db = cfg.build_db();
    let mut table = Table::new(
        "Figure 4a: full-enumeration total time per union",
        &["union", "algorithm", "preprocess", "enumerate", "total"],
    );
    for (name, ucq) in rae_tpch::queries::all_ucqs() {
        for (alg, (pre, enumerate)) in measure_all(cfg, &db, &ucq, 1.0) {
            table.row(vec![
                name.to_string(),
                alg.into(),
                fmt_dur(pre),
                fmt_dur(enumerate),
                fmt_dur(pre + enumerate),
            ]);
        }
    }
    table.note("REnum(CQ) rows are the cumulative member runs (not a union algorithm)");
    format!(
        "# Figure 4a\n(sf = {}, seed = {})\n\n{table}",
        cfg.sf, cfg.seed
    )
}

/// Figure 4b: the Q7S ∪ Q7C union at increasing answer percentages.
pub fn fig4b(cfg: &BenchConfig) -> String {
    let db = cfg.build_db();
    let ucq = rae_tpch::queries::q7s_q7c();
    let mut table = Table::new(
        "Figure 4b: Q7S ∪ Q7C total time at k% of the answers",
        &["k", "algorithm", "preprocess", "enumerate", "total"],
    );
    for &percent in PERCENT_LADDER_FULL.iter() {
        for (alg, (pre, enumerate)) in measure_all(cfg, &db, &ucq, f64::from(percent) / 100.0) {
            table.row(vec![
                format!("{percent}%"),
                alg.into(),
                fmt_dur(pre),
                fmt_dur(enumerate),
                fmt_dur(pre + enumerate),
            ]);
        }
    }
    format!(
        "# Figure 4b\n(sf = {}, seed = {})\n\n{table}",
        cfg.sf, cfg.seed
    )
}

/// Runs the three algorithms on `fraction` of the union's answers, returning
/// `(preprocessing, enumeration)` durations per algorithm name.
fn measure_all(
    cfg: &BenchConfig,
    db: &Database,
    ucq: &UnionQuery,
    fraction: f64,
) -> Vec<(&'static str, (Duration, Duration))> {
    let mut out = Vec::with_capacity(3);

    // Cumulative REnum(CQ) over the members (no inverted-access tables).
    {
        let mut pre = Duration::ZERO;
        let mut enumerate = Duration::ZERO;
        for d in ucq.disjuncts() {
            let t = Instant::now();
            let idx = CqIndex::build(d, db).expect("member builds");
            pre += t.elapsed();
            let k = ((idx.count() as f64 * fraction) as usize)
                .max(1)
                .min(idx.count() as usize);
            let t = Instant::now();
            let n = idx
                .random_permutation(StdRng::seed_from_u64(cfg.seed))
                .take(k)
                .count();
            enumerate += t.elapsed();
            assert!(n <= k);
        }
        out.push(("REnum(CQ) cumulative", (pre, enumerate)));
    }

    // REnum(UCQ): Algorithm 5. (The union cardinality is not part of this
    // algorithm's own state, so the k% target is computed out-of-band and
    // outside the timed region.)
    {
        let target = if fraction >= 1.0 {
            usize::MAX
        } else {
            fraction_target(db, ucq, fraction)
        };
        let t = Instant::now();
        let mut shuffle =
            UcqShuffle::build(ucq, db, StdRng::seed_from_u64(cfg.seed)).expect("builds");
        let pre = t.elapsed();
        let t = Instant::now();
        let mut produced = 0usize;
        while produced < target {
            match shuffle.next() {
                Some(_) => produced += 1,
                None => break,
            }
        }
        out.push(("REnum(UCQ)", (pre, t.elapsed())));
    }

    // REnum(mcUCQ): Theorem 5.5.
    {
        let t = Instant::now();
        let mc = McUcqIndex::build(ucq, db).expect("mc-compatible");
        let pre = t.elapsed();
        let k = ((mc.count() as f64 * fraction) as usize)
            .max(1)
            .min(mc.count() as usize);
        let t = Instant::now();
        let n = mc
            .random_permutation(StdRng::seed_from_u64(cfg.seed))
            .take(k)
            .count();
        let enumerate = t.elapsed();
        assert_eq!(n, k);
        out.push(("REnum(mcUCQ)", (pre, enumerate)));
    }

    out
}

/// The number of union answers corresponding to `fraction` (computed once
/// per call via the mc structure's O(1) count; cached would be nicer but the
/// build cost is excluded from the REnum(UCQ) timing either way).
fn fraction_target(db: &Database, ucq: &UnionQuery, fraction: f64) -> usize {
    use std::collections::HashMap;
    use std::sync::Mutex;
    use std::sync::OnceLock;
    static CACHE: OnceLock<Mutex<HashMap<String, u128>>> = OnceLock::new();
    let key = format!("{ucq}|{}", db.total_tuples());
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let count = {
        let mut guard = cache.lock().expect("cache lock");
        if let Some(&c) = guard.get(&key) {
            c
        } else {
            let c = McUcqIndex::build(ucq, db).expect("mc-compatible").count();
            guard.insert(key, c);
            c
        }
    };
    (((count as f64) * fraction) as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fig4a_runs() {
        let out = fig4a(&BenchConfig::smoke());
        assert!(out.contains("REnum(UCQ)"));
        assert!(out.contains("REnum(mcUCQ)"));
        assert!(out.contains("QA ∪ QE"));
    }
}
