//! Figure 1 (and the appendix variants Figure 6 / Figure 8): total
//! enumeration time — preprocessing + time to produce k% distinct answers —
//! for `REnum(CQ)` versus the sampling baselines.

use crate::setup::{BenchConfig, PERCENT_LADDER};
use crate::stats::fmt_dur;
use crate::table::Table;
use rae_core::CqIndex;
use rae_data::Database;
use rae_query::{ConjunctiveQuery, RootPreference};
use rae_sampler::{EoSampler, EwSampler, OeSampler, WithoutReplacement};
use rae_yannakakis::ReduceOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Which with-replacement baselines to run next to `REnum(CQ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// Exact-weight (Figure 1).
    Ew,
    /// Olken rejection (Figure 6); subject to the 100× timeout rule.
    Eo,
    /// Hybrid (Figure 8).
    Oe,
}

impl Baseline {
    fn name(self) -> &'static str {
        match self {
            Baseline::Ew => "Sample(EW)",
            Baseline::Eo => "Sample(EO)",
            Baseline::Oe => "Sample(OE)",
        }
    }
}

/// Figure 1: all six CQ benchmarks against Sample(EW).
pub fn fig1(cfg: &BenchConfig) -> String {
    let db = cfg.build_db();
    run_queries(
        "Figure 1: total enumeration time, REnum(CQ) vs Sample(EW)",
        cfg,
        &db,
        &rae_tpch::queries::all_cqs(),
        &[Baseline::Ew],
    )
}

/// Figure 6 (appendix): Figure 1 plus Sample(EO) with the paper's timeout
/// rule (halt EO when it exceeds 100× the EW time for the same task).
pub fn fig6(cfg: &BenchConfig) -> String {
    let db = cfg.build_db();
    run_queries(
        "Figure 6 (appendix): adding Sample(EO); 'timeout' = exceeded 100x the EW time",
        cfg,
        &db,
        &rae_tpch::queries::all_cqs(),
        &[Baseline::Ew, Baseline::Eo],
    )
}

/// Figure 8 (appendix): Q3 with Sample(OE) added.
pub fn fig8(cfg: &BenchConfig) -> String {
    let db = cfg.build_db();
    run_queries(
        "Figure 8 (appendix): Q3 with Sample(OE)",
        cfg,
        &db,
        &[("Q3", rae_tpch::queries::q3())],
        &[Baseline::Ew, Baseline::Oe],
    )
}

fn run_queries(
    title: &str,
    cfg: &BenchConfig,
    db: &Database,
    queries: &[(&str, ConjunctiveQuery)],
    baselines: &[Baseline],
) -> String {
    let mut out = String::new();
    for (name, cq) in queries {
        let table = run_one_query(cfg, db, name, cq, baselines);
        out.push_str(&table.to_string());
        out.push('\n');
    }
    format!("# {title}\n(sf = {}, seed = {})\n\n{out}", cfg.sf, cfg.seed)
}

fn run_one_query(
    cfg: &BenchConfig,
    db: &Database,
    name: &str,
    cq: &ConjunctiveQuery,
    baselines: &[Baseline],
) -> Table {
    let t = Instant::now();
    let index = CqIndex::build(cq, db).expect("benchmark query builds");
    let pre = t.elapsed();
    let total = index.count();

    // The sampling baselines walk a fan-out join tree (dimension relation
    // at the root, one node per atom) with per-level degree bounds, as the
    // Zhao-et-al samplers do; build that layout separately and charge its
    // preprocessing to the baselines.
    let t = Instant::now();
    let sampler_index = CqIndex::build_with(
        cq,
        db,
        ReduceOptions {
            root_preference: RootPreference::SmallestAtom,
            fold_subset_nodes: false,
        },
    )
    .expect("benchmark query builds in fan-out layout");
    let sampler_pre = t.elapsed();
    assert_eq!(sampler_index.count(), total, "layouts must agree on counts");

    let mut table = Table::new(
        format!("query {name} ({total} answers)"),
        &["k", "algorithm", "preprocess", "enumerate", "total"],
    );

    for &percent in PERCENT_LADDER.iter() {
        let k = ((total * u128::from(percent)) / 100).max(1) as usize;

        // REnum(CQ): k steps of a fresh permutation.
        let t = Instant::now();
        let produced = index
            .random_permutation(StdRng::seed_from_u64(cfg.seed))
            .take(k)
            .count();
        let renum_enum = t.elapsed();
        assert_eq!(produced, k);
        table.row(vec![
            format!("{percent}%"),
            "REnum(CQ)".into(),
            fmt_dur(pre),
            fmt_dur(renum_enum),
            fmt_dur(pre + renum_enum),
        ]);

        for &baseline in baselines {
            // The paper's rule: stop EO once it exceeds 100× the EW-variant
            // time for the same task. We bound every baseline by
            // max(100 × REnum enumeration time, 250ms) to keep default runs
            // short; timed-out bars are reported as such (they are omitted
            // from the paper's own charts).
            let budget = renum_enum.mul_f64(100.0).max(Duration::from_millis(250));
            let (elapsed, produced) = run_baseline(&sampler_index, baseline, k, cfg.seed, budget);
            let (enum_cell, total_cell) = if produced < k {
                ("timeout".to_string(), "timeout".to_string())
            } else {
                (fmt_dur(elapsed), fmt_dur(sampler_pre + elapsed))
            };
            table.row(vec![
                format!("{percent}%"),
                baseline.name().into(),
                fmt_dur(sampler_pre),
                enum_cell,
                total_cell,
            ]);
        }
    }
    table
}

fn run_baseline(
    index: &CqIndex,
    baseline: Baseline,
    k: usize,
    seed: u64,
    budget: Duration,
) -> (Duration, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = Instant::now();
    macro_rules! drive {
        ($sampler:expr) => {{
            let mut wr = WithoutReplacement::new($sampler);
            let mut produced = 0usize;
            while produced < k {
                if wr.next_distinct(&mut rng).is_none() {
                    break;
                }
                produced += 1;
                // Check the budget every few answers to keep overhead low.
                if produced % 64 == 0 && t.elapsed() > budget {
                    break;
                }
            }
            produced
        }};
    }
    let produced = match baseline {
        Baseline::Ew => drive!(EwSampler::new(index)),
        Baseline::Eo => drive!(EoSampler::new(index)),
        Baseline::Oe => drive!(OeSampler::new(index)),
    };
    (t.elapsed(), produced)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fig8_runs() {
        let out = fig8(&BenchConfig::smoke());
        assert!(out.contains("Q3"));
        assert!(out.contains("REnum(CQ)"));
        assert!(out.contains("Sample(OE)"));
    }
}
