//! §B.2.3: the RS sampler cannot reach even 1% of Q3's answers in
//! reasonable time. We reproduce the effect with a fixed wall-clock budget
//! and report the achieved coverage next to EW's time for the full 1%.

use crate::setup::BenchConfig;
use crate::stats::fmt_dur;
use crate::table::Table;
use rae_core::CqIndex;
use rae_sampler::{EwSampler, JoinSampler, RsSampler, WithoutReplacement};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Runs the RS-vs-EW comparison on Q3.
pub fn rs_note(cfg: &BenchConfig) -> String {
    let db = cfg.build_db();
    let index = CqIndex::build(&rae_tpch::queries::q3(), &db).expect("builds");
    let total = index.count();
    let one_percent = (total / 100).max(1) as usize;

    let mut table = Table::new(
        "B.2.3: RS vs EW on Q3 (target: 1% of answers)",
        &["sampler", "distinct produced", "target", "time", "status"],
    );

    // EW reaches the target.
    {
        let mut wr = WithoutReplacement::new(EwSampler::new(&index));
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let t = Instant::now();
        let got = wr.take_distinct(&mut rng, one_percent);
        table.row(vec![
            "Sample(EW)".into(),
            got.len().to_string(),
            one_percent.to_string(),
            fmt_dur(t.elapsed()),
            "completed".into(),
        ]);
    }

    // RS gets a 2-second budget (the paper gave it an hour at sf 5). Drive
    // raw attempts so a single accept-starved call cannot blow the budget.
    {
        let sampler = RsSampler::new(&index);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let budget = Duration::from_secs(2);
        let t = Instant::now();
        let mut seen: rae_data::FxHashSet<Vec<rae_data::Value>> = Default::default();
        let mut draws = 0u64;
        let mut rejections = 0u64;
        'outer: while seen.len() < one_percent && t.elapsed() < budget {
            for _ in 0..4096 {
                match sampler.attempt(&mut rng) {
                    Some(answer) => {
                        draws += 1;
                        seen.insert(answer);
                        if seen.len() >= one_percent {
                            break 'outer;
                        }
                    }
                    None => rejections += 1,
                }
            }
        }
        let elapsed = t.elapsed();
        let status = if seen.len() >= one_percent {
            "completed"
        } else {
            "budget exhausted"
        };
        table.row(vec![
            "Sample(RS)".into(),
            seen.len().to_string(),
            one_percent.to_string(),
            fmt_dur(elapsed),
            status.into(),
        ]);
        table.note(format!(
            "RS accepted {draws} of {} attempts (acceptance ≈ {:.2e})",
            draws + rejections,
            draws as f64 / (draws + rejections).max(1) as f64
        ));
    }

    format!(
        "# RS note (B.2.3)\n(sf = {}, seed = {})\n\n{table}",
        cfg.sf, cfg.seed
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_rs_note_runs() {
        let out = rs_note(&BenchConfig::smoke());
        assert!(out.contains("Sample(RS)"));
    }
}
