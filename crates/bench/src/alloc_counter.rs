//! A counting global allocator for verifying the zero-allocation claims.
//!
//! Install [`CountingAllocator`] as the `#[global_allocator]` of a test or
//! binary, then wrap the region of interest in [`count_allocations`]: it
//! returns how many heap allocations (`alloc` + `realloc`) the closure
//! performed on the current thread's process-wide counter.
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: rae_bench::alloc_counter::CountingAllocator =
//!     rae_bench::alloc_counter::CountingAllocator;
//!
//! let (result, allocs) = rae_bench::alloc_counter::count_allocations(|| {
//!     index.access_into(7, &mut scratch).map(<[_]>::to_vec)
//! });
//! assert_eq!(allocs, 0);
//! ```
//!
//! The counter is process-global (an atomic), so tests using it must run
//! the measured region single-threaded (`cargo test -- --test-threads=1`,
//! or measure in a test binary with one test).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A `System`-backed allocator that counts every allocation.
pub struct CountingAllocator;

// SAFETY: delegates every operation to `System`, only adding relaxed atomic
// counter updates.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Heap allocations performed since process start.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Heap bytes requested since process start.
pub fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// Runs `f` and returns `(f(), allocations performed during f)`.
///
/// Only meaningful when [`CountingAllocator`] is installed as the global
/// allocator and no other thread allocates concurrently.
pub fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = allocation_count();
    let result = f();
    let after = allocation_count();
    (result, after - before)
}
