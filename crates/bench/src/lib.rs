#![warn(missing_docs)]

//! # rae-bench
//!
//! The benchmark harness that regenerates **every table and figure** of the
//! paper's evaluation (Section 6 + Appendix B) over the synthetic TPC-H
//! workload:
//!
//! | Paper artifact | Module | `repro` subcommand |
//! |---|---|---|
//! | Figure 1 (a–f) | [`figures::fig1`] | `fig1` |
//! | Figure 2 | [`figures::fig23`] | `fig2` |
//! | Figure 3 | [`figures::fig23`] | `fig3` |
//! | Figure 4a | [`figures::fig4`] | `fig4a` |
//! | Figure 4b | [`figures::fig4`] | `fig4b` |
//! | Figure 5 | [`figures::fig5`] | `fig5` |
//! | Figure 6 (appendix) | [`figures::fig1`] (EO variant) | `fig6` |
//! | Figure 7 (appendix tables) | [`figures::fig23`] | `fig7` |
//! | Figure 8 (appendix) | [`figures::fig1`] (OE variant) | `fig8` |
//! | §B.2.3 RS note | [`figures::rs_note`] | `rs-note` |
//! | Ablations (DESIGN.md §7) | [`figures::ablation`] | `ablation-delete`, `ablation-binary` |
//! | Churn boundedness (DESIGN.md §9) | [`churn`] | `churn` (writes `BENCH_2.json`) |
//! | Preprocessing pipeline (DESIGN.md §10) | [`preprocessing`] | `preprocessing` (writes `BENCH_3.json`) |
//! | Concurrent serving (DESIGN.md §14) | [`serving`] | `serving` (writes `BENCH_5.json`) |
//! | Weighted ranked access (DESIGN.md §17) | [`weighted`] | `weighted` (writes `BENCH_7.json`) |
//!
//! Absolute numbers are machine- and scale-dependent; the *shapes* (who
//! wins, by what factor, where crossovers fall) are the reproduction target.
//! See EXPERIMENTS.md for paper-vs-measured notes.

pub mod alloc_counter;
pub mod baseline;
pub mod churn;
pub mod delays;
pub mod figures;
pub mod perf_report;
pub mod persistence;
pub mod preprocessing;
pub mod robustness;
pub mod serving;
pub mod setup;
pub mod stats;
pub mod table;
pub mod weighted;

pub use setup::BenchConfig;
pub use stats::BoxStats;
pub use table::Table;
