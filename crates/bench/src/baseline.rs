//! Faithful reconstructions of the *seed implementation's* allocating hot
//! paths, used as the "before" side of the before/after benchmarks
//! (`benches/access.rs` and the `bench-json` report).
//!
//! The seed's `CqIndex::access` recursed through the join tree allocating a
//! radix vector and a digit vector at every node plus the answer vector;
//! its `inverted_access` probed per-node `FxHashMap<Box<[Value]>, u32>`
//! tables, boxing a fresh key for every probe. Both are reproduced here
//! over the public accessor API of today's [`CqIndex`], so they read the
//! same underlying arrays as the optimized paths and differ **only** in
//! allocation and traversal strategy.

use rae_core::{split_index, CqIndex, Weight};
use rae_data::{key_of, FxHashMap, RowKey, Value};

/// Seed-style random access: recursive descent, fresh `Vec`s per node.
pub fn access_seed_style(idx: &CqIndex, j: Weight) -> Option<Vec<Value>> {
    if j >= idx.count() {
        return None;
    }
    let mut answer = vec![Value::Int(0); idx.arity()];
    let roots = idx.plan().roots();
    let radices: Vec<Weight> = roots
        .iter()
        .map(|&r| idx.root_bucket(r).expect("non-empty index").total)
        .collect();
    let mut digits = Vec::with_capacity(radices.len());
    split_index(j, &radices, &mut digits);
    for (&root, &digit) in roots.iter().zip(digits.iter()) {
        descend(idx, root, root_range(idx, root), digit, &mut answer);
    }
    Some(answer)
}

fn root_range(idx: &CqIndex, root: usize) -> (u32, u32) {
    let b = idx.root_bucket(root).expect("non-empty index");
    (b.start, b.end)
}

fn descend(idx: &CqIndex, node: usize, (start, end): (u32, u32), j: Weight, answer: &mut [Value]) {
    // Binary search: the last row of the bucket with startIndex ≤ j.
    let (mut lo, mut hi) = (start, end);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if idx.row_start(node, mid) <= j {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let row = lo - 1;
    let remainder = j - idx.row_start(node, row);
    idx.write_row_values(node, row, answer);

    let children = idx.plan().children(node);
    if children.is_empty() {
        return;
    }
    let radices: Vec<Weight> = (0..children.len())
        .map(|c| idx.child_bucket(node, row, c).total)
        .collect();
    let mut digits = Vec::with_capacity(children.len());
    split_index(remainder, &radices, &mut digits);
    for ((c, &child), &digit) in children.iter().enumerate().zip(digits.iter()) {
        let bucket = idx.child_bucket(node, row, c);
        descend(idx, child, (bucket.start, bucket.end), digit, answer);
    }
}

/// The seed's per-node inverted-access lookup tables: full tuple (boxed
/// values) → row id, probed by boxing a fresh key per node per call.
pub struct SeedInvertedAccess<'a> {
    idx: &'a CqIndex,
    /// One `Box<[Value]>`-keyed table per node, as the seed built lazily.
    tables: Vec<FxHashMap<RowKey, u32>>,
    /// Per node: head position feeding each bag column.
    head_cols: Vec<Vec<usize>>,
}

impl<'a> SeedInvertedAccess<'a> {
    /// Builds the seed-style tables for every node.
    pub fn new(idx: &'a CqIndex) -> Self {
        let mut tables = Vec::with_capacity(idx.node_count());
        let mut head_cols = Vec::with_capacity(idx.node_count());
        for node in 0..idx.node_count() {
            let rel = idx.node_relation(node);
            let table: FxHashMap<RowKey, u32> = rel
                .rows()
                .enumerate()
                .map(|(i, row)| (row.to_vec().into_boxed_slice(), i as u32))
                .collect();
            tables.push(table);
            let bag = idx.plan().bag(node);
            head_cols.push(
                bag.iter()
                    .map(|attr| {
                        idx.head()
                            .iter()
                            .position(|h| h == attr)
                            .expect("bag attrs are head attrs")
                    })
                    .collect(),
            );
        }
        SeedInvertedAccess {
            idx,
            tables,
            head_cols,
        }
    }

    /// Seed-style inverted access: recursive, one boxed key per node probe,
    /// fresh radix/digit vectors per node.
    pub fn inverted_access(&self, answer: &[Value]) -> Option<Weight> {
        let idx = self.idx;
        if answer.len() != idx.arity() || idx.count() == 0 {
            return None;
        }
        let roots = idx.plan().roots();
        let mut radices = Vec::with_capacity(roots.len());
        let mut digits = Vec::with_capacity(roots.len());
        for &root in roots {
            radices.push(idx.root_bucket(root).expect("non-empty").total);
            digits.push(self.inv_descend(root, answer)?);
        }
        Some(rae_core::combine_index(&radices, &digits))
    }

    fn inv_descend(&self, node: usize, answer: &[Value]) -> Option<Weight> {
        let idx = self.idx;
        let key: RowKey = key_of(answer, &self.head_cols[node]);
        let &row = self.tables[node].get(&key)?;
        let children = idx.plan().children(node);
        if children.is_empty() {
            return Some(idx.row_start(node, row));
        }
        let mut radices = Vec::with_capacity(children.len());
        let mut digits = Vec::with_capacity(children.len());
        for (c, &child) in children.iter().enumerate() {
            radices.push(idx.child_bucket(node, row, c).total);
            digits.push(self.inv_descend(child, answer)?);
        }
        Some(idx.row_start(node, row) + rae_core::combine_index(&radices, &digits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_tpch::{generate, queries, TpchScale};

    #[test]
    fn seed_style_paths_agree_with_optimized_paths() {
        let db = generate(&TpchScale::tiny(), 42);
        let idx = CqIndex::build(&queries::q3(), &db).expect("builds");
        let inv = SeedInvertedAccess::new(&idx);
        let n = idx.count();
        assert!(n > 0);
        let step = (n / 50).max(1);
        let mut j = 0;
        while j < n {
            let expected = idx.access(j).expect("in range");
            assert_eq!(access_seed_style(&idx, j).as_deref(), Some(&expected[..]));
            assert_eq!(inv.inverted_access(&expected), Some(j));
            j += step;
        }
        assert!(access_seed_style(&idx, n).is_none());
    }
}
