//! The preprocessing performance report (`BENCH_3.json`).
//!
//! `repro preprocessing` measures the sort-based build pipeline of
//! DESIGN.md §10 on TPC-H Q3 at two scale factors:
//!
//! * **sort ablation** — the canonical `(pAtts, full row)` sort of the
//!   largest node relation, LSD radix vs the comparison baseline, from
//!   shuffled input (so the `sorted_by` fingerprint cannot short-circuit
//!   either side);
//! * **build ablation** — the full `CqIndex::from_parts_with` pipeline,
//!   serial vs level-synchronous parallel (at the machine's available
//!   parallelism) and radix vs comparison sorts, also from shuffled input;
//! * **determinism** — a structural digest over every artifact (row orders,
//!   weights, startIndexes, buckets, child-bucket tables) of the serial and
//!   parallel builds. The harness **panics on divergence**, which is what
//!   the CI smoke step relies on.
//!
//! On a single-core container the parallel build degenerates to the serial
//! path; `available_parallelism` is recorded so readers can interpret the
//! speedup field (the ≥1.5× target presumes ≥4 cores).

use crate::setup::BenchConfig;
use rae_core::{BuildOptions, CqIndex, SortAlgorithm};
use rae_data::fxhash::FxHasher;
use rae_data::Relation;
use rae_tpch::queries;
use rae_yannakakis::{reduce_to_full_acyclic, FullAcyclicJoin};
use std::fmt::Write as _;
use std::hash::Hasher;
use std::time::Instant;

/// Median wall-clock nanoseconds of `run(prep())` over `samples` rounds,
/// timing only `run` (preparation — clones, shuffles — stays untimed).
fn median_ns<T>(samples: u32, mut prep: impl FnMut() -> T, mut run: impl FnMut(T)) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let input = prep();
            let start = Instant::now();
            run(input);
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// Rebuilds `rel` with its rows in a deterministic pseudorandom order and no
/// sort fingerprint, so a timed sort does full work.
pub(crate) fn shuffled(rel: &Relation) -> Relation {
    let n = rel.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for i in (1..n).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        order.swap(i, (state % (i as u64 + 1)) as usize);
    }
    let mut out = Relation::new(rel.schema().clone());
    for &i in &order {
        out.push_row_slice(rel.row(i)).expect("same schema");
    }
    out
}

/// A structural digest over every build artifact the index exposes. Two
/// builds digest equal iff rows, weights, starts, buckets, bucket-of-row
/// and child-bucket tables all match.
pub fn artifact_digest(idx: &CqIndex) -> u64 {
    let mut h = FxHasher::default();
    let mix = |h: &mut FxHasher, v: u64| h.write_u64(v);
    mix(&mut h, idx.count() as u64);
    mix(&mut h, (idx.count() >> 64) as u64);
    for node in 0..idx.node_count() {
        let rel = idx.node_relation(node);
        mix(&mut h, rel.len() as u64);
        for &code in rel.codes() {
            h.write_u32(code);
        }
        for bucket in 0..idx.bucket_count(node) as u32 {
            let view = idx.bucket(node, bucket);
            mix(&mut h, u64::from(view.start));
            mix(&mut h, u64::from(view.end));
            mix(&mut h, view.total as u64);
            mix(&mut h, (view.total >> 64) as u64);
            mix(&mut h, view.max_weight as u64);
        }
        let children = idx.plan().children(node).len();
        for row in 0..rel.len() as u32 {
            mix(&mut h, idx.row_weight(node, row) as u64);
            mix(&mut h, idx.row_start(node, row) as u64);
            mix(&mut h, u64::from(idx.bucket_of_row(node, row)));
            for child_pos in 0..children {
                let view = idx.child_bucket(node, row, child_pos);
                mix(&mut h, u64::from(view.start) << 32 | u64::from(view.end));
            }
        }
    }
    h.finish()
}

fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.2}")
    } else {
        "null".to_string()
    }
}

struct RunReport {
    sf: f64,
    sort_rows: usize,
    sort_arity: usize,
    sort_comparison_ns: f64,
    sort_radix_ns: f64,
    build_rows: usize,
    build_serial_ns: f64,
    build_parallel_ns: f64,
    build_serial_comparison_ns: f64,
    answers: u128,
    serial_digest: u64,
    parallel_digest: u64,
}

fn measure_run(sf: f64, seed: u64, threads: usize, samples: u32) -> RunReport {
    let cfg = BenchConfig { sf, seed };
    let db = cfg.build_db();
    let q3 = queries::q3();
    let fj: FullAcyclicJoin = reduce_to_full_acyclic(&q3, &db).expect("q3 reduces");

    // --- sort ablation on the largest node relation -----------------------
    let (largest_node, largest_rel) = fj
        .relations
        .iter()
        .enumerate()
        .max_by_key(|(_, r)| r.len())
        .expect("q3 has nodes");
    let key_cols = fj.plan.parent_shared_cols(largest_node);
    let shuffled_rel = shuffled(largest_rel);
    let sort_comparison_ns = median_ns(
        samples,
        || shuffled_rel.clone(),
        |mut rel| rel.sort_by_key_then_row_with(&key_cols, SortAlgorithm::Comparison),
    );
    let sort_radix_ns = median_ns(
        samples,
        || shuffled_rel.clone(),
        |mut rel| rel.sort_by_key_then_row_with(&key_cols, SortAlgorithm::Radix),
    );

    // --- build ablation over the full pipeline ----------------------------
    // Shuffled inputs: a cold build that cannot lean on the fingerprint.
    let shuffled_rels: Vec<Relation> = fj.relations.iter().map(shuffled).collect();
    let build_rows: usize = shuffled_rels.iter().map(Relation::len).sum();
    let build = |rels: Vec<Relation>, options: BuildOptions| {
        CqIndex::from_parts_with(fj.plan.clone(), rels, fj.head.clone(), options)
            .expect("q3 index builds")
    };
    let build_serial_ns = median_ns(
        samples,
        || shuffled_rels.clone(),
        |rels| {
            std::hint::black_box(build(rels, BuildOptions::serial()));
        },
    );
    let build_parallel_ns = median_ns(
        samples,
        || shuffled_rels.clone(),
        |rels| {
            std::hint::black_box(build(rels, BuildOptions::with_threads(threads)));
        },
    );
    let build_serial_comparison_ns = median_ns(
        samples,
        || shuffled_rels.clone(),
        |rels| {
            std::hint::black_box(build(
                rels,
                BuildOptions {
                    threads: 1,
                    sort: SortAlgorithm::Comparison,
                },
            ));
        },
    );

    // --- determinism digest ------------------------------------------------
    let serial_idx = build(shuffled_rels.clone(), BuildOptions::serial());
    let parallel_idx = build(
        shuffled_rels.clone(),
        BuildOptions::with_threads(threads.max(2)),
    );
    let serial_digest = artifact_digest(&serial_idx);
    let parallel_digest = artifact_digest(&parallel_idx);
    assert_eq!(
        serial_digest, parallel_digest,
        "PARALLEL BUILD DIVERGED FROM SERIAL at sf {sf} — this is a bug"
    );

    RunReport {
        sf,
        sort_rows: largest_rel.len(),
        sort_arity: largest_rel.arity(),
        sort_comparison_ns,
        sort_radix_ns,
        build_rows,
        build_serial_ns,
        build_parallel_ns,
        build_serial_comparison_ns,
        answers: serial_idx.count(),
        serial_digest,
        parallel_digest,
    }
}

/// Runs the measurements and renders `BENCH_3.json`'s contents. Panics if
/// any parallel build diverges from its serial twin.
///
/// On a single-core machine the parallel build degenerates to the serial
/// path by design, so a ~1.0 "speedup" would be misleading: the report then
/// emits `"parallel_speedup": null` and says why in the note (the digest
/// check still proves serial/parallel equivalence).
pub fn preprocessing_json(cfg: &BenchConfig) -> String {
    let threads = BuildOptions::default().resolved_threads();
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let multicore = available >= 2;
    // Small scale at the configured sf, wide scale at 5×.
    let runs = [
        measure_run(cfg.sf, cfg.seed, threads, 9),
        measure_run(cfg.sf * 5.0, cfg.seed, threads, 5),
    ];

    let mut entries = String::new();
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            entries,
            "    {{\n\
             \x20     \"sf\": {},\n\
             \x20     \"answers\": {},\n\
             \x20     \"sort\": {{\n\
             \x20       \"relation_rows\": {}, \"arity\": {},\n\
             \x20       \"comparison_ns\": {}, \"radix_ns\": {},\n\
             \x20       \"radix_speedup\": {}\n\
             \x20     }},\n\
             \x20     \"build\": {{\n\
             \x20       \"input_rows\": {},\n\
             \x20       \"serial_comparison_ns\": {}, \"serial_ns\": {}, \"parallel_ns\": {},\n\
             \x20       \"radix_build_speedup\": {}, \"parallel_speedup\": {}\n\
             \x20     }},\n\
             \x20     \"determinism\": {{\n\
             \x20       \"serial_digest\": \"{:016x}\", \"parallel_digest\": \"{:016x}\",\n\
             \x20       \"identical\": {}\n\
             \x20     }}\n\
             \x20   }}{}\n",
            r.sf,
            r.answers,
            r.sort_rows,
            r.sort_arity,
            json_f64(r.sort_comparison_ns),
            json_f64(r.sort_radix_ns),
            json_f64(r.sort_comparison_ns / r.sort_radix_ns),
            r.build_rows,
            json_f64(r.build_serial_comparison_ns),
            json_f64(r.build_serial_ns),
            json_f64(r.build_parallel_ns),
            json_f64(r.build_serial_comparison_ns / r.build_serial_ns),
            // A 1-core "speedup" is noise around 1.0, not a measurement.
            json_f64(if multicore {
                r.build_serial_ns / r.build_parallel_ns
            } else {
                f64::NAN
            }),
            r.serial_digest,
            r.parallel_digest,
            r.serial_digest == r.parallel_digest,
            if i + 1 < runs.len() { "," } else { "" },
        );
    }

    let note = if multicore {
        format!(
            "parallel_speedup presumes >=4 cores; on this machine available_cores is {available}"
        )
    } else {
        "single core available: the parallel build degenerates to the serial path by design, \
         so parallel_speedup is null (the determinism digest still proves serial/parallel \
         equivalence); re-record on a >=4-core machine for the real speedup"
            .to_string()
    };
    format!(
        "{{\n\
         \x20 \"schema\": \"rae-bench-preprocessing-v2\",\n\
         \x20 \"config\": {{ \"query\": \"q3\", \"seed\": {}, \"available_cores\": {}, \"build_threads\": {} }},\n\
         \x20 \"note\": \"{}\",\n\
         \x20 \"runs\": [\n{}\
         \x20 ]\n\
         }}\n",
        cfg.seed, available, threads, note, entries
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preprocessing_json_is_well_formed_and_deterministic() {
        // Tiny scale: this also exercises the serial-vs-parallel digest
        // assertion inside measure_run.
        let cfg = BenchConfig {
            sf: 0.0005,
            seed: 42,
        };
        let json = preprocessing_json(&cfg);
        assert!(json.contains("\"schema\": \"rae-bench-preprocessing-v2\""));
        assert!(json.contains("\"available_cores\""));
        assert!(json.contains("\"sort\""));
        assert!(json.contains("\"determinism\""));
        assert!(json.contains("\"identical\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // On a single-core machine the speedup field must be an explicit
        // null plus an explanatory note, never a misleading ~1.0.
        if std::thread::available_parallelism().map_or(1, |n| n.get()) < 2 {
            assert!(json.contains("\"parallel_speedup\": null"));
            assert!(json.contains("degenerates to the serial path"));
        } else {
            assert!(!json.contains("\"parallel_speedup\": null"));
        }
    }

    #[test]
    fn artifact_digest_is_stable_and_discriminating() {
        let cfg = BenchConfig {
            sf: 0.0005,
            seed: 42,
        };
        let db = cfg.build_db();
        let q3 = queries::q3();
        let a = CqIndex::build(&q3, &db).expect("builds");
        let b = CqIndex::build(&q3, &db).expect("builds");
        assert_eq!(artifact_digest(&a), artifact_digest(&b));
        let q0 = queries::q0();
        let c = CqIndex::build(&q0, &db).expect("builds");
        assert_ne!(artifact_digest(&a), artifact_digest(&c));
    }
}
